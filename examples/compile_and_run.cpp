// Compile-and-run — the paper's code-editor workflow (§II-B) end to end:
// C source goes through the built-in rvcc compiler at two optimization
// levels, the generated assembly (with its C-line link tags) is printed,
// and both versions run on the same architecture for comparison.
#include <cstdio>

#include "cc/compiler.h"
#include "config/cpu_config.h"
#include "core/simulation.h"

int main() {
  using namespace rvss;

  const char* cSource = R"(
int gcd(int a, int b) {
  while (b != 0) {
    int t = a % b;
    a = b;
    b = t;
  }
  return a;
}

int main() {
  int acc = 0;
  for (int i = 1; i <= 30; i++) {
    acc += gcd(360, i * 7);
  }
  return acc;
}
)";

  std::printf("C source:\n%s\n", cSource);

  for (int optLevel : {0, 2}) {
    auto compiled = cc::Compile(cSource, cc::CompileOptions{optLevel});
    if (!compiled.ok()) {
      std::fprintf(stderr, "compile error: %s\n",
                   compiled.error().ToText().c_str());
      return 1;
    }
    if (optLevel == 0) {
      std::printf("generated assembly at -O0 (first 24 lines, note the #@c\n"
                  "tags linking back to C lines):\n");
      int lines = 0;
      for (const char* p = compiled.value().assembly.c_str();
           *p && lines < 24; ++p) {
        std::putchar(*p);
        if (*p == '\n') ++lines;
      }
      std::printf("    ...\n\n");
    }

    auto sim = core::Simulation::Create(config::DefaultConfig(),
                                        compiled.value().assembly,
                                        {{}, "main"});
    if (!sim.ok()) {
      std::fprintf(stderr, "sim error: %s\n", sim.error().ToText().c_str());
      return 1;
    }
    sim.value()->Run();
    std::printf(
        "-O%d: result=%d, %llu instructions, %llu cycles, IPC %.3f\n",
        optLevel,
        static_cast<int>(
            static_cast<std::int32_t>(sim.value()->ReadIntReg(10))),
        static_cast<unsigned long long>(
            sim.value()->statistics().committedInstructions),
        static_cast<unsigned long long>(sim.value()->cycle()),
        sim.value()->statistics().Ipc());
  }
  return 0;
}
