// Pipeline viewer — a terminal rendition of the paper's main simulator
// window (Fig. 12): step through a short program cycle by cycle and watch
// instructions move through fetch, the issue windows, the functional
// units and the reorder buffer, with register renaming visible. The same
// renderer also demonstrates backward stepping (paper §III-B).
#include <cstdio>

#include "config/cpu_config.h"
#include "core/simulation.h"
#include "server/state_renderer.h"

int main(int argc, char** argv) {
  using namespace rvss;

  const int cyclesToShow = argc > 1 ? std::atoi(argv[1]) : 24;

  const char* source = R"(
.data
vec: .word 5, -3, 12, 7
.text
main:
    la   t0, vec
    li   t1, 4
    li   a0, 0
loop:
    lw   t2, 0(t0)
    mul  t2, t2, t2
    add  a0, a0, t2
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, loop
    ret
)";

  auto sim = core::Simulation::Create(config::DefaultConfig(), source,
                                      {{}, "main"});
  if (!sim.ok()) {
    std::fprintf(stderr, "error: %s\n", sim.error().ToText().c_str());
    return 1;
  }
  core::Simulation& s = *sim.value();

  std::printf("Forward simulation, one line block per cycle:\n\n");
  for (int i = 0;
       i < cyclesToShow && s.status() == core::SimStatus::kRunning; ++i) {
    s.Step();
    std::printf("%s\n", server::RenderText(s).c_str());
  }

  std::printf("Backward simulation: stepping back 3 cycles...\n\n");
  for (int i = 0; i < 3; ++i) {
    if (!s.StepBack().ok()) break;
  }
  std::printf("%s\n", server::RenderText(s).c_str());

  std::printf("Running to completion...\n");
  s.Run();
  std::printf("%s\n", server::RenderText(s).c_str());
  std::printf("result: a0 = %d (sum of squares), %llu cycles, IPC %.2f\n",
              static_cast<int>(static_cast<std::int32_t>(s.ReadIntReg(10))),
              static_cast<unsigned long long>(s.cycle()),
              s.statistics().Ipc());
  return 0;
}
