// Cache exploration — the paper's Memory/Cache settings tabs in action:
// sweep capacity, associativity and replacement policy against a workload
// with a known reuse pattern, and watch hit rate and cycle count respond.
#include <cstdio>

#include "cc/compiler.h"
#include "config/cpu_config.h"
#include "core/simulation.h"

namespace {

// Repeatedly walks a 2 KiB working set: fits in larger caches, thrashes
// small ones; conflict misses appear at low associativity.
const char* kWorkload = R"(
int data[512];
int main() {
  int sum = 0;
  for (int rep = 0; rep < 8; rep++)
    for (int i = 0; i < 512; i += 8)
      sum += ++data[i];
  return sum;
}
)";

}  // namespace

int main() {
  using namespace rvss;
  auto compiled = cc::Compile(kWorkload, cc::CompileOptions{2});
  if (!compiled.ok()) return 1;

  struct Variant {
    const char* name;
    std::uint32_t lineCount;
    std::uint32_t associativity;
    config::ReplacementPolicy policy;
  };
  const Variant variants[] = {
      {"4 KiB, 8-way, LRU", 128, 8, config::ReplacementPolicy::kLru},
      {"2 KiB, 4-way, LRU", 64, 4, config::ReplacementPolicy::kLru},
      {"1 KiB, 2-way, LRU", 32, 2, config::ReplacementPolicy::kLru},
      {"1 KiB, direct-mapped", 32, 1, config::ReplacementPolicy::kLru},
      {"512 B, 2-way, LRU", 16, 2, config::ReplacementPolicy::kLru},
      {"512 B, 2-way, FIFO", 16, 2, config::ReplacementPolicy::kFifo},
      {"512 B, 2-way, Random", 16, 2, config::ReplacementPolicy::kRandom},
  };

  std::printf("%-24s %10s %10s %12s\n", "cache", "hit rate", "cycles",
              "mem traffic");
  for (const Variant& variant : variants) {
    config::CpuConfig config = config::DefaultConfig();
    config.cache.lineCount = variant.lineCount;
    config.cache.lineSizeBytes = 32;
    config.cache.associativity = variant.associativity;
    config.cache.replacement = variant.policy;
    auto sim = core::Simulation::Create(config, compiled.value().assembly,
                                        {{}, "main"});
    if (!sim.ok()) return 1;
    sim.value()->Run();
    const auto& memStats = sim.value()->memorySystem().stats();
    std::printf("%-24s %9.1f%% %10llu %9llu B\n", variant.name,
                100.0 * memStats.HitRate(),
                static_cast<unsigned long long>(sim.value()->cycle()),
                static_cast<unsigned long long>(memStats.bytesReadFromMemory +
                                                memStats.bytesWrittenToMemory));
  }
  std::printf("\nno-cache baseline:\n");
  {
    auto sim = core::Simulation::Create(config::NoCacheConfig(),
                                        compiled.value().assembly,
                                        {{}, "main"});
    sim.value()->Run();
    std::printf("%-24s %10s %10llu\n", "disabled", "-",
                static_cast<unsigned long long>(sim.value()->cycle()));
  }
  return 0;
}
