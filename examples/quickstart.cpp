// Quickstart: assemble a program, simulate it, read the statistics.
//
// This is the five-minute tour of the public API: build a configuration,
// create a simulation from assembly text, run it, and inspect registers
// and runtime statistics (the numbers the paper's statistics window
// shows).
#include <cstdio>

#include "config/cpu_config.h"
#include "core/simulation.h"

int main() {
  using namespace rvss;

  // A small program: sum the integers 1..100.
  const char* source = R"(
main:
    li   t0, 100        # n
    li   a0, 0          # sum
loop:
    add  a0, a0, t0
    addi t0, t0, -1
    bnez t0, loop
    ret                 # returning from main ends the simulation
)";

  // Pick a preset architecture (fully configurable; see CpuConfig).
  config::CpuConfig config = config::DefaultConfig();

  auto sim = core::Simulation::Create(config, source, {{}, "main"});
  if (!sim.ok()) {
    std::fprintf(stderr, "error: %s\n", sim.error().ToText().c_str());
    return 1;
  }

  core::Simulation& s = *sim.value();
  s.Run();

  std::printf("finish reason : %s\n", core::ToString(s.finishReason()));
  std::printf("a0 (result)   : %d\n",
              static_cast<int>(static_cast<std::int32_t>(s.ReadIntReg(10))));
  std::printf("cycles        : %llu\n",
              static_cast<unsigned long long>(s.cycle()));
  std::printf("instructions  : %llu\n",
              static_cast<unsigned long long>(
                  s.statistics().committedInstructions));
  std::printf("IPC           : %.3f\n", s.statistics().Ipc());
  std::printf("branch acc.   : %.1f%%\n",
              100.0 * s.statistics().BranchAccuracy());
  std::printf("cache hit rate: %.1f%%\n",
              100.0 * s.memorySystem().stats().HitRate());

  // Full text report, as the CLI prints it:
  std::printf("\n%s", s.statistics()
                          .ToText(s.memorySystem().stats(),
                                  s.config().coreClockHz)
                          .c_str());
  return 0;
}
