// HW/SW co-design study — the paper's motivating question (§I-B): "Given
// an algorithm, how should one design a processor and optimize the code
// for the best performance?"
//
// Two implementations of the same reduction (a straightforward loop and a
// 4-way unrolled version with independent accumulators) are compiled with
// rvcc and run on three processor designs. The table shows how the code
// transformation interacts with the architecture: unrolling barely helps
// a scalar core but unlocks the wide core's parallelism.
#include <cstdio>

#include "cc/compiler.h"
#include "config/cpu_config.h"
#include "core/simulation.h"

namespace {

const char* kSimpleLoop = R"(
int data[256];
int main() {
  for (int i = 0; i < 256; i++) data[i] = i * 3 - 128;
  int sum = 0;
  for (int i = 0; i < 256; i++) sum += data[i] * data[i];
  return sum;
}
)";

const char* kUnrolledLoop = R"(
int data[256];
int main() {
  for (int i = 0; i < 256; i++) data[i] = i * 3 - 128;
  int s0 = 0; int s1 = 0; int s2 = 0; int s3 = 0;
  for (int i = 0; i < 256; i += 4) {
    s0 += data[i] * data[i];
    s1 += data[i + 1] * data[i + 1];
    s2 += data[i + 2] * data[i + 2];
    s3 += data[i + 3] * data[i + 3];
  }
  return s0 + s1 + s2 + s3;
}
)";

}  // namespace

int main() {
  using namespace rvss;

  struct Arch {
    const char* name;
    config::CpuConfig config;
  };
  const Arch architectures[] = {
      {"scalar (1-wide)", config::ScalarConfig()},
      {"default (4-wide)", config::DefaultConfig()},
      {"wide (8-wide)", config::WideConfig()},
  };
  struct Version {
    const char* name;
    const char* source;
  };
  const Version versions[] = {
      {"simple loop", kSimpleLoop},
      {"4-way unrolled", kUnrolledLoop},
  };

  std::printf("%-18s %-16s %10s %8s %10s %8s\n", "architecture", "code",
              "cycles", "IPC", "wall [us]", "result");
  for (const Arch& arch : architectures) {
    for (const Version& version : versions) {
      auto compiled = cc::Compile(version.source, cc::CompileOptions{2});
      if (!compiled.ok()) {
        std::fprintf(stderr, "compile: %s\n",
                     compiled.error().ToText().c_str());
        return 1;
      }
      auto sim = core::Simulation::Create(arch.config,
                                          compiled.value().assembly,
                                          {{}, "main"});
      if (!sim.ok()) {
        std::fprintf(stderr, "sim: %s\n", sim.error().ToText().c_str());
        return 1;
      }
      sim.value()->Run();
      const auto& stats = sim.value()->statistics();
      std::printf("%-18s %-16s %10llu %8.3f %10.1f %8d\n", arch.name,
                  version.name,
                  static_cast<unsigned long long>(sim.value()->cycle()),
                  stats.Ipc(),
                  stats.WallTimeSeconds(arch.config.coreClockHz) * 1e6,
                  static_cast<int>(static_cast<std::int32_t>(
                      sim.value()->ReadIntReg(10))));
    }
  }
  std::printf(
      "\nreading: unrolling pays off only once the pipeline is wide enough\n"
      "to exploit the independent accumulators — the co-design lesson the\n"
      "simulator is built to teach.\n");
  return 0;
}
