// Observability overhead: what the always-on metrics layer costs.
//
// Two kinds of numbers. The primitive rates (counter_mops, histogram_mops,
// span_kops) are the raw cost of one Record — they bound how densely a
// future subsystem may instrument itself. The overhead percentages are the
// ones CI pins: the same workload run with obs::SetEnabled(true) vs
// (false), interleaved in fine ~10 ms slices so host-load drift cannot
// manufacture a regression (see ReportOverhead). sim_overhead_pct covers
// the detailed simulation loop (bench_sim's hot path, instrumented at
// Run() granularity); shard_overhead_pct covers the routed step-request
// path (bench_shard's routing-tax shape, which crosses the lane and
// SimServer instrumentation on every request). Both are gated at < 2% in
// bench/baselines.json — the contract that lets the registry stay on in
// production.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/simulation.h"
#include "json/json.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "server/api.h"
#include "shard/router.h"

namespace rvss {
namespace {

// Same shape as bench_sim's loop. Long enough (~200 ms per side) that
// the sliced A/B gets hundreds of alternations to average over.
const char* kLoop = R"(
main:
    li t0, 300000
loop:
    addi t1, t1, 1
    xori t2, t1, 3
    addi t0, t0, -1
    bnez t0, loop
    ret
)";

json::Json Cmd(const char* command,
               std::initializer_list<std::pair<const char*, json::Json>>
                   fields = {}) {
  json::Json request = json::Json::MakeObject();
  request.Set("command", command);
  for (const auto& [key, value] : fields) request.Set(key, value);
  return request;
}

bool Ok(const json::Json& response, const char* what) {
  if (response.GetString("status", "") == "ok") return true;
  std::fprintf(stderr, "%s failed: %s\n", what,
               response.GetString("message", "?").c_str());
  return false;
}

// --- primitive rates --------------------------------------------------------

double CounterMops() {
  obs::Counter& counter =
      obs::Registry::Instance().GetCounter("bench.obs.counter");
  constexpr std::uint64_t kOps = 20'000'000;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kOps; ++i) counter.Increment();
  const double seconds = bench::SecondsSince(start);
  return static_cast<double>(kOps) / seconds / 1e6;
}

double HistogramMops() {
  obs::Histogram& histogram =
      obs::Registry::Instance().GetHistogram("bench.obs.histogram");
  constexpr std::uint64_t kOps = 20'000'000;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kOps; ++i) histogram.Record(i & 0xffff);
  const double seconds = bench::SecondsSince(start);
  return static_cast<double>(kOps) / seconds / 1e6;
}

double SpanKops() {
  // Spans take a mutex and two clock reads — they are for rare expensive
  // operations, and this rate documents why.
  constexpr std::uint64_t kOps = 200'000;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kOps; ++i) {
    obs::ScopedSpan span("bench", "span");
  }
  const double seconds = bench::SecondsSince(start);
  obs::TraceRing::Instance().Clear();
  return static_cast<double>(kOps) / seconds / 1e3;
}

// --- A/B overhead legs ------------------------------------------------------

/// One timed detailed-simulation run; returns seconds, < 0 on failure.
double SimRunSeconds() {
  auto sim = core::Simulation::Create(config::DefaultConfig(), kLoop,
                                      {{}, "main"});
  if (!sim.ok()) {
    std::fprintf(stderr, "create failed: %s\n", sim.error().ToText().c_str());
    return -1.0;
  }
  const auto start = std::chrono::steady_clock::now();
  sim.value()->Run(100'000'000);
  const double seconds = bench::SecondsSince(start);
  if (sim.value()->status() != core::SimStatus::kFinished) {
    std::fprintf(stderr, "sim leg did not finish\n");
    return -1.0;
  }
  return seconds;
}

/// One timed burst of routed single-step requests; seconds, < 0 on failure.
double RoutedStepSeconds(shard::ShardRouter& router,
                         const std::string& request, int count) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < count; ++i) {
    // HandleRaw includes parse + route + SimServer dispatch — the full
    // per-request path the instrumentation taxes.
    if (router.HandleRaw(request).find("\"ok\"") == std::string::npos) {
      std::fprintf(stderr, "routed step failed\n");
      return -1.0;
    }
  }
  return bench::SecondsSince(start);
}

/// The noise strategy shared by both A/B legs: alternate enabled and
/// disabled *slices* of ~10 ms, hundreds of them, and compare the summed
/// time per side. Coarse-grained designs (whole-run A/B with min- or
/// median-of-rounds) were tried first and are the wrong statistic on a
/// shared machine: host frequency/load shifts with a period near the
/// round length land entirely on one side and read as several percent of
/// phantom overhead. With fine slices in alternating order, any drift
/// slower than a slice-pair contributes equally to both sums. Negative
/// results are clamped to 0: the metrics code cannot make the workload
/// faster, a negative delta is measurement noise.
double ReportOverhead(double offSeconds, double onSeconds,
                      const char* label) {
  const double pct = std::max(0.0, (onSeconds / offSeconds - 1.0) * 100.0);
  std::printf("%-22s %10.3f ms off   %10.3f ms on   %+6.2f%%\n", label,
              offSeconds * 1e3, onSeconds * 1e3, pct);
  return pct;
}

/// Two identical simulations advanced in interleaved kSlice-cycle bursts.
/// Which sim is measured with obs enabled alternates every pair — the
/// workload is the same either way, so each instance contributes equally
/// to both sums and per-instance bias (page placement, cache layout of
/// the two allocations) cancels along with host-load drift. Returns the
/// overhead percentage, < 0 on failure.
double SimOverheadPct() {
  auto makeSim = [] {
    return core::Simulation::Create(config::DefaultConfig(), kLoop,
                                    {{}, "main"});
  };
  auto simA = makeSim();
  auto simB = makeSim();
  if (!simA.ok() || !simB.ok()) {
    std::fprintf(stderr, "sim leg create failed\n");
    return -1.0;
  }
  constexpr std::uint64_t kSlice = 10'000;
  double onSeconds = 0.0;
  double offSeconds = 0.0;
  int iteration = 0;
  while ((simA.value()->status() == core::SimStatus::kRunning ||
          simB.value()->status() == core::SimStatus::kRunning) &&
         iteration < 100'000) {
    const bool aEnabled = iteration++ % 2 == 1;
    for (int leg = 0; leg < 2; ++leg) {
      const bool isA = leg == 0;
      const bool enabled = isA == aEnabled;
      core::Simulation& sim = *(isA ? simA : simB).value();
      obs::SetEnabled(enabled);
      const auto start = std::chrono::steady_clock::now();
      sim.Run(kSlice);
      (enabled ? onSeconds : offSeconds) += bench::SecondsSince(start);
    }
  }
  obs::SetEnabled(true);
  if (simA.value()->status() != core::SimStatus::kFinished ||
      simB.value()->status() != core::SimStatus::kFinished) {
    std::fprintf(stderr, "sim leg did not finish\n");
    return -1.0;
  }
  return ReportOverhead(offSeconds, onSeconds, "detailed sim loop");
}

/// Routed single-step requests in interleaved bursts against one live
/// session (the session advances through both sides identically — a
/// step is a step). Returns the overhead percentage, < 0 on failure.
double ShardOverheadPct(shard::ShardRouter& router,
                        const std::string& request) {
  constexpr int kBurst = 50;
  constexpr int kPairs = 40;
  double onSeconds = 0.0;
  double offSeconds = 0.0;
  for (int pair = 0; pair < kPairs; ++pair) {
    const bool onFirst = pair % 2 == 1;
    for (int leg = 0; leg < 2; ++leg) {
      const bool enabled = onFirst == (leg == 0);
      obs::SetEnabled(enabled);
      const double seconds = RoutedStepSeconds(router, request, kBurst);
      if (seconds < 0) {
        obs::SetEnabled(true);
        return -1.0;
      }
      (enabled ? onSeconds : offSeconds) += seconds;
    }
  }
  obs::SetEnabled(true);
  return ReportOverhead(offSeconds, onSeconds, "routed step requests");
}

}  // namespace
}  // namespace rvss

int main(int argc, char** argv) {
  using namespace rvss;
  bench::JsonReport report("obs", argc, argv);

  std::printf("# observability primitives\n");
  const double counterMops = CounterMops();
  const double histogramMops = HistogramMops();
  const double spanKops = SpanKops();
  std::printf("%-22s %10.1f Mops/s\n", "counter add", counterMops);
  std::printf("%-22s %10.1f Mops/s\n", "histogram record", histogramMops);
  std::printf("%-22s %10.1f Kops/s\n", "scoped span", spanKops);
  report.Set("counter_mops", counterMops);
  report.Set("histogram_mops", histogramMops);
  report.Set("span_kops", spanKops);

  // Warm-up primes the allocator and decode caches before any timing.
  if (SimRunSeconds() < 0) return 1;

  // Each repeat is already drift-immune (sliced alternation); the min
  // across repeats additionally discards whole measurements a scheduler
  // burst landed on. A real regression raises every repeat, so the min
  // still catches it.
  constexpr int kRepeats = 3;
  std::printf("\n# end-to-end overhead, enabled vs disabled "
              "(summed over interleaved slices, min of %d repeats)\n",
              kRepeats);
  double simOverheadPct = -1.0;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    const double pct = SimOverheadPct();
    if (pct < 0) return 1;
    if (simOverheadPct < 0 || pct < simOverheadPct) simOverheadPct = pct;
  }
  report.Set("sim_overhead_pct", simOverheadPct);

  shard::ShardRouter::Options options;
  options.workerCount = 2;
  shard::ShardRouter router(options);
  json::Json created = router.Handle(
      Cmd("createSession",
          {{"code", json::Json(kLoop)}, {"entry", json::Json("main")}}));
  if (!Ok(created, "createSession")) return 1;
  const std::string stepRequest =
      Cmd("step", {{"sessionId", json::Json(created.GetInt("sessionId", -1))},
                   {"count", json::Json(1)}})
          .Dump();
  // Warm burst before timing: primes the dispatch lanes and the session's
  // decode caches.
  if (RoutedStepSeconds(router, stepRequest, 200) < 0) return 1;
  double shardOverheadPct = -1.0;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    const double pct = ShardOverheadPct(router, stepRequest);
    if (pct < 0) return 1;
    if (shardOverheadPct < 0 || pct < shardOverheadPct) shardOverheadPct = pct;
  }
  report.Set("shard_overhead_pct", shardOverheadPct);

  obs::SetEnabled(true);  // leave the process in the production state
  return 0;
}
