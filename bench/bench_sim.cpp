// Raw simulation throughput: detailed out-of-order stepping vs the
// reference-ISS fast-forward path (Simulation::FastForwardTo).
//
// Two numbers matter. detailed_cycles_per_s is the hot-loop budget of the
// whole detailed model — predecode, issue, rename, commit — and is what
// the predecoded-pipeline work optimizes. fast_forward_mips is the ISS
// prefix-skip rate; its ratio to detailed_mips (ff_speedup) is the whole
// point of fast-forwarding and is pinned in bench/baselines.json.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "core/simulation.h"

namespace rvss {
namespace {

// Dependency-light integer loop, ~1.6M dynamic instructions: long enough
// that session setup and the final drain are noise, small enough that the
// detailed run finishes in a couple of seconds on a laptop.
const char* kLoop = R"(
main:
    li t0, 400000
loop:
    addi t1, t1, 1
    xori t2, t1, 3
    addi t0, t0, -1
    bnez t0, loop
    ret
)";

struct RunResult {
  bool ok = false;
  double seconds = 0.0;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
};

RunResult RunDetailed() {
  RunResult result;
  auto sim = core::Simulation::Create(config::DefaultConfig(), kLoop,
                                      {{}, "main"});
  if (!sim.ok()) {
    std::fprintf(stderr, "create failed: %s\n", sim.error().ToText().c_str());
    return result;
  }
  const auto start = std::chrono::steady_clock::now();
  sim.value()->Run(100'000'000);
  result.seconds = bench::SecondsSince(start);
  result.cycles = sim.value()->cycle();
  result.instructions = sim.value()->statistics().committedInstructions;
  result.ok = sim.value()->status() == core::SimStatus::kFinished;
  return result;
}

RunResult RunFastForward(std::uint64_t instructionBudget) {
  RunResult result;
  auto sim = core::Simulation::Create(config::DefaultConfig(), kLoop,
                                      {{}, "main"});
  if (!sim.ok()) {
    std::fprintf(stderr, "create failed: %s\n", sim.error().ToText().c_str());
    return result;
  }
  const auto start = std::chrono::steady_clock::now();
  Status ff = sim.value()->FastForwardTo(instructionBudget);
  result.seconds = bench::SecondsSince(start);
  if (!ff.ok()) {
    std::fprintf(stderr, "fast-forward failed: %s\n",
                 ff.error().ToText().c_str());
    return result;
  }
  result.instructions = sim.value()->statistics().fastForwardedInstructions;
  result.ok = result.instructions > 0;
  return result;
}

}  // namespace
}  // namespace rvss

int main(int argc, char** argv) {
  using namespace rvss;
  bench::JsonReport report("sim", argc, argv);

  // Warm-up run primes the allocator and the expression compiler caches so
  // the measured runs see steady state.
  (void)RunDetailed();

  const RunResult detailed = RunDetailed();
  if (!detailed.ok) return 1;
  const double detailedCyclesPerS =
      static_cast<double>(detailed.cycles) / detailed.seconds;
  const double detailedMips = static_cast<double>(detailed.instructions) /
                              detailed.seconds / 1e6;

  // Fast-forward the same dynamic instruction count the detailed run
  // committed (stop just short of `ret` so the ISS never runs off the end).
  const RunResult ff = RunFastForward(detailed.instructions - 2);
  if (!ff.ok) return 1;
  const double ffMips =
      static_cast<double>(ff.instructions) / ff.seconds / 1e6;
  const double speedup = detailedMips == 0.0 ? 0.0 : ffMips / detailedMips;

  std::printf("# Simulation throughput (loop of %llu dynamic instructions)\n",
              static_cast<unsigned long long>(detailed.instructions));
  std::printf("%-22s %12.3f s  %12.0f cycles/s  %8.3f MIPS\n", "detailed",
              detailed.seconds, detailedCyclesPerS, detailedMips);
  std::printf("%-22s %12.3f s  %25s  %8.3f MIPS\n", "fast-forward (ISS)",
              ff.seconds, "-", ffMips);
  std::printf("%-22s %12.1fx\n", "ff speedup", speedup);

  report.Set("detailed_cycles_per_s", detailedCyclesPerS);
  report.Set("detailed_mips", detailedMips);
  report.Set("fast_forward_mips", ffMips);
  report.Set("ff_speedup", speedup);
  report.Set("hardware_cores",
             static_cast<double>(std::thread::hardware_concurrency()));
  return 0;
}
