// Gateway throughput: sustained requests/s with 64 concurrent socket
// clients multiplexed by the epoll front door onto a 4-worker fleet.
//
// This is the number that says whether the gateway can front a classroom:
// every client holds its own connection, every request crosses the frame
// codec twice, the epoll loop, the dispatcher pool and a shard lane. The
// pinned floor in bench/baselines.json trips when the front door loses
// its event-driven shape — a per-connection thread, an accidental O(n)
// scan in the I/O loop, or a lock serializing the dispatchers would all
// show up here long before a classroom does.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/socket.h"
#include "gateway/gateway.h"
#include "json/json.h"
#include "server/wire.h"
#include "shard/router.h"
#include "shard/worker.h"

namespace rvss {
namespace {

const char* kWorkload = R"(
main:
    li s1, 1000000
spin:
    addi s1, s1, -1
    bnez s1, spin
    ret
)";

json::Json Cmd(const char* command,
               std::initializer_list<std::pair<const char*, json::Json>>
                   fields = {}) {
  json::Json request = json::Json::MakeObject();
  request.Set("command", command);
  for (const auto& [key, value] : fields) request.Set(key, value);
  return request;
}

struct ClientResult {
  std::uint64_t requests = 0;
  std::string error;
};

/// One client: its own connection, its own session, then a tight
/// step-request loop until the deadline.
void RunClient(const std::string& address,
               std::chrono::steady_clock::time_point deadline,
               ClientResult* result) {
  auto connected = net::ConnectTo(address, 10'000);
  if (!connected.ok()) {
    result->error = "connect: " + connected.error().ToText();
    return;
  }
  net::Socket socket = std::move(connected).value();
  server::WireOptions wire;
  wire.ioTimeoutMs = 30'000;

  auto call = [&](json::Json request) -> Result<json::Json> {
    Status wrote = server::WriteMessage(socket, std::move(request), wire);
    if (!wrote.ok()) return wrote.error();
    return server::ReadMessage(socket, wire);
  };

  auto created = call(Cmd("createSession", {{"code", json::Json(kWorkload)},
                                            {"entry", json::Json("main")}}));
  if (!created.ok() ||
      created.value().GetString("status", "") != "ok") {
    result->error = "createSession failed: " +
                    (created.ok() ? created.value().Dump()
                                  : created.error().ToText());
    return;
  }
  const std::int64_t id = created.value().GetInt("sessionId", -1);
  const json::Json step = Cmd(
      "step", {{"sessionId", json::Json(id)}, {"count", json::Json(1)}});

  while (std::chrono::steady_clock::now() < deadline) {
    auto stepped = call(step);
    if (!stepped.ok()) {
      result->error = "step failed: " + stepped.error().ToText();
      return;
    }
    if (stepped.value().GetString("status", "") != "ok") {
      result->error = "step error: " + stepped.value().Dump();
      return;
    }
    ++result->requests;
  }
}

}  // namespace
}  // namespace rvss

int main(int argc, char** argv) {
  using namespace rvss;
  bench::JsonReport report("gateway", argc, argv);

  constexpr int kClients = 64;
  constexpr auto kWindow = std::chrono::milliseconds(1'500);

  shard::ShardRouter::Options routerOptions;
  routerOptions.workerCount = 4;
  // The production backpressure shape: bounded lanes. 64 clients with
  // one request in flight each sit far below the cap, so the bench
  // measures throughput, not shed handling.
  routerOptions.maxLaneQueueDepth = 256;
  shard::ShardRouter router(routerOptions);

  gateway::GatewayOptions gatewayOptions;
  gatewayOptions.address = shard::MakeWorkerAddress("bench-gw");
  auto gateway = gateway::Gateway::Start(
      [&router](const json::Json& request) { return router.Handle(request); },
      gatewayOptions);
  if (!gateway.ok()) {
    std::fprintf(stderr, "gateway start failed: %s\n",
                 gateway.error().ToText().c_str());
    return 1;
  }

  std::vector<ClientResult> results(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + kWindow;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back(RunClient, gateway.value()->address(), deadline,
                         &results[c]);
  }
  for (std::thread& client : clients) client.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  gateway.value()->Stop();

  std::uint64_t total = 0;
  for (const ClientResult& result : results) {
    if (!result.error.empty()) {
      std::fprintf(stderr, "client failed: %s\n", result.error.c_str());
      return 1;
    }
    total += result.requests;
  }
  const double requestsPerSecond = static_cast<double>(total) / elapsed;

  std::printf("%-24s %10d\n", "concurrent clients", kClients);
  std::printf("%-24s %10llu\n", "requests completed",
              static_cast<unsigned long long>(total));
  std::printf("%-24s %10.2f s\n", "window", elapsed);
  std::printf("%-24s %10.0f req/s\n", "sustained throughput",
              requestsPerSecond);

  report.Set("requests_per_s", requestsPerSecond);
  report.Set("clients", static_cast<double>(kClients));
  // The throughput gate is core-bound like the shard speedup gate:
  // ci/check_bench.py skips it when hardware_cores < requires_cores.
  report.Set("hardware_cores",
             static_cast<double>(std::thread::hardware_concurrency()));
  return 0;
}
