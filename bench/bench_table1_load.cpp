// E1 — Table I of the paper: closed-loop load test.
//
// Paper setup: Apache JMeter, 30/100 users, each interactively simulating
// 40 steps of one of two programs, 4 s ramp-up, 1 s think time, gzip on,
// measured Direct vs inside Docker on a laptop. Paper numbers:
//
//   Mode    #users   median [ms]   90th [ms]   throughput [trans/s]
//   Direct    30        70.66        118            25.96
//   Direct   100       680          1248.9          53.61
//   Docker    30        77           283            24.49
//   Docker   100      1135          2031.9          42.07
//
// Here the same closed-loop scenario runs as a deterministic virtual-time
// queueing simulation over *measured* per-request service times (real
// parse -> simulate 1 step -> serialize -> compress calls against the
// in-process server). The Docker rows use the calibrated overhead model
// (DESIGN.md substitution table). Shapes to reproduce: saturation between
// 30 and 100 users (median inflates by an order of magnitude while
// throughput roughly doubles) and Docker rows strictly slower than Direct.
#include <algorithm>

#include "bench_common.h"
#include "server/load_model.h"
#include "common/slz.h"

using namespace rvss;

namespace {

/// Collects real service-time samples by timing `step` requests.
std::vector<double> MeasureServiceTimes(double* payloadBytes,
                                        double* compressionRatio) {
  server::SimServer server;
  std::vector<std::int64_t> sessions;
  for (const char* program : {bench::kSortC, bench::kFloatC}) {
    sessions.push_back(
        bench::CreateCSession(server, program, config::DefaultConfig()));
  }

  std::vector<double> samples;
  double bytesTotal = 0;
  double compressedTotal = 0;
  for (int round = 0; round < 60; ++round) {
    for (std::int64_t id : sessions) {
      const std::string request =
          R"({"command": "step", "sessionId": )" + std::to_string(id) +
          R"(, "count": 1})";
      server::RequestTiming timing;
      server.HandleRaw(request, /*compress=*/true, &timing);
      if (round < 4) continue;  // warm-up rounds excluded
      samples.push_back(static_cast<double>(timing.TotalNs()) * 1e-9);
      bytesTotal += static_cast<double>(timing.responseBytes);
      compressedTotal += static_cast<double>(timing.compressedBytes);
    }
  }
  *payloadBytes = bytesTotal / static_cast<double>(samples.size());
  *compressionRatio = bytesTotal / std::max(compressedTotal, 1.0);
  return samples;
}

}  // namespace

void PrintScenarioTable(const char* title, const std::vector<double>& samples,
                        double payloadBytes, double compressionRatio) {
  std::printf("%s\n", title);
  std::printf("%-8s %-7s %14s %14s %18s\n", "Mode", "#users", "median [ms]",
              "90th pct [ms]", "throughput [t/s]");
  for (auto mode :
       {server::DeploymentMode::kDirect, server::DeploymentMode::kDocker}) {
    for (int users : {30, 100}) {
      server::LoadScenario scenario;
      scenario.users = users;
      scenario.requestsPerUser = 40;
      scenario.rampUpSeconds = 4.0;
      scenario.thinkTimeSeconds = 1.0;
      scenario.mode = mode;
      scenario.payloadBytes = payloadBytes;
      scenario.compressionRatio = compressionRatio;
      server::LoadResult result = server::SimulateLoad(scenario, samples);
      std::printf("%-8s %-7d %14.2f %14.2f %18.2f\n",
                  mode == server::DeploymentMode::kDirect ? "Direct" : "Docker",
                  users, result.medianLatencyMs, result.p90LatencyMs,
                  result.throughputTps);
    }
  }
  std::printf("\n");
}

int main() {
  double payloadBytes = 0;
  double compressionRatio = 1.0;
  std::vector<double> samples =
      MeasureServiceTimes(&payloadBytes, &compressionRatio);
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double medianService = sorted[sorted.size() / 2];
  std::printf("bench_table1_load (E1) — reproduction of Table I\n");
  std::printf(
      "measured service time: median %.3f ms (n=%zu), payload %.1f KiB, "
      "compression %.2fx\n\n",
      medianService * 1e3, sorted.size(), payloadBytes / 1024.0,
      compressionRatio);

  PrintScenarioTable(
      "(a) this machine (C++ server, measured service times):", samples,
      payloadBytes, compressionRatio);

  // (b) Paper-calibrated run: the paper's Java/Undertow server needed
  // ~70 ms per request at 30 users (Table I's unsaturated median). Scale
  // our measured distribution so the Direct/30 median lands there, then
  // let the *same queueing structure* produce the 100-user saturation and
  // the Docker degradation — that is the shape Table I reports.
  const double scale = 0.065 / medianService;
  std::vector<double> paperScale = samples;
  for (double& sample : paperScale) sample *= scale;
  PrintScenarioTable(
      "(b) paper-calibrated service times (x scaled to ~Java-server speed):",
      paperScale, payloadBytes, compressionRatio);

  std::printf(
      "paper:   Direct 30u = 70.66 / 118    / 25.96,  100u = 680  / 1248.9 / 53.61\n"
      "         Docker 30u = 77    / 283    / 24.49,  100u = 1135 / 2031.9 / 42.07\n");
  return 0;
}
