// E7 / E8 / E9 / E10 — architectural evaluation sweeps, the simulator's
// raison d'être (paper §I-B: "experiment with different processor
// configurations and observe their impact on runtime metrics").
//
//   E7  superscalar width sweep  — IPC vs fetch/commit width
//   E8  cache geometry sweep     — hit rate / cycles vs associativity,
//                                  line size, replacement policy
//   E9  predictor sweep          — accuracy of 0/1/2-bit x history bits
//   E10 backward simulation      — step-back cost vs target cycle
//                                  (re-execution, paper §III-B)
#include "bench_common.h"

using namespace rvss;

namespace {

const char* kStrideC = R"(
int data[2048];
int main() {
  int sum = 0;
  for (int rep = 0; rep < 4; rep++)
    for (int i = 0; i < 2048; i += 16) { data[i] += rep; sum += data[i]; }
  return sum;
}
)";

const char* kAlternatingC = R"(
int main() {
  int a = 0;
  int b = 0;
  for (int i = 0; i < 2000; i++) {
    if (i % 2) a += 3; else b += 1;
    if (i % 4 == 0) a ^= b;
  }
  return a + b;
}
)";

std::string Compiled(const char* cSource) {
  return cc::Compile(cSource, cc::CompileOptions{2}).value().assembly;
}

core::Simulation& Run(std::unique_ptr<core::Simulation>& holder,
                      const config::CpuConfig& config,
                      const std::string& assembly) {
  holder = std::move(core::Simulation::Create(config, assembly, {{}, "main"}))
               .value();
  holder->Run(50'000'000);
  return *holder;
}

void WidthSweep() {
  std::printf("--- E7: superscalar width sweep (insertion sort) ---\n");
  std::printf("%-7s %10s %8s %12s\n", "width", "cycles", "IPC", "flushes");
  const std::string assembly = Compiled(bench::kSortC);
  for (std::uint32_t width : {1u, 2u, 4u, 6u, 8u}) {
    config::CpuConfig config = config::WideConfig();  // ample units
    config.buffers.fetchWidth = width;
    config.buffers.commitWidth = width;
    std::unique_ptr<core::Simulation> holder;
    core::Simulation& sim = Run(holder, config, assembly);
    std::printf("%-7u %10llu %8.3f %12llu\n", width,
                static_cast<unsigned long long>(sim.cycle()),
                sim.statistics().Ipc(),
                static_cast<unsigned long long>(sim.statistics().robFlushes));
  }
  std::printf("expected shape: IPC rises with width and saturates\n\n");
}

void CacheSweep() {
  std::printf("--- E8: cache geometry & policy sweep (strided kernel) ---\n");
  const std::string assembly = Compiled(kStrideC);
  std::printf("%-26s %10s %10s\n", "configuration", "hit rate", "cycles");
  struct Variant {
    const char* name;
    config::CacheConfig cache;
  };
  std::vector<Variant> variants;
  for (std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
    config::CacheConfig cache;
    cache.lineCount = 64;
    cache.lineSizeBytes = 32;
    cache.associativity = assoc;
    variants.push_back({nullptr, cache});
  }
  int index = 0;
  static const char* kAssocNames[] = {"assoc=1 (direct)", "assoc=2",
                                      "assoc=4", "assoc=8"};
  for (Variant& variant : variants) variant.name = kAssocNames[index++];
  for (auto policy :
       {config::ReplacementPolicy::kLru, config::ReplacementPolicy::kFifo,
        config::ReplacementPolicy::kRandom}) {
    config::CacheConfig cache;
    cache.lineCount = 16;  // small: force replacement pressure
    cache.lineSizeBytes = 32;
    cache.associativity = 4;
    cache.replacement = policy;
    static const char* kPolicyNames[] = {"small LRU", "small FIFO",
                                         "small Random"};
    variants.push_back({kPolicyNames[static_cast<int>(policy)], cache});
  }
  {
    config::CacheConfig off;
    off.enabled = false;
    variants.push_back({"cache disabled", off});
  }
  for (const Variant& variant : variants) {
    config::CpuConfig config = config::DefaultConfig();
    config.cache = variant.cache;
    std::unique_ptr<core::Simulation> holder;
    core::Simulation& sim = Run(holder, config, assembly);
    std::printf("%-26s %9.1f%% %10llu\n", variant.name,
                100.0 * sim.memorySystem().stats().HitRate(),
                static_cast<unsigned long long>(sim.cycle()));
  }
  std::printf("expected shape: higher associativity helps conflict misses;\n"
              "LRU >= FIFO >= Random under pressure; no cache is slowest\n\n");
}

void PredictorSweep() {
  std::printf("--- E9: branch predictor sweep (alternating branches) ---\n");
  const std::string assembly = Compiled(kAlternatingC);
  std::printf("%-26s %12s %10s\n", "predictor", "accuracy", "cycles");
  struct Variant {
    const char* name;
    config::PredictorConfig predictor;
  };
  auto make = [](config::PredictorType type, std::uint32_t history,
                 config::HistoryKind kind) {
    config::PredictorConfig predictor;
    predictor.btbSize = 64;
    predictor.phtSize = 256;
    predictor.type = type;
    predictor.historyBits = history;
    predictor.history = kind;
    return predictor;
  };
  const Variant variants[] = {
      {"zero-bit (static NT)",
       make(config::PredictorType::kZeroBit, 0, config::HistoryKind::kLocal)},
      {"one-bit", make(config::PredictorType::kOneBit, 0,
                       config::HistoryKind::kLocal)},
      {"two-bit", make(config::PredictorType::kTwoBit, 0,
                       config::HistoryKind::kLocal)},
      {"two-bit + 4b local hist",
       make(config::PredictorType::kTwoBit, 4, config::HistoryKind::kLocal)},
      {"two-bit + 8b global hist",
       make(config::PredictorType::kTwoBit, 8, config::HistoryKind::kGlobal)},
  };
  for (const Variant& variant : variants) {
    config::CpuConfig config = config::DefaultConfig();
    config.predictor = variant.predictor;
    std::unique_ptr<core::Simulation> holder;
    core::Simulation& sim = Run(holder, config, assembly);
    std::printf("%-26s %11.1f%% %10llu\n", variant.name,
                100.0 * sim.statistics().BranchAccuracy(),
                static_cast<unsigned long long>(sim.cycle()));
  }
  std::printf("expected shape: accuracy ordering 0-bit < 1-bit < 2-bit <\n"
              "history-based on patterned branches\n\n");
}

void BackwardSimSweep() {
  std::printf("--- E10: backward-simulation cost (re-execution) ---\n");
  const std::string assembly = Compiled(bench::kSortC);
  auto sim = core::Simulation::Create(config::DefaultConfig(), assembly,
                                      {{}, "main"});
  core::Simulation& s = *sim.value();
  std::printf("%-14s %14s\n", "target cycle", "step-back [us]");
  for (std::uint64_t target : {200u, 1000u, 4000u, 12000u}) {
    s.Reset();
    while (s.cycle() < target && s.status() == core::SimStatus::kRunning) {
      s.Step();
    }
    if (s.cycle() < target) break;  // program finished earlier
    auto t0 = std::chrono::steady_clock::now();
    (void)s.StepBack();
    const double us = bench::SecondsSince(t0) * 1e6;
    std::printf("%-14llu %14.1f\n", static_cast<unsigned long long>(target),
                us);
  }
  std::printf("expected shape: cost grows ~linearly with the target cycle\n"
              "(the paper implements backward stepping as forward re-run)\n\n");
}

}  // namespace

int main() {
  std::printf("bench_arch_sweeps (E7-E10)\n\n");
  WidthSweep();
  CacheSweep();
  PredictorSweep();
  BackwardSimSweep();
  return 0;
}
