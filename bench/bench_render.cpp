// E4 — the paper's render cost (§IV): "Performance tests showed that
// rendering typically takes around 80 ms" (web GUI, Lighthouse).
//
// Our GUI substitution renders the complete main-window state (JSON
// snapshot + text layout); this bench reports the cost of both paths per
// displayed cycle for small and medium pipeline states.
#include "bench_common.h"
#include "server/state_renderer.h"

using namespace rvss;

int main() {
  std::printf("bench_render (E4) — full-state render cost per cycle\n\n");
  std::printf("%-12s %10s %14s %14s %12s\n", "state", "cycles", "json [us]",
              "text [us]", "json bytes");
  struct Scenario {
    const char* name;
    const config::CpuConfig config;
    const char* program;
  };
  const Scenario scenarios[] = {
      {"small", config::ScalarConfig(), bench::kSortC},
      {"medium", config::DefaultConfig(), bench::kSortC},
      {"large", config::WideConfig(), bench::kFloatC},
  };
  for (const Scenario& scenario : scenarios) {
    auto compiled = cc::Compile(scenario.program, cc::CompileOptions{2});
    auto sim = core::Simulation::Create(scenario.config,
                                        compiled.value().assembly,
                                        {{}, "main"});
    if (!sim.ok()) continue;
    core::Simulation& s = *sim.value();
    // Put the pipeline into a representative busy state.
    for (int i = 0; i < 50; ++i) s.Step();

    constexpr int kIterations = 400;
    double jsonSeconds = 0, textSeconds = 0;
    std::size_t jsonBytes = 0;
    for (int i = 0; i < kIterations; ++i) {
      s.Step();
      auto t0 = std::chrono::steady_clock::now();
      json::Json state = server::RenderJson(s);
      std::string dumped = state.Dump();
      jsonSeconds += bench::SecondsSince(t0);
      jsonBytes += dumped.size();

      auto t1 = std::chrono::steady_clock::now();
      std::string text = server::RenderText(s);
      textSeconds += bench::SecondsSince(t1);
      if (text.empty()) return 1;  // keep the optimizer honest
    }
    std::printf("%-12s %10d %14.1f %14.1f %12zu\n", scenario.name, kIterations,
                jsonSeconds / kIterations * 1e6,
                textSeconds / kIterations * 1e6, jsonBytes / kIterations);
  }
  std::printf(
      "\npaper: ~80 ms per browser render (React DOM); the simulator-side\n"
      "snapshot above is the server share of that budget\n");
  return 0;
}
