// Snapshot subsystem benchmarks: codec encode/decode throughput, session
// blob size/compression, and full-vs-delta checkpoint ring bytes.
//
// The codec throughput bounds how fast sessions can migrate between
// server processes; the ring-bytes comparison quantifies the page-delta
// claim (memory images dominate snapshot size, so storing only dirtied
// pages shrinks the ring by roughly the clean-page fraction).
#include <chrono>
#include <cstdint>
#include <cstdio>

#include "bench_common.h"
#include "core/simulation.h"
#include "snapshot/codec.h"
#include "snapshot/session.h"

namespace rvss {
namespace {

/// Branchy loop with a small working set inside a large memory: the
/// delta-friendly (and realistic) shape — programs rarely touch most of
/// their address space between checkpoints.
const char* kWorkload = R"(
main:
    li s0, 0
    li s1, 400
outer:
    li t0, 16
    addi t1, sp, -256
fill:
    mul t2, t0, s1
    sw t2, 0(t1)
    addi t1, t1, 4
    addi t0, t0, -1
    bnez t0, fill
    li t0, 16
    addi t1, sp, -256
scan:
    lw t2, 0(t1)
    andi t3, t2, 1
    beqz t3, even
    add s0, s0, t2
even:
    addi t1, t1, 4
    addi t0, t0, -1
    bnez t0, scan
    addi s1, s1, -1
    bnez s1, outer
    mv a0, s0
    ret
)";

config::CpuConfig BenchConfig(bool deltaPages) {
  config::CpuConfig config = config::DefaultConfig();
  config.memory.sizeBytes = 4 << 20;  // 4 MiB: memory dominates snapshots
  config.checkpoint.intervalCycles = 256;
  config.checkpoint.deltaPages = deltaPages;
  // The ring comparison measures what each mode *deposits*; a tight budget
  // would evict both modes down to the same ceiling and hide the ratio.
  config.checkpoint.maxTotalBytes = 1ull << 30;
  return config;
}

}  // namespace
}  // namespace rvss

int main(int argc, char** argv) {
  using namespace rvss;
  bench::JsonReport report("snapshot", argc, argv);

  // --- encode / decode throughput -------------------------------------------
  auto sim = core::Simulation::Create(BenchConfig(true), kWorkload, {{}, "main"});
  if (!sim.ok()) {
    std::fprintf(stderr, "create failed: %s\n", sim.error().ToText().c_str());
    return 1;
  }
  core::Simulation& simulation = *sim.value();
  simulation.Run(20'000);

  const snapshot::CodecContext context{&simulation.config(),
                                       &simulation.program()};
  const core::SimSnapshot state = simulation.SaveState();

  constexpr int kReps = 20;
  std::string blob;
  auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    blob = snapshot::EncodeSnapshot(state, context);
  }
  const double encodeSeconds = bench::SecondsSince(start) / kReps;

  start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    auto decoded = snapshot::DecodeSnapshot(blob, context);
    if (!decoded.ok()) {
      std::fprintf(stderr, "decode failed: %s\n",
                   decoded.error().ToText().c_str());
      return 1;
    }
  }
  const double decodeSeconds = bench::SecondsSince(start) / kReps;

  const double mib = static_cast<double>(blob.size()) / (1024.0 * 1024.0);
  std::printf("# snapshot codec (4 MiB memory, mid-run pipeline state)\n");
  std::printf("%-22s %10.2f MiB\n", "blob size", mib);
  std::printf("%-22s %10.1f MiB/s (%.2f ms)\n", "encode throughput",
              mib / encodeSeconds, encodeSeconds * 1e3);
  std::printf("%-22s %10.1f MiB/s (%.2f ms)\n", "decode throughput",
              mib / decodeSeconds, decodeSeconds * 1e3);
  report.Set("encode_mib_s", mib / encodeSeconds);
  report.Set("decode_mib_s", mib / decodeSeconds);

  const snapshot::SessionIdentity identity =
      snapshot::MakeIdentity(simulation, kWorkload, "main", "");
  start = std::chrono::steady_clock::now();
  const std::string session = snapshot::EncodeSessionBlob(simulation, identity);
  const double sessionSeconds = bench::SecondsSince(start);
  std::printf("%-22s %10.2f MiB (slz %.1fx, %.2f ms)\n", "session blob",
              static_cast<double>(session.size()) / (1024.0 * 1024.0),
              static_cast<double>(blob.size()) /
                  static_cast<double>(session.size()),
              sessionSeconds * 1e3);

  // --- full vs delta checkpoint ring ----------------------------------------
  std::printf("\n# checkpoint ring bytes after 20k cycles (interval 256, 1 GiB budget)\n");
  std::printf("%-12s %12s %8s %8s %14s\n", "mode", "ring_bytes", "full",
              "delta", "bytes/ckpt");
  std::size_t fullBytes = 0;
  std::size_t deltaBytes = 0;
  for (const bool deltaPages : {false, true}) {
    auto run = core::Simulation::Create(BenchConfig(deltaPages), kWorkload,
                                        {{}, "main"});
    if (!run.ok()) return 1;
    run.value()->Run(20'000);
    const core::CheckpointRing& ring = run.value()->checkpoints();
    (deltaPages ? deltaBytes : fullBytes) = ring.totalBytes();
    std::printf("%-12s %12zu %8zu %8zu %14zu\n",
                deltaPages ? "delta-pages" : "full-only", ring.totalBytes(),
                ring.fullCheckpointCount(), ring.deltaCheckpointCount(),
                ring.totalBytes() / (ring.checkpointCount() == 0
                                         ? 1
                                         : ring.checkpointCount()));
  }
  if (deltaBytes > 0) {
    const double reduction = static_cast<double>(fullBytes) /
                             static_cast<double>(deltaBytes);
    std::printf("\nring-bytes reduction: %.1fx\n", reduction);
    report.Set("ring_reduction_x", reduction);
  }
  return 0;
}
