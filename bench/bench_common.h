// Shared workloads and helpers for the benchmark binaries.
#pragma once

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cc/compiler.h"
#include "config/cpu_config.h"
#include "core/simulation.h"
#include "json/json.h"
#include "server/api.h"

namespace rvss::bench {

/// Machine-readable bench results. Every bench binary accepts --json;
/// when passed, the metrics recorded with Set() are written to
/// BENCH_<name>.json in the working directory on destruction — the
/// artifact the CI bench-regression job uploads and checks against the
/// numbers pinned in bench/baselines.json (ci/check_bench.py).
class JsonReport {
 public:
  JsonReport(std::string name, int argc, char** argv)
      : name_(std::move(name)) {
    for (int i = 1; i < argc; ++i) {
      if (std::string_view(argv[i]) == "--json") enabled_ = true;
    }
  }

  void Set(const char* metric, double value) { metrics_.Set(metric, value); }

  ~JsonReport() {
    if (!enabled_) return;
    json::Json document = json::Json::MakeObject();
    document.Set("bench", name_);
    document.Set("metrics", std::move(metrics_));
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream file(path);
    file << document.DumpPretty() << "\n";
    std::printf("\nwrote %s\n", path.c_str());
  }

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

 private:
  std::string name_;
  bool enabled_ = false;
  json::Json metrics_ = json::Json::MakeObject();
};

/// The two interactive programs used by the paper's load test: one
/// branchy integer sort, one floating-point kernel.
inline const char* kSortC = R"(
int arr[64];
int main() {
  for (int i = 0; i < 64; i++) arr[i] = (i * 37 + 11) % 101;
  for (int i = 1; i < 64; i++) {
    int key = arr[i];
    int j = i - 1;
    while (j >= 0 && arr[j] > key) { arr[j + 1] = arr[j]; j--; }
    arr[j + 1] = key;
  }
  return arr[0] + arr[63];
}
)";

inline const char* kFloatC = R"(
float x[32]; float y[32];
int main() {
  for (int i = 0; i < 32; i++) { x[i] = (float)i * 0.25f; y[i] = (float)(32 - i); }
  float acc = 0.0f;
  for (int rep = 0; rep < 8; rep++)
    for (int i = 0; i < 32; i++) acc += x[i] * y[i];
  return (int)acc;
}
)";

/// Compiles a C program and creates a simulation session for it on a
/// server; returns the session id (or -1).
inline std::int64_t CreateCSession(server::SimServer& server,
                                   const std::string& cSource,
                                   const config::CpuConfig& config) {
  json::Json request = json::Json::MakeObject();
  request.Set("command", "createSession");
  request.Set("code", cSource);
  request.Set("isC", true);
  request.Set("optLevel", 2);
  request.Set("config", config::ToJson(config));
  json::Json response = server.Handle(request);
  if (response.GetString("status", "") != "ok") {
    std::fprintf(stderr, "session error: %s\n",
                 response.GetString("message", "?").c_str());
    return -1;
  }
  return response.GetInt("sessionId", -1);
}

inline double SecondsSince(
    std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace rvss::bench
