// E3 — the paper's gzip observation (§IV): "Using gzip compression
// increased throughput on the local server by 40%."
//
// Measures real slz ratios and CPU cost on state payloads, then runs the
// Table-I load scenario with compression off vs on across a sweep of
// modeled link bandwidths. Shape to reproduce: a solid double-digit
// throughput gain once the link, not the CPU, is the bottleneck.
#include "bench_common.h"
#include "server/load_model.h"
#include "common/slz.h"
#include "server/state_renderer.h"

using namespace rvss;

int main() {
  // Real payload + ratio measurement.
  server::SimServer server;
  const std::int64_t id =
      bench::CreateCSession(server, bench::kSortC, config::DefaultConfig());
  std::vector<double> samplesPlain, samplesCompressed;
  double bytes = 0, compressedBytes = 0;
  for (int i = 0; i < 120; ++i) {
    const std::string request = R"({"command": "step", "sessionId": )" +
                                std::to_string(id) + R"(, "count": 1})";
    server::RequestTiming timing;
    server.HandleRaw(request, /*compress=*/(i % 2) == 1, &timing);
    if (i < 8) continue;
    if ((i % 2) == 1) {
      samplesCompressed.push_back(static_cast<double>(timing.TotalNs()) * 1e-9);
      bytes += static_cast<double>(timing.responseBytes);
      compressedBytes += static_cast<double>(timing.compressedBytes);
    } else {
      samplesPlain.push_back(static_cast<double>(timing.TotalNs()) * 1e-9);
    }
  }
  const double ratio = bytes / std::max(compressedBytes, 1.0);
  const double payload = bytes / (120 / 2 - 4);

  std::printf("bench_compression (E3) — compression vs throughput\n");
  std::printf("state payload %.1f KiB, slz ratio %.2fx\n\n", payload / 1024.0,
              ratio);
  std::printf("%-16s %16s %16s %10s\n", "link [Mbit/s]", "plain [t/s]",
              "compressed [t/s]", "gain");
  for (double mbit : {2.0, 4.0, 8.0, 16.0, 50.0}) {
    // 100 users: the saturated regime of Table I, where the workers are
    // busy enough that shrinking the payload translates into throughput.
    server::LoadScenario scenario;
    scenario.users = 100;
    scenario.linkBytesPerSecond = mbit * 1e6 / 8.0;
    scenario.payloadBytes = payload;

    scenario.compressionRatio = 1.0;
    server::LoadResult plain = server::SimulateLoad(scenario, samplesPlain);
    scenario.compressionRatio = ratio;
    server::LoadResult compressed =
        server::SimulateLoad(scenario, samplesCompressed);
    std::printf("%-16.0f %16.2f %16.2f %9.1f%%\n", mbit, plain.throughputTps,
                compressed.throughputTps,
                100.0 * (compressed.throughputTps / plain.throughputTps - 1.0));
  }
  std::printf(
      "\npaper: +40%% throughput with gzip on the local server\n"
      "(the gain appears once transfer time saturates the request handlers;\n"
      "on fast links the closed-loop think time caps throughput instead)\n");
  return 0;
}
