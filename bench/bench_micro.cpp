// E6 — microbenchmark suite (the paper used JMH for the same purpose):
// simulator steps/s across configurations, assembler throughput,
// expression interpretation, compilation and compression.
#include <benchmark/benchmark.h>

#include "assembler/assembler.h"
#include "bench_common.h"
#include "expr/expression_cache.h"
#include "ref/interpreter.h"
#include "ref/progen.h"
#include "common/slz.h"

using namespace rvss;

namespace {

std::string SortAssembly() {
  static const std::string kAsm =
      cc::Compile(bench::kSortC, cc::CompileOptions{2}).value().assembly;
  return kAsm;
}

void BM_SimulationStep(benchmark::State& state) {
  config::CpuConfig config = state.range(0) == 0   ? config::ScalarConfig()
                             : state.range(0) == 1 ? config::DefaultConfig()
                                                   : config::WideConfig();
  auto sim = core::Simulation::Create(config, SortAssembly(), {{}, "main"});
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    if (sim.value()->status() != core::SimStatus::kRunning) {
      sim.value()->Reset();
    }
    sim.value()->Step();
    ++cycles;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
  state.SetLabel(config.name);
}
BENCHMARK(BM_SimulationStep)->Arg(0)->Arg(1)->Arg(2);

void BM_IssInstruction(benchmark::State& state) {
  config::CpuConfig config = config::DefaultConfig();
  memory::MainMemory memory(config.memory.sizeBytes);
  auto loaded =
      assembler::LoadProgram(SortAssembly(), {}, config, memory, "main");
  ref::Interpreter iss(loaded.value().program, memory);
  iss.InitRegisters(loaded.value().initialSp);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    if (iss.StepOne() != ref::ExitReason::kRunning) {
      iss.InitRegisters(loaded.value().initialSp);
    }
    ++instructions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instructions));
}
BENCHMARK(BM_IssInstruction);

void BM_Assemble(benchmark::State& state) {
  const std::string source = ref::GenerateProgram(7);
  assembler::Assembler asmArg;
  for (auto _ : state) {
    auto program = asmArg.Assemble(source);
    benchmark::DoNotOptimize(program);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * source.size()));
}
BENCHMARK(BM_Assemble);

void BM_ExpressionEvaluate(benchmark::State& state) {
  const isa::InstructionDescription* def =
      isa::InstructionSet::Default().Find("add");
  auto compiled = expr::Expression::Compile(def->interpretableAs, *def);
  expr::Value args[3] = {expr::Value(), expr::Value::Int(2),
                         expr::Value::Int(40)};
  for (auto _ : state) {
    auto result = compiled.value().Evaluate(args, 0);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ExpressionEvaluate);

void BM_CompileC(benchmark::State& state) {
  for (auto _ : state) {
    auto compiled = cc::Compile(
        bench::kSortC, cc::CompileOptions{static_cast<int>(state.range(0))});
    benchmark::DoNotOptimize(compiled);
  }
}
BENCHMARK(BM_CompileC)->Arg(0)->Arg(3);

void BM_SlzCompress(benchmark::State& state) {
  std::string payload;
  for (int i = 0; i < 400; ++i) {
    payload += "{\"name\": \"entry" + std::to_string(i % 13) +
               "\", \"valid\": true},";
  }
  for (auto _ : state) {
    std::string compressed = SlzCompress(payload);
    benchmark::DoNotOptimize(compressed);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * payload.size()));
}
BENCHMARK(BM_SlzCompress);

}  // namespace

BENCHMARK_MAIN();
