// E2 — the paper's profiling conclusion (§IV-A): "about 60% of the request
// handling time is consumed by working with the JSON format".
//
// Replays representative interactive `step` requests through the raw
// byte-level server path and reports the time split between JSON work
// (parse + serialize), the simulation itself, and compression.
#include "bench_common.h"
#include "common/slz.h"
#include "server/state_renderer.h"

using namespace rvss;

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

int main() {
  // Phase-by-phase measurement of one interactive `step` request:
  //   parse request JSON -> advance the simulation one cycle ->
  //   build the JSON state object -> serialize it -> compress it.
  // "Working with the JSON format" (the paper's phrase) covers the
  // request parse, the response-object construction and serialization.
  std::vector<std::unique_ptr<core::Simulation>> sims;
  for (const char* program : {bench::kSortC, bench::kFloatC}) {
    auto compiled = cc::Compile(program, cc::CompileOptions{2});
    sims.push_back(std::move(core::Simulation::Create(
                                 config::DefaultConfig(),
                                 compiled.value().assembly, {{}, "main"}))
                       .value());
  }

  const std::string request = R"({"command": "step", "sessionId": 1})";
  std::uint64_t parseNs = 0, simNs = 0, buildNs = 0, serializeNs = 0,
                compressNs = 0;
  std::size_t requests = 0;
  for (int round = 0; round < 400; ++round) {
    for (auto& sim : sims) {
      if (sim->status() != core::SimStatus::kRunning) sim->Reset();
      std::uint64_t t0 = NowNs();
      auto parsed = json::Parse(request);
      std::uint64_t t1 = NowNs();
      sim->Step();
      std::uint64_t t2 = NowNs();
      json::Json state = server::RenderJson(*sim);
      std::uint64_t t3 = NowNs();
      std::string serialized = state.Dump();
      std::uint64_t t4 = NowNs();
      std::string compressed = SlzCompress(serialized);
      std::uint64_t t5 = NowNs();
      if (!parsed.ok() || compressed.empty()) return 1;
      if (round < 20) continue;
      parseNs += t1 - t0;
      simNs += t2 - t1;
      buildNs += t3 - t2;
      serializeNs += t4 - t3;
      compressNs += t5 - t4;
      ++requests;
    }
  }

  const double total = static_cast<double>(parseNs + simNs + buildNs +
                                           serializeNs + compressNs);
  std::printf("bench_json_overhead (E2) — request-handling time split\n");
  std::printf("requests measured: %zu\n\n", requests);
  std::printf("%-30s %10s %8s\n", "component", "us/req", "share");
  auto row = [&](const char* name, std::uint64_t ns) {
    std::printf("%-30s %10.1f %7.1f%%\n", name,
                static_cast<double>(ns) / 1e3 / static_cast<double>(requests),
                100.0 * static_cast<double>(ns) / total);
  };
  row("JSON parse (request)", parseNs);
  row("simulation step", simNs);
  row("JSON build (state object)", buildNs);
  row("JSON serialize (response)", serializeNs);
  row("compression (slz)", compressNs);
  const double jsonShare =
      static_cast<double>(parseNs + buildNs + serializeNs) / total;
  const double jsonShareNoGzip =
      static_cast<double>(parseNs + buildNs + serializeNs) /
      static_cast<double>(parseNs + simNs + buildNs + serializeNs);
  std::printf("\nJSON share of request handling:  %.1f%% (incl. compression "
              "in total)\n", 100.0 * jsonShare);
  std::printf("JSON share excluding compression: %.1f%%   [paper: ~60%%]\n",
              100.0 * jsonShareNoGzip);
  return 0;
}
