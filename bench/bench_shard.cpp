// Shard router benchmarks: drain throughput (how fast a worker's sessions
// evacuate to its peers) — over in-process workers and over real forked
// worker processes behind the socket transport — and the steady-state
// routing overhead a session pays for living behind the router instead of
// a bare SimServer.
//
// Drain is the operation that gates fleet maintenance (deploys, scale-in):
// its throughput in sessions/s and MiB/s bounds how quickly a worker can
// be taken out of rotation without dropping interactive sessions. The
// in-process number is the ceiling; the socket number adds the frame
// encode + syscall + process-switch cost of the real deployment shape.
// The routing overhead measures the per-request tax of the extra
// id-rewrite hop — it should be noise against the simulation work itself.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "json/json.h"
#include "server/api.h"
#include "shard/router.h"
#include "shard/transport.h"
#include "shard/worker.h"

namespace rvss {
namespace {

/// Long-running branchy loop with a real working set: sessions stay live
/// through the whole bench and their snapshots are not trivially empty.
const char* kWorkload = R"(
main:
    li s1, 1000000
outer:
    li t0, 16
    addi t1, sp, -256
fill:
    mul t2, t0, s1
    sw t2, 0(t1)
    addi t1, t1, 4
    addi t0, t0, -1
    bnez t0, fill
    addi s1, s1, -1
    bnez s1, outer
    ret
)";

json::Json Cmd(const char* command,
               std::initializer_list<std::pair<const char*, json::Json>>
                   fields = {}) {
  json::Json request = json::Json::MakeObject();
  request.Set("command", command);
  for (const auto& [key, value] : fields) request.Set(key, value);
  return request;
}

bool Ok(const json::Json& response, const char* what) {
  if (response.GetString("status", "") == "ok") return true;
  std::fprintf(stderr, "%s failed: %s\n", what,
               response.GetString("message", "?").c_str());
  return false;
}

struct DrainResult {
  double sessionsPerSecond = 0.0;
  double mibPerSecond = 0.0;
  bool ok = false;
};

/// 24 sessions stepped to distinct mid-points across 3 workers; drains
/// whichever worker holds the most sessions and reports the throughput.
DrainResult RunDrainBench(shard::ShardRouter& router, const char* label) {
  DrainResult result;
  std::vector<std::int64_t> ids;
  for (int i = 0; i < 24; ++i) {
    json::Json created = router.Handle(
        Cmd("createSession", {{"code", json::Json(kWorkload)},
                              {"entry", json::Json("main")}}));
    if (!Ok(created, "createSession")) return result;
    ids.push_back(created.GetInt("sessionId", -1));
    json::Json stepped = router.Handle(
        Cmd("step", {{"sessionId", json::Json(ids.back())},
                     {"count", json::Json(500 + 100 * i)}}));
    if (!Ok(stepped, "step")) return result;
  }

  std::int64_t victim = 0;
  std::int64_t victimSessions = 0;
  json::Json stats = router.Handle(Cmd("workerStats"));
  for (const json::Json& worker : stats.Find("workers")->AsArray()) {
    if (worker.GetInt("sessions", 0) > victimSessions) {
      victim = worker.GetInt("worker", -1);
      victimSessions = worker.GetInt("sessions", 0);
    }
  }

  auto start = std::chrono::steady_clock::now();
  json::Json drained =
      router.Handle(Cmd("drainWorker", {{"worker", json::Json(victim)}}));
  const double drainSeconds = bench::SecondsSince(start);
  if (!Ok(drained, "drainWorker")) return result;
  const double moved = static_cast<double>(drained.GetInt("moved", 0));
  const double movedMiB =
      static_cast<double>(drained.GetInt("movedBytes", 0)) / (1024.0 * 1024.0);
  result.sessionsPerSecond = moved / drainSeconds;
  result.mibPerSecond = movedMiB / drainSeconds;
  result.ok = true;
  std::printf("# drain throughput [%s] (%d sessions total, worker %lld held %.0f)\n",
              label, static_cast<int>(ids.size()),
              static_cast<long long>(victim), moved);
  std::printf("%-22s %10.2f ms\n", "drain wall time", drainSeconds * 1e3);
  std::printf("%-22s %10.1f sessions/s\n", "drain rate",
              result.sessionsPerSecond);
  std::printf("%-22s %10.1f MiB/s (%.2f MiB wire)\n", "drain bandwidth",
              result.mibPerSecond, movedMiB);
  return result;
}

struct ParallelRunResult {
  double serializedCyclesPerSecond = 0.0;
  double parallelCyclesPerSecond = 0.0;
  double speedup = 0.0;
  bool ok = false;
};

/// Aggregate simulated cycles/s across 4 socket-worker processes, driven
/// two ways over the *same* fleet: one client thread issuing `run`
/// requests session-by-session (the PR 4 serialized dispatch shape) and
/// 4 client threads driving one session each concurrently (the dispatch
/// lanes). The ratio is the fleet's parallel scaling; on a machine with
/// >= 4 cores it should approach 4x, and it is what the CI gate pins.
ParallelRunResult RunParallelBench(shard::ShardRouter& router) {
  ParallelRunResult result;
  constexpr int kWorkers = 4;
  constexpr std::int64_t kSliceCycles = 100'000;
  constexpr int kRounds = 6;

  // One driven session per worker. Placement is consistent-hash, so
  // create until every worker holds one (the response names the worker)
  // and delete the overflow — the fleet must be evenly busy, not
  // hash-lucky.
  std::vector<std::int64_t> perWorkerSession(kWorkers, -1);
  int covered = 0;
  for (int attempt = 0; attempt < 512 && covered < kWorkers; ++attempt) {
    json::Json created = router.Handle(
        Cmd("createSession", {{"code", json::Json(kWorkload)},
                              {"entry", json::Json("main")}}));
    if (!Ok(created, "parallel createSession")) return result;
    const std::int64_t worker = created.GetInt("worker", -1);
    const std::int64_t id = created.GetInt("sessionId", -1);
    if (worker >= 0 && worker < kWorkers && perWorkerSession[worker] < 0) {
      perWorkerSession[worker] = id;
      ++covered;
    } else {
      router.Handle(Cmd("deleteSession", {{"sessionId", json::Json(id)}}));
    }
  }
  if (covered < kWorkers) {
    std::fprintf(stderr, "parallel bench: only %d/%d workers covered\n",
                 covered, kWorkers);
    return result;
  }

  // A failed run must fail the bench loudly: a silently short leg would
  // report a bogus speedup and send CI debugging a phantom scaling
  // regression instead of the actual transport error.
  std::atomic<bool> driveFailed{false};
  auto driveSession = [&router, &driveFailed](std::int64_t id, int rounds,
                                              std::int64_t* cycles) {
    for (int round = 0; round < rounds; ++round) {
      json::Json report = router.Handle(
          Cmd("run", {{"sessionId", json::Json(id)},
                      {"maxCycles", json::Json(kSliceCycles)}}));
      if (!Ok(report, "parallel run")) {
        driveFailed.store(true);
        return;
      }
      *cycles += report.GetInt("ranCycles", 0);
    }
  };

  // Serialized shape: one thread, session after session.
  std::int64_t serializedCycles = 0;
  auto start = std::chrono::steady_clock::now();
  for (const std::int64_t id : perWorkerSession) {
    driveSession(id, kRounds, &serializedCycles);
  }
  const double serializedSeconds = bench::SecondsSince(start);

  // Parallel shape: one driver thread per worker, same total work.
  std::vector<std::int64_t> parallelCycles(kWorkers, 0);
  std::vector<std::thread> drivers;
  start = std::chrono::steady_clock::now();
  for (int i = 0; i < kWorkers; ++i) {
    drivers.emplace_back(driveSession, perWorkerSession[i], kRounds,
                         &parallelCycles[i]);
  }
  for (std::thread& driver : drivers) driver.join();
  const double parallelSeconds = bench::SecondsSince(start);
  std::int64_t parallelTotal = 0;
  for (const std::int64_t cycles : parallelCycles) parallelTotal += cycles;

  if (driveFailed.load()) {
    std::fprintf(stderr, "parallel bench: a run request failed (see above)\n");
    return result;
  }
  if (serializedCycles <= 0 || parallelTotal <= 0 || serializedSeconds <= 0 ||
      parallelSeconds <= 0) {
    std::fprintf(stderr, "parallel bench: a run leg reported no cycles\n");
    return result;
  }
  result.serializedCyclesPerSecond =
      static_cast<double>(serializedCycles) / serializedSeconds;
  result.parallelCyclesPerSecond =
      static_cast<double>(parallelTotal) / parallelSeconds;
  result.speedup =
      result.parallelCyclesPerSecond / result.serializedCyclesPerSecond;
  result.ok = true;

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("\n# parallel run scaling (%d socket workers, %d x %lld-cycle"
              " slices, %u core(s))\n",
              kWorkers, kRounds, static_cast<long long>(kSliceCycles), cores);
  std::printf("%-22s %10.2f Mcycles/s\n", "serialized dispatch",
              result.serializedCyclesPerSecond / 1e6);
  std::printf("%-22s %10.2f Mcycles/s\n", "parallel lanes",
              result.parallelCyclesPerSecond / 1e6);
  std::printf("%-22s %10.2fx\n", "speedup", result.speedup);
  if (cores < static_cast<unsigned>(kWorkers)) {
    std::printf("(speedup is core-bound: %u core(s) cannot run %d workers "
                "concurrently — expect ~%ux here, ~%dx on a wide machine)\n",
                cores, kWorkers, cores > 0 ? cores : 1, kWorkers);
  }
  return result;
}

}  // namespace
}  // namespace rvss

int main(int argc, char** argv) {
  using namespace rvss;
  bench::JsonReport report("shard", argc, argv);

  // --- drain throughput, in-process workers (the PR 3 baseline) --------------
  // The throughput gates below were pinned on the full-image wire; delta
  // encoding shrinks movedBytes (the MiB/s numerator) by design, so the
  // legacy legs keep measuring the full path and the delta wins are gated
  // separately (drain_wire_bytes_per_session / drain_wire_reduction).
  shard::ShardRouter::Options options;
  options.workerCount = 3;
  options.deltaBlobs = false;
  shard::ShardRouter router(options);
  const DrainResult inProcess = RunDrainBench(router, "in-process");
  if (!inProcess.ok) return 1;
  report.Set("drain_sessions_per_s", inProcess.sessionsPerSecond);
  report.Set("drain_mib_s", inProcess.mibPerSecond);

  // --- drain throughput, forked processes over the socket transport ----------
  {
    shard::SpawnedFleet fleet;
    shard::ShardRouter::Options socketOptions;
    socketOptions.workerCount = 3;
    socketOptions.deltaBlobs = false;  // full-image wire, like the pin
    socketOptions.transportFactory =
        shard::MakeSpawningTransportFactory(&fleet, "bench");
    shard::ShardRouter socketRouter(socketOptions);
    std::printf("\n");
    const DrainResult socket = RunDrainBench(socketRouter, "socket");
    if (!socket.ok) return 1;  // same contract as the in-process leg
    report.Set("socket_drain_sessions_per_s", socket.sessionsPerSecond);
    report.Set("socket_drain_mib_s", socket.mibPerSecond);
    std::printf("%-22s %10.2fx of in-process\n", "socket drain ratio",
                socket.mibPerSecond / inProcess.mibPerSecond);
  }

  // --- parallel run scaling over the dispatch lanes ---------------------------
  {
    shard::SpawnedFleet parallelFleet;
    shard::ShardRouter::Options parallelOptions;
    parallelOptions.workerCount = 4;
    parallelOptions.transportFactory =
        shard::MakeSpawningTransportFactory(&parallelFleet, "bench-par");
    shard::ShardRouter parallelRouter(parallelOptions);
    const ParallelRunResult parallel = RunParallelBench(parallelRouter);
    if (!parallel.ok) return 1;
    report.Set("parallel_run_cycles_per_s", parallel.parallelCyclesPerSecond);
    report.Set("serialized_run_cycles_per_s",
               parallel.serializedCyclesPerSecond);
    report.Set("parallel_run_speedup", parallel.speedup);
    // The speedup gate is meaningless on a machine that cannot run the
    // workers concurrently; ci/check_bench.py reads this to skip it
    // (gates with "requires_cores" in bench/baselines.json).
    report.Set("hardware_cores",
               static_cast<double>(std::thread::hardware_concurrency()));
  }

  // --- delta vs full migration wire bytes -------------------------------------
  // Mostly-idle sessions with a 1 MiB memory whose base image is largely
  // incompressible pseudo-random array data — the honest case for delta
  // encoding: a full image must ship the whole megabyte, a delta ships
  // only the handful of pages the session actually dirtied. The A/B runs
  // the identical drain against two identical fleets, delta on vs off.
  {
    json::Json memoryConfig = json::Json::MakeObject();
    json::Json memorySection = json::Json::MakeObject();
    memorySection.Set("sizeBytes", static_cast<std::int64_t>(1024 * 1024));
    memoryConfig.Set("memory", std::move(memorySection));
    json::Json arrays = json::Json::MakeArray();
    json::Json noise = json::Json::MakeObject();
    noise.Set("name", "noise");
    noise.Set("type", "word");
    noise.Set("random", true);
    noise.Set("count", static_cast<std::int64_t>(192 * 1024));  // 768 KiB
    noise.Set("randomSeed", static_cast<std::int64_t>(7));
    arrays.Append(std::move(noise));

    auto drainWirePerSession = [&](bool delta, double* perSession) {
      shard::ShardRouter::Options abOptions;
      abOptions.workerCount = 2;
      abOptions.deltaBlobs = delta;
      shard::ShardRouter ab(abOptions);
      constexpr int kSessions = 8;
      for (int i = 0; i < kSessions; ++i) {
        json::Json created = ab.Handle(
            Cmd("createSession", {{"code", json::Json(kWorkload)},
                                  {"entry", json::Json("main")},
                                  {"config", memoryConfig},
                                  {"arrays", arrays}}));
        if (!Ok(created, "delta A/B createSession")) return false;
        // A short warm-up: the session is live but mostly idle, so only
        // a few stack pages are dirty against the base image.
        json::Json stepped = ab.Handle(
            Cmd("step", {{"sessionId", created.Find("sessionId") != nullptr
                                           ? *created.Find("sessionId")
                                           : json::Json(-1)},
                         {"count", json::Json(40 + 10 * i)}}));
        if (!Ok(stepped, "delta A/B step")) return false;
      }
      std::int64_t victim = 0;
      std::int64_t victimSessions = 0;
      json::Json stats = ab.Handle(Cmd("workerStats"));
      for (const json::Json& worker : stats.Find("workers")->AsArray()) {
        if (worker.GetInt("sessions", 0) > victimSessions) {
          victim = worker.GetInt("worker", -1);
          victimSessions = worker.GetInt("sessions", 0);
        }
      }
      json::Json drained =
          ab.Handle(Cmd("drainWorker", {{"worker", json::Json(victim)}}));
      if (!Ok(drained, "delta A/B drainWorker")) return false;
      const double moved = static_cast<double>(drained.GetInt("moved", 0));
      if (moved <= 0) {
        std::fprintf(stderr, "delta A/B: drain moved nothing\n");
        return false;
      }
      *perSession =
          static_cast<double>(drained.GetInt("movedBytes", 0)) / moved;
      return true;
    };

    double fullPerSession = 0.0;
    double deltaPerSession = 0.0;
    if (!drainWirePerSession(false, &fullPerSession)) return 1;
    if (!drainWirePerSession(true, &deltaPerSession)) return 1;
    const double reduction =
        deltaPerSession > 0 ? fullPerSession / deltaPerSession : 0.0;
    std::printf("\n# migration wire bytes, mostly-idle 1 MiB sessions\n");
    std::printf("%-22s %10.1f KiB/session\n", "full image",
                fullPerSession / 1024.0);
    std::printf("%-22s %10.1f KiB/session\n", "delta blob",
                deltaPerSession / 1024.0);
    std::printf("%-22s %10.2fx\n", "wire reduction", reduction);
    report.Set("drain_wire_bytes_per_session", deltaPerSession);
    report.Set("drain_wire_reduction", reduction);
  }

  // --- lane fast path: small-request dispatch latency A/B ----------------------
  // The dispatch machinery in isolation: one WorkerLane over a stub
  // transport that answers instantly, driven queued (Submit -> executor
  // wake -> promise -> future wake: two thread handoffs plus a
  // promise/future allocation per request) vs caller-runs
  // (TryBeginDirect -> Call on this thread -> EndDirect). The stub keeps
  // simulation cost out of the ratio — end to end, the saving is this
  // delta riding on top of whatever the worker itself costs (visible in
  // router_tax_us, where the fast path is on by default).
  {
    class StubTransport : public shard::WorkerTransport {
     public:
      Result<json::Json> Call(const json::Json&) override {
        json::Json response = json::Json::MakeObject();
        response.Set("status", "ok");
        return response;
      }
      std::string Describe() const override { return "stub"; }
    };
    auto stub = std::make_shared<StubTransport>();
    shard::WorkerLane lane(stub);
    const json::Json request = Cmd("stats", {{"sessionId", json::Json(1)}});
    constexpr int kWarmup = 500;
    constexpr int kTimed = 20000;

    for (int i = 0; i < kWarmup; ++i) (void)lane.Submit(request).get();
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kTimed; ++i) {
      if (!lane.Submit(request).get().ok()) {
        std::fprintf(stderr, "lane A/B: queued submit failed\n");
        return 1;
      }
    }
    const double queuedUs = bench::SecondsSince(start) * 1e6 / kTimed;

    auto direct = [&lane, &stub, &request]() -> bool {
      if (!lane.TryBeginDirect()) return false;
      const bool ok = stub->Call(request).ok();
      lane.EndDirect(0);
      return ok;
    };
    for (int i = 0; i < kWarmup; ++i) direct();
    start = std::chrono::steady_clock::now();
    for (int i = 0; i < kTimed; ++i) {
      if (!direct()) {
        std::fprintf(stderr, "lane A/B: direct claim failed\n");
        return 1;
      }
    }
    const double directUs = bench::SecondsSince(start) * 1e6 / kTimed;
    const double speedup = directUs > 0 ? queuedUs / directUs : 0.0;
    std::printf("\n# lane small-request dispatch latency (stub transport)\n");
    std::printf("%-22s %10.2f us/request\n", "queued executor path", queuedUs);
    std::printf("%-22s %10.2f us/request\n", "caller-runs fast path",
                directUs);
    std::printf("%-22s %10.2fx\n", "fast-path speedup", speedup);
    report.Set("lane_small_request_us", directUs);
    report.Set("lane_fastpath_speedup", speedup);
  }

  // --- steady-state routing overhead ------------------------------------------
  // The same step request stream against a routed session and a bare
  // SimServer session; the delta is the router's id-rewrite + forwarding.
  server::SimServer bare;
  json::Json bareCreated = bare.Handle(
      Cmd("createSession", {{"code", json::Json(kWorkload)},
                            {"entry", json::Json("main")}}));
  if (!Ok(bareCreated, "bare createSession")) return 1;
  const std::int64_t bareId = bareCreated.GetInt("sessionId", -1);
  json::Json routedCreated = router.Handle(
      Cmd("createSession", {{"code", json::Json(kWorkload)},
                            {"entry", json::Json("main")}}));
  if (!Ok(routedCreated, "routed createSession")) return 1;
  const std::int64_t routedId = routedCreated.GetInt("sessionId", -1);

  constexpr int kRequests = 2000;
  const std::string routedRequest =
      Cmd("step", {{"sessionId", json::Json(routedId)},
                   {"count", json::Json(1)}})
          .Dump();
  const std::string bareRequest =
      Cmd("step", {{"sessionId", json::Json(bareId)},
                   {"count", json::Json(1)}})
          .Dump();

  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kRequests; ++i) {
    router.HandleRaw(routedRequest);
  }
  const double routedSeconds = bench::SecondsSince(start) / kRequests;

  start = std::chrono::steady_clock::now();
  for (int i = 0; i < kRequests; ++i) {
    bare.HandleRaw(bareRequest);
  }
  const double bareSeconds = bench::SecondsSince(start) / kRequests;

  std::printf("\n# steady-state routing overhead (%d single-step requests)\n",
              kRequests);
  std::printf("%-22s %10.2f us/request\n", "bare SimServer",
              bareSeconds * 1e6);
  std::printf("%-22s %10.2f us/request\n", "via ShardRouter",
              routedSeconds * 1e6);
  std::printf("%-22s %10.2f us (%.1f%%)\n", "router tax",
              (routedSeconds - bareSeconds) * 1e6,
              bareSeconds > 0
                  ? (routedSeconds / bareSeconds - 1.0) * 100.0
                  : 0.0);
  report.Set("router_tax_us", (routedSeconds - bareSeconds) * 1e6);
  return 0;
}
