// Shard router benchmarks: drain throughput (how fast a worker's sessions
// evacuate to its peers) — over in-process workers and over real forked
// worker processes behind the socket transport — and the steady-state
// routing overhead a session pays for living behind the router instead of
// a bare SimServer.
//
// Drain is the operation that gates fleet maintenance (deploys, scale-in):
// its throughput in sessions/s and MiB/s bounds how quickly a worker can
// be taken out of rotation without dropping interactive sessions. The
// in-process number is the ceiling; the socket number adds the frame
// encode + syscall + process-switch cost of the real deployment shape.
// The routing overhead measures the per-request tax of the extra
// id-rewrite hop — it should be noise against the simulation work itself.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "json/json.h"
#include "server/api.h"
#include "shard/router.h"
#include "shard/transport.h"
#include "shard/worker.h"

namespace rvss {
namespace {

/// Long-running branchy loop with a real working set: sessions stay live
/// through the whole bench and their snapshots are not trivially empty.
const char* kWorkload = R"(
main:
    li s1, 1000000
outer:
    li t0, 16
    addi t1, sp, -256
fill:
    mul t2, t0, s1
    sw t2, 0(t1)
    addi t1, t1, 4
    addi t0, t0, -1
    bnez t0, fill
    addi s1, s1, -1
    bnez s1, outer
    ret
)";

json::Json Cmd(const char* command,
               std::initializer_list<std::pair<const char*, json::Json>>
                   fields = {}) {
  json::Json request = json::Json::MakeObject();
  request.Set("command", command);
  for (const auto& [key, value] : fields) request.Set(key, value);
  return request;
}

bool Ok(const json::Json& response, const char* what) {
  if (response.GetString("status", "") == "ok") return true;
  std::fprintf(stderr, "%s failed: %s\n", what,
               response.GetString("message", "?").c_str());
  return false;
}

struct DrainResult {
  double sessionsPerSecond = 0.0;
  double mibPerSecond = 0.0;
  bool ok = false;
};

/// 24 sessions stepped to distinct mid-points across 3 workers; drains
/// whichever worker holds the most sessions and reports the throughput.
DrainResult RunDrainBench(shard::ShardRouter& router, const char* label) {
  DrainResult result;
  std::vector<std::int64_t> ids;
  for (int i = 0; i < 24; ++i) {
    json::Json created = router.Handle(
        Cmd("createSession", {{"code", json::Json(kWorkload)},
                              {"entry", json::Json("main")}}));
    if (!Ok(created, "createSession")) return result;
    ids.push_back(created.GetInt("sessionId", -1));
    json::Json stepped = router.Handle(
        Cmd("step", {{"sessionId", json::Json(ids.back())},
                     {"count", json::Json(500 + 100 * i)}}));
    if (!Ok(stepped, "step")) return result;
  }

  std::int64_t victim = 0;
  std::int64_t victimSessions = 0;
  json::Json stats = router.Handle(Cmd("workerStats"));
  for (const json::Json& worker : stats.Find("workers")->AsArray()) {
    if (worker.GetInt("sessions", 0) > victimSessions) {
      victim = worker.GetInt("worker", -1);
      victimSessions = worker.GetInt("sessions", 0);
    }
  }

  auto start = std::chrono::steady_clock::now();
  json::Json drained =
      router.Handle(Cmd("drainWorker", {{"worker", json::Json(victim)}}));
  const double drainSeconds = bench::SecondsSince(start);
  if (!Ok(drained, "drainWorker")) return result;
  const double moved = static_cast<double>(drained.GetInt("moved", 0));
  const double movedMiB =
      static_cast<double>(drained.GetInt("movedBytes", 0)) / (1024.0 * 1024.0);
  result.sessionsPerSecond = moved / drainSeconds;
  result.mibPerSecond = movedMiB / drainSeconds;
  result.ok = true;
  std::printf("# drain throughput [%s] (%d sessions total, worker %lld held %.0f)\n",
              label, static_cast<int>(ids.size()),
              static_cast<long long>(victim), moved);
  std::printf("%-22s %10.2f ms\n", "drain wall time", drainSeconds * 1e3);
  std::printf("%-22s %10.1f sessions/s\n", "drain rate",
              result.sessionsPerSecond);
  std::printf("%-22s %10.1f MiB/s (%.2f MiB wire)\n", "drain bandwidth",
              result.mibPerSecond, movedMiB);
  return result;
}

}  // namespace
}  // namespace rvss

int main(int argc, char** argv) {
  using namespace rvss;
  bench::JsonReport report("shard", argc, argv);

  // --- drain throughput, in-process workers (the PR 3 baseline) --------------
  shard::ShardRouter::Options options;
  options.workerCount = 3;
  shard::ShardRouter router(options);
  const DrainResult inProcess = RunDrainBench(router, "in-process");
  if (!inProcess.ok) return 1;
  report.Set("drain_sessions_per_s", inProcess.sessionsPerSecond);
  report.Set("drain_mib_s", inProcess.mibPerSecond);

  // --- drain throughput, forked processes over the socket transport ----------
  {
    shard::SpawnedFleet fleet;
    shard::ShardRouter::Options socketOptions;
    socketOptions.workerCount = 3;
    socketOptions.transportFactory =
        shard::MakeSpawningTransportFactory(&fleet, "bench");
    shard::ShardRouter socketRouter(socketOptions);
    std::printf("\n");
    const DrainResult socket = RunDrainBench(socketRouter, "socket");
    if (!socket.ok) return 1;  // same contract as the in-process leg
    report.Set("socket_drain_sessions_per_s", socket.sessionsPerSecond);
    report.Set("socket_drain_mib_s", socket.mibPerSecond);
    std::printf("%-22s %10.2fx of in-process\n", "socket drain ratio",
                socket.mibPerSecond / inProcess.mibPerSecond);
  }

  // --- steady-state routing overhead ------------------------------------------
  // The same step request stream against a routed session and a bare
  // SimServer session; the delta is the router's id-rewrite + forwarding.
  server::SimServer bare;
  json::Json bareCreated = bare.Handle(
      Cmd("createSession", {{"code", json::Json(kWorkload)},
                            {"entry", json::Json("main")}}));
  if (!Ok(bareCreated, "bare createSession")) return 1;
  const std::int64_t bareId = bareCreated.GetInt("sessionId", -1);
  json::Json routedCreated = router.Handle(
      Cmd("createSession", {{"code", json::Json(kWorkload)},
                            {"entry", json::Json("main")}}));
  if (!Ok(routedCreated, "routed createSession")) return 1;
  const std::int64_t routedId = routedCreated.GetInt("sessionId", -1);

  constexpr int kRequests = 2000;
  const std::string routedRequest =
      Cmd("step", {{"sessionId", json::Json(routedId)},
                   {"count", json::Json(1)}})
          .Dump();
  const std::string bareRequest =
      Cmd("step", {{"sessionId", json::Json(bareId)},
                   {"count", json::Json(1)}})
          .Dump();

  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kRequests; ++i) {
    router.HandleRaw(routedRequest);
  }
  const double routedSeconds = bench::SecondsSince(start) / kRequests;

  start = std::chrono::steady_clock::now();
  for (int i = 0; i < kRequests; ++i) {
    bare.HandleRaw(bareRequest);
  }
  const double bareSeconds = bench::SecondsSince(start) / kRequests;

  std::printf("\n# steady-state routing overhead (%d single-step requests)\n",
              kRequests);
  std::printf("%-22s %10.2f us/request\n", "bare SimServer",
              bareSeconds * 1e6);
  std::printf("%-22s %10.2f us/request\n", "via ShardRouter",
              routedSeconds * 1e6);
  std::printf("%-22s %10.2f us (%.1f%%)\n", "router tax",
              (routedSeconds - bareSeconds) * 1e6,
              bareSeconds > 0
                  ? (routedSeconds / bareSeconds - 1.0) * 100.0
                  : 0.0);
  report.Set("router_tax_us", (routedSeconds - bareSeconds) * 1e6);
  return 0;
}
