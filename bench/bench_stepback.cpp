// StepBack latency vs cycle depth: the checkpoint ring's O(interval)
// backward step against the paper's O(n) re-execution-from-reset.
//
// With checkpointing disabled (intervalCycles = 0) each StepBack replays
// the whole prefix, so latency grows linearly with the current cycle. With
// the ring enabled, StepBack restores the nearest checkpoint and replays
// at most one interval, so latency is flat in depth — the property the
// interactive scrub-backward use case needs.
#include <chrono>
#include <cstdio>
#include <cstdint>

#include "bench_common.h"
#include "core/simulation.h"

namespace rvss {
namespace {

// Long dependency-light loop: ~600k cycles, far past the deepest depth.
const char* kLoop = R"(
main:
    li t0, 200000
loop:
    addi t1, t1, 1
    xori t2, t1, 3
    addi t0, t0, -1
    bnez t0, loop
    ret
)";

struct Sample {
  double meanUs = 0.0;
  std::uint64_t replayedCycles = 0;
};

/// Mean StepBack latency at `depth`: each repetition steps back one cycle
/// and forward again, so every measurement starts from the same depth.
Sample MeasureAtDepth(core::Simulation& sim, std::uint64_t depth, int reps) {
  Sample sample;
  if (!sim.SeekTo(depth).ok()) return sample;
  double totalSeconds = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    if (!sim.StepBack().ok()) return sample;
    totalSeconds += bench::SecondsSince(start);
    sample.replayedCycles = sim.lastSeekReplayedCycles();
    sim.Step();  // back to `depth` for the next repetition
  }
  sample.meanUs = totalSeconds / reps * 1e6;
  return sample;
}

}  // namespace
}  // namespace rvss

int main(int argc, char** argv) {
  using namespace rvss;
  bench::JsonReport report("stepback", argc, argv);

  const std::uint64_t kDepths[] = {1024, 4096, 16384, 65536, 131072};
  const int kReps = 5;

  std::printf("# StepBack latency vs depth (mean of %d reps)\n", kReps);
  std::printf("%-10s %-12s %16s %16s\n", "depth", "mode", "stepback_us",
              "replayed_cycles");

  for (const std::uint64_t interval : {std::uint64_t{0}, std::uint64_t{1024}}) {
    config::CpuConfig config = config::DefaultConfig();
    config.checkpoint.intervalCycles = interval;
    auto sim = core::Simulation::Create(config, kLoop, {{}, "main"});
    if (!sim.ok()) {
      std::fprintf(stderr, "create failed: %s\n", sim.error().ToText().c_str());
      return 1;
    }
    const char* mode = interval == 0 ? "replay-O(n)" : "ckpt-O(K)";
    const char* metricMode = interval == 0 ? "replay" : "ckpt";
    for (const std::uint64_t depth : kDepths) {
      const Sample sample = MeasureAtDepth(*sim.value(), depth, kReps);
      std::printf("%-10llu %-12s %16.1f %16llu\n",
                  static_cast<unsigned long long>(depth), mode, sample.meanUs,
                  static_cast<unsigned long long>(sample.replayedCycles));
      report.Set((std::string(metricMode) + "_stepback_us_" +
                  std::to_string(depth))
                     .c_str(),
                 sample.meanUs);
    }
  }

  std::printf(
      "\nWith the checkpoint ring, stepback_us stays flat in depth and\n"
      "replayed_cycles stays below the interval; the replay mode grows\n"
      "linearly with depth.\n");
  return 0;
}
