#!/usr/bin/env python3
"""Bench-regression gate: compare BENCH_<name>.json artifacts against the
floors pinned in bench/baselines.json.

Usage: ci/check_bench.py [--dir DIR]

Reads every bench named in the baselines' "gates" object from
DIR/BENCH_<name>.json (default: current directory; the bench binaries
write these when run with --json). A gated metric fails when

    value < pinned * (1 - tolerance)

i.e. a >30% regression against the pinned number with the default
tolerance of 0.30. A missing artifact or missing gated metric is also a
failure — the gate must not rot silently when a bench stops reporting.

Exit code 0 = all gates pass, 1 = regression or missing data.
"""

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINES = REPO_ROOT / "bench" / "baselines.json"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dir",
        default=".",
        help="directory containing the BENCH_<name>.json artifacts",
    )
    args = parser.parse_args()
    artifact_dir = pathlib.Path(args.dir)

    baselines = json.loads(BASELINES.read_text())
    tolerance = float(baselines.get("tolerance", 0.30))
    failures = []
    checked = 0

    for bench, gates in baselines["gates"].items():
        artifact = artifact_dir / f"BENCH_{bench}.json"
        if not artifact.exists():
            failures.append(f"{artifact}: missing (did the bench run with --json?)")
            continue
        metrics = json.loads(artifact.read_text()).get("metrics", {})
        for metric, gate in gates.items():
            # A gate is a pinned number, or {pin, requires_cores} for
            # metrics that only mean something on a wide-enough machine
            # (the parallel-run speedup is core-bound by physics).
            if isinstance(gate, dict):
                pinned = float(gate["pin"])
                required_cores = float(gate.get("requires_cores", 0))
                cores = float(metrics.get("hardware_cores", 0))
                if cores < required_cores:
                    print(
                        f"  skipped  {bench}.{metric}: needs >= "
                        f"{required_cores:.0f} cores, machine has {cores:.0f}"
                    )
                    continue
            else:
                pinned = float(gate)
            floor = pinned * (1.0 - tolerance)
            value = metrics.get(metric)
            if value is None:
                failures.append(f"{bench}.{metric}: not reported by the bench")
                continue
            checked += 1
            verdict = "ok" if value >= floor else "REGRESSED"
            print(
                f"{verdict:>9}  {bench}.{metric}: {value:.1f} "
                f"(pinned {pinned:.1f}, floor {floor:.1f})"
            )
            if value < floor:
                failures.append(
                    f"{bench}.{metric}: {value:.1f} < floor {floor:.1f} "
                    f"(pinned {pinned:.1f}, tolerance {tolerance:.0%})"
                )

    print(f"\n{checked} gated metric(s) checked.")
    if failures:
        print("\nbench-regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("bench-regression gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
