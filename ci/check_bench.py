#!/usr/bin/env python3
"""Bench-regression gate: compare BENCH_<name>.json artifacts against the
floors pinned in bench/baselines.json.

Usage: ci/check_bench.py [--dir DIR]

Reads every bench named in the baselines' "gates" object from
DIR/BENCH_<name>.json (default: current directory; the bench binaries
write these when run with --json). A floor-gated metric fails when

    value < pinned * (1 - tolerance)

i.e. a >30% regression against the pinned number with the default
tolerance of 0.30. A gate written as {"max": X} is a *ceiling* instead
(lower is better — overhead percentages): it fails when value > X, with
no tolerance inflation, because the ceiling is the contract itself.

A missing artifact or missing gated metric is also a failure — the gate
must not rot silently when a bench stops reporting. Likewise a
{pin, requires_cores} gate fails (rather than skips) when the bench did
not report hardware_cores at all: only a real low-core reading may skip
the gate, never an absent one.

Exit code 0 = all gates pass, 1 = regression or missing data.
"""

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINES = REPO_ROOT / "bench" / "baselines.json"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dir",
        default=".",
        help="directory containing the BENCH_<name>.json artifacts",
    )
    args = parser.parse_args()
    artifact_dir = pathlib.Path(args.dir)

    baselines = json.loads(BASELINES.read_text())
    tolerance = float(baselines.get("tolerance", 0.30))
    failures = []
    checked = 0

    for bench, gates in baselines["gates"].items():
        artifact = artifact_dir / f"BENCH_{bench}.json"
        if not artifact.exists():
            failures.append(f"{artifact}: missing (did the bench run with --json?)")
            continue
        metrics = json.loads(artifact.read_text()).get("metrics", {})
        for metric, gate in gates.items():
            value = metrics.get(metric)
            if value is None:
                reported = ", ".join(sorted(metrics)) or "none"
                failures.append(
                    f"{bench}.{metric}: not reported by the bench "
                    f"(metrics reported: {reported})"
                )
                continue
            # A gate is a pinned floor, {pin, requires_cores} for metrics
            # that only mean something on a wide-enough machine (the
            # parallel-run speedup is core-bound by physics), or {max} for
            # lower-is-better metrics (instrumentation overhead) gated by
            # a strict ceiling.
            if isinstance(gate, dict) and "max" in gate:
                ceiling = float(gate["max"])
                checked += 1
                verdict = "ok" if value <= ceiling else "REGRESSED"
                print(
                    f"{verdict:>9}  {bench}.{metric}: {value:.2f} "
                    f"(ceiling {ceiling:.2f})"
                )
                if value > ceiling:
                    failures.append(
                        f"{bench}.{metric}: {value:.2f} > ceiling "
                        f"{ceiling:.2f} (ceilings carry no tolerance)"
                    )
                continue
            if isinstance(gate, dict):
                pinned = float(gate["pin"])
                required_cores = float(gate.get("requires_cores", 0))
                if required_cores > 0 and "hardware_cores" not in metrics:
                    # An absent reading must fail loudly: defaulting it to
                    # 0 would skip the gate forever and read as a pass.
                    failures.append(
                        f"{bench}.{metric}: gate requires hardware_cores "
                        f"but the bench did not report it"
                    )
                    continue
                cores = float(metrics.get("hardware_cores", 0))
                if cores < required_cores:
                    print(
                        f"  skipped  {bench}.{metric}: needs >= "
                        f"{required_cores:.0f} cores, machine has {cores:.0f}"
                    )
                    continue
            else:
                pinned = float(gate)
            floor = pinned * (1.0 - tolerance)
            checked += 1
            verdict = "ok" if value >= floor else "REGRESSED"
            print(
                f"{verdict:>9}  {bench}.{metric}: {value:.1f} "
                f"(pinned {pinned:.1f}, floor {floor:.1f})"
            )
            if value < floor:
                failures.append(
                    f"{bench}.{metric}: {value:.1f} < floor {floor:.1f} "
                    f"(pinned {pinned:.1f}, tolerance {tolerance:.0%})"
                )

    print(f"\n{checked} gated metric(s) checked.")
    if failures:
        print("\nbench-regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("bench-regression gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
