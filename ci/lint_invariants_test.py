#!/usr/bin/env python3
"""Unit tests for ci/lint_invariants.py.

Each rule gets at least one passing and one failing fixture, written as
miniature source trees in a temp directory, so a refactor of the linter
that silently stops catching a violation class fails here first. CI
additionally runs the linter against the real tree (must be clean) and
against seeded violations (must be dirty) — see .github/workflows/ci.yml.
"""

import os
import sys
import tempfile
import textwrap
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint_invariants  # noqa: E402

# A minimal codec the snapshot-coverage rule resolves field names
# against; mentions `payload` but not `forgotten`.
CODEC = """
#include "snapshot/codec.h"
void Encode(const State& s) { Use(s.payload); }
"""


def run_lint(tree, rules=None):
    """Writes `tree` (rel path -> contents) into a temp root, runs the
    linter, returns (exit_code, findings)."""
    with tempfile.TemporaryDirectory() as root:
        for rel, content in tree.items():
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(textwrap.dedent(content))
        files = lint_invariants.collect_files(root)
        findings = []
        for rule in (rules or lint_invariants.ALL_RULES):
            lint_invariants.CHECKS[rule](files, root, findings)
        return (1 if findings else 0), findings


def rules_of(findings):
    return {f.rule for f in findings}


class SnapshotCoverageTest(unittest.TestCase):
    RULE = ["snapshot-coverage"]

    def test_covered_and_allowlisted_members_pass(self):
        code, findings = run_lint({
            "src/core/widget.h": """
                class Widget {
                 public:
                  struct State { int payload = 0; };
                  State SaveState() const { return State{payload_}; }
                  void RestoreState(const State& s);
                 private:
                  int payload_ = 0;
                  int cache_ = 0;  // snapshot: derived
                };
                """,
            "src/snapshot/codec.cpp": CODEC,
        }, self.RULE)
        self.assertEqual(code, 0, findings)

    def test_member_missing_from_savestate_fails(self):
        code, findings = run_lint({
            "src/core/widget.h": """
                class Widget {
                 public:
                  struct State { int payload = 0; };
                  State SaveState() const { return State{payload_}; }
                 private:
                  int payload_ = 0;
                  int forgotten_ = 0;
                };
                """,
            "src/snapshot/codec.cpp": CODEC,
        }, self.RULE)
        self.assertEqual(code, 1)
        self.assertIn("forgotten_", findings[0].message)

    def test_restore_state_in_cpp_counts_as_coverage(self):
        code, findings = run_lint({
            "src/core/widget.h": """
                class Widget {
                 public:
                  struct State { int payload = 0; };
                  State SaveState() const { return State{payload_}; }
                  void RestoreState(const State& s);
                 private:
                  int payload_ = 0;
                  int rebuilt_ = 0;
                };
                """,
            "src/core/widget.cpp": """
                #include "core/widget.h"
                void Widget::RestoreState(const State& s) {
                  payload_ = s.payload;
                  rebuilt_ = payload_ * 2;
                }
                """,
            "src/snapshot/codec.cpp": CODEC,
        }, self.RULE)
        self.assertEqual(code, 0, findings)

    def test_return_this_exempts_the_class(self):
        code, findings = run_lint({
            "src/stats/stats.h": """
                struct Stats {
                  using State = Stats;
                  State SaveState() const { return *this; }
                  int anything_ = 0;
                };
                """,
            "src/snapshot/codec.cpp": CODEC,
        }, self.RULE)
        self.assertEqual(code, 0, findings)

    def test_state_field_absent_from_codec_fails(self):
        code, findings = run_lint({
            "src/core/widget.h": """
                class Widget {
                 public:
                  struct State {
                    int payload = 0;
                    int forgotten = 0;
                  };
                  State SaveState() const {
                    return State{payload_, forgotten_};
                  }
                 private:
                  int payload_ = 0;
                  int forgotten_ = 0;
                };
                """,
            "src/snapshot/codec.cpp": CODEC,
        }, self.RULE)
        self.assertEqual(code, 1)
        self.assertIn("forgotten", findings[0].message)
        self.assertIn("codec", findings[0].message)

    def test_assignment_in_inline_method_is_not_a_member(self):
        code, findings = run_lint({
            "src/core/widget.h": """
                class Widget {
                 public:
                  struct State { int payload = 0; };
                  State SaveState() const { return State{payload_}; }
                  void SetSink(int* sink) {
                    sink_ = sink;
                  }
                 private:
                  int payload_ = 0;
                  int* sink_ = nullptr;  // snapshot: derived
                };
                """,
            "src/snapshot/codec.cpp": CODEC,
        }, self.RULE)
        self.assertEqual(code, 0, findings)


class ErrorEnvelopeTest(unittest.TestCase):
    RULE = ["error-envelope"]

    def test_envelope_in_api_cpp_and_comments_pass(self):
        code, findings = run_lint({
            "src/server/api.cpp": """
                void MakeErrorResponse() {
                  response.Set("status", "error");
                }
                """,
            "src/server/other.cpp": """
                // The envelope is {"status":"error","error":{...}}.
                void Fine() {}
                """,
        }, self.RULE)
        self.assertEqual(code, 0, findings)

    def test_hand_rolled_envelope_fails(self):
        code, findings = run_lint({
            "src/gateway/gw.cpp": """
                void Bad() { response.Set("status", "error"); }
                """,
        }, self.RULE)
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(findings), {"error-envelope"})


class MetricNamingTest(unittest.TestCase):
    RULE = ["metric-naming"]

    def test_camel_case_and_prometheus_renderer_pass(self):
        code, findings = run_lint({
            "src/core/sim.cpp": """
                auto& c = reg.GetCounter("sim.stepBatch.requests");
                """,
            "src/obs/registry.cpp": """
                auto& c = reg.GetCounter("legacy_total");
                """,
        }, self.RULE)
        self.assertEqual(code, 0, findings)

    def test_snake_case_metric_fails(self):
        code, findings = run_lint({
            "src/core/sim.cpp": """
                auto& c = reg.GetCounter("sim.step_batch.requests");
                """,
        }, self.RULE)
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(findings), {"metric-naming"})


class MutexGuardTest(unittest.TestCase):
    RULE = ["mutex-guard"]

    def test_wrapped_mutex_with_guarded_by_passes(self):
        code, findings = run_lint({
            "src/common/sync.h": """
                class Mutex { std::mutex mu_; };
                """,
            "src/obs/reg.h": """
                class Registry {
                  mutable Mutex mutex_;
                  int counters_ GUARDED_BY(mutex_);
                };
                """,
        }, self.RULE)
        self.assertEqual(code, 0, findings)

    def test_raw_std_mutex_outside_sync_fails(self):
        code, findings = run_lint({
            "src/obs/reg.h": """
                class Registry {
                  std::mutex mutex_;
                  int counters_ GUARDED_BY(mutex_);
                };
                """,
        }, self.RULE)
        self.assertEqual(code, 1)
        self.assertIn("std::mutex", findings[0].message)

    def test_mutex_member_without_guarded_by_fails(self):
        code, findings = run_lint({
            "src/obs/reg.h": """
                class Registry {
                  mutable Mutex mutex_;
                  int counters_;
                };
                """,
        }, self.RULE)
        self.assertEqual(code, 1)
        self.assertIn("GUARDED_BY", findings[0].message)


class RealTreeTest(unittest.TestCase):
    """The linter must be clean on the repository it ships in."""

    def test_repo_is_clean(self):
        root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))
        if not os.path.isdir(os.path.join(root, "src")):
            self.skipTest("not running inside the repo")
        self.assertEqual(lint_invariants.main(["--root", root]), 0)


if __name__ == "__main__":
    unittest.main()
