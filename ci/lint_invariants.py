#!/usr/bin/env python3
"""Repo-invariant linter: structural rules a compiler cannot check.

Four rules, each encoding an invariant this codebase has been burned by
(or nearly so). The linter is a tripwire, not a proof: it is regex- and
token-based, deliberately simple, and errs toward false negatives over
false positives so it can run with zero suppressions on a clean tree.

  snapshot-coverage   Every data member of a SaveState()-bearing class
                      must appear in that class's SaveState/RestoreState
                      bodies, or carry a `// snapshot: derived` comment
                      (on the declaration line or within the 3 lines
                      above it) declaring it reconstructible. Catches the
                      classic bug: a new member silently missing from
                      snapshots, surfacing as corrupt restores much
                      later.  Second half: every field of the snapshot
                      State structs (and SimSnapshot itself) must be
                      mentioned in the wire codec, so a field cannot be
                      snapshotted in memory but dropped on export.

  error-envelope      The JSON error envelope {"status":"error",...} is
                      constructed in exactly one place,
                      server::MakeErrorResponse (plus AddErrorDetail for
                      details). Hand-rolled envelopes drift from the
                      documented shape and break clients keying on
                      error.retryable.

  metric-naming       JSON metric names are camelCase, dot-separated.
                      The Prometheus renderer (obs/registry.cpp) is the
                      single snake_case surface; a snake_case name
                      registered anywhere else would round-trip through
                      PrometheusName() into a different identifier than
                      its JSON spelling.

  mutex-guard         Concurrency passes through common/sync.h: raw
                      std::mutex / std::condition_variable /
                      std::lock_guard / std::unique_lock are invisible
                      to Clang's thread-safety analysis, so they are
                      banned outside the wrapper header. And a class
                      declaring a Mutex member must GUARDED_BY-annotate
                      at least one field with it — an unused capability
                      is either dead code or unprotected data.

Usage: python3 ci/lint_invariants.py [--root DIR] [--rule NAME]...
Exits 0 when clean, 1 with one `path:line: [rule] message` per finding.
"""

import argparse
import os
import re
import sys

# Paths (relative to --root) with special roles.
CODEC_PATH = "src/snapshot/codec.cpp"
ERROR_ENVELOPE_ALLOW = {"src/server/api.cpp"}
METRIC_NAME_ALLOW = {"src/obs/registry.cpp"}
RAW_MUTEX_ALLOW = {"src/common/sync.h"}

# Standalone structs whose fields the codec must cover even though they
# carry no SaveState themselves (they *are* the saved state).
EXTRA_STATE_STRUCTS = {"SimSnapshot"}

DERIVED_MARK = "snapshot: derived"
ALL_RULES = ("snapshot-coverage", "error-envelope", "metric-naming",
             "mutex-guard")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def mask_code(text, keep_strings=False):
    """Returns text of identical length with comments — and, unless
    keep_strings, string/char literals — blanked out (newlines
    preserved) so brace matching and token searches cannot be fooled by
    them."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c in "\"'":
            if keep_strings:
                quote = c
                j = i + 1
                while j < n and text[j] != quote:
                    j += 2 if text[j] == "\\" else 1
                j = min(j + 1, n)
                out.append(text[i:j])
                i = j
                continue
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i > 1
                                                    else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def match_brace(masked, open_idx):
    """Index just past the brace matching masked[open_idx] == '{'."""
    depth = 0
    for i in range(open_idx, len(masked)):
        if masked[i] == "{":
            depth += 1
        elif masked[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(masked)


# `class X {`, `struct X : Base {`, `class CAPABILITY("m") X {`,
# `class [[nodiscard]] X {` — but not `enum class X {`.
CLASS_HEAD_RE = re.compile(
    r"\b(enum\s+)?(?:class|struct)\s+"
    r"(?:(?:\[\[[^\]]*\]\]|alignas\s*\([^)]*\)"
    r"|[A-Z_][A-Z0-9_]*(?:\s*\([^)]*\))?)\s+)*"
    r"([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^{;]*)?\{")


def iter_classes(masked):
    """Yields (name, body_start, body_end) for every class/struct
    definition in masked text, including nested ones."""
    for m in CLASS_HEAD_RE.finditer(masked):
        if m.group(1):  # enum class
            continue
        open_idx = m.end() - 1
        yield m.group(2), open_idx + 1, match_brace(masked, open_idx) - 1


def line_of(text, idx):
    return text.count("\n", 0, idx) + 1


# A data-member declaration: a type, then one or more declarators ending
# in `_`, then `;`. Lines with parentheses (methods, calls) or keywords
# are skipped.
MEMBER_LINE_SKIP = re.compile(
    r"^\s*(?:using|typedef|friend|return|public|private|protected|static"
    r"\s+constexpr|template)\b|[()]")
MEMBER_NAME_RE = re.compile(
    r"(?:[\w>\],]\s+|\*|&)([A-Za-z_]\w*_)\s*"
    r"(?:=[^,;{]*|\{[^}]*\})?\s*[,;]")
FIELD_NAME_RE = re.compile(
    r"(?:[\w>\],]\s+|\*|&)([A-Za-z_]\w*)\s*"
    r"(?:=[^,;{]*|\{[^}]*\})?\s*[,;]")


def iter_member_names(text, masked, body_start, body_end, name_re):
    """Yields (name, line_no) for member declarations inside a class
    body, matched with name_re on masked lines."""
    body = masked[body_start:body_end]
    offset = body_start
    for raw in body.split("\n"):
        line = raw
        if line.strip() and not MEMBER_LINE_SKIP.search(line):
            for m in name_re.finditer(line):
                yield m.group(1), line_of(text, offset + m.start(1))
        offset += len(raw) + 1


def is_allowlisted(lines, line_no):
    """True when DERIVED_MARK appears on the declaration line or within
    the 3 lines above it (1-based line_no)."""
    lo = max(0, line_no - 4)
    return any(DERIVED_MARK in lines[i] for i in range(lo, line_no))


def function_body_text(masked, class_body, names):
    """Concatenated bodies of the named methods inside a class body (a
    slice of masked text)."""
    out = []
    for name in names:
        for m in re.finditer(r"\b" + name + r"\s*\(", class_body):
            close = class_body.find(")", m.end())
            if close == -1:
                continue
            brace = class_body.find("{", close)
            semi = class_body.find(";", close)
            if brace == -1 or (semi != -1 and semi < brace):
                continue  # declaration only; body lives in the .cpp
            out.append(class_body[brace:match_brace(class_body, brace)])
    return "\n".join(out)


def out_of_line_bodies(cpp_masked, class_name, names):
    """Bodies of `Class::SaveState...` definitions in a masked .cpp."""
    out = []
    for name in names:
        pat = re.compile(r"\b" + class_name + r"::" + name + r"\s*\(")
        for m in pat.finditer(cpp_masked):
            brace = cpp_masked.find("{", m.end())
            if brace == -1:
                continue
            out.append(cpp_masked[brace:match_brace(cpp_masked, brace)])
    return "\n".join(out)


STATE_METHODS = ("SaveStateImpl", "SaveState", "RestoreState")


def check_snapshot_coverage(files, root, findings):
    codec_path = os.path.join(root, CODEC_PATH)
    codec_text = ""
    if os.path.exists(codec_path):
        with open(codec_path, encoding="utf-8", errors="replace") as f:
            codec_text = mask_code(f.read())

    for rel, text, masked, nostr in files:
        if not rel.endswith(".h"):
            continue
        lines = text.split("\n")
        cpp_masked = ""
        cpp_rel = rel[:-2] + ".cpp"
        for other_rel, _, other_masked, _n in files:
            if other_rel == cpp_rel:
                cpp_masked = other_masked
        for name, start, end in iter_classes(masked):
            body = masked[start:end]
            has_save = re.search(r"\bSaveState(?:Impl)?\s*\(", body)
            is_state_struct = name in EXTRA_STATE_STRUCTS or (
                name == "State" and has_save is None)
            if has_save:
                coverage = (
                    function_body_text(masked, body, STATE_METHODS)
                    + out_of_line_bodies(cpp_masked, name, STATE_METHODS))
                if re.search(r"return\s*\*\s*this", coverage):
                    continue  # the whole object is the state
                for member, line_no in iter_member_names(
                        text, masked, start, end, MEMBER_NAME_RE):
                    if re.search(r"\b" + member + r"\b", coverage):
                        continue
                    if is_allowlisted(lines, line_no):
                        continue
                    findings.append(Finding(
                        rel, line_no, "snapshot-coverage",
                        f"member '{member}' of snapshottable class "
                        f"'{name}' is neither saved/restored by its "
                        f"SaveState/RestoreState nor marked "
                        f"'// {DERIVED_MARK}'"))
            elif is_state_struct and codec_text:
                for field, line_no in iter_member_names(
                        text, masked, start, end, FIELD_NAME_RE):
                    if re.search(r"\b" + field + r"\b", codec_text):
                        continue
                    if is_allowlisted(lines, line_no):
                        continue
                    findings.append(Finding(
                        rel, line_no, "snapshot-coverage",
                        f"snapshot field '{field}' of '{name}' never "
                        f"appears in {CODEC_PATH} — it would be saved "
                        f"in memory but dropped by export/import"))


ENVELOPE_RES = (
    re.compile(r'Set\s*\(\s*"status"\s*,\s*"error"'),
    re.compile(r'"status"\s*:\s*"error"'),
)


def check_error_envelope(files, root, findings):
    for rel, text, _, nostr in files:
        if rel in ERROR_ENVELOPE_ALLOW:
            continue
        for pat in ENVELOPE_RES:
            for m in pat.finditer(nostr):
                findings.append(Finding(
                    rel, line_of(text, m.start()), "error-envelope",
                    "error envelope constructed by hand; use "
                    "server::MakeErrorResponse / AddErrorDetail so the "
                    "shape (error.kind/message/retryable/details) stays "
                    "uniform"))


METRIC_RE = re.compile(r'Get(?:Counter|Gauge|Histogram)\s*\(\s*"([^"]*)"')


def check_metric_naming(files, root, findings):
    for rel, text, _, nostr in files:
        if rel in METRIC_NAME_ALLOW:
            continue
        for m in METRIC_RE.finditer(nostr):
            if "_" in m.group(1):
                findings.append(Finding(
                    rel, line_of(text, m.start()), "metric-naming",
                    f"metric name '{m.group(1)}' is snake_case; JSON "
                    f"metric names are camelCase dot-separated — the "
                    f"Prometheus renderer is the only snake_case "
                    f"surface"))


RAW_SYNC_RE = re.compile(
    r"\bstd::(mutex|condition_variable(?:_any)?|lock_guard|unique_lock"
    r"|scoped_lock|shared_mutex)\b")
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:rvss::)?Mutex\s+[A-Za-z_]\w*\s*;",
    re.MULTILINE)


def check_mutex_guard(files, root, findings):
    for rel, text, masked, nostr in files:
        if rel in RAW_MUTEX_ALLOW:
            continue
        for m in RAW_SYNC_RE.finditer(masked):
            findings.append(Finding(
                rel, line_of(text, m.start()), "mutex-guard",
                f"raw std::{m.group(1)} is invisible to thread-safety "
                f"analysis; use rvss::Mutex / MutexLock / CondVar from "
                f"common/sync.h"))
        for name, start, end in iter_classes(masked):
            body = masked[start:end]
            mutex = MUTEX_MEMBER_RE.search(body)
            if mutex and "GUARDED_BY" not in body:
                findings.append(Finding(
                    rel, line_of(text, start + mutex.start()),
                    "mutex-guard",
                    f"class '{name}' declares a Mutex member but no "
                    f"GUARDED_BY field; annotate the data the mutex "
                    f"protects (see docs/static_analysis.md)"))


CHECKS = {
    "snapshot-coverage": check_snapshot_coverage,
    "error-envelope": check_error_envelope,
    "metric-naming": check_metric_naming,
    "mutex-guard": check_mutex_guard,
}


def collect_files(root):
    files = []
    src = os.path.join(root, "src")
    for dirpath, _, names in os.walk(src):
        for name in sorted(names):
            if not name.endswith((".h", ".cpp")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
            files.append(
                (rel, text, mask_code(text),
                 mask_code(text, keep_strings=True)))
    return files


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repo root (contains src/)")
    parser.add_argument("--rule", action="append", choices=ALL_RULES,
                        help="run only these rules (default: all)")
    args = parser.parse_args(argv)

    files = collect_files(args.root)
    if not files:
        print(f"lint_invariants: no sources under {args.root}/src",
              file=sys.stderr)
        return 2

    findings = []
    for rule in (args.rule or ALL_RULES):
        CHECKS[rule](files, args.root, findings)

    for finding in sorted(findings, key=lambda f: (f.path, f.line)):
        print(finding)
    if findings:
        print(f"lint_invariants: {len(findings)} violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
