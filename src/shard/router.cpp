#include "shard/router.h"

#include <algorithm>
#include <future>
#include <limits>
#include <utility>

#include "common/strings.h"
#include "obs/trace.h"
#include "server/wire.h"

namespace rvss::shard {
namespace {

json::Json Ok() {
  json::Json response = json::Json::MakeObject();
  response.Set("status", "ok");
  return response;
}

bool IsOk(const json::Json& response) {
  return response.GetString("status", "") == "ok";
}

json::Json RouterError(ErrorKind kind, std::string message) {
  return server::MakeErrorResponse(Error{kind, std::move(message)});
}

}  // namespace

Result<std::shared_ptr<WorkerTransport>> ShardRouter::MakeTransport(
    std::size_t worker, const server::SimServer::Limits& limits) {
  if (options_.transportFactory) {
    return options_.transportFactory(worker, limits);
  }
  return std::shared_ptr<WorkerTransport>(
      std::make_shared<InProcessTransport>(limits));
}

ShardRouter::ShardRouter(const Options& options)
    : options_(options),
      ring_(std::max<std::size_t>(options.workerCount, 1),
            std::max<std::size_t>(options.virtualNodesPerWorker, 1)) {
  const std::size_t count = std::max<std::size_t>(options.workerCount, 1);
  workers_.reserve(count);
  lanes_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const server::SimServer::Limits& limits =
        options_.perWorkerLimits.size() == count ? options_.perWorkerLimits[i]
                                                 : options_.workerLimits;
    auto transport = MakeTransport(i, limits);
    if (transport.ok()) {
      workers_.push_back(std::move(transport).value());
      lanes_.push_back(std::make_unique<WorkerLane>(
          workers_.back(), options_.maxLaneQueueDepth));
    } else {
      // A slot whose transport could not be built is born removed: the
      // fleet still comes up, the hole is visible in workerStats, and
      // nothing ever routes there.
      workers_.push_back(nullptr);
      lanes_.push_back(nullptr);
      slotErrors_[i] = transport.error().message;
    }
  }
  drained_.assign(count, false);
  gated_.assign(count, false);
}

std::size_t ShardRouter::workerCount() const {
  MutexLock lock(fleetMutex_);
  return workers_.size();
}

std::size_t ShardRouter::sessionCount() const {
  MutexLock lock(fleetMutex_);
  return placements_.size();
}

server::SimServer* ShardRouter::workerServer(std::size_t index) {
  MutexLock lock(fleetMutex_);
  if (index >= workers_.size() || workers_[index] == nullptr) return nullptr;
  return workers_[index]->LocalServer();
}

json::Json ShardRouter::Handle(const json::Json& request) {
  return Dispatch(request);
}

std::string ShardRouter::HandleRaw(std::string_view requestBytes,
                                   bool compress,
                                   server::RequestTiming* timing) {
  return server::HandleRawVia(
      [this](const json::Json& request) { return Dispatch(request); },
      requestBytes, compress, timing);
}

json::Json ShardRouter::CallViaLane(std::size_t worker,
                                    const json::Json& request) {
  std::future<Result<json::Json>> pending;
  std::shared_ptr<WorkerTransport> direct;
  {
    MutexLock lock(fleetMutex_);
    if (!IsLive(worker)) {
      return RouterError(ErrorKind::kUnavailable,
                         "worker " + std::to_string(worker) + " was removed");
    }
    // Fast path: an idle, ungated lane is claimed in the same critical
    // section as the gate check, so no fleet operation can close the
    // gate between check and claim (see WorkerLane::TryBeginDirect).
    if (options_.laneFastPath && !gated_[worker] &&
        lanes_[worker]->TryBeginDirect()) {
      direct = workers_[worker];
    } else {
      pending = lanes_[worker]->Submit(request);
    }
  }
  if (direct != nullptr) {
    static obs::Counter& directCalls =
        obs::Registry::Instance().GetCounter("shard.lane.directCalls");
    directCalls.Increment();
    const std::uint64_t startNs = obs::MonotonicNowNs();
    auto response = direct->Call(request);
    {
      // EndDirect under the fleet mutex: RemoveWorker destroys a lane
      // only with this mutex held, after Quiesce() — which our claim
      // blocks — so the lane cannot disappear mid-release.
      MutexLock lock(fleetMutex_);
      lanes_[worker]->EndDirect(obs::MonotonicNowNs() - startNs);
    }
    if (!response.ok()) {
      return server::MakeErrorResponse(response.error());
    }
    return std::move(response).value();
  }
  auto response = pending.get();
  if (!response.ok()) {
    return server::MakeErrorResponse(response.error());
  }
  return std::move(response).value();
}

json::Json ShardRouter::CallWorkerDirect(std::size_t worker,
                                         const json::Json& request) {
  std::shared_ptr<WorkerTransport> transport;
  {
    MutexLock lock(fleetMutex_);
    if (!IsLive(worker)) {
      return RouterError(ErrorKind::kUnavailable,
                         "worker " + std::to_string(worker) + " was removed");
    }
    transport = workers_[worker];
  }
  auto response = transport->Call(request);
  if (!response.ok()) {
    return server::MakeErrorResponse(response.error());
  }
  return std::move(response).value();
}

WorkerLane* ShardRouter::CloseGate(std::size_t index) {
  MutexLock lock(fleetMutex_);
  gated_[index] = true;
  // An admission already submitted to this worker's lane finishes its
  // round trip and records its placement from the admitting thread;
  // wait it out so the drain below starts from a placement map that
  // includes every session the (about to be quiesced) lane produced.
  while (admissionIntents_.find(index) != admissionIntents_.end()) {
    intentsClear_.Wait(fleetMutex_);
  }
  // Handing the lane out of the mutex section is safe: only RemoveWorker
  // destroys a lane, fleet operations serialize on fleetOpMutex_ (held by
  // our caller), and the closed gate keeps new submissions out.
  return lanes_[index].get();
}

void ShardRouter::OpenGate(std::size_t index) {
  {
    MutexLock lock(fleetMutex_);
    gated_[index] = false;
  }
  gateOpen_.NotifyAll();
}

json::Json ShardRouter::Dispatch(const json::Json& request) {
  const std::string command = request.GetString("command", "");
  obs::Registry& registry = obs::Registry::Instance();
  static obs::Counter& requests =
      registry.GetCounter("shard.router.requests");
  static obs::Histogram& handleUs =
      registry.GetHistogram("shard.router.handleUs");
  requests.Increment();
  if (obs::Enabled()) {
    registry
        .GetCounter("shard.router.cmd." +
                    std::string(obs::SanitizedCommandName(command)))
        .Increment();
  }
  obs::ScopedLatency timer(handleUs);

  if (command == "hello") {
    // The router's own fingerprint: lets a client (or an operator's curl)
    // verify build compatibility without reaching into the fleet.
    return server::MakeHelloResponse();
  }
  if (command == "createSession" || command == "importSession") {
    return AdmitSession(request);
  }
  if (command == "listSessions") return ListSessions();
  if (command == "workerStats") return WorkerStats();
  if (command == "drainWorker") return DrainWorker(request);
  if (command == "openWorker") return OpenWorker(request);
  if (command == "addWorker") return AddWorker(request);
  if (command == "removeWorker") return RemoveWorker(request);
  if (command == "rebalance") return Rebalance();
  if (command == "metrics") return Metrics(request);
  if (command == "traceDump") return TraceDump();
  if (command == "shutdownWorker") {
    // Out-of-band worker-level command: forwarding it would let any API
    // client kill a fleet process. Only the router's own removeWorker
    // path may send it, directly over the transport.
    return RouterError(ErrorKind::kInvalidArgument,
                       "shutdownWorker is not a router command; use "
                       "removeWorker {worker}");
  }
  if (request.Find("sessionId") != nullptr) {
    return RouteSessionCommand(request);
  }
  return StatelessCommand(request);
}

json::Json ShardRouter::StatelessCommand(const json::Json& request) {
  // Stateless commands (compile, parseAsm, checkConfig) and unknown
  // commands need no placement; any live worker gives the right answer —
  // and they are side-effect-free, so a worker whose process is dead is
  // simply skipped for the next one instead of failing the request. A
  // gated worker (a fleet operation owns it) is skipped the same way
  // rather than waited for. The request rides each candidate's lane
  // (the fleet mutex is held only to pick the lane), so a stateless
  // command never races the worker's session traffic.
  json::Json lastError = RouterError(ErrorKind::kUnavailable,
                                     "every worker has been removed");
  for (std::size_t i = 0;; ++i) {
    std::future<Result<json::Json>> pending;
    {
      MutexLock lock(fleetMutex_);
      if (i >= workers_.size()) break;
      if (!IsLive(i) || gated_[i]) continue;
      // Submit *under* the mutex — the quiesce barrier's contract is
      // that no submission can race a fleet operation's closed gate;
      // only the wait happens unlocked.
      pending = lanes_[i]->Submit(request);
    }
    auto response = pending.get();
    if (response.ok()) return std::move(response).value();
    lastError = server::MakeErrorResponse(response.error());
  }
  return lastError;
}

std::vector<bool> ShardRouter::Eligible() const {
  std::vector<bool> eligible(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    eligible[i] = IsLive(i) && !drained_[i];
  }
  return eligible;
}

Result<std::size_t> ShardRouter::PlaceNew(std::int64_t globalId) {
  auto worker = ring_.Pick(static_cast<std::uint64_t>(globalId), Eligible());
  if (!worker.has_value()) {
    return Error{ErrorKind::kUnavailable,
                 "all workers are drained; no worker accepts new sessions"};
  }
  return *worker;
}

json::Json ShardRouter::AdmitSession(const json::Json& request) {
  // createSession and importSession admit identically: allocate a global
  // id, place it on the ring, forward, and record where it landed. The
  // worker round trip runs *unlocked* — what keeps drains honest is the
  // placement intent recorded under the mutex before the submit: a drain
  // of the target worker closes the gate and waits for the worker's
  // intents to clear, so by the time it reads the placement map, this
  // admission has either finalized its entry or failed. Admissions
  // therefore overlap with traffic, with each other, and with drains of
  // *other* workers — a createSession burst no longer serializes behind
  // an in-progress drain it is not placed on.
  std::int64_t globalId = 0;
  std::size_t worker = 0;
  std::future<Result<json::Json>> pending;
  {
    MutexLock lock(fleetMutex_);
    globalId = nextGlobalId_++;
    while (true) {
      auto placed = PlaceNew(globalId);
      if (!placed.ok()) return server::MakeErrorResponse(placed.error());
      worker = placed.value();
      if (!gated_[worker]) break;
      // The ring picked a worker a fleet operation currently owns; wait
      // for the gate and re-place (eligibility may have changed).
      gateOpen_.Wait(fleetMutex_);
    }
    ++admissionIntents_[worker];
    pending = lanes_[worker]->Submit(request);
  }

  auto result = pending.get();
  json::Json response = result.ok()
                            ? std::move(result).value()
                            : server::MakeErrorResponse(result.error());
  const bool admitted = IsOk(response);
  {
    MutexLock lock(fleetMutex_);
    auto intent = admissionIntents_.find(worker);
    if (intent != admissionIntents_.end() && --intent->second == 0) {
      admissionIntents_.erase(intent);
    }
    if (admitted) {
      placements_[globalId] =
          Placement{worker, response.GetInt("sessionId", -1)};
    }
  }
  intentsClear_.NotifyAll();
  if (!admitted) return response;
  static obs::Counter& admissions =
      obs::Registry::Instance().GetCounter("shard.router.admissions");
  admissions.Increment();
  response.Set("sessionId", globalId);
  response.Set("worker", static_cast<std::int64_t>(worker));
  return response;
}

json::Json ShardRouter::RouteSessionCommand(const json::Json& request) {
  const std::int64_t globalId = request.GetInt("sessionId", -1);
  const bool isDelete = request.GetString("command", "") == "deleteSession";
  std::size_t worker = 0;
  std::future<Result<json::Json>> pending;
  std::shared_ptr<WorkerTransport> direct;
  json::Json forwarded;
  {
    MutexLock lock(fleetMutex_);
    while (true) {
      auto it = placements_.find(globalId);
      if (it == placements_.end()) {
        return RouterError(ErrorKind::kInvalidArgument,
                           "unknown sessionId " + std::to_string(globalId));
      }
      const Placement placement = it->second;
      if (!IsLive(placement.worker)) {
        return RouterError(ErrorKind::kUnavailable,
                           "worker " + std::to_string(placement.worker) +
                               " was removed");
      }
      if (!gated_[placement.worker]) {
        // Session commands (step, run, stepBack, exportSession, ...)
        // release the mutex and wait on the lane: this is where the
        // fleet's parallelism comes from. Per-session ordering holds
        // because a session's requests all enter the same FIFO lane, in
        // the order their dispatching threads held the mutex.
        worker = placement.worker;
        forwarded = request;
        forwarded.Set("sessionId", placement.localId);
        // Idle lane: skip the enqueue/wake/future hop entirely and run
        // the call on this thread. Claimed in the same critical section
        // as the gate check (the TryBeginDirect contract), and FIFO is
        // trivially preserved — an idle lane has nothing to reorder
        // against, and the claim makes it busy for everyone else.
        if (options_.laneFastPath && lanes_[worker]->TryBeginDirect()) {
          direct = workers_[worker];
        } else {
          pending = lanes_[worker]->Submit(std::move(forwarded));
        }
        break;
      }
      // A fleet operation owns this session's worker (drain, rebalance,
      // removal in progress): wait for the gate and re-resolve — the
      // session may have moved to a different worker meanwhile. Only
      // traffic aimed at the gated worker blocks here.
      gateOpen_.Wait(fleetMutex_);
    }
  }
  auto result = [&]() -> Result<json::Json> {
    if (direct == nullptr) return pending.get();
    static obs::Counter& directCalls =
        obs::Registry::Instance().GetCounter("shard.lane.directCalls");
    directCalls.Increment();
    const std::uint64_t startNs = obs::MonotonicNowNs();
    auto answer = direct->Call(forwarded);
    {
      // See CallViaLane: releasing under the fleet mutex keeps the lane
      // alive until EndDirect has fully returned.
      MutexLock lock(fleetMutex_);
      lanes_[worker]->EndDirect(obs::MonotonicNowNs() - startNs);
    }
    return answer;
  }();
  if (!result.ok()) {
    return server::MakeErrorResponse(result.error());
  }
  json::Json response = std::move(result).value();
  if (isDelete && IsOk(response)) {
    // Deletes finalize like admissions: the map mutation happens after
    // the unlocked round trip. A fleet operation that snapshots the map
    // between our worker-side delete and this erase sees a placement for
    // a session that no longer exists — its export fails and MoveSession
    // re-checks the map, reporting the session skipped, not lost.
    MutexLock lock(fleetMutex_);
    auto it = placements_.find(globalId);
    if (it != placements_.end() && it->second.worker == worker) {
      placements_.erase(it);
    }
  }
  return response;
}

/// localId -> session node, for O(log n) joins against the placement map.
std::map<std::int64_t, const json::Json*> ShardRouter::IndexSessions(
    const json::Json& listResponse) {
  std::map<std::int64_t, const json::Json*> index;
  const json::Json* sessions = listResponse.Find("sessions");
  if (sessions == nullptr || !sessions->IsArray()) return index;
  for (const json::Json& session : sessions->AsArray()) {
    index[session.GetInt("sessionId", -1)] = &session;
  }
  return index;
}

json::Json ShardRouter::ListSessions() {
  // Join each worker's listSessions with the global id map, reporting in
  // global-id order so the output is stable across placements. Holds the
  // fleet-op mutex throughout: no drain or rebalance can interleave, so
  // the listing is a consistent fleet-topology snapshot — while routing
  // continues, so a concurrent admission or delete may or may not appear
  // (it would not have been part of any serial order either). Worker
  // queries fan out to every lane before any response is awaited, so the
  // fleet enumerates in parallel.
  MutexLock opLock(fleetOpMutex_);
  std::size_t slots = 0;
  std::map<std::int64_t, Placement> placements;
  std::vector<std::future<Result<json::Json>>> pending;
  {
    MutexLock lock(fleetMutex_);
    slots = workers_.size();
    placements = placements_;
    pending = FanOutListSessions();
  }
  json::Json response = Ok();
  json::Json list = json::Json::MakeArray();
  json::Json unreachable = json::Json::MakeArray();
  std::int64_t totalBytes = 0;
  std::vector<json::Json> perWorker;
  perWorker.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    if (!pending[i].valid()) {
      perWorker.push_back(json::Json::MakeObject());
      continue;
    }
    auto result = pending[i].get();
    perWorker.push_back(result.ok()
                            ? std::move(result).value()
                            : server::MakeErrorResponse(result.error()));
    // A live slot whose process is dead cannot enumerate its sessions;
    // flag it so the omissions below read as "unreachable", not
    // "deleted" — the sessions still exist and still route (to errors).
    if (!IsOk(perWorker.back())) {
      unreachable.Append(json::Json(static_cast<std::int64_t>(i)));
    }
  }
  std::vector<std::map<std::int64_t, const json::Json*>> perWorkerIndex;
  perWorkerIndex.reserve(perWorker.size());
  for (const json::Json& listed : perWorker) {
    perWorkerIndex.push_back(IndexSessions(listed));
  }
  for (const auto& [globalId, placement] : placements) {
    const auto& index = perWorkerIndex[placement.worker];
    auto found = index.find(placement.localId);
    if (found == index.end()) continue;
    json::Json entry = *found->second;
    entry.Set("sessionId", globalId);
    entry.Set("worker", static_cast<std::int64_t>(placement.worker));
    totalBytes += entry.GetInt("approxBytes", 0);
    list.Append(std::move(entry));
  }
  response.Set("sessions", std::move(list));
  response.Set("totalApproxBytes", totalBytes);
  response.Set("unreachableWorkers", std::move(unreachable));
  return response;
}

Result<ShardRouter::WorkerLoad> ShardRouter::ParseLoad(
    Result<json::Json> response) {
  if (!response.ok()) return response.error();
  if (!IsOk(response.value())) {
    return Error{ErrorKind::kInternal,
                 response.value().GetString("message", "listSessions failed")};
  }
  WorkerLoad load;
  const json::Json* sessions = response.value().Find("sessions");
  if (sessions != nullptr && sessions->IsArray()) {
    load.sessions = sessions->AsArray().size();
  }
  load.approxBytes = static_cast<std::uint64_t>(
      response.value().GetInt("totalApproxBytes", 0));
  return load;
}

std::vector<std::future<Result<json::Json>>> ShardRouter::FanOutListSessions(
    std::size_t skip) {
  json::Json listRequest = json::Json::MakeObject();
  listRequest.Set("command", "listSessions");
  std::vector<std::future<Result<json::Json>>> pending(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (i == skip || !IsLive(i)) continue;
    pending[i] = lanes_[i]->Submit(listRequest);
  }
  return pending;
}

ShardRouter::FleetLoads ShardRouter::ProbeLoads(std::size_t skip) {
  FleetLoads loads;
  std::vector<std::future<Result<json::Json>>> pending;
  {
    MutexLock lock(fleetMutex_);
    loads.bytes.assign(workers_.size(), 0);
    loads.reachable.assign(workers_.size(), false);
    pending = FanOutListSessions(skip);
  }
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (!pending[i].valid()) continue;
    auto load = ParseLoad(pending[i].get());
    if (!load.ok()) continue;
    loads.bytes[i] = load.value().approxBytes;
    loads.reachable[i] = true;
  }
  return loads;
}

json::Json ShardRouter::WorkerStats() {
  MutexLock opLock(fleetOpMutex_);
  // Everything a worker entry needs, snapshotted under the fleet mutex
  // so the probe responses can be awaited without it: stats must not
  // block routing behind a minute-long `run` occupying some lane.
  struct Slot {
    bool live = false;
    bool drained = false;
    std::string transport;
    std::string slotError;
    WorkerLane::Stats lane;
  };
  std::vector<Slot> slots;
  std::vector<std::future<Result<json::Json>>> pending;
  {
    MutexLock lock(fleetMutex_);
    slots.resize(workers_.size());
    // Snapshot lane load *before* fanning out the listSessions probes:
    // the probes ride the very lanes being measured, so sampling
    // afterwards would report every queue one deep and the probe itself
    // in flight.
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      slots[i].live = IsLive(i);
      if (!slots[i].live) {
        auto slotError = slotErrors_.find(i);
        if (slotError != slotErrors_.end()) {
          slots[i].slotError = slotError->second;
        }
        continue;
      }
      slots[i].drained = drained_[i];
      slots[i].transport = workers_[i]->Describe();
      slots[i].lane = lanes_[i]->stats();
    }
    pending = FanOutListSessions();
  }
  json::Json response = Ok();
  json::Json list = json::Json::MakeArray();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    json::Json entry = json::Json::MakeObject();
    entry.Set("worker", static_cast<std::int64_t>(i));
    if (!slots[i].live) {
      entry.Set("removed", true);
      if (!slots[i].slotError.empty()) entry.Set("error", slots[i].slotError);
      list.Append(std::move(entry));
      continue;
    }
    entry.Set("transport", slots[i].transport);
    entry.Set("drained", slots[i].drained);
    entry.Set("removed", false);
    // Live lane load (the hot-shard tell): how many requests are queued
    // behind this worker, whether one is executing, and how long the last
    // one took — without the cost of a full metrics pull.
    entry.Set("queueDepth",
              static_cast<std::int64_t>(slots[i].lane.queueDepth));
    entry.Set("inFlight", slots[i].lane.inFlight);
    entry.Set("lastDispatchMs", slots[i].lane.lastDispatchMs);
    auto load = ParseLoad(pending[i].get());
    if (load.ok()) {
      entry.Set("sessions", static_cast<std::int64_t>(load.value().sessions));
      entry.Set("approxBytes",
                static_cast<std::int64_t>(load.value().approxBytes));
    } else {
      // A dead worker process: the slot exists, the sessions placed there
      // are unreachable until it restarts — report, don't hide.
      entry.Set("unreachable", true);
      entry.Set("error", load.error().message);
    }
    list.Append(std::move(entry));
  }
  response.Set("workers", std::move(list));
  return response;
}

json::Json ShardRouter::Metrics(const json::Json& request) {
  MutexLock opLock(fleetOpMutex_);
  // Start from this process's registry: router counters, lane and
  // transport histograms — and every in-process worker's server metrics,
  // which land in the same registry (the whole point of a process-wide
  // singleton). That is also why in-process workers are *not* fanned out
  // below: merging their `metrics` response would count this registry
  // twice.
  json::Json fleet = obs::MetricsToJson();

  json::Json metricsRequest = json::Json::MakeObject();
  metricsRequest.Set("command", "metrics");
  struct Slot {
    bool live = false;
    bool shared = false;  ///< in-process: its numbers are already in fleet
    std::string transport;
  };
  std::vector<Slot> slots;
  std::vector<std::future<Result<json::Json>>> pending;
  {
    MutexLock lock(fleetMutex_);
    slots.resize(workers_.size());
    pending.resize(workers_.size());
    // Fan out to every socket worker before awaiting any response — the
    // same submit-then-wait shape as FanOutListSessions, so dead workers'
    // timeouts overlap instead of stacking.
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      slots[i].live = IsLive(i);
      if (!slots[i].live) continue;
      slots[i].transport = workers_[i]->Describe();
      slots[i].shared = workers_[i]->LocalServer() != nullptr;
      if (!slots[i].shared) pending[i] = lanes_[i]->Submit(metricsRequest);
    }
  }

  json::Json workerList = json::Json::MakeArray();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    json::Json entry = json::Json::MakeObject();
    entry.Set("worker", static_cast<std::int64_t>(i));
    if (!slots[i].live) {
      entry.Set("removed", true);
      workerList.Append(std::move(entry));
      continue;
    }
    entry.Set("transport", slots[i].transport);
    if (!pending[i].valid()) {
      // In-process worker: its numbers are already part of `fleet`.
      entry.Set("sharedProcess", true);
      workerList.Append(std::move(entry));
      continue;
    }
    auto result = pending[i].get();
    json::Json answer = result.ok() ? std::move(result).value()
                                    : server::MakeErrorResponse(result.error());
    json::Json* metrics = answer.Find("metrics");
    if (!IsOk(answer) || metrics == nullptr) {
      entry.Set("unreachable", true);
      entry.Set("error",
                answer.GetString("message", "response carried no metrics"));
    } else {
      obs::MergeMetricsJson(fleet, *metrics);
      entry.Set("metrics", std::move(*metrics));
    }
    workerList.Append(std::move(entry));
  }

  json::Json response = Ok();
  if (request.GetString("format", "json") == "text") {
    response.Set("text", obs::MetricsToPrometheusText(fleet));
  } else {
    response.Set("fleet", std::move(fleet));
  }
  response.Set("workers", std::move(workerList));
  return response;
}

json::Json ShardRouter::TraceDump() {
  MutexLock opLock(fleetOpMutex_);
  json::Json traceRequest = json::Json::MakeObject();
  traceRequest.Set("command", "traceDump");
  std::vector<std::string> transports;
  std::vector<std::future<Result<json::Json>>> pending;
  {
    MutexLock lock(fleetMutex_);
    transports.resize(workers_.size());
    pending.resize(workers_.size());
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (!IsLive(i) || workers_[i]->LocalServer() != nullptr) continue;
      transports[i] = workers_[i]->Describe();
      pending[i] = lanes_[i]->Submit(traceRequest);
    }
  }

  json::Json workerList = json::Json::MakeArray();
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (!pending[i].valid()) continue;  // removed or shares this ring
    json::Json entry = json::Json::MakeObject();
    entry.Set("worker", static_cast<std::int64_t>(i));
    entry.Set("transport", transports[i]);
    auto result = pending[i].get();
    json::Json answer = result.ok() ? std::move(result).value()
                                    : server::MakeErrorResponse(result.error());
    json::Json* trace = answer.Find("trace");
    if (!IsOk(answer) || trace == nullptr) {
      entry.Set("unreachable", true);
      entry.Set("error",
                answer.GetString("message", "response carried no trace"));
    } else {
      entry.Set("trace", std::move(*trace));
    }
    workerList.Append(std::move(entry));
  }

  json::Json response = Ok();
  // The router's own ring holds the fleet-operation spans (drain,
  // rebalance, quiesce) plus anything in-process workers recorded.
  response.Set("trace", obs::TraceRing::Instance().ToJson());
  response.Set("workers", std::move(workerList));
  return response;
}

Status ShardRouter::MoveSession(std::int64_t globalId, std::size_t destination,
                                std::uint64_t* movedBytes, bool* skipped) {
  Placement source;
  {
    MutexLock lock(fleetMutex_);
    auto it = placements_.find(globalId);
    if (it == placements_.end()) {
      // Deleted by a client whose request was already queued when the
      // gate closed: executed during the quiesce, finalized since.
      // Nothing to move, nothing lost.
      if (skipped != nullptr) *skipped = true;
      return Status::Ok();
    }
    source = it->second;
  }

  // Ship a delta blob only when the destination's hello advertised v3
  // decode support; a peer whose capability is unknown (disconnected
  // socket, old build) gets a full image — always decodable, never
  // lossy. The snapshot under the fleet mutex is advisory: a stale
  // answer costs at most one fallback round trip below.
  bool deltaExport = false;
  {
    MutexLock lock(fleetMutex_);
    deltaExport = options_.deltaBlobs && IsLive(destination) &&
                  workers_[destination]->SupportsDeltaBlobs();
  }

  // Source-side calls go straight down the transport: the caller closed
  // the source worker's gate and quiesced its lane, so the lane is idle
  // and stays idle (every submission path checks the gate) — the
  // transport is ours until the gate reopens.
  auto exportFrom = [&](bool delta) {
    json::Json exportRequest = json::Json::MakeObject();
    exportRequest.Set("command", "exportSession");
    exportRequest.Set("sessionId", source.localId);
    if (delta) exportRequest.Set("encoding", "delta");
    return CallWorkerDirect(source.worker, exportRequest);
  };
  auto exportFailed = [&](const json::Json& exported) {
    {
      // A delete that executed during the quiesce may finalize (erase
      // its placement) at any point after our snapshot above; if the
      // placement is gone now, the failed export was that delete, not a
      // lost session.
      MutexLock lock(fleetMutex_);
      if (placements_.find(globalId) == placements_.end()) {
        if (skipped != nullptr) *skipped = true;
        return Status::Ok();
      }
    }
    // The session vanished from its worker (deleted behind the router's
    // back, export failed, or the worker process is dead). Nothing
    // moved; surface the worker's error.
    return Status::Fail(
        ErrorKind::kInternal,
        "export of session " + std::to_string(globalId) + " from worker " +
            std::to_string(source.worker) + " failed: " +
            exported.GetString("message", "unknown error"));
  };
  // Session blobs can be tens of MiB of base64; read by reference and
  // copy exactly once (into the import request). The import rides the
  // destination's lane so it cannot interleave with a response already
  // executing there — ordering on the destination is preserved exactly
  // as for client traffic.
  auto blobSizeOf = [](const json::Json& exported) -> std::uint64_t {
    const json::Json* blob = exported.Find("blob");
    return blob != nullptr && blob->IsString() ? blob->AsString().size() : 0;
  };
  auto importFrom = [&](const json::Json& exported) {
    static const std::string kNoBlob;
    const json::Json* blob = exported.Find("blob");
    const std::string& blobBytes =
        blob != nullptr && blob->IsString() ? blob->AsString() : kNoBlob;
    json::Json importRequest = json::Json::MakeObject();
    importRequest.Set("command", "importSession");
    importRequest.Set("blob", blobBytes);
    return CallViaLane(destination, importRequest);
  };

  json::Json exported = exportFrom(deltaExport);
  if (!IsOk(exported)) return exportFailed(exported);
  std::uint64_t wireBytes = blobSizeOf(exported);
  json::Json imported = importFrom(exported);
  if (!IsOk(imported) && deltaExport) {
    // Fail closed, not lossy: ANY delta import failure — base-epoch
    // mismatch, decode error, a peer that lied about its capability —
    // retries exactly once with a full image before the move is declared
    // failed. The source copy is still untouched either way.
    static obs::Counter& fallbacks = obs::Registry::Instance().GetCounter(
        "shard.router.deltaFallbacks");
    fallbacks.Increment();
    exported = exportFrom(false);
    if (!IsOk(exported)) return exportFailed(exported);
    wireBytes += blobSizeOf(exported);
    imported = importFrom(exported);
  }
  if (!IsOk(imported)) {
    // Destination refused (blob budget, decode failure) or is
    // unreachable. The source copy was never deleted, so the session is
    // still live where it was — the move aborts, nothing is lost.
    return Status::Fail(
        ErrorKind::kInternal,
        "worker " + std::to_string(destination) + " rejected session " +
            std::to_string(globalId) + ": " +
            imported.GetString("message", "unknown error"));
  }

  // Only now is it safe to drop the source copy.
  json::Json deleteRequest = json::Json::MakeObject();
  deleteRequest.Set("command", "deleteSession");
  deleteRequest.Set("sessionId", source.localId);
  json::Json deleted = CallWorkerDirect(source.worker, deleteRequest);
  if (!IsOk(deleted)) {
    // Failing to delete would leave two live copies; roll the import back
    // so the mapping stays unambiguous.
    json::Json rollback = json::Json::MakeObject();
    rollback.Set("command", "deleteSession");
    rollback.Set("sessionId", imported.GetInt("sessionId", -1));
    CallViaLane(destination, rollback);
    return Status::Fail(
        ErrorKind::kInternal,
        "could not delete session " + std::to_string(globalId) +
            " from worker " + std::to_string(source.worker) +
            " after migration: " + deleted.GetString("message", ""));
  }

  {
    MutexLock lock(fleetMutex_);
    placements_[globalId] =
        Placement{destination, imported.GetInt("sessionId", -1)};
  }
  // wireBytes is what actually crossed the wire for this move — the
  // delta blob, plus the full image too when the fallback fired.
  if (movedBytes != nullptr) *movedBytes += wireBytes;
  static obs::Counter& migrations =
      obs::Registry::Instance().GetCounter("shard.router.migrations");
  static obs::Counter& migrationBytes =
      obs::Registry::Instance().GetCounter("shard.router.migrationBytes");
  migrations.Increment();
  migrationBytes.Add(wireBytes);
  return Status::Ok();
}

std::vector<std::int64_t> ShardRouter::DrainSessions(std::size_t index,
                                                     json::Json& response,
                                                     bool* sourceReachable) {
  struct Victim {
    std::int64_t globalId = 0;
    std::int64_t localId = 0;
  };
  std::vector<Victim> toMove;
  std::vector<bool> eligible;
  {
    MutexLock lock(fleetMutex_);
    for (const auto& [globalId, placement] : placements_) {
      if (placement.worker == index) {
        toMove.push_back(Victim{globalId, placement.localId});
      }
    }
    eligible = Eligible();
  }

  // Per-session byte estimates for the drained worker, and one fleet-wide
  // load snapshot, both taken once: the loop below keeps the destination
  // loads current incrementally instead of re-walking every worker's
  // session table per move. The source is listed directly (its lane is
  // quiesced behind the closed gate); the peers are probed through their
  // lanes.
  std::map<std::int64_t, std::uint64_t> sessionBytes;
  {
    json::Json listRequest = json::Json::MakeObject();
    listRequest.Set("command", "listSessions");
    const json::Json listed = CallWorkerDirect(index, listRequest);
    if (sourceReachable != nullptr) *sourceReachable = IsOk(listed);
    const auto localIndex = IndexSessions(listed);
    for (const Victim& victim : toMove) {
      auto found = localIndex.find(victim.localId);
      if (found != localIndex.end()) {
        sessionBytes[victim.globalId] = static_cast<std::uint64_t>(
            found->second->GetInt("approxBytes", 0));
      }
    }
  }
  FleetLoads fleet = ProbeLoads(/*skip=*/index);
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    // Never pick an unreachable destination: the import would fail and
    // burn an export round-trip per session.
    eligible[i] = eligible[i] && fleet.reachable[i];
  }
  eligible[index] = false;

  std::int64_t moved = 0;
  std::uint64_t movedBytes = 0;
  std::vector<std::int64_t> failedIds;
  json::Json failed = json::Json::MakeArray();
  for (const Victim& victim : toMove) {
    auto destination = LeastLoaded(fleet.bytes, eligible);
    bool skipped = false;
    Status status =
        destination.has_value()
            ? MoveSession(victim.globalId, *destination, &movedBytes, &skipped)
            : Status::Fail(ErrorKind::kUnavailable,
                           "no eligible destination worker for session " +
                               std::to_string(victim.globalId));
    if (skipped) continue;  // concurrently deleted: neither moved nor failed
    if (status.ok()) {
      ++moved;
      fleet.bytes[*destination] += sessionBytes[victim.globalId];
    } else {
      failedIds.push_back(victim.globalId);
      json::Json failure = json::Json::MakeObject();
      failure.Set("sessionId", victim.globalId);
      failure.Set("message", status.error().message);
      failed.Append(std::move(failure));
    }
  }

  response.Set("moved", moved);
  response.Set("movedBytes", static_cast<std::int64_t>(movedBytes));
  response.Set("failed", std::move(failed));
  return failedIds;
}

json::Json ShardRouter::DrainWorker(const json::Json& request) {
  MutexLock opLock(fleetOpMutex_);
  const std::int64_t worker = request.GetInt("worker", -1);
  std::size_t index = 0;
  {
    MutexLock lock(fleetMutex_);
    if (worker < 0 || worker >= static_cast<std::int64_t>(workers_.size()) ||
        !IsLive(static_cast<std::size_t>(worker))) {
      return RouterError(ErrorKind::kInvalidArgument,
                         "unknown worker " + std::to_string(worker));
    }
    index = static_cast<std::size_t>(worker);
    // Close the worker to new placements before touching its sessions, so
    // the drain cannot race its own imports back onto the source.
    // Draining an already-drained (empty) worker is a no-op success.
    drained_[index] = true;
  }
  obs::ScopedSpan span("fleet", "drainWorker");
  WorkerLane* lane = CloseGate(index);
  {
    // The quiesce barrier: wait out any request already in the worker's
    // lane (an in-flight `run` completes; its client gets a normal
    // response). New requests for the worker's sessions block on the
    // gate and execute after the drain, against the sessions' new homes
    // — traffic for every other worker flows the whole time.
    obs::ScopedSpan quiesceSpan("fleet", "quiesce");
    quiesceSpan.SetDetail(StrFormat("worker=%zu", index));
    lane->Quiesce();
  }

  json::Json response = json::Json::MakeObject();
  const std::vector<std::int64_t> failedIds = DrainSessions(index, response);
  OpenGate(index);
  span.SetDetail(StrFormat("worker=%zu moved=%lld failed=%zu", index,
                           static_cast<long long>(response.GetInt("moved", 0)),
                           failedIds.size()));
  if (failedIds.empty()) {
    response.Set("status", "ok");
    return response;
  }
  // Error envelope with the drain tallies carried along (AddErrorDetail
  // also mirrors each field at the top level for legacy readers).
  json::Json error = server::MakeErrorResponse(Error{
      ErrorKind::kInternal,
      "drain of worker " + std::to_string(worker) + " left " +
          std::to_string(failedIds.size()) +
          " session(s) on the worker (each is still live and retryable)"});
  server::AddErrorDetail(error, "moved", response.GetInt("moved", 0));
  server::AddErrorDetail(error, "movedBytes", response.GetInt("movedBytes", 0));
  if (json::Json* failed = response.Find("failed"); failed != nullptr) {
    server::AddErrorDetail(error, "failed", std::move(*failed));
  }
  return error;
}

json::Json ShardRouter::OpenWorker(const json::Json& request) {
  MutexLock opLock(fleetOpMutex_);
  MutexLock lock(fleetMutex_);
  const std::int64_t worker = request.GetInt("worker", -1);
  if (worker < 0 || worker >= static_cast<std::int64_t>(workers_.size()) ||
      !IsLive(static_cast<std::size_t>(worker))) {
    return RouterError(ErrorKind::kInvalidArgument,
                       "unknown worker " + std::to_string(worker));
  }
  drained_[static_cast<std::size_t>(worker)] = false;
  return Ok();
}

json::Json ShardRouter::AddWorker(const json::Json& request) {
  MutexLock opLock(fleetOpMutex_);
  obs::ScopedSpan span("fleet", "addWorker");
  // The slot index cannot shift under us — only fleet operations grow the
  // vectors and they serialize on fleetOpMutex_ — but the read itself
  // still takes the fleet mutex (concurrent routing reads the vectors).
  std::size_t index = 0;
  {
    MutexLock lock(fleetMutex_);
    index = workers_.size();
  }
  Result<std::shared_ptr<WorkerTransport>> transport = [&]()
      -> Result<std::shared_ptr<WorkerTransport>> {
    const std::string address = request.GetString("address", "");
    if (!address.empty()) {
      return std::shared_ptr<WorkerTransport>(
          std::make_shared<SocketTransport>(address,
                                            options_.socketOptions));
    }
    return MakeTransport(index, options_.workerLimits);
  }();
  if (!transport.ok()) {
    return server::MakeErrorResponse(transport.error());
  }

  // Probe before committing the slot: a bogus address or a worker that
  // died during spawn must not claim an arc of the ring. The transport
  // has no lane yet, so the call is direct.
  json::Json probe = json::Json::MakeObject();
  probe.Set("command", "listSessions");
  auto probed = transport.value()->Call(probe);
  if (!probed.ok()) {
    return RouterError(ErrorKind::kUnavailable,
                       "new worker " + transport.value()->Describe() +
                           " failed its probe: " + probed.error().message);
  }

  std::string describe;
  {
    MutexLock lock(fleetMutex_);
    workers_.push_back(std::move(transport).value());
    lanes_.push_back(std::make_unique<WorkerLane>(
        workers_.back(), options_.maxLaneQueueDepth));
    drained_.push_back(false);
    gated_.push_back(false);
    ring_.AddWorker();
    describe = workers_[index]->Describe();
  }
  span.SetDetail(StrFormat("worker=%zu transport=%s", index,
                           describe.c_str()));

  json::Json response = Ok();
  response.Set("worker", static_cast<std::int64_t>(index));
  response.Set("transport", describe);
  return response;
}

json::Json ShardRouter::RemoveWorker(const json::Json& request) {
  MutexLock opLock(fleetOpMutex_);
  const std::int64_t worker = request.GetInt("worker", -1);
  const bool force = request.GetBool("force", false);
  std::size_t index = 0;
  // Snapshotted under the fleet mutex; the shared_ptr keeps the transport
  // alive for the unlocked shutdown round trip below even after the slot
  // is nulled out.
  std::shared_ptr<WorkerTransport> transport;
  {
    MutexLock lock(fleetMutex_);
    if (worker < 0 || worker >= static_cast<std::int64_t>(workers_.size()) ||
        !IsLive(static_cast<std::size_t>(worker))) {
      return RouterError(ErrorKind::kInvalidArgument,
                         "unknown worker " + std::to_string(worker));
    }
    index = static_cast<std::size_t>(worker);
    drained_[index] = true;
    transport = workers_[index];
  }
  obs::ScopedSpan span("fleet", "removeWorker");
  WorkerLane* lane = CloseGate(index);
  {
    obs::ScopedSpan quiesceSpan("fleet", "quiesce");
    quiesceSpan.SetDetail(StrFormat("worker=%zu", index));
    lane->Quiesce();
  }

  json::Json response = json::Json::MakeObject();
  bool sourceReachable = true;
  const std::vector<std::int64_t> failedIds =
      DrainSessions(index, response, &sourceReachable);
  span.SetDetail(StrFormat("worker=%zu moved=%lld lost=%zu", index,
                           static_cast<long long>(response.GetInt("moved", 0)),
                           failedIds.size()));

  json::Json lost = json::Json::MakeArray();
  if (!failedIds.empty() && !force) {
    // Fail closed: the worker stays (drained), every stranded session is
    // still addressed, and the caller can retry or force.
    OpenGate(index);
    json::Json error = server::MakeErrorResponse(Error{
        ErrorKind::kInternal,
        "removeWorker " + std::to_string(worker) + " would strand " +
            std::to_string(failedIds.size()) +
            " session(s); they remain on the (drained) worker — "
            "retry, or pass force to discard them"});
    server::AddErrorDetail(error, "moved", response.GetInt("moved", 0));
    server::AddErrorDetail(error, "movedBytes",
                           response.GetInt("movedBytes", 0));
    if (json::Json* failed = response.Find("failed"); failed != nullptr) {
      server::AddErrorDetail(error, "failed", std::move(*failed));
    }
    server::AddErrorDetail(error, "removed", false);
    server::AddErrorDetail(error, "lost", std::move(lost));
    return error;
  }

  // Graceful stop for process workers; in-process workers just go away
  // with their transport. A worker the drain already proved dead gets no
  // shutdown round trip — it could only burn the connect timeout. The
  // lane is quiesced behind the closed gate, so the shutdown goes
  // straight down the (snapshotted) transport, unlocked.
  const bool processWorker = transport->LocalServer() == nullptr;
  const std::string address = transport->Describe();
  if (processWorker && sourceReachable) {
    json::Json shutdown = json::Json::MakeObject();
    shutdown.Set("command", "shutdownWorker");
    (void)transport->Call(shutdown);
  }
  {
    MutexLock lock(fleetMutex_);
    for (const std::int64_t globalId : failedIds) {
      // force: the operator accepted the loss (dead process, corrupt
      // session). Drop the placement so the id stops routing to a ghost,
      // and say so explicitly — lost-with-error, never silently.
      placements_.erase(globalId);
      lost.Append(json::Json(globalId));
    }
    ring_.RemoveWorker(index);
    // The lane was quiesced above and no submission can have raced past
    // the closed gate, so Stop() finds an empty queue — nothing to
    // orphan, and the (idle) thread joins without blocking this mutex.
    lanes_[index]->Stop();
    lanes_[index] = nullptr;
    workers_[index] = nullptr;
    gated_[index] = false;
    if (processWorker && options_.onWorkerShutdown) {
      // Let the process owner reap the worker now — whether it exited
      // gracefully just above or was already dead — instead of leaving a
      // zombie until fleet teardown.
      options_.onWorkerShutdown(address);
    }
  }
  // Waiters blocked on this worker's gate re-resolve: moved sessions
  // route to their new homes, stragglers get "worker was removed".
  gateOpen_.NotifyAll();

  response.Set("status", "ok");
  response.Set("removed", true);
  response.Set("lost", std::move(lost));
  return response;
}

json::Json ShardRouter::Rebalance() {
  MutexLock opLock(fleetOpMutex_);
  obs::ScopedSpan span("fleet", "rebalance");
  FleetLoads fleet = ProbeLoads();
  std::vector<bool> eligible;
  std::size_t maxMoves = 0;
  {
    MutexLock lock(fleetMutex_);
    eligible = Eligible();
    maxMoves = placements_.size();
  }
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    eligible[i] = eligible[i] && fleet.reachable[i];
  }
  const std::size_t eligibleCount =
      static_cast<std::size_t>(
          std::count(eligible.begin(), eligible.end(), true));
  if (eligibleCount == 0) {
    return RouterError(ErrorKind::kUnavailable,
                       "all workers are drained; nothing to rebalance");
  }

  auto skewOf = [&](const std::vector<std::uint64_t>& loads) {
    std::uint64_t total = 0;
    std::uint64_t maxLoad = 0;
    for (std::size_t i = 0; i < loads.size(); ++i) {
      if (!eligible[i]) continue;
      total += loads[i];
      maxLoad = std::max(maxLoad, loads[i]);
    }
    const double mean =
        static_cast<double>(total) / static_cast<double>(eligibleCount);
    return mean > 0 ? static_cast<double>(maxLoad) / mean : 1.0;
  };

  const double skewBefore = skewOf(fleet.bytes);
  std::int64_t moved = 0;
  std::uint64_t movedBytes = 0;
  json::Json failed = json::Json::MakeArray();

  // Move the smallest session off the most loaded worker onto the least
  // loaded one until the skew is within threshold. Bounded by the session
  // count so a pathological load shape cannot loop forever. Loads are
  // snapshotted once and maintained incrementally — a fleet-wide
  // re-estimate per move would walk every worker's session table each
  // iteration.
  std::vector<std::uint64_t> loads = fleet.bytes;
  for (std::size_t iteration = 0; iteration < maxMoves; ++iteration) {
    if (skewOf(loads) <= options_.rebalanceSkewThreshold) break;
    std::size_t most = 0;
    std::uint64_t mostLoad = 0;
    for (std::size_t i = 0; i < loads.size(); ++i) {
      if (eligible[i] && loads[i] > mostLoad) {
        most = i;
        mostLoad = loads[i];
      }
    }
    std::vector<bool> destinationEligible = eligible;
    destinationEligible[most] = false;
    auto least = LeastLoaded(loads, destinationEligible);
    if (!least.has_value()) break;  // single eligible worker: nothing to do

    // The source of this move must be quiet before its sessions are
    // exported — the same gate-and-quiesce barrier drain takes, per
    // iteration because `most` changes as loads even out. Only traffic
    // for `most` waits; idle lanes make the quiesce itself free.
    CloseGate(most)->Quiesce();

    // Smallest session on the most loaded worker (ties -> lowest global
    // id): smallest first avoids overshooting the mean.
    json::Json listRequest = json::Json::MakeObject();
    listRequest.Set("command", "listSessions");
    const json::Json sessions = CallWorkerDirect(most, listRequest);
    const auto localIndex = IndexSessions(sessions);
    std::int64_t candidate = -1;
    std::int64_t candidateBytes = std::numeric_limits<std::int64_t>::max();
    {
      MutexLock lock(fleetMutex_);
      for (const auto& [globalId, placement] : placements_) {
        if (placement.worker != most) continue;
        auto found = localIndex.find(placement.localId);
        if (found == localIndex.end()) continue;
        const std::int64_t bytes = found->second->GetInt("approxBytes", 0);
        if (bytes < candidateBytes) {
          candidate = globalId;
          candidateBytes = bytes;
        }
      }
    }
    if (candidate < 0) {
      OpenGate(most);
      break;
    }

    // Converge, don't churn: the move must strictly lower the peak. When
    // the skew is carried by one session bigger than the gap between the
    // heaviest and lightest worker, relocating it only moves the peak —
    // stop and report the honest skewAfter instead of shuffling blobs.
    if (loads[*least] + static_cast<std::uint64_t>(candidateBytes) >=
        mostLoad) {
      OpenGate(most);
      break;
    }

    bool skipped = false;
    Status status = MoveSession(candidate, *least, &movedBytes, &skipped);
    OpenGate(most);
    if (skipped) continue;  // deleted mid-rebalance: pick again
    if (!status.ok()) {
      json::Json failure = json::Json::MakeObject();
      failure.Set("sessionId", candidate);
      failure.Set("message", status.error().message);
      failed.Append(std::move(failure));
      break;  // a stuck session would repeat forever; report and stop
    }
    ++moved;
    const std::uint64_t bytes = static_cast<std::uint64_t>(candidateBytes);
    loads[most] -= std::min(loads[most], bytes);
    loads[*least] += bytes;
  }

  json::Json response;
  if (failed.AsArray().empty()) {
    response = Ok();
  } else {
    response = RouterError(ErrorKind::kInternal,
                           "rebalance stopped on a failed migration");
  }
  // On the error path AddErrorDetail lands each field in the envelope's
  // details and mirrors it at the top level; on success plain Set.
  auto setField = [&](const std::string& key, json::Json value) {
    if (IsOk(response)) {
      response.Set(key, std::move(value));
    } else {
      server::AddErrorDetail(response, key, std::move(value));
    }
  };
  setField("moved", moved);
  setField("movedBytes", static_cast<std::int64_t>(movedBytes));
  setField("skewBefore", skewBefore);
  const double skewAfter = skewOf(ProbeLoads().bytes);
  setField("skewAfter", skewAfter);
  setField("failed", std::move(failed));
  span.SetDetail(StrFormat("moved=%lld skewBefore=%.3f skewAfter=%.3f",
                           static_cast<long long>(moved), skewBefore,
                           skewAfter));
  return response;
}

}  // namespace rvss::shard
