#include "shard/router.h"

#include <algorithm>
#include <future>
#include <limits>
#include <utility>

#include "common/strings.h"
#include "obs/trace.h"
#include "server/wire.h"

namespace rvss::shard {
namespace {

json::Json Ok() {
  json::Json response = json::Json::MakeObject();
  response.Set("status", "ok");
  return response;
}

bool IsOk(const json::Json& response) {
  return response.GetString("status", "") == "ok";
}

json::Json RouterError(ErrorKind kind, std::string message) {
  return server::MakeErrorResponse(Error{kind, std::move(message)});
}

}  // namespace

Result<std::shared_ptr<WorkerTransport>> ShardRouter::MakeTransport(
    std::size_t worker, const server::SimServer::Limits& limits) {
  if (options_.transportFactory) {
    return options_.transportFactory(worker, limits);
  }
  return std::shared_ptr<WorkerTransport>(
      std::make_shared<InProcessTransport>(limits));
}

ShardRouter::ShardRouter(const Options& options)
    : options_(options),
      ring_(std::max<std::size_t>(options.workerCount, 1),
            std::max<std::size_t>(options.virtualNodesPerWorker, 1)) {
  const std::size_t count = std::max<std::size_t>(options.workerCount, 1);
  workers_.reserve(count);
  lanes_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const server::SimServer::Limits& limits =
        options_.perWorkerLimits.size() == count ? options_.perWorkerLimits[i]
                                                 : options_.workerLimits;
    auto transport = MakeTransport(i, limits);
    if (transport.ok()) {
      workers_.push_back(std::move(transport).value());
      lanes_.push_back(std::make_unique<WorkerLane>(workers_.back()));
    } else {
      // A slot whose transport could not be built is born removed: the
      // fleet still comes up, the hole is visible in workerStats, and
      // nothing ever routes there.
      workers_.push_back(nullptr);
      lanes_.push_back(nullptr);
      slotErrors_[i] = transport.error().message;
    }
  }
  drained_.assign(count, false);
}

std::size_t ShardRouter::workerCount() const {
  std::lock_guard<std::mutex> lock(fleetMutex_);
  return workers_.size();
}

std::size_t ShardRouter::sessionCount() const {
  std::lock_guard<std::mutex> lock(fleetMutex_);
  return placements_.size();
}

server::SimServer* ShardRouter::workerServer(std::size_t index) {
  std::lock_guard<std::mutex> lock(fleetMutex_);
  if (index >= workers_.size() || workers_[index] == nullptr) return nullptr;
  return workers_[index]->LocalServer();
}

json::Json ShardRouter::Handle(const json::Json& request) {
  return Dispatch(request);
}

std::string ShardRouter::HandleRaw(std::string_view requestBytes,
                                   bool compress,
                                   server::RequestTiming* timing) {
  return server::HandleRawVia(
      [this](const json::Json& request) { return Dispatch(request); },
      requestBytes, compress, timing);
}

json::Json ShardRouter::CallViaLane(std::size_t worker,
                                    const json::Json& request) {
  if (!IsLive(worker)) {
    return RouterError(ErrorKind::kInvalidArgument,
                       "worker " + std::to_string(worker) + " was removed");
  }
  auto response = lanes_[worker]->Submit(request).get();
  if (!response.ok()) {
    return server::MakeErrorResponse(response.error());
  }
  return std::move(response).value();
}

json::Json ShardRouter::CallWorkerDirect(std::size_t worker,
                                         const json::Json& request) {
  if (!IsLive(worker)) {
    return RouterError(ErrorKind::kInvalidArgument,
                       "worker " + std::to_string(worker) + " was removed");
  }
  auto response = workers_[worker]->Call(request);
  if (!response.ok()) {
    return server::MakeErrorResponse(response.error());
  }
  return std::move(response).value();
}

json::Json ShardRouter::Dispatch(const json::Json& request) {
  const std::string command = request.GetString("command", "");
  obs::Registry& registry = obs::Registry::Instance();
  static obs::Counter& requests =
      registry.GetCounter("shard.router.requests");
  static obs::Histogram& handleUs =
      registry.GetHistogram("shard.router.handle_us");
  requests.Increment();
  if (obs::Enabled()) {
    registry
        .GetCounter("shard.router.cmd." +
                    std::string(obs::SanitizedCommandName(command)))
        .Increment();
  }
  obs::ScopedLatency timer(handleUs);

  if (command == "hello") {
    // The router's own fingerprint: lets a client (or an operator's curl)
    // verify build compatibility without reaching into the fleet.
    return server::MakeHelloResponse();
  }
  if (command == "createSession" || command == "importSession") {
    return AdmitSession(request);
  }
  if (command == "listSessions") return ListSessions();
  if (command == "workerStats") return WorkerStats();
  if (command == "drainWorker") return DrainWorker(request);
  if (command == "openWorker") return OpenWorker(request);
  if (command == "addWorker") return AddWorker(request);
  if (command == "removeWorker") return RemoveWorker(request);
  if (command == "rebalance") return Rebalance();
  if (command == "metrics") return Metrics(request);
  if (command == "traceDump") return TraceDump();
  if (command == "shutdownWorker") {
    // Out-of-band worker-level command: forwarding it would let any API
    // client kill a fleet process. Only the router's own removeWorker
    // path may send it, directly over the transport.
    return RouterError(ErrorKind::kInvalidArgument,
                       "shutdownWorker is not a router command; use "
                       "removeWorker {worker}");
  }
  if (request.Find("sessionId") != nullptr) {
    return RouteSessionCommand(request);
  }
  return StatelessCommand(request);
}

json::Json ShardRouter::StatelessCommand(const json::Json& request) {
  // Stateless commands (compile, parseAsm, checkConfig) and unknown
  // commands need no placement; any live worker gives the right answer —
  // and they are side-effect-free, so a worker whose process is dead is
  // simply skipped for the next one instead of failing the request. The
  // request rides each candidate's lane (the fleet mutex is held only to
  // pick the lane), so a stateless command never races the worker's
  // session traffic.
  json::Json lastError = RouterError(ErrorKind::kInvalidArgument,
                                     "every worker has been removed");
  for (std::size_t i = 0;; ++i) {
    std::future<Result<json::Json>> pending;
    {
      std::lock_guard<std::mutex> lock(fleetMutex_);
      if (i >= workers_.size()) break;
      if (!IsLive(i)) continue;
      // Submit *under* the mutex — the quiesce barrier's contract is
      // that no submission can race a fleet operation; only the wait
      // happens unlocked.
      pending = lanes_[i]->Submit(request);
    }
    auto response = pending.get();
    if (response.ok()) return std::move(response).value();
    lastError = server::MakeErrorResponse(response.error());
  }
  return lastError;
}

std::vector<bool> ShardRouter::Eligible() const {
  std::vector<bool> eligible(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    eligible[i] = IsLive(i) && !drained_[i];
  }
  return eligible;
}

Result<std::size_t> ShardRouter::PlaceNew(std::int64_t globalId) {
  auto worker = ring_.Pick(static_cast<std::uint64_t>(globalId), Eligible());
  if (!worker.has_value()) {
    return Error{ErrorKind::kInvalidArgument,
                 "all workers are drained; no worker accepts new sessions"};
  }
  return *worker;
}

json::Json ShardRouter::AdmitSession(const json::Json& request) {
  // createSession and importSession admit identically: allocate a global
  // id, place it on the ring, forward, and record where it landed. The
  // fleet mutex is held across the worker round trip so the placement
  // map never lags the fleet — a drain that starts after this admission
  // sees the session; one that started before cannot still be running
  // (it holds the same mutex). Admissions therefore serialize against
  // each other; session *execution* does not. Known cost, accepted for
  // now: an admission placed on a lane busy with a long `run` waits
  // behind it with the mutex held, stalling routing fleet-wide for the
  // duration of that slice (same for deleteSession). Lifting it needs a
  // placement "intent" table so the round trip can go unlocked without
  // drains missing in-flight admissions — see ROADMAP PR 5 follow-ups.
  std::lock_guard<std::mutex> lock(fleetMutex_);
  const std::int64_t globalId = nextGlobalId_++;
  auto worker = PlaceNew(globalId);
  if (!worker.ok()) return server::MakeErrorResponse(worker.error());
  json::Json response = CallViaLane(worker.value(), request);
  if (!IsOk(response)) return response;
  static obs::Counter& admissions =
      obs::Registry::Instance().GetCounter("shard.router.admissions");
  admissions.Increment();
  const std::int64_t localId = response.GetInt("sessionId", -1);
  placements_[globalId] = Placement{worker.value(), localId};
  response.Set("sessionId", globalId);
  response.Set("worker", static_cast<std::int64_t>(worker.value()));
  return response;
}

json::Json ShardRouter::RouteSessionCommand(const json::Json& request) {
  const std::int64_t globalId = request.GetInt("sessionId", -1);
  std::future<Result<json::Json>> pending;
  {
    std::lock_guard<std::mutex> lock(fleetMutex_);
    auto it = placements_.find(globalId);
    if (it == placements_.end()) {
      return RouterError(ErrorKind::kInvalidArgument,
                         "unknown sessionId " + std::to_string(globalId));
    }
    const Placement placement = it->second;
    if (!IsLive(placement.worker)) {
      return RouterError(ErrorKind::kInvalidArgument,
                         "worker " + std::to_string(placement.worker) +
                             " was removed");
    }
    json::Json forwarded = request;
    forwarded.Set("sessionId", placement.localId);
    if (request.GetString("command", "") == "deleteSession") {
      // Deletes mutate the placement map, so — like admissions — they
      // hold the mutex across the round trip; a concurrent drain can
      // never try to move a session that is mid-delete.
      json::Json response = CallViaLane(placement.worker, forwarded);
      if (IsOk(response)) placements_.erase(it);
      return response;
    }
    // Pure session commands (step, run, stepBack, exportSession, ...)
    // release the mutex and wait on the lane: this is where the fleet's
    // parallelism comes from. Per-session ordering holds because a
    // session's requests all enter the same FIFO lane, in the order
    // their dispatching threads held the mutex.
    pending = lanes_[placement.worker]->Submit(std::move(forwarded));
  }
  auto response = pending.get();
  if (!response.ok()) {
    return server::MakeErrorResponse(response.error());
  }
  return std::move(response).value();
}

/// localId -> session node, for O(log n) joins against the placement map.
std::map<std::int64_t, const json::Json*> ShardRouter::IndexSessions(
    const json::Json& listResponse) {
  std::map<std::int64_t, const json::Json*> index;
  const json::Json* sessions = listResponse.Find("sessions");
  if (sessions == nullptr || !sessions->IsArray()) return index;
  for (const json::Json& session : sessions->AsArray()) {
    index[session.GetInt("sessionId", -1)] = &session;
  }
  return index;
}

json::Json ShardRouter::ListSessions() {
  // Join each worker's listSessions with the global id map, reporting in
  // global-id order so the output is stable across placements. Holds the
  // fleet mutex throughout: the listing is a consistent snapshot (no
  // admission, deletion or migration can interleave), at the cost of
  // briefly pausing routing. Worker queries fan out to every lane before
  // any response is awaited, so the fleet enumerates in parallel.
  std::lock_guard<std::mutex> lock(fleetMutex_);
  json::Json response = Ok();
  json::Json list = json::Json::MakeArray();
  json::Json unreachable = json::Json::MakeArray();
  std::int64_t totalBytes = 0;
  auto pending = FanOutListSessions();
  std::vector<json::Json> perWorker;
  perWorker.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (!pending[i].valid()) {
      perWorker.push_back(json::Json::MakeObject());
      continue;
    }
    auto result = pending[i].get();
    perWorker.push_back(result.ok()
                            ? std::move(result).value()
                            : server::MakeErrorResponse(result.error()));
    // A live slot whose process is dead cannot enumerate its sessions;
    // flag it so the omissions below read as "unreachable", not
    // "deleted" — the sessions still exist and still route (to errors).
    if (!IsOk(perWorker.back())) {
      unreachable.Append(json::Json(static_cast<std::int64_t>(i)));
    }
  }
  std::vector<std::map<std::int64_t, const json::Json*>> perWorkerIndex;
  perWorkerIndex.reserve(perWorker.size());
  for (const json::Json& listed : perWorker) {
    perWorkerIndex.push_back(IndexSessions(listed));
  }
  for (const auto& [globalId, placement] : placements_) {
    const auto& index = perWorkerIndex[placement.worker];
    auto found = index.find(placement.localId);
    if (found == index.end()) continue;
    json::Json entry = *found->second;
    entry.Set("sessionId", globalId);
    entry.Set("worker", static_cast<std::int64_t>(placement.worker));
    totalBytes += entry.GetInt("approxBytes", 0);
    list.Append(std::move(entry));
  }
  response.Set("sessions", std::move(list));
  response.Set("totalApproxBytes", totalBytes);
  response.Set("unreachableWorkers", std::move(unreachable));
  return response;
}

Result<ShardRouter::WorkerLoad> ShardRouter::ParseLoad(
    Result<json::Json> response) {
  if (!response.ok()) return response.error();
  if (!IsOk(response.value())) {
    return Error{ErrorKind::kInternal,
                 response.value().GetString("message", "listSessions failed")};
  }
  WorkerLoad load;
  const json::Json* sessions = response.value().Find("sessions");
  if (sessions != nullptr && sessions->IsArray()) {
    load.sessions = sessions->AsArray().size();
  }
  load.approxBytes = static_cast<std::uint64_t>(
      response.value().GetInt("totalApproxBytes", 0));
  return load;
}

std::vector<std::future<Result<json::Json>>> ShardRouter::FanOutListSessions(
    std::size_t skip) {
  json::Json listRequest = json::Json::MakeObject();
  listRequest.Set("command", "listSessions");
  std::vector<std::future<Result<json::Json>>> pending(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (i == skip || !IsLive(i)) continue;
    pending[i] = lanes_[i]->Submit(listRequest);
  }
  return pending;
}

ShardRouter::FleetLoads ShardRouter::ProbeLoads(std::size_t skip) {
  FleetLoads loads;
  loads.bytes.assign(workers_.size(), 0);
  loads.reachable.assign(workers_.size(), false);
  auto pending = FanOutListSessions(skip);
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (!pending[i].valid()) continue;
    auto load = ParseLoad(pending[i].get());
    if (!load.ok()) continue;
    loads.bytes[i] = load.value().approxBytes;
    loads.reachable[i] = true;
  }
  return loads;
}

json::Json ShardRouter::WorkerStats() {
  std::lock_guard<std::mutex> lock(fleetMutex_);
  json::Json response = Ok();
  json::Json list = json::Json::MakeArray();
  // Snapshot lane load *before* fanning out the listSessions probes: the
  // probes ride the very lanes being measured, so sampling afterwards
  // would report every queue one deep and the probe itself in flight.
  std::vector<WorkerLane::Stats> laneStats(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (IsLive(i)) laneStats[i] = lanes_[i]->stats();
  }
  auto pending = FanOutListSessions();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    json::Json entry = json::Json::MakeObject();
    entry.Set("worker", static_cast<std::int64_t>(i));
    if (!IsLive(i)) {
      entry.Set("removed", true);
      auto slotError = slotErrors_.find(i);
      if (slotError != slotErrors_.end()) {
        entry.Set("error", slotError->second);
      }
      list.Append(std::move(entry));
      continue;
    }
    entry.Set("transport", workers_[i]->Describe());
    entry.Set("drained", static_cast<bool>(drained_[i]));
    entry.Set("removed", false);
    // Live lane load (the hot-shard tell): how many requests are queued
    // behind this worker, whether one is executing, and how long the last
    // one took — without the cost of a full metrics pull.
    entry.Set("queueDepth",
              static_cast<std::int64_t>(laneStats[i].queueDepth));
    entry.Set("inFlight", laneStats[i].inFlight);
    entry.Set("lastDispatchMs", laneStats[i].lastDispatchMs);
    auto load = ParseLoad(pending[i].get());
    if (load.ok()) {
      entry.Set("sessions", static_cast<std::int64_t>(load.value().sessions));
      entry.Set("approxBytes",
                static_cast<std::int64_t>(load.value().approxBytes));
    } else {
      // A dead worker process: the slot exists, the sessions placed there
      // are unreachable until it restarts — report, don't hide.
      entry.Set("unreachable", true);
      entry.Set("error", load.error().message);
    }
    list.Append(std::move(entry));
  }
  response.Set("workers", std::move(list));
  return response;
}

json::Json ShardRouter::Metrics(const json::Json& request) {
  std::lock_guard<std::mutex> lock(fleetMutex_);
  // Start from this process's registry: router counters, lane and
  // transport histograms — and every in-process worker's server metrics,
  // which land in the same registry (the whole point of a process-wide
  // singleton). That is also why in-process workers are *not* fanned out
  // below: merging their `metrics` response would count this registry
  // twice.
  json::Json fleet = obs::MetricsToJson();

  json::Json metricsRequest = json::Json::MakeObject();
  metricsRequest.Set("command", "metrics");
  // Fan out to every socket worker before awaiting any response — the
  // same submit-then-wait shape as FanOutListSessions, so dead workers'
  // timeouts overlap instead of stacking under the fleet mutex.
  std::vector<std::future<Result<json::Json>>> pending(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (!IsLive(i) || workers_[i]->LocalServer() != nullptr) continue;
    pending[i] = lanes_[i]->Submit(metricsRequest);
  }

  json::Json workerList = json::Json::MakeArray();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    json::Json entry = json::Json::MakeObject();
    entry.Set("worker", static_cast<std::int64_t>(i));
    if (!IsLive(i)) {
      entry.Set("removed", true);
      workerList.Append(std::move(entry));
      continue;
    }
    entry.Set("transport", workers_[i]->Describe());
    if (!pending[i].valid()) {
      // In-process worker: its numbers are already part of `fleet`.
      entry.Set("sharedProcess", true);
      workerList.Append(std::move(entry));
      continue;
    }
    auto result = pending[i].get();
    json::Json answer = result.ok() ? std::move(result).value()
                                    : server::MakeErrorResponse(result.error());
    json::Json* metrics = answer.Find("metrics");
    if (!IsOk(answer) || metrics == nullptr) {
      entry.Set("unreachable", true);
      entry.Set("error",
                answer.GetString("message", "response carried no metrics"));
    } else {
      obs::MergeMetricsJson(fleet, *metrics);
      entry.Set("metrics", std::move(*metrics));
    }
    workerList.Append(std::move(entry));
  }

  json::Json response = Ok();
  if (request.GetString("format", "json") == "text") {
    response.Set("text", obs::MetricsToPrometheusText(fleet));
  } else {
    response.Set("fleet", std::move(fleet));
  }
  response.Set("workers", std::move(workerList));
  return response;
}

json::Json ShardRouter::TraceDump() {
  std::lock_guard<std::mutex> lock(fleetMutex_);
  json::Json traceRequest = json::Json::MakeObject();
  traceRequest.Set("command", "traceDump");
  std::vector<std::future<Result<json::Json>>> pending(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (!IsLive(i) || workers_[i]->LocalServer() != nullptr) continue;
    pending[i] = lanes_[i]->Submit(traceRequest);
  }

  json::Json workerList = json::Json::MakeArray();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (!pending[i].valid()) continue;  // removed or shares this ring
    json::Json entry = json::Json::MakeObject();
    entry.Set("worker", static_cast<std::int64_t>(i));
    entry.Set("transport", workers_[i]->Describe());
    auto result = pending[i].get();
    json::Json answer = result.ok() ? std::move(result).value()
                                    : server::MakeErrorResponse(result.error());
    json::Json* trace = answer.Find("trace");
    if (!IsOk(answer) || trace == nullptr) {
      entry.Set("unreachable", true);
      entry.Set("error",
                answer.GetString("message", "response carried no trace"));
    } else {
      entry.Set("trace", std::move(*trace));
    }
    workerList.Append(std::move(entry));
  }

  json::Json response = Ok();
  // The router's own ring holds the fleet-operation spans (drain,
  // rebalance, quiesce) plus anything in-process workers recorded.
  response.Set("trace", obs::TraceRing::Instance().ToJson());
  response.Set("workers", std::move(workerList));
  return response;
}

Status ShardRouter::MoveSession(std::int64_t globalId, std::size_t destination,
                                std::uint64_t* movedBytes) {
  auto it = placements_.find(globalId);
  if (it == placements_.end()) {
    return Status::Fail(ErrorKind::kInvalidArgument,
                        "unknown sessionId " + std::to_string(globalId));
  }
  const Placement source = it->second;

  // Source-side calls go straight down the transport: the caller holds
  // the quiesce barrier on the source worker, so its lane is idle and
  // stays idle (every submission path needs the fleet mutex we hold).
  json::Json exportRequest = json::Json::MakeObject();
  exportRequest.Set("command", "exportSession");
  exportRequest.Set("sessionId", source.localId);
  json::Json exported = CallWorkerDirect(source.worker, exportRequest);
  if (!IsOk(exported)) {
    // The session vanished from its worker (deleted behind the router's
    // back, export failed, or the worker process is dead). Nothing
    // moved; surface the worker's error.
    return Status::Fail(
        ErrorKind::kInternal,
        "export of session " + std::to_string(globalId) + " from worker " +
            std::to_string(source.worker) + " failed: " +
            exported.GetString("message", "unknown error"));
  }

  // Session blobs can be tens of MiB of base64; read by reference and
  // copy exactly once (into the import request).
  static const std::string kNoBlob;
  const json::Json* blob = exported.Find("blob");
  const std::string& blobBytes =
      blob != nullptr && blob->IsString() ? blob->AsString() : kNoBlob;
  json::Json importRequest = json::Json::MakeObject();
  importRequest.Set("command", "importSession");
  importRequest.Set("blob", blobBytes);
  // The import rides the destination's lane so it cannot interleave with
  // a response already executing there — ordering on the destination is
  // preserved exactly as for client traffic.
  json::Json imported = CallViaLane(destination, importRequest);
  if (!IsOk(imported)) {
    // Destination refused (blob budget, decode failure) or is
    // unreachable. The source copy was never deleted, so the session is
    // still live where it was — the move aborts, nothing is lost.
    return Status::Fail(
        ErrorKind::kInternal,
        "worker " + std::to_string(destination) + " rejected session " +
            std::to_string(globalId) + ": " +
            imported.GetString("message", "unknown error"));
  }

  // Only now is it safe to drop the source copy.
  json::Json deleteRequest = json::Json::MakeObject();
  deleteRequest.Set("command", "deleteSession");
  deleteRequest.Set("sessionId", source.localId);
  json::Json deleted = CallWorkerDirect(source.worker, deleteRequest);
  if (!IsOk(deleted)) {
    // Failing to delete would leave two live copies; roll the import back
    // so the mapping stays unambiguous.
    json::Json rollback = json::Json::MakeObject();
    rollback.Set("command", "deleteSession");
    rollback.Set("sessionId", imported.GetInt("sessionId", -1));
    CallViaLane(destination, rollback);
    return Status::Fail(
        ErrorKind::kInternal,
        "could not delete session " + std::to_string(globalId) +
            " from worker " + std::to_string(source.worker) +
            " after migration: " + deleted.GetString("message", ""));
  }

  it->second = Placement{destination, imported.GetInt("sessionId", -1)};
  if (movedBytes != nullptr) *movedBytes += blobBytes.size();
  static obs::Counter& migrations =
      obs::Registry::Instance().GetCounter("shard.router.migrations");
  static obs::Counter& migrationBytes =
      obs::Registry::Instance().GetCounter("shard.router.migration_bytes");
  migrations.Increment();
  migrationBytes.Add(blobBytes.size());
  return Status::Ok();
}

std::vector<std::int64_t> ShardRouter::DrainSessions(std::size_t index,
                                                     json::Json& response,
                                                     bool* sourceReachable) {
  std::vector<std::int64_t> toMove;
  for (const auto& [globalId, placement] : placements_) {
    if (placement.worker == index) toMove.push_back(globalId);
  }

  // Per-session byte estimates for the drained worker, and one fleet-wide
  // load snapshot, both taken once: the loop below keeps the destination
  // loads current incrementally instead of re-walking every worker's
  // session table per move. The source is listed directly (its lane is
  // quiesced); the peers are probed through their lanes.
  std::map<std::int64_t, std::uint64_t> sessionBytes;
  {
    json::Json listRequest = json::Json::MakeObject();
    listRequest.Set("command", "listSessions");
    const json::Json listed = CallWorkerDirect(index, listRequest);
    if (sourceReachable != nullptr) *sourceReachable = IsOk(listed);
    const auto localIndex = IndexSessions(listed);
    for (const std::int64_t globalId : toMove) {
      auto found = localIndex.find(placements_[globalId].localId);
      if (found != localIndex.end()) {
        sessionBytes[globalId] = static_cast<std::uint64_t>(
            found->second->GetInt("approxBytes", 0));
      }
    }
  }
  FleetLoads fleet = ProbeLoads(/*skip=*/index);
  std::vector<bool> eligible = Eligible();
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    // Never pick an unreachable destination: the import would fail and
    // burn an export round-trip per session.
    eligible[i] = eligible[i] && fleet.reachable[i];
  }
  eligible[index] = false;

  std::int64_t moved = 0;
  std::uint64_t movedBytes = 0;
  std::vector<std::int64_t> failedIds;
  json::Json failed = json::Json::MakeArray();
  for (const std::int64_t globalId : toMove) {
    auto destination = LeastLoaded(fleet.bytes, eligible);
    Status status =
        destination.has_value()
            ? MoveSession(globalId, *destination, &movedBytes)
            : Status::Fail(ErrorKind::kInvalidArgument,
                           "no eligible destination worker for session " +
                               std::to_string(globalId));
    if (status.ok()) {
      ++moved;
      fleet.bytes[*destination] += sessionBytes[globalId];
    } else {
      failedIds.push_back(globalId);
      json::Json failure = json::Json::MakeObject();
      failure.Set("sessionId", globalId);
      failure.Set("message", status.error().message);
      failed.Append(std::move(failure));
    }
  }

  response.Set("moved", moved);
  response.Set("movedBytes", static_cast<std::int64_t>(movedBytes));
  response.Set("failed", std::move(failed));
  return failedIds;
}

json::Json ShardRouter::DrainWorker(const json::Json& request) {
  std::lock_guard<std::mutex> lock(fleetMutex_);
  const std::int64_t worker = request.GetInt("worker", -1);
  if (worker < 0 || worker >= static_cast<std::int64_t>(workers_.size()) ||
      !IsLive(static_cast<std::size_t>(worker))) {
    return RouterError(ErrorKind::kInvalidArgument,
                       "unknown worker " + std::to_string(worker));
  }
  const std::size_t index = static_cast<std::size_t>(worker);
  obs::ScopedSpan span("fleet", "drainWorker");
  // Close the worker to new placements before touching its sessions, so
  // the drain cannot race its own imports back onto the source. Draining
  // an already-drained (empty) worker is a no-op success.
  drained_[index] = true;
  {
    // The quiesce barrier: wait out any request already in the worker's
    // lane (an in-flight `run` completes; its client gets a normal
    // response). New requests for the worker's sessions queue behind the
    // fleet mutex and execute after the drain, against the sessions' new
    // homes.
    obs::ScopedSpan quiesceSpan("fleet", "quiesce");
    quiesceSpan.SetDetail(StrFormat("worker=%zu", index));
    lanes_[index]->Quiesce();
  }

  json::Json response = json::Json::MakeObject();
  const std::vector<std::int64_t> failedIds = DrainSessions(index, response);
  span.SetDetail(StrFormat("worker=%zu moved=%lld failed=%zu", index,
                           static_cast<long long>(response.GetInt("moved", 0)),
                           failedIds.size()));
  if (failedIds.empty()) {
    response.Set("status", "ok");
  } else {
    response.Set("status", "error");
    response.Set("kind", ToString(ErrorKind::kInternal));
    response.Set(
        "message",
        "drain of worker " + std::to_string(worker) + " left " +
            std::to_string(failedIds.size()) +
            " session(s) on the worker (each is still live and retryable)");
  }
  return response;
}

json::Json ShardRouter::OpenWorker(const json::Json& request) {
  std::lock_guard<std::mutex> lock(fleetMutex_);
  const std::int64_t worker = request.GetInt("worker", -1);
  if (worker < 0 || worker >= static_cast<std::int64_t>(workers_.size()) ||
      !IsLive(static_cast<std::size_t>(worker))) {
    return RouterError(ErrorKind::kInvalidArgument,
                       "unknown worker " + std::to_string(worker));
  }
  drained_[static_cast<std::size_t>(worker)] = false;
  return Ok();
}

json::Json ShardRouter::AddWorker(const json::Json& request) {
  std::lock_guard<std::mutex> lock(fleetMutex_);
  obs::ScopedSpan span("fleet", "addWorker");
  const std::size_t index = workers_.size();
  Result<std::shared_ptr<WorkerTransport>> transport = [&]()
      -> Result<std::shared_ptr<WorkerTransport>> {
    const std::string address = request.GetString("address", "");
    if (!address.empty()) {
      return std::shared_ptr<WorkerTransport>(
          std::make_shared<SocketTransport>(address,
                                            options_.socketOptions));
    }
    return MakeTransport(index, options_.workerLimits);
  }();
  if (!transport.ok()) {
    return server::MakeErrorResponse(transport.error());
  }

  // Probe before committing the slot: a bogus address or a worker that
  // died during spawn must not claim an arc of the ring. The transport
  // has no lane yet, so the call is direct.
  json::Json probe = json::Json::MakeObject();
  probe.Set("command", "listSessions");
  auto probed = transport.value()->Call(probe);
  if (!probed.ok()) {
    return RouterError(ErrorKind::kInvalidArgument,
                       "new worker " + transport.value()->Describe() +
                           " failed its probe: " + probed.error().message);
  }

  workers_.push_back(std::move(transport).value());
  lanes_.push_back(std::make_unique<WorkerLane>(workers_.back()));
  drained_.push_back(false);
  ring_.AddWorker();
  span.SetDetail(StrFormat("worker=%zu transport=%s", index,
                           workers_[index]->Describe().c_str()));

  json::Json response = Ok();
  response.Set("worker", static_cast<std::int64_t>(index));
  response.Set("transport", workers_[index]->Describe());
  return response;
}

json::Json ShardRouter::RemoveWorker(const json::Json& request) {
  std::lock_guard<std::mutex> lock(fleetMutex_);
  const std::int64_t worker = request.GetInt("worker", -1);
  if (worker < 0 || worker >= static_cast<std::int64_t>(workers_.size()) ||
      !IsLive(static_cast<std::size_t>(worker))) {
    return RouterError(ErrorKind::kInvalidArgument,
                       "unknown worker " + std::to_string(worker));
  }
  const std::size_t index = static_cast<std::size_t>(worker);
  const bool force = request.GetBool("force", false);
  obs::ScopedSpan span("fleet", "removeWorker");
  drained_[index] = true;
  {
    obs::ScopedSpan quiesceSpan("fleet", "quiesce");
    quiesceSpan.SetDetail(StrFormat("worker=%zu", index));
    lanes_[index]->Quiesce();
  }

  json::Json response = json::Json::MakeObject();
  bool sourceReachable = true;
  const std::vector<std::int64_t> failedIds =
      DrainSessions(index, response, &sourceReachable);
  span.SetDetail(StrFormat("worker=%zu moved=%lld lost=%zu", index,
                           static_cast<long long>(response.GetInt("moved", 0)),
                           failedIds.size()));

  json::Json lost = json::Json::MakeArray();
  if (!failedIds.empty() && !force) {
    // Fail closed: the worker stays (drained), every stranded session is
    // still addressed, and the caller can retry or force.
    response.Set("status", "error");
    response.Set("kind", ToString(ErrorKind::kInternal));
    response.Set("message",
                 "removeWorker " + std::to_string(worker) + " would strand " +
                     std::to_string(failedIds.size()) +
                     " session(s); they remain on the (drained) worker — "
                     "retry, or pass force to discard them");
    response.Set("removed", false);
    response.Set("lost", std::move(lost));
    return response;
  }
  for (const std::int64_t globalId : failedIds) {
    // force: the operator accepted the loss (dead process, corrupt
    // session). Drop the placement so the id stops routing to a ghost,
    // and say so explicitly — lost-with-error, never silently.
    placements_.erase(globalId);
    lost.Append(json::Json(globalId));
  }

  // Graceful stop for process workers; in-process workers just go away
  // with their transport. A worker the drain already proved dead gets no
  // shutdown round trip — it could only burn the connect timeout. The
  // lane is quiesced, so the shutdown goes straight down the transport.
  const bool processWorker = workers_[index]->LocalServer() == nullptr;
  const std::string address = workers_[index]->Describe();
  if (processWorker && sourceReachable) {
    json::Json shutdown = json::Json::MakeObject();
    shutdown.Set("command", "shutdownWorker");
    (void)workers_[index]->Call(shutdown);
  }
  ring_.RemoveWorker(index);
  // The lane was quiesced above and no submission can have raced in (the
  // fleet mutex is held), so Stop() finds an empty queue — nothing to
  // orphan.
  lanes_[index]->Stop();
  lanes_[index] = nullptr;
  workers_[index] = nullptr;
  if (processWorker && options_.onWorkerShutdown) {
    // Let the process owner reap the worker now — whether it exited
    // gracefully just above or was already dead — instead of leaving a
    // zombie until fleet teardown.
    options_.onWorkerShutdown(address);
  }

  response.Set("status", "ok");
  response.Set("removed", true);
  response.Set("lost", std::move(lost));
  return response;
}

json::Json ShardRouter::Rebalance() {
  std::lock_guard<std::mutex> lock(fleetMutex_);
  obs::ScopedSpan span("fleet", "rebalance");
  FleetLoads fleet = ProbeLoads();
  std::vector<bool> eligible = Eligible();
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    eligible[i] = eligible[i] && fleet.reachable[i];
  }
  const std::size_t eligibleCount =
      static_cast<std::size_t>(
          std::count(eligible.begin(), eligible.end(), true));
  if (eligibleCount == 0) {
    return RouterError(ErrorKind::kInvalidArgument,
                       "all workers are drained; nothing to rebalance");
  }

  auto skewOf = [&](const std::vector<std::uint64_t>& loads) {
    std::uint64_t total = 0;
    std::uint64_t maxLoad = 0;
    for (std::size_t i = 0; i < loads.size(); ++i) {
      if (!eligible[i]) continue;
      total += loads[i];
      maxLoad = std::max(maxLoad, loads[i]);
    }
    const double mean =
        static_cast<double>(total) / static_cast<double>(eligibleCount);
    return mean > 0 ? static_cast<double>(maxLoad) / mean : 1.0;
  };

  const double skewBefore = skewOf(fleet.bytes);
  std::int64_t moved = 0;
  std::uint64_t movedBytes = 0;
  json::Json failed = json::Json::MakeArray();

  // Move the smallest session off the most loaded worker onto the least
  // loaded one until the skew is within threshold. Bounded by the session
  // count so a pathological load shape cannot loop forever. Loads are
  // snapshotted once and maintained incrementally — a fleet-wide
  // re-estimate per move would walk every worker's session table each
  // iteration.
  std::vector<std::uint64_t> loads = fleet.bytes;
  const std::size_t maxMoves = placements_.size();
  for (std::size_t iteration = 0; iteration < maxMoves; ++iteration) {
    if (skewOf(loads) <= options_.rebalanceSkewThreshold) break;
    std::size_t most = 0;
    std::uint64_t mostLoad = 0;
    for (std::size_t i = 0; i < loads.size(); ++i) {
      if (eligible[i] && loads[i] > mostLoad) {
        most = i;
        mostLoad = loads[i];
      }
    }
    std::vector<bool> destinationEligible = eligible;
    destinationEligible[most] = false;
    auto least = LeastLoaded(loads, destinationEligible);
    if (!least.has_value()) break;  // single eligible worker: nothing to do

    // The source of this move must be quiet before its sessions are
    // exported — the same barrier drain takes, per iteration because
    // `most` changes as loads even out. Idle lanes make this free.
    lanes_[most]->Quiesce();

    // Smallest session on the most loaded worker (ties -> lowest global
    // id): smallest first avoids overshooting the mean.
    json::Json listRequest = json::Json::MakeObject();
    listRequest.Set("command", "listSessions");
    const json::Json sessions = CallWorkerDirect(most, listRequest);
    const auto localIndex = IndexSessions(sessions);
    std::int64_t candidate = -1;
    std::int64_t candidateBytes = std::numeric_limits<std::int64_t>::max();
    for (const auto& [globalId, placement] : placements_) {
      if (placement.worker != most) continue;
      auto found = localIndex.find(placement.localId);
      if (found == localIndex.end()) continue;
      const std::int64_t bytes = found->second->GetInt("approxBytes", 0);
      if (bytes < candidateBytes) {
        candidate = globalId;
        candidateBytes = bytes;
      }
    }
    if (candidate < 0) break;

    // Converge, don't churn: the move must strictly lower the peak. When
    // the skew is carried by one session bigger than the gap between the
    // heaviest and lightest worker, relocating it only moves the peak —
    // stop and report the honest skewAfter instead of shuffling blobs.
    if (loads[*least] + static_cast<std::uint64_t>(candidateBytes) >=
        mostLoad) {
      break;
    }

    Status status = MoveSession(candidate, *least, &movedBytes);
    if (!status.ok()) {
      json::Json failure = json::Json::MakeObject();
      failure.Set("sessionId", candidate);
      failure.Set("message", status.error().message);
      failed.Append(std::move(failure));
      break;  // a stuck session would repeat forever; report and stop
    }
    ++moved;
    const std::uint64_t bytes = static_cast<std::uint64_t>(candidateBytes);
    loads[most] -= std::min(loads[most], bytes);
    loads[*least] += bytes;
  }

  json::Json response;
  if (failed.AsArray().empty()) {
    response = Ok();
  } else {
    response = RouterError(ErrorKind::kInternal,
                           "rebalance stopped on a failed migration");
  }
  response.Set("moved", moved);
  response.Set("movedBytes", static_cast<std::int64_t>(movedBytes));
  response.Set("skewBefore", skewBefore);
  const double skewAfter = skewOf(ProbeLoads().bytes);
  response.Set("skewAfter", skewAfter);
  response.Set("failed", std::move(failed));
  span.SetDetail(StrFormat("moved=%lld skewBefore=%.3f skewAfter=%.3f",
                           static_cast<long long>(moved), skewBefore,
                           skewAfter));
  return response;
}

}  // namespace rvss::shard
