// Worker processes: spawning and managing rvss workers for the shard
// router's socket transport.
//
// A worker is a process running server::ServeFrames over its own
// SimServer. Two ways to get one:
//
//   * SpawnWorkerProcess forks the current process; the child builds a
//     fresh SimServer, listens on the given address and serves frames
//     until shutdownWorker (or a signal) ends it. No exec, no binary
//     path discovery — the simulator is a library, the child just calls
//     into it. This is what the CLI's --spawn-workers and the tests use.
//   * `rvss --worker ADDR` runs the same loop as a standalone process,
//     for deployments where an orchestrator (systemd, k8s) owns the
//     process tree and the router attaches via `addWorker {address}`.
//
// The parent keeps a SpawnedWorker handle for teardown: KillWorker sends
// SIGKILL, ReapWorker waits for the exit. Graceful stops go through the
// router's `removeWorker`, which sends shutdownWorker over the existing
// transport connection — and then calls Options::onWorkerShutdown, which
// MakeFleetReaper turns into a prompt reap: without it, every elastic
// add/remove cycle leaves a zombie child until the SpawnedFleet is
// destroyed, and teardown then SIGKILLs pids whose processes exited long
// ago. Leaked children are still reaped by the kernel when the parent
// dies (tests kill hard anyway).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "server/api.h"
#include "shard/transport.h"

namespace rvss::shard {

struct SpawnedWorker {
  int pid = -1;
  std::string address;
};

/// RAII ownership of spawned worker processes: every handle is
/// SIGKILLed and reaped on destruction (already-exited children are
/// just reaped; entries with pid <= 0 are skipped). Must outlive any
/// router whose transports point at these workers.
struct SpawnedFleet {
  std::vector<SpawnedWorker> workers;

  SpawnedFleet() = default;
  SpawnedFleet(const SpawnedFleet&) = delete;
  SpawnedFleet& operator=(const SpawnedFleet&) = delete;
  ~SpawnedFleet();
};

/// A ShardRouter::Options::transportFactory that forks one worker
/// process per slot — socket addresses tagged `tag` — records the
/// handle in `fleet`, and connects a SocketTransport to it. The one
/// spawning-fleet recipe shared by the CLI's --spawn-workers, the
/// bench, and the socket test suites.
std::function<Result<std::shared_ptr<WorkerTransport>>(
    std::size_t, const server::SimServer::Limits&)>
MakeSpawningTransportFactory(SpawnedFleet* fleet, std::string tag,
                             SocketTransportOptions socketOptions = {});

/// Unique unix-socket address for a local worker. Addresses embed the
/// parent pid and a counter, so concurrently running test binaries and
/// CLI runs never collide.
std::string MakeWorkerAddress(std::string_view tag);

/// Forks a worker process serving frames on `address` with the given
/// per-worker limits. Returns once the child is forked; the child binds
/// asynchronously (SocketTransport's connect retry absorbs the race).
Result<SpawnedWorker> SpawnWorkerProcess(
    const std::string& address,
    const server::SimServer::Limits& limits = {});

/// Runs the worker loop in this process (the CLI --worker mode). Blocks
/// until shutdownWorker; returns the loop's final status.
Status RunWorkerLoop(const std::string& address,
                     const server::SimServer::Limits& limits = {});

/// SIGKILLs the worker process (the "worker died" failure injection).
void KillWorker(const SpawnedWorker& worker);

/// waitpid()s the child (blocking, EINTR-retried) so no zombie outlives
/// the caller.
void ReapWorker(const SpawnedWorker& worker);

/// Reaps a worker that was just told to shut down: polls waitpid with
/// WNOHANG for up to `graceMs` (a graceful exit flushes its response
/// first), then SIGKILLs and reaps for real. Returns true when the child
/// exited within the grace period, false when it had to be killed.
/// Entries with pid <= 0 are a no-op (returns true).
bool ReapWorkerWithin(const SpawnedWorker& worker, int graceMs);

/// An Options::onWorkerShutdown hook for ShardRouter: looks the address
/// up in `fleet`, reaps the process promptly (ReapWorkerWithin) and
/// drops the entry from the fleet list — so an elastic add/remove cycle
/// leaves neither a zombie nor a stale handle for teardown to SIGKILL.
/// Unknown addresses are ignored (the worker was attached, not spawned).
std::function<void(const std::string& address)> MakeFleetReaper(
    SpawnedFleet* fleet, int graceMs = 5'000);

}  // namespace rvss::shard
