#include "shard/lane.h"

#include <utility>

namespace rvss::shard {
namespace {

// Both lane-refusal errors are kUnavailable, not kInvalidArgument: the
// request itself was fine — the fleet's capacity or topology failed it,
// and a retry (later, or after re-routing) may well succeed.
Error StoppedError() {
  return Error{ErrorKind::kUnavailable,
               "worker was removed while the request was pending"};
}

Error ShedError(std::size_t depth) {
  return Error{ErrorKind::kUnavailable,
               "worker lane queue is full (" + std::to_string(depth) +
                   " requests queued); load shed, retry later"};
}

}  // namespace

WorkerLane::WorkerLane(std::shared_ptr<WorkerTransport> transport,
                       std::size_t maxQueueDepth)
    : transport_(std::move(transport)),
      maxQueueDepth_(maxQueueDepth),
      thread_([this] { Run(); }) {}

WorkerLane::~WorkerLane() { Stop(); }

std::future<Result<json::Json>> WorkerLane::Submit(json::Json request) {
  Job job;
  job.request = std::move(request);
  job.enqueuedNs = obs::MonotonicNowNs();
  std::future<Result<json::Json>> result = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) {
      job.promise.set_value(StoppedError());
      return result;
    }
    if (maxQueueDepth_ != 0 && queue_.size() >= maxQueueDepth_) {
      obs::Registry::Instance().GetCounter("shard.lane.shed").Increment();
      job.promise.set_value(ShedError(queue_.size()));
      return result;
    }
    queue_.push_back(std::move(job));
    queueDepth_.fetch_add(1, std::memory_order_relaxed);
  }
  wake_.notify_one();
  return result;
}

void WorkerLane::Quiesce() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

void WorkerLane::Stop() {
  std::deque<Job> orphaned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
    orphaned.swap(queue_);
    queueDepth_.store(0, std::memory_order_relaxed);
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  for (Job& job : orphaned) {
    job.promise.set_value(StoppedError());
  }
}

WorkerLane::Stats WorkerLane::stats() const {
  Stats stats;
  stats.queueDepth = queueDepth_.load(std::memory_order_relaxed);
  stats.inFlight = inFlight_.load(std::memory_order_relaxed);
  stats.lastDispatchMs =
      static_cast<double>(lastDispatchNs_.load(std::memory_order_relaxed)) /
      1e6;
  stats.dispatched = dispatched_.load(std::memory_order_relaxed);
  return stats;
}

void WorkerLane::Run() {
  // One registration per metric name for the whole process; every lane
  // shares the objects, so these histograms aggregate across the fleet's
  // lanes (the per-worker split lives in workerStats' lane Stats).
  obs::Registry& registry = obs::Registry::Instance();
  obs::Histogram& queueWaitUs =
      registry.GetHistogram("shard.lane.queue_wait_us");
  obs::Histogram& dispatchUs = registry.GetHistogram("shard.lane.dispatch_us");
  obs::Counter& requests = registry.GetCounter("shard.lane.requests");

  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopped_ || !queue_.empty(); });
      if (stopped_) return;  // Stop() answers whatever is still queued
      job = std::move(queue_.front());
      queue_.pop_front();
      queueDepth_.fetch_sub(1, std::memory_order_relaxed);
      busy_ = true;
      inFlight_.store(true, std::memory_order_relaxed);
    }
    const std::uint64_t startNs = obs::MonotonicNowNs();
    queueWaitUs.Record((startNs - job.enqueuedNs) / 1000);
    // Resolve the future before clearing busy_: a Quiesce() waiter that
    // wakes on idle then observes a completed call, never a pending one.
    job.promise.set_value(transport_->Call(job.request));
    const std::uint64_t elapsedNs = obs::MonotonicNowNs() - startNs;
    dispatchUs.Record(elapsedNs / 1000);
    requests.Increment();
    lastDispatchNs_.store(elapsedNs, std::memory_order_relaxed);
    dispatched_.fetch_add(1, std::memory_order_relaxed);
    inFlight_.store(false, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      busy_ = false;
      if (queue_.empty()) idle_.notify_all();
    }
  }
}

}  // namespace rvss::shard
