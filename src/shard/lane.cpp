#include "shard/lane.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace rvss::shard {
namespace {

// Both lane-refusal errors are kUnavailable, not kInvalidArgument: the
// request itself was fine — the fleet's capacity or topology failed it,
// and a retry (later, or after re-routing) may well succeed.
Error StoppedError() {
  return Error{ErrorKind::kUnavailable,
               "worker was removed while the request was pending"};
}

Error ShedError(std::size_t depth) {
  return Error{ErrorKind::kUnavailable,
               "worker lane queue is full (" + std::to_string(depth) +
                   " requests queued); load shed, retry later"};
}

}  // namespace

WorkerLane::WorkerLane(std::shared_ptr<WorkerTransport> transport,
                       std::size_t maxQueueDepth)
    : transport_(std::move(transport)),
      maxQueueDepth_(maxQueueDepth),
      thread_([this] { Run(); }) {}

WorkerLane::~WorkerLane() { Stop(); }

std::future<Result<json::Json>> WorkerLane::Submit(json::Json request) {
  Job job;
  job.request = std::move(request);
  job.enqueuedNs = obs::MonotonicNowNs();
  std::future<Result<json::Json>> result = job.promise.get_future();
  {
    MutexLock lock(mutex_);
    if (stopped_) {
      job.promise.set_value(StoppedError());
      return result;
    }
    if (maxQueueDepth_ != 0 && queue_.size() >= maxQueueDepth_) {
      obs::Registry::Instance().GetCounter("shard.lane.shed").Increment();
      job.promise.set_value(ShedError(queue_.size()));
      return result;
    }
    queue_.push_back(std::move(job));
    queueDepth_.fetch_add(1, std::memory_order_relaxed);
  }
  wake_.NotifyOne();
  return result;
}

void WorkerLane::Quiesce() {
  MutexLock lock(mutex_);
  while (!queue_.empty() || busy_) idle_.Wait(mutex_);
}

bool WorkerLane::TryBeginDirect() {
  MutexLock lock(mutex_);
  if (stopped_ || busy_ || !queue_.empty()) return false;
  busy_ = true;
  inFlight_.store(true, std::memory_order_relaxed);
  return true;
}

void WorkerLane::EndDirect(std::uint64_t elapsedNs) {
  // Same dispatch accounting as the executor path (queueWaitUs excepted —
  // a direct call never queued), so the fleet's request and latency
  // totals do not depend on which path a request took.
  static obs::Histogram& dispatchUs =
      obs::Registry::Instance().GetHistogram("shard.lane.dispatchUs");
  static obs::Counter& requests =
      obs::Registry::Instance().GetCounter("shard.lane.requests");
  dispatchUs.Record(elapsedNs / 1000);
  requests.Increment();
  lastDispatchNs_.store(elapsedNs, std::memory_order_relaxed);
  dispatched_.fetch_add(1, std::memory_order_relaxed);
  inFlight_.store(false, std::memory_order_relaxed);
  {
    MutexLock lock(mutex_);
    busy_ = false;
    if (queue_.empty()) idle_.NotifyAll();
  }
  // Jobs submitted while the direct call held the lane woke the executor
  // into a busy lane; re-wake it now that the lane is free.
  wake_.NotifyOne();
}

void WorkerLane::Stop() {
  std::deque<Job> orphaned;
  {
    MutexLock lock(mutex_);
    stopped_ = true;
    orphaned.swap(queue_);
    queueDepth_.store(0, std::memory_order_relaxed);
  }
  wake_.NotifyAll();
  if (thread_.joinable()) thread_.join();
  for (Job& job : orphaned) {
    job.promise.set_value(StoppedError());
  }
}

WorkerLane::Stats WorkerLane::stats() const {
  Stats stats;
  stats.queueDepth = queueDepth_.load(std::memory_order_relaxed);
  stats.inFlight = inFlight_.load(std::memory_order_relaxed);
  stats.lastDispatchMs =
      static_cast<double>(lastDispatchNs_.load(std::memory_order_relaxed)) /
      1e6;
  stats.dispatched = dispatched_.load(std::memory_order_relaxed);
  return stats;
}

void WorkerLane::Run() {
  // One registration per metric name for the whole process; every lane
  // shares the objects, so these histograms aggregate across the fleet's
  // lanes (the per-worker split lives in workerStats' lane Stats).
  obs::Registry& registry = obs::Registry::Instance();
  obs::Histogram& queueWaitUs =
      registry.GetHistogram("shard.lane.queueWaitUs");
  obs::Histogram& dispatchUs = registry.GetHistogram("shard.lane.dispatchUs");
  obs::Counter& requests = registry.GetCounter("shard.lane.requests");
  obs::Counter& batches = registry.GetCounter("shard.lane.batches");

  // Coalescing bound: enough to fold a burst of small frames into one
  // wire write, small enough to keep per-batch latency and the resolved-
  // but-unread response window flat.
  constexpr std::size_t kMaxBatch = 16;

  while (true) {
    std::vector<Job> batch;
    {
      MutexLock lock(mutex_);
      // !busy_: a caller-runs direct call may own the lane; the executor
      // must not run the transport concurrently with it.
      while (!stopped_ && (busy_ || queue_.empty())) wake_.Wait(mutex_);
      if (stopped_) return;  // Stop() answers whatever is still queued
      const std::size_t take = std::min(queue_.size(), kMaxBatch);
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queueDepth_.fetch_sub(take, std::memory_order_relaxed);
      busy_ = true;
      inFlight_.store(true, std::memory_order_relaxed);
    }
    const std::uint64_t startNs = obs::MonotonicNowNs();
    for (const Job& job : batch) {
      queueWaitUs.Record((startNs - job.enqueuedNs) / 1000);
    }
    std::vector<Result<json::Json>> results;
    if (batch.size() == 1) {
      results.push_back(transport_->Call(batch[0].request));
    } else {
      std::vector<const json::Json*> requestPtrs;
      requestPtrs.reserve(batch.size());
      for (const Job& job : batch) requestPtrs.push_back(&job.request);
      results = transport_->CallBatch(requestPtrs);
      batches.Increment();
    }
    const std::uint64_t elapsedNs = obs::MonotonicNowNs() - startNs;
    dispatchUs.Record(elapsedNs / 1000);
    requests.Add(batch.size());
    lastDispatchNs_.store(elapsedNs, std::memory_order_relaxed);
    dispatched_.fetch_add(batch.size(), std::memory_order_relaxed);
    inFlight_.store(false, std::memory_order_relaxed);
    // Release the lane BEFORE delivering the promises. Every transport
    // call has returned, so a Quiesce() waiter woken here observes a
    // truly idle transport — delivery below touches no lane state. And a
    // client whose future resolves and immediately sends its next
    // request must find the lane idle, or sequential request streams
    // could never take the caller-runs fast path.
    {
      MutexLock lock(mutex_);
      busy_ = false;
      if (queue_.empty()) idle_.NotifyAll();
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (i < results.size()) {
        batch[i].promise.set_value(std::move(results[i]));
      } else {
        // Defensive: a transport must answer index-aligned.
        batch[i].promise.set_value(
            Error{ErrorKind::kInternal,
                  "batched transport returned too few responses"});
      }
    }
  }
}

}  // namespace rvss::shard
