#include "shard/lane.h"

#include <utility>

namespace rvss::shard {
namespace {

Error StoppedError() {
  return Error{ErrorKind::kInvalidArgument,
               "worker was removed while the request was pending"};
}

}  // namespace

WorkerLane::WorkerLane(std::shared_ptr<WorkerTransport> transport)
    : transport_(std::move(transport)), thread_([this] { Run(); }) {}

WorkerLane::~WorkerLane() { Stop(); }

std::future<Result<json::Json>> WorkerLane::Submit(json::Json request) {
  Job job;
  job.request = std::move(request);
  std::future<Result<json::Json>> result = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) {
      job.promise.set_value(StoppedError());
      return result;
    }
    queue_.push_back(std::move(job));
  }
  wake_.notify_one();
  return result;
}

void WorkerLane::Quiesce() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

void WorkerLane::Stop() {
  std::deque<Job> orphaned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
    orphaned.swap(queue_);
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  for (Job& job : orphaned) {
    job.promise.set_value(StoppedError());
  }
}

void WorkerLane::Run() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopped_ || !queue_.empty(); });
      if (stopped_) return;  // Stop() answers whatever is still queued
      job = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    // Resolve the future before clearing busy_: a Quiesce() waiter that
    // wakes on idle then observes a completed call, never a pending one.
    job.promise.set_value(transport_->Call(job.request));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      busy_ = false;
      if (queue_.empty()) idle_.notify_all();
    }
  }
}

}  // namespace rvss::shard
