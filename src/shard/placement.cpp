#include "shard/placement.h"

#include <algorithm>

namespace rvss::shard {

std::uint64_t HashKey(std::uint64_t key) {
  std::uint64_t z = key + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

HashRing::HashRing(std::size_t workerCount, std::size_t virtualNodesPerWorker)
    : workerCount_(0), virtualNodesPerWorker_(virtualNodesPerWorker) {
  points_.reserve(workerCount * virtualNodesPerWorker);
  for (std::size_t worker = 0; worker < workerCount; ++worker) {
    AddWorker();
  }
}

void HashRing::InsertPointsFor(std::size_t worker) {
  for (std::size_t replica = 0; replica < virtualNodesPerWorker_;
       ++replica) {
    // Each virtual node hashes a salted (worker, replica) pair. The salt
    // domain-separates ring points from session keys: without it,
    // HashKey(smallKey) coincides exactly with worker 0's replica
    // points, pinning every small session id onto worker 0.
    constexpr std::uint64_t kRingSalt = 0xc5a1cc5a1cc5a1ccull;
    const std::uint64_t seed =
        HashKey(kRingSalt ^ (static_cast<std::uint64_t>(worker) << 32 |
                             static_cast<std::uint64_t>(replica)));
    points_.push_back(Point{seed, static_cast<std::uint32_t>(worker)});
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.hash != b.hash ? a.hash < b.hash
                                      : a.worker < b.worker;
            });
}

std::size_t HashRing::AddWorker() {
  const std::size_t worker = workerCount_++;
  InsertPointsFor(worker);
  return worker;
}

void HashRing::RemoveWorker(std::size_t worker) {
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [worker](const Point& point) {
                                 return point.worker == worker;
                               }),
                points_.end());
}

std::optional<std::size_t> HashRing::Pick(
    std::uint64_t key, const std::vector<bool>& eligible) const {
  if (points_.empty()) return std::nullopt;
  const std::uint64_t h = HashKey(key);
  auto it = std::lower_bound(points_.begin(), points_.end(), h,
                             [](const Point& p, std::uint64_t value) {
                               return p.hash < value;
                             });
  // Walk clockwise (wrapping) until an eligible worker owns the point.
  for (std::size_t walked = 0; walked < points_.size(); ++walked) {
    if (it == points_.end()) it = points_.begin();
    if (it->worker < eligible.size() && eligible[it->worker]) {
      return it->worker;
    }
    ++it;
  }
  return std::nullopt;
}

std::optional<std::size_t> LeastLoaded(const std::vector<std::uint64_t>& loads,
                                       const std::vector<bool>& eligible) {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (i >= eligible.size() || !eligible[i]) continue;
    if (!best.has_value() || loads[i] < loads[*best]) best = i;
  }
  return best;
}

}  // namespace rvss::shard
