#include "shard/worker.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <csignal>
#include <dirent.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#include <utility>
#include <vector>

#include "common/socket.h"
#include "server/frame_loop.h"

namespace rvss::shard {
namespace {

std::atomic<int> workerCounter{0};

/// Closes every descriptor above stderr in a freshly forked worker. The
/// child inherits the parent's open sockets — including the router's
/// live connections to sibling workers. Holding one of those keeps the
/// sibling from ever seeing EOF when the router drops its end, wedging
/// that worker's one-connection serve loop; a forked worker must start
/// with nothing but stdio.
void CloseInheritedDescriptors() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) {
    for (int fd = 3; fd < 1024; ++fd) ::close(fd);
    return;
  }
  const int dirFd = ::dirfd(dir);
  std::vector<int> fds;
  while (const dirent* entry = ::readdir(dir)) {
    const int fd = std::atoi(entry->d_name);
    if (fd > 2 && fd != dirFd) fds.push_back(fd);
  }
  ::closedir(dir);
  for (const int fd : fds) ::close(fd);
}

}  // namespace

std::string MakeWorkerAddress(std::string_view tag) {
  const int counter = workerCounter.fetch_add(1);
  return "unix:/tmp/rvss-" + std::string(tag) + "-" +
         std::to_string(static_cast<long long>(::getpid())) + "-" +
         std::to_string(counter) + ".sock";
}

Status RunWorkerLoop(const std::string& address,
                     const server::SimServer::Limits& limits) {
  auto listener = net::ListenOn(address);
  if (!listener.ok()) return listener.status();
  server::SimServer server(limits);
  Status served = server::ServeFrames(server, listener.value());
  // Graceful exits tidy their unix socket file; a killed worker leaves
  // it behind, and the next ListenOn on the address unlinks it.
  if (address.rfind("unix:", 0) == 0) {
    ::unlink(address.substr(5).c_str());
  }
  return served;
}

Result<SpawnedWorker> SpawnWorkerProcess(
    const std::string& address, const server::SimServer::Limits& limits) {
  // Flush stdio before forking so buffered output is not emitted twice.
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    return Error{ErrorKind::kInternal, "fork failed for worker " + address};
  }
  if (pid == 0) {
    // Child: serve until shutdown, then leave without running atexit or
    // test-framework teardown inherited from the parent image.
    CloseInheritedDescriptors();
    Status served = RunWorkerLoop(address, limits);
    if (!served.ok()) {
      std::fprintf(stderr, "rvss worker %s: %s\n", address.c_str(),
                   served.error().message.c_str());
      std::fflush(stderr);
    }
    ::_exit(served.ok() ? 0 : 1);
  }
  return SpawnedWorker{static_cast<int>(pid), address};
}

void KillWorker(const SpawnedWorker& worker) {
  if (worker.pid > 0) ::kill(worker.pid, SIGKILL);
}

void ReapWorker(const SpawnedWorker& worker) {
  if (worker.pid <= 0) return;
  int status = 0;
  // A signal delivered mid-wait must not abandon the child as a zombie.
  while (::waitpid(worker.pid, &status, 0) < 0 && errno == EINTR) {
  }
}

bool ReapWorkerWithin(const SpawnedWorker& worker, int graceMs) {
  if (worker.pid <= 0) return true;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(graceMs < 0 ? 0 : graceMs);
  while (true) {
    int status = 0;
    const pid_t reaped = ::waitpid(worker.pid, &status, WNOHANG);
    if (reaped == worker.pid) return true;
    if (reaped < 0 && errno != EINTR) {
      // ECHILD: someone else (a test's ReapWorker) already collected it —
      // there is no zombie left either way.
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
    struct timespec pause = {0, 10'000'000};  // 10ms between polls
    ::nanosleep(&pause, nullptr);
  }
  // The grace period ran out: a shutdownWorker that never lands (wedged
  // worker, lost response) must not leave the process running *and*
  // unreaped — kill hard and collect the corpse.
  KillWorker(worker);
  ReapWorker(worker);
  return false;
}

SpawnedFleet::~SpawnedFleet() {
  for (const SpawnedWorker& worker : workers) {
    KillWorker(worker);
    ReapWorker(worker);
  }
}

std::function<void(const std::string& address)> MakeFleetReaper(
    SpawnedFleet* fleet, int graceMs) {
  return [fleet, graceMs](const std::string& address) {
    for (auto it = fleet->workers.begin(); it != fleet->workers.end(); ++it) {
      if (it->address != address) continue;
      ReapWorkerWithin(*it, graceMs);
      // Reaped for real: drop the handle so fleet teardown neither
      // SIGKILLs a pid the kernel may have recycled by then nor blocks
      // in a second waitpid.
      fleet->workers.erase(it);
      return;
    }
  };
}

std::function<Result<std::shared_ptr<WorkerTransport>>(
    std::size_t, const server::SimServer::Limits&)>
MakeSpawningTransportFactory(SpawnedFleet* fleet, std::string tag,
                             SocketTransportOptions socketOptions) {
  return [fleet, tag = std::move(tag), socketOptions](
             std::size_t, const server::SimServer::Limits& limits)
             -> Result<std::shared_ptr<WorkerTransport>> {
    auto worker = SpawnWorkerProcess(MakeWorkerAddress(tag), limits);
    if (!worker.ok()) return worker.error();
    fleet->workers.push_back(worker.value());
    return std::shared_ptr<WorkerTransport>(
        std::make_shared<SocketTransport>(worker.value().address,
                                          socketOptions));
  };
}

}  // namespace rvss::shard
