// The shard router: one session namespace over many workers — in this
// process or behind sockets — the policy loop over PR 2's migration
// primitive and PR 4's worker transports.
//
// The router speaks the exact same JSON command API as a single SimServer
// (clients cannot tell the difference): it assigns globally unique session
// ids, places each new session on a worker via a consistent-hash ring,
// rewrites sessionId fields on the way in and out, and forwards everything
// else verbatim. On top of the route-through it adds fleet operations:
//
//   workerStats  {}          -> {workers: [{worker, sessions, approxBytes,
//                                           drained, removed, transport}]}
//   drainWorker  {worker}    -> {moved, movedBytes, failed[]}
//   openWorker   {worker}    -> {ok}        (re-admit a drained worker)
//   rebalance    {}          -> {moved, movedBytes, skewBefore, skewAfter}
//   addWorker    {address?}  -> {worker}    (grow the fleet; an address
//                                attaches a running socket worker, no
//                                address asks Options::transportFactory)
//   removeWorker {worker, force?} -> {moved, movedBytes, failed[], lost[]}
//                                (drain, then shrink the ring; see below)
//   hello        {}          -> the router's build fingerprint (frame +
//                                snapshot versions, config hash), answered
//                                locally — the same document a worker
//                                returns on its connect handshake.
//   metrics      {format?}   -> {fleet, workers[]}: the merged fleet
//                                observability view (sum counters, merge
//                                histogram buckets, max gauges — see
//                                src/obs/registry.h) with a per-worker
//                                breakdown; format "text" returns the
//                                Prometheus exposition instead.
//   traceDump    {}          -> {trace, workers[]}: the router's span
//                                ring (drain/rebalance/quiesce timings)
//                                plus each socket worker's.
//
// Workers are reached through WorkerTransport (shard/transport.h): the
// in-process default behaves exactly like PR 3; SocketTransport talks to
// real worker processes. Transport failures are fail-closed: a request
// that got no response is reported as an error on that request — the
// router never guesses, never retries a maybe-executed command, and
// never silently drops a session.
//
// Concurrency model (see shard/lane.h and docs/sharding.md):
//
//   * Every worker has a dispatch lane — a FIFO queue plus executor
//     thread over its one transport connection. Handle()/HandleRaw() are
//     thread-safe: session-bound commands are enqueued on the owning
//     worker's lane and executed concurrently *across* lanes, strictly
//     in order *within* one. Per-session ordering follows from
//     session→worker affinity; N workers simulate in parallel.
//   * Router state (placements_, ring_, workers_, drained_, gated_) is
//     protected by one fleet mutex, held only for routing decisions and
//     bookkeeping — never while a worker round trip is in flight.
//   * createSession / importSession record a placement *intent* (a
//     per-worker in-flight admission count) under the fleet mutex, run
//     the worker round trip unlocked, then finalize the placement and
//     clear the intent. Admissions therefore overlap with traffic and
//     with each other; a drain of the target worker waits for its
//     intents to clear first, so the placement map it reads never lags
//     an admission already in that worker's lane. deleteSession likewise
//     releases the mutex for the round trip and erases the placement
//     afterwards.
//   * Fleet operations (drain/rebalance/add/remove/stats/list/metrics)
//     serialize on a separate fleet-op mutex — never held by any routing
//     path, so a slow drain stalls only other fleet operations. An
//     operation that moves a worker's sessions closes that worker's
//     *placement gate* (gated_) under the fleet mutex, waits for the
//     worker's admission intents to clear, then *quiesces* its lane:
//     the barrier waits until the lane is idle, and because every
//     submission path checks the gate under the fleet mutex, the lane
//     stays idle until the gate reopens. Commands for the gated worker's
//     sessions block on the gate and re-resolve their placement when it
//     opens (their sessions may have moved); everything aimed at other
//     workers flows freely. An export therefore still always observes a
//     session between requests, never inside one — the PR 4 safety
//     argument, re-established with the stall confined to the worker
//     being reorganized.
//   * Lock order: fleet-op mutex before fleet mutex; the fleet mutex is
//     never held while acquiring the fleet-op mutex, a future is awaited,
//     or a transport is called (the one exception: RemoveWorker stops a
//     quiesced — hence empty — lane under the fleet mutex, which cannot
//     block).
//
// drainWorker exports every session on the (quiesced) worker and imports
// each onto the least-loaded *reachable* non-drained peer, then deletes
// the source copy — the delete happens only after the destination import
// succeeded, so a failure at any point leaves the session live on its
// source worker; an unreachable destination aborts the move with the
// source intact, and a dead source worker makes every one of its
// sessions a reported failure (lost-with-error), never a silent drop.
//
// removeWorker completes elastic scale-in: mark drained, quiesce, run
// the drain loop, and only if every session moved off (or `force`
// accepts the loss, each lost session listed in `lost[]`) remove the
// worker's arc from the ring, shut the transport down and stop the lane
// (pending requests are answered with errors, never dropped). The
// Options::onWorkerShutdown hook then lets the process owner reap the
// worker promptly (see shard/worker.h) instead of leaving a zombie.
// addWorker is the matching scale-out: the ring grows by one arc —
// consistent hashing moves only the keys that hash into it — and new
// placements start landing there.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.h"
#include "json/json.h"
#include "server/api.h"
#include "shard/lane.h"
#include "shard/placement.h"
#include "shard/transport.h"

namespace rvss::shard {

class ShardRouter {
 public:
  /// Builds the transport for one worker slot. Used for every initial
  /// slot and for `addWorker` requests without an address.
  using TransportFactory =
      std::function<Result<std::shared_ptr<WorkerTransport>>(
          std::size_t worker, const server::SimServer::Limits& limits)>;

  struct Options {
    std::size_t workerCount = 4;
    /// Limits applied to every worker.
    server::SimServer::Limits workerLimits;
    /// Per-worker override for heterogeneous fleets (and the failure-path
    /// tests); when non-empty its size must equal workerCount.
    std::vector<server::SimServer::Limits> perWorkerLimits;
    /// rebalance moves sessions while max-load / mean-load > threshold.
    double rebalanceSkewThreshold = 1.5;
    /// Per-worker lane queue depth cap: submissions beyond it are
    /// answered immediately with a retryable kUnavailable load-shed
    /// error instead of queueing without bound (see shard/lane.h).
    /// 0 = unbounded, the pre-gateway behavior. The cap applies to
    /// everything riding the lane — including fleet-operation probes, so
    /// a saturated fleet sheds drains too rather than deadlocking them.
    std::size_t maxLaneQueueDepth = 0;
    std::size_t virtualNodesPerWorker = 64;
    /// Transport constructor; default builds InProcessTransport. A
    /// factory that spawns worker processes turns the router into a real
    /// multi-process fleet (see cli --spawn-workers). A slot whose
    /// factory fails is born removed and reported in workerStats.
    TransportFactory transportFactory;
    /// Ship base-referenced delta session blobs (snapshot format v3) on
    /// drain/rebalance when the destination advertised support in its
    /// hello handshake. Any delta import failure retries once with a
    /// full image — this flag is a wire-size optimization, never a
    /// correctness risk; disabling it restores the PR 8 full-image wire.
    bool deltaBlobs = true;
    /// Caller-runs fast path: when a session command arrives and its
    /// worker's lane is completely idle, run the transport call on the
    /// dispatching thread instead of enqueue/wake/future (see
    /// WorkerLane::TryBeginDirect). Per-session FIFO order and the
    /// quiesce barrier are preserved — the claim happens in the same
    /// fleet-mutex section as the gate check, and a claimed lane counts
    /// as busy for Quiesce().
    bool laneFastPath = true;
    /// Socket options for transports the router creates itself
    /// (`addWorker {address}`).
    SocketTransportOptions socketOptions;
    /// Called (with the transport's address) after removeWorker shut a
    /// socket worker down, so the process owner can reap it promptly —
    /// see shard::MakeFleetReaper. Invoked under the fleet mutex.
    std::function<void(const std::string& address)> onWorkerShutdown;
  };

  explicit ShardRouter(const Options& options);

  /// Structured entry point, same contract as SimServer::Handle.
  /// Thread-safe; see the concurrency model above.
  json::Json Handle(const json::Json& request);

  /// Byte-level entry point, same contract as SimServer::HandleRaw.
  /// Thread-safe.
  std::string HandleRaw(std::string_view requestBytes, bool compress = false,
                        server::RequestTiming* timing = nullptr);

  /// Fleet slots ever created (including removed ones; their entries stay
  /// so worker indices are stable).
  std::size_t workerCount() const EXCLUDES(fleetMutex_);
  std::size_t sessionCount() const EXCLUDES(fleetMutex_);

  /// The in-process SimServer behind worker `index`, or nullptr when the
  /// slot is removed or lives behind a socket. For tests and embedders;
  /// the router does not defend against sessions created or deleted
  /// behind its back — drain treats a vanished session as a failed
  /// export and reports it. Calling into the returned server while other
  /// threads route requests to it is a data race; single-threaded tests
  /// only.
  server::SimServer* workerServer(std::size_t index) EXCLUDES(fleetMutex_);

 private:
  /// Where one global session lives.
  struct Placement {
    std::size_t worker = 0;
    std::int64_t localId = 0;
  };

  /// Per-worker load snapshot used by placement and stats.
  struct WorkerLoad {
    std::uint64_t sessions = 0;
    std::uint64_t approxBytes = 0;
  };

  /// One probe pass over the fleet: byte loads plus reachability, so
  /// drain/rebalance never pick a dead destination.
  struct FleetLoads {
    std::vector<std::uint64_t> bytes;  ///< 0 for removed/unreachable
    std::vector<bool> reachable;      ///< false for removed/unreachable
  };

  json::Json Dispatch(const json::Json& request);

  // None of the private methods below may be called from a lane thread.
  // Unless a comment says otherwise they take their own (brief) fleet
  // mutex sections and must be called *without* fleetMutex_ held.

  /// One request through worker's lane: submit under a brief fleet mutex
  /// section, wait unlocked. Transport failures become error JSON.
  json::Json CallViaLane(std::size_t worker, const json::Json& request)
      EXCLUDES(fleetMutex_);
  /// One request straight down the transport, bypassing the lane. Only
  /// for workers whose lane is quiesced behind a closed gate (fleet ops)
  /// or not yet built (addWorker's probe).
  json::Json CallWorkerDirect(std::size_t worker, const json::Json& request)
      EXCLUDES(fleetMutex_);

  /// Closes worker `index`'s placement gate and waits for its in-flight
  /// admission intents to clear; gates are only ever closed by fleet
  /// operations, hence REQUIRES(fleetOpMutex_). Returns the worker's lane
  /// — fetched under the fleet mutex — so the caller can quiesce it
  /// without re-locking; the pointer stays valid until OpenGate because
  /// only RemoveWorker destroys lanes and fleet operations serialize on
  /// fleetOpMutex_. After CloseGate the caller quiesces the lane and owns
  /// the worker until OpenGate.
  WorkerLane* CloseGate(std::size_t index)
      REQUIRES(fleetOpMutex_) EXCLUDES(fleetMutex_);
  void OpenGate(std::size_t index)
      REQUIRES(fleetOpMutex_) EXCLUDES(fleetMutex_);

  json::Json RouteSessionCommand(const json::Json& request)
      EXCLUDES(fleetMutex_);
  json::Json StatelessCommand(const json::Json& request)
      EXCLUDES(fleetMutex_);
  /// The fleet metrics view: this process's obs registry (router, lanes,
  /// transports and any in-process workers) merged with every socket
  /// worker's `metrics` response — sum counters, merge histogram buckets,
  /// max gauges — plus a per-worker breakdown.
  json::Json Metrics(const json::Json& request)
      EXCLUDES(fleetOpMutex_, fleetMutex_);
  /// The router's span ring plus each socket worker's, for post-hoc "why
  /// was that drain slow" forensics.
  json::Json TraceDump() EXCLUDES(fleetOpMutex_, fleetMutex_);
  /// createSession / importSession: place on the ring and forward.
  json::Json AdmitSession(const json::Json& request) EXCLUDES(fleetMutex_);
  json::Json ListSessions() EXCLUDES(fleetOpMutex_, fleetMutex_);
  json::Json WorkerStats() EXCLUDES(fleetOpMutex_, fleetMutex_);
  json::Json DrainWorker(const json::Json& request)
      EXCLUDES(fleetOpMutex_, fleetMutex_);
  json::Json OpenWorker(const json::Json& request)
      EXCLUDES(fleetOpMutex_, fleetMutex_);
  json::Json AddWorker(const json::Json& request)
      EXCLUDES(fleetOpMutex_, fleetMutex_);
  json::Json RemoveWorker(const json::Json& request)
      EXCLUDES(fleetOpMutex_, fleetMutex_);
  json::Json Rebalance() EXCLUDES(fleetOpMutex_, fleetMutex_);

  /// The drain loop shared by drainWorker and removeWorker: moves every
  /// session off `index` — whose gate the caller has closed and whose
  /// lane it has quiesced — filling the response fields. Returns the ids
  /// of sessions that could not be moved. `sourceReachable` (optional)
  /// reports whether the drained worker itself answered — false means a
  /// dead process, so callers skip graceful-shutdown round trips that
  /// could only time out.
  std::vector<std::int64_t> DrainSessions(std::size_t index,
                                          json::Json& response,
                                          bool* sourceReachable = nullptr)
      EXCLUDES(fleetMutex_);

  /// Moves one session to `destination` (export -> import -> delete
  /// source). The source worker's gate must be closed and its lane
  /// quiesced by the caller; the import rides the destination's lane. On
  /// failure the session remains on its source worker. A session whose
  /// placement vanished before the export (deleted by a client whose
  /// request was already queued when the gate closed) sets `*skipped`
  /// and reports success without moving anything.
  Status MoveSession(std::int64_t globalId, std::size_t destination,
                     std::uint64_t* movedBytes, bool* skipped = nullptr)
      EXCLUDES(fleetMutex_);

  /// localId -> session node of a worker's listSessions response; the
  /// pointers borrow from the response, which must outlive the index.
  static std::map<std::int64_t, const json::Json*> IndexSessions(
      const json::Json& listResponse);

  /// Parses one worker's listSessions response into a load summary —
  /// the single place that knows the response shape (ProbeLoads and
  /// WorkerStats both feed through it).
  static Result<WorkerLoad> ParseLoad(Result<json::Json> response);
  /// Submits a listSessions probe to every live lane except `skip`,
  /// before any response is awaited — sequential probing would stack
  /// dead workers' transport timeouts end to end. Returns one future per
  /// slot (invalid where nothing was submitted). Expects fleetMutex_
  /// held for the submissions; the caller awaits unlocked.
  std::vector<std::future<Result<json::Json>>> FanOutListSessions(
      std::size_t skip = static_cast<std::size_t>(-1)) REQUIRES(fleetMutex_);
  /// `skip` (if valid) is reported unreachable without being probed —
  /// drain uses it for the quiesced source worker, which must not be
  /// handed new lane work while the barrier holds. Locks itself.
  FleetLoads ProbeLoads(std::size_t skip = static_cast<std::size_t>(-1))
      EXCLUDES(fleetMutex_);
  /// Workers admitting new sessions (live and not drained).
  std::vector<bool> Eligible() const REQUIRES(fleetMutex_);
  bool IsLive(std::size_t worker) const REQUIRES(fleetMutex_) {
    return worker < workers_.size() && workers_[worker] != nullptr;
  }
  /// Placement for a new session id; error when every worker is drained.
  Result<std::size_t> PlaceNew(std::int64_t globalId) REQUIRES(fleetMutex_);
  /// Builds the transport for slot `worker` from the factory/default.
  /// (No lock needed; touches only options_.)
  Result<std::shared_ptr<WorkerTransport>> MakeTransport(
      std::size_t worker, const server::SimServer::Limits& limits);

  Options options_;
  /// Guards every mutable member below. Lane threads never take it, and
  /// no worker round trip is awaited while it is held. (Declared before
  /// fleetOpMutex_ only so ACQUIRED_BEFORE can name it; the lock *order*
  /// is fleetOpMutex_ first.)
  mutable Mutex fleetMutex_;
  /// Serializes fleet operations (drain/rebalance/add/remove/open and
  /// the stats/list/metrics/trace snapshots) against each other without
  /// blocking routing. Lock order: always before fleetMutex_ (the
  /// ACQUIRED_BEFORE below), and every mutation of the fleet topology
  /// (workers_/lanes_/ring_ growth or removal) happens with *both* held.
  Mutex fleetOpMutex_ ACQUIRED_BEFORE(fleetMutex_);
  HashRing ring_ GUARDED_BY(fleetMutex_);
  std::vector<std::shared_ptr<WorkerTransport>> workers_
      GUARDED_BY(fleetMutex_);
  /// Dispatch lane per slot, parallel to workers_ (nullptr when removed).
  /// Dispatchers block on a Submit()'s future after releasing the fleet
  /// mutex without keeping the lane alive — that is safe because a
  /// promise's shared state outlives the lane, and RemoveWorker resolves
  /// every job before destroying one (quiesce under the held mutex, then
  /// Stop answers any straggler): no future is ever abandoned.
  std::vector<std::unique_ptr<WorkerLane>> lanes_ GUARDED_BY(fleetMutex_);
  std::vector<bool> drained_ GUARDED_BY(fleetMutex_);
  /// Per-worker placement gate: true while a fleet operation owns the
  /// worker (quiesced lane, sessions in motion). Submissions aimed at a
  /// gated worker wait on gateOpen_ and re-resolve their placement.
  std::vector<bool> gated_ GUARDED_BY(fleetMutex_);
  CondVar gateOpen_;
  /// In-flight admission intents per worker: incremented (under
  /// fleetMutex_) when an admission is submitted to the worker's lane,
  /// cleared after its placement is finalized. CloseGate waits on
  /// intentsClear_ so a drain never misses an admitted-but-unrecorded
  /// session.
  std::map<std::size_t, std::size_t> admissionIntents_
      GUARDED_BY(fleetMutex_);
  CondVar intentsClear_;
  /// Construction errors of slots whose factory failed, by worker index.
  std::map<std::size_t, std::string> slotErrors_ GUARDED_BY(fleetMutex_);
  std::map<std::int64_t, Placement> placements_ GUARDED_BY(fleetMutex_);
  std::int64_t nextGlobalId_ GUARDED_BY(fleetMutex_) = 1;
};

}  // namespace rvss::shard
