// The shard router: one process, many SimServer workers, one session
// namespace — the policy/transport loop over PR 2's migration primitive.
//
// The router speaks the exact same JSON command API as a single SimServer
// (clients cannot tell the difference): it assigns globally unique session
// ids, places each new session on a worker via a consistent-hash ring,
// rewrites sessionId fields on the way in and out, and forwards everything
// else verbatim. On top of the route-through it adds fleet operations:
//
//   workerStats  {}          -> {workers: [{worker, sessions, approxBytes,
//                                           drained}]}
//   drainWorker  {worker}    -> {moved, movedBytes, failed[]}
//   openWorker   {worker}    -> {ok}        (re-admit a drained worker)
//   rebalance    {}          -> {moved, movedBytes, skewBefore, skewAfter}
//
// drainWorker exports every session on the worker and imports each onto
// the least-loaded non-drained peer, then deletes the source copy — the
// delete happens only after the destination import succeeded, so a failure
// at any point leaves the session live on its source worker; a migration
// can be retried but never loses state. A drained worker receives no new
// placements until openWorker re-admits it; draining an already-drained
// empty worker is a no-op success (idempotent). rebalance runs the same
// move loop whenever the byte-load skew (max worker load over the mean)
// exceeds Options::rebalanceSkewThreshold.
//
// Safety against sessions mid-`run`: the router is synchronous — a request
// is dispatched to exactly one worker and runs to completion before the
// next request is looked at, so an export always observes a session
// between requests, never inside one. Because session blobs are
// byte-identical across export/import (snapshot_test, shard_test), a
// migrated client simply continues; the move is invisible.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.h"
#include "server/api.h"
#include "shard/placement.h"

namespace rvss::shard {

class ShardRouter {
 public:
  struct Options {
    std::size_t workerCount = 4;
    /// Limits applied to every worker.
    server::SimServer::Limits workerLimits;
    /// Per-worker override for heterogeneous fleets (and the failure-path
    /// tests); when non-empty its size must equal workerCount.
    std::vector<server::SimServer::Limits> perWorkerLimits;
    /// rebalance moves sessions while max-load / mean-load > threshold.
    double rebalanceSkewThreshold = 1.5;
    std::size_t virtualNodesPerWorker = 64;
  };

  explicit ShardRouter(const Options& options);

  /// Structured entry point, same contract as SimServer::Handle.
  json::Json Handle(const json::Json& request);

  /// Byte-level entry point, same contract as SimServer::HandleRaw.
  std::string HandleRaw(std::string_view requestBytes, bool compress = false,
                        server::RequestTiming* timing = nullptr);

  std::size_t workerCount() const { return workers_.size(); }
  std::size_t sessionCount() const { return placements_.size(); }

  /// Direct worker access for tests and embedders. The router does not
  /// defend against sessions created or deleted behind its back — drain
  /// treats a vanished session as a failed export and reports it.
  server::SimServer& worker(std::size_t index) { return *workers_[index]; }

 private:
  /// Where one global session lives.
  struct Placement {
    std::size_t worker = 0;
    std::int64_t localId = 0;
  };

  /// Per-worker load snapshot used by placement and stats.
  struct WorkerLoad {
    std::uint64_t sessions = 0;
    std::uint64_t approxBytes = 0;
  };

  json::Json Dispatch(const json::Json& request);
  json::Json RouteSessionCommand(const json::Json& request);
  /// createSession / importSession: place on the ring and forward.
  json::Json AdmitSession(const json::Json& request);
  json::Json ListSessions();
  json::Json WorkerStats();
  json::Json DrainWorker(const json::Json& request);
  json::Json OpenWorker(const json::Json& request);
  json::Json Rebalance();

  /// Moves one session to `destination` (export -> import -> delete
  /// source). On failure the session remains on its source worker.
  Status MoveSession(std::int64_t globalId, std::size_t destination,
                     std::uint64_t* movedBytes);

  /// localId -> session node of a worker's listSessions response; the
  /// pointers borrow from the response, which must outlive the index.
  static std::map<std::int64_t, const json::Json*> IndexSessions(
      const json::Json& listResponse);

  WorkerLoad LoadOf(std::size_t worker);
  std::vector<std::uint64_t> ByteLoads();
  /// Workers admitting new sessions (not drained).
  std::vector<bool> Eligible() const;
  /// Placement for a new session id; error when every worker is drained.
  Result<std::size_t> PlaceNew(std::int64_t globalId);

  Options options_;
  HashRing ring_;
  std::vector<std::unique_ptr<server::SimServer>> workers_;
  std::vector<bool> drained_;
  std::map<std::int64_t, Placement> placements_;
  std::int64_t nextGlobalId_ = 1;
};

}  // namespace rvss::shard
