// The shard router: one session namespace over many workers — in this
// process or behind sockets — the policy loop over PR 2's migration
// primitive and PR 4's worker transports.
//
// The router speaks the exact same JSON command API as a single SimServer
// (clients cannot tell the difference): it assigns globally unique session
// ids, places each new session on a worker via a consistent-hash ring,
// rewrites sessionId fields on the way in and out, and forwards everything
// else verbatim. On top of the route-through it adds fleet operations:
//
//   workerStats  {}          -> {workers: [{worker, sessions, approxBytes,
//                                           drained, removed, transport}]}
//   drainWorker  {worker}    -> {moved, movedBytes, failed[]}
//   openWorker   {worker}    -> {ok}        (re-admit a drained worker)
//   rebalance    {}          -> {moved, movedBytes, skewBefore, skewAfter}
//   addWorker    {address?}  -> {worker}    (grow the fleet; an address
//                                attaches a running socket worker, no
//                                address asks Options::transportFactory)
//   removeWorker {worker, force?} -> {moved, movedBytes, failed[], lost[]}
//                                (drain, then shrink the ring; see below)
//
// Workers are reached through WorkerTransport (shard/transport.h): the
// in-process default behaves exactly like PR 3; SocketTransport talks to
// real worker processes. Transport failures are fail-closed: a request
// that got no response is reported as an error on that request — the
// router never guesses, never retries a maybe-executed command, and
// never silently drops a session.
//
// drainWorker exports every session on the worker and imports each onto
// the least-loaded *reachable* non-drained peer, then deletes the source
// copy — the delete happens only after the destination import succeeded,
// so a failure at any point leaves the session live on its source worker;
// an unreachable destination aborts the move with the source intact, and
// a dead source worker makes every one of its sessions a reported
// failure (lost-with-error), never a silent drop.
//
// removeWorker completes elastic scale-in: mark drained, run the drain
// loop, and only if every session moved off (or `force` accepts the
// loss, each lost session listed in `lost[]`) remove the worker's arc
// from the ring and shut the transport down. addWorker is the matching
// scale-out: the ring grows by one arc — consistent hashing moves only
// the keys that hash into it — and new placements start landing there.
//
// Safety against sessions mid-`run`: the router is synchronous — a request
// is dispatched to exactly one worker and runs to completion before the
// next request is looked at, so an export always observes a session
// between requests, never inside one. Because session blobs are
// byte-identical across export/import (snapshot_test, shard_test), a
// migrated client simply continues; the move is invisible.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.h"
#include "server/api.h"
#include "shard/placement.h"
#include "shard/transport.h"

namespace rvss::shard {

class ShardRouter {
 public:
  /// Builds the transport for one worker slot. Used for every initial
  /// slot and for `addWorker` requests without an address.
  using TransportFactory =
      std::function<Result<std::shared_ptr<WorkerTransport>>(
          std::size_t worker, const server::SimServer::Limits& limits)>;

  struct Options {
    std::size_t workerCount = 4;
    /// Limits applied to every worker.
    server::SimServer::Limits workerLimits;
    /// Per-worker override for heterogeneous fleets (and the failure-path
    /// tests); when non-empty its size must equal workerCount.
    std::vector<server::SimServer::Limits> perWorkerLimits;
    /// rebalance moves sessions while max-load / mean-load > threshold.
    double rebalanceSkewThreshold = 1.5;
    std::size_t virtualNodesPerWorker = 64;
    /// Transport constructor; default builds InProcessTransport. A
    /// factory that spawns worker processes turns the router into a real
    /// multi-process fleet (see cli --spawn-workers). A slot whose
    /// factory fails is born removed and reported in workerStats.
    TransportFactory transportFactory;
    /// Socket options for transports the router creates itself
    /// (`addWorker {address}`).
    SocketTransportOptions socketOptions;
  };

  explicit ShardRouter(const Options& options);

  /// Structured entry point, same contract as SimServer::Handle.
  json::Json Handle(const json::Json& request);

  /// Byte-level entry point, same contract as SimServer::HandleRaw.
  std::string HandleRaw(std::string_view requestBytes, bool compress = false,
                        server::RequestTiming* timing = nullptr);

  /// Fleet slots ever created (including removed ones; their entries stay
  /// so worker indices are stable).
  std::size_t workerCount() const { return workers_.size(); }
  std::size_t sessionCount() const { return placements_.size(); }

  /// The in-process SimServer behind worker `index`, or nullptr when the
  /// slot is removed or lives behind a socket. For tests and embedders;
  /// the router does not defend against sessions created or deleted
  /// behind its back — drain treats a vanished session as a failed
  /// export and reports it.
  server::SimServer* workerServer(std::size_t index) {
    return workers_[index] == nullptr ? nullptr
                                      : workers_[index]->LocalServer();
  }

 private:
  /// Where one global session lives.
  struct Placement {
    std::size_t worker = 0;
    std::int64_t localId = 0;
  };

  /// Per-worker load snapshot used by placement and stats.
  struct WorkerLoad {
    std::uint64_t sessions = 0;
    std::uint64_t approxBytes = 0;
  };

  /// One probe pass over the fleet: byte loads plus reachability, so
  /// drain/rebalance never pick a dead destination.
  struct FleetLoads {
    std::vector<std::uint64_t> bytes;  ///< 0 for removed/unreachable
    std::vector<bool> reachable;      ///< false for removed/unreachable
  };

  json::Json Dispatch(const json::Json& request);
  /// One request to one worker; transport failures become error JSON.
  json::Json CallWorker(std::size_t worker, const json::Json& request);
  json::Json RouteSessionCommand(const json::Json& request);
  /// createSession / importSession: place on the ring and forward.
  json::Json AdmitSession(const json::Json& request);
  json::Json ListSessions();
  json::Json WorkerStats();
  json::Json DrainWorker(const json::Json& request);
  json::Json OpenWorker(const json::Json& request);
  json::Json AddWorker(const json::Json& request);
  json::Json RemoveWorker(const json::Json& request);
  json::Json Rebalance();

  /// The drain loop shared by drainWorker and removeWorker: moves every
  /// session off `index`, filling the response fields. Returns the ids
  /// of sessions that could not be moved. `sourceReachable` (optional)
  /// reports whether the drained worker itself answered — false means a
  /// dead process, so callers skip graceful-shutdown round trips that
  /// could only time out.
  std::vector<std::int64_t> DrainSessions(std::size_t index,
                                          json::Json& response,
                                          bool* sourceReachable = nullptr);

  /// Moves one session to `destination` (export -> import -> delete
  /// source). On failure the session remains on its source worker.
  Status MoveSession(std::int64_t globalId, std::size_t destination,
                     std::uint64_t* movedBytes);

  /// localId -> session node of a worker's listSessions response; the
  /// pointers borrow from the response, which must outlive the index.
  static std::map<std::int64_t, const json::Json*> IndexSessions(
      const json::Json& listResponse);

  Result<WorkerLoad> LoadOf(std::size_t worker);
  FleetLoads ProbeLoads();
  /// Workers admitting new sessions (live and not drained).
  std::vector<bool> Eligible() const;
  bool IsLive(std::size_t worker) const {
    return worker < workers_.size() && workers_[worker] != nullptr;
  }
  /// Placement for a new session id; error when every worker is drained.
  Result<std::size_t> PlaceNew(std::int64_t globalId);
  /// Builds the transport for slot `worker` from the factory/default.
  Result<std::shared_ptr<WorkerTransport>> MakeTransport(
      std::size_t worker, const server::SimServer::Limits& limits);

  Options options_;
  HashRing ring_;
  std::vector<std::shared_ptr<WorkerTransport>> workers_;
  std::vector<bool> drained_;
  /// Construction errors of slots whose factory failed, by worker index.
  std::map<std::size_t, std::string> slotErrors_;
  std::map<std::int64_t, Placement> placements_;
  std::int64_t nextGlobalId_ = 1;
};

}  // namespace rvss::shard
