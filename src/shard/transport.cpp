#include "shard/transport.h"

#include <utility>

namespace rvss::shard {
namespace {

/// Socket-transport metrics, shared by every SocketTransport in the
/// process (the per-worker split is visible in the router's workerStats;
/// these answer "what does the wire cost the fleet overall").
struct SocketMetrics {
  obs::Counter& calls =
      obs::Registry::Instance().GetCounter("shard.transport.socket.calls");
  obs::Counter& connects = obs::Registry::Instance().GetCounter(
      "shard.transport.socket.connects");
  obs::Counter& requestBytes = obs::Registry::Instance().GetCounter(
      "shard.transport.socket.requestBytes");
  obs::Counter& blobBytes = obs::Registry::Instance().GetCounter(
      "shard.transport.socket.blobBytes");
  obs::Histogram& rttUs =
      obs::Registry::Instance().GetHistogram("shard.transport.socket.rttUs");

  static SocketMetrics& Get() {
    static SocketMetrics* metrics = new SocketMetrics();
    return *metrics;
  }
};

}  // namespace

SocketTransport::SocketTransport(std::string address,
                                 SocketTransportOptions options)
    : address_(std::move(address)), options_(options) {}

Status SocketTransport::EnsureConnected() {
  if (connection_.valid()) return Status::Ok();
  SocketMetrics::Get().connects.Increment();
  auto connected = net::ConnectTo(address_, options_.connectTimeoutMs);
  if (!connected.ok()) {
    // kUnavailable: nothing was executed, the worker may come back (or a
    // restarted one may take the address) — callers may safely retry.
    return Status::Fail(ErrorKind::kUnavailable,
                        "worker " + address_ +
                            " unreachable: " + connected.error().message);
  }
  connection_ = std::move(connected).value();

  // The hello handshake: before any command travels on this connection,
  // exchange build fingerprints and refuse a worker whose frame version,
  // snapshot format version or config hash differs from ours. Catching
  // skew here — once per connection — beats discovering it per message
  // mid-migration, when a half-moved session would be on the line. A
  // handshake failure is final for the call (like a failed connect); the
  // next Call reconnects and retries the handshake, so a worker that is
  // upgraded in place heals the slot.
  server::WireOptions wire;
  wire.ioTimeoutMs = options_.ioTimeoutMs;
  wire.maxFrameBytes = options_.maxFrameBytes;
  Status sent =
      server::WriteMessage(connection_, server::MakeHelloRequest(), wire);
  if (!sent.ok()) {
    connection_.Close();
    return Status::Fail(ErrorKind::kUnavailable,
                        "worker " + address_ + " failed the hello handshake: " +
                            sent.error().message);
  }
  auto answer = server::ReadMessage(connection_, wire);
  if (!answer.ok()) {
    connection_.Close();
    return Status::Fail(ErrorKind::kUnavailable,
                        "worker " + address_ + " failed the hello handshake: " +
                            answer.error().message);
  }
  server::HelloInfo peer;
  Status compatible =
      server::CheckHelloResponse(answer.value(), address_, &peer);
  if (!compatible.ok()) {
    connection_.Close();
    return compatible;
  }
  peerDeltaBlobs_.store(peer.deltaBlobs, std::memory_order_relaxed);
  return Status::Ok();
}

Result<json::Json> SocketTransport::Call(const json::Json& request) {
  server::WireOptions wire;
  wire.ioTimeoutMs = options_.ioTimeoutMs;
  wire.maxFrameBytes = options_.maxFrameBytes;

  // Split the request for the wire exactly once, before the retry loop:
  // the non-blob fields (small) are copied into the serialized text, and
  // the blob — multi-MiB of base64 on every drain import — stays a
  // borrowed view on the caller's document, never copied or re-dumped.
  std::string_view blob;
  std::string text;
  if (request.IsObject() && request.Find("blob") != nullptr) {
    json::Json trimmed = json::Json::MakeObject();
    for (const auto& [key, value] : request.AsObject()) {
      if (key == "blob" && value.IsString() && !value.AsString().empty()) {
        blob = value.AsString();
      } else {
        trimmed.Set(key, value);
      }
    }
    text = trimmed.Dump();
  } else {
    text = request.Dump();
  }

  // One reconnect-and-resend attempt when the *write* fails: the worker
  // drops incomplete frames, so a request whose write failed was never
  // executed and is safe to resend. Once the write succeeded, a failed
  // read is final — the worker may have executed the request, so
  // resending could run it twice; fail closed instead. A failed connect
  // is also final: ConnectTo already retried until its deadline.
  SocketMetrics& metrics = SocketMetrics::Get();
  metrics.calls.Increment();
  metrics.requestBytes.Add(text.size());
  metrics.blobBytes.Add(blob.size());
  const std::uint64_t startNs = obs::MonotonicNowNs();
  for (int attempt = 0; attempt < 2; ++attempt) {
    Status connected = EnsureConnected();
    if (!connected.ok()) return connected.error();
    Status written = server::WriteFrame(connection_, text, blob, wire);
    if (!written.ok()) {
      connection_.Close();
      if (attempt == 0) continue;
      // The frame never left: retryable by the same argument as a failed
      // connect, hence kUnavailable.
      return Error{ErrorKind::kUnavailable,
                   "send to worker " + address_ +
                       " failed: " + written.error().message};
    }
    auto response = server::ReadMessage(connection_, wire);
    if (!response.ok()) {
      connection_.Close();
      // Deliberately *not* kUnavailable: the request reached the worker
      // and may have executed — a blind retry could run it twice. Fail
      // closed and let the caller decide with full knowledge.
      return Error{ErrorKind::kInternal,
                   "no response from worker " + address_ + ": " +
                       response.error().message +
                       " (request may or may not have executed)"};
    }
    // Only completed round trips reach the histogram: a timed-out read
    // would record the timeout budget, not a latency.
    metrics.rttUs.Record((obs::MonotonicNowNs() - startNs) / 1000);
    return std::move(response).value();
  }
  return Error{ErrorKind::kInternal, "unreachable"};
}

std::vector<Result<json::Json>> SocketTransport::CallBatch(
    const std::vector<const json::Json*>& requests) {
  std::vector<Result<json::Json>> results;
  if (requests.empty()) return results;
  if (requests.size() == 1) {
    // Call() keeps the single-request write-retry semantics.
    results.push_back(Call(*requests[0]));
    return results;
  }
  server::WireOptions wire;
  wire.ioTimeoutMs = options_.ioTimeoutMs;
  wire.maxFrameBytes = options_.maxFrameBytes;

  // Pre-split every request exactly like Call() does, once, outside the
  // retry loop. Blobs stay borrowed views on the caller's documents.
  struct Framed {
    std::string text;
    std::string_view blob;
  };
  SocketMetrics& metrics = SocketMetrics::Get();
  std::vector<Framed> frames;
  frames.reserve(requests.size());
  for (const json::Json* request : requests) {
    Framed framed;
    if (request->IsObject() && request->Find("blob") != nullptr) {
      json::Json trimmed = json::Json::MakeObject();
      for (const auto& [key, value] : request->AsObject()) {
        if (key == "blob" && value.IsString() && !value.AsString().empty()) {
          framed.blob = value.AsString();
        } else {
          trimmed.Set(key, value);
        }
      }
      framed.text = trimmed.Dump();
    } else {
      framed.text = request->Dump();
    }
    metrics.calls.Increment();
    metrics.requestBytes.Add(framed.text.size());
    metrics.blobBytes.Add(framed.blob.size());
    frames.push_back(std::move(framed));
  }

  // Pipeline: write every frame, then read the responses in order. Retry
  // (reconnect + resend the whole batch, once) is only safe when *zero*
  // frames were delivered — after the first complete frame the worker may
  // have executed it, so a mid-batch write failure fails closed instead:
  // delivered-but-unanswered requests report kInternal (ambiguous),
  // never-sent ones report retryable kUnavailable.
  const std::uint64_t startNs = obs::MonotonicNowNs();
  for (int attempt = 0; attempt < 2; ++attempt) {
    Status connected = EnsureConnected();
    if (!connected.ok()) {
      for (std::size_t i = 0; i < frames.size(); ++i) {
        results.push_back(connected.error());
      }
      return results;
    }
    std::size_t written = 0;
    Status writeStatus = Status::Ok();
    for (; written < frames.size(); ++written) {
      writeStatus = server::WriteFrame(connection_, frames[written].text,
                                       frames[written].blob, wire);
      if (!writeStatus.ok()) break;
    }
    if (!writeStatus.ok() && written == 0) {
      connection_.Close();
      if (attempt == 0) continue;
      for (std::size_t i = 0; i < frames.size(); ++i) {
        results.push_back(Error{ErrorKind::kUnavailable,
                                "send to worker " + address_ + " failed: " +
                                    writeStatus.error().message});
      }
      return results;
    }
    bool readFailed = false;
    for (std::size_t i = 0; i < written; ++i) {
      auto response = server::ReadMessage(connection_, wire);
      if (!response.ok()) {
        connection_.Close();
        readFailed = true;
        for (std::size_t j = i; j < written; ++j) {
          results.push_back(
              Error{ErrorKind::kInternal,
                    "no response from worker " + address_ + ": " +
                        response.error().message +
                        " (request may or may not have executed)"});
        }
        break;
      }
      results.push_back(std::move(response).value());
    }
    if (!readFailed && !writeStatus.ok()) {
      // The stream is desynced mid-frame even though the responses for
      // the delivered prefix arrived; the connection cannot be reused.
      connection_.Close();
    }
    for (std::size_t i = written; i < frames.size(); ++i) {
      results.push_back(Error{ErrorKind::kUnavailable,
                              "send to worker " + address_ + " failed: " +
                                  writeStatus.error().message});
    }
    if (!readFailed) {
      metrics.rttUs.Record((obs::MonotonicNowNs() - startNs) / 1000);
    }
    return results;
  }
  return results;
}

}  // namespace rvss::shard
