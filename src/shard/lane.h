// Dispatch lanes: one request queue + executor thread per worker.
//
// PR 4 left the router synchronous — one request at a time across the
// whole fleet, so N worker *processes* simulated serially and a single
// slow `run` stalled every other session. A WorkerLane gives each worker
// its own dispatch thread: the router enqueues a request and receives a
// future, the lane thread executes requests strictly in FIFO order over
// the worker's one WorkerTransport connection. Concurrency therefore
// lives *between* lanes (N workers simulate in parallel) while ordering
// is preserved *within* a lane — exactly the per-session ordering the
// session→worker affinity requires, since a session's requests all land
// on its worker's lane.
//
// The quiesce barrier: fleet operations that move sessions (drain,
// rebalance, removeWorker) must never observe a request in flight on the
// worker they are reorganizing. Quiesce() blocks until the lane's queue
// is empty and its thread idle. The caller is expected to have closed
// the router's per-worker placement gate for this worker *before*
// quiescing and to keep it closed across the session moves that follow:
// every submission path checks the gate (under the router's fleet
// mutex), so no new work can slip into the lane while the barrier holds
// — the lane stays idle until the gate reopens, and the fleet operation
// may use the worker's transport directly in the meantime. Quiesce is
// thus a wait, not a mode switch; there is nothing to resume.
//
// Stop() ends the lane for good (removeWorker): the thread drains
// nothing further, and every request still queued — plus any submitted
// later — is answered with an error response, never dropped silently.
// Callers that need pending work to complete quiesce first.
//
// Lane threads touch only the transport and their own queue. They never
// take the router's fleet mutex — that invariant is what makes it safe
// for the router to block on a future (or on Quiesce) while holding it.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <thread>

#include "common/sync.h"
#include "json/json.h"
#include "obs/registry.h"
#include "shard/transport.h"

namespace rvss::shard {

class WorkerLane {
 public:
  /// Starts the executor thread. The lane shares ownership of the
  /// transport; nothing else may use it while the lane is live except a
  /// fleet operation holding the quiesce barrier (see above).
  /// maxQueueDepth bounds the number of *waiting* jobs (the in-flight
  /// one excluded): beyond it, Submit load-sheds. 0 = unbounded.
  explicit WorkerLane(std::shared_ptr<WorkerTransport> transport,
                      std::size_t maxQueueDepth = 0);
  ~WorkerLane();

  WorkerLane(const WorkerLane&) = delete;
  WorkerLane& operator=(const WorkerLane&) = delete;

  /// Enqueues one request. The future resolves to exactly what the
  /// transport's Call would have returned: a response document, or an
  /// Error for a transport-level failure (the distinction matters — a
  /// worker's own {status: "error"} answer is a successful call). On a
  /// stopped lane — or when the queue is at its depth cap — the future
  /// is immediately ready with a retryable kUnavailable Error (the
  /// latter is a load shed: nothing was enqueued, try again later).
  std::future<Result<json::Json>> Submit(json::Json request)
      EXCLUDES(mutex_);

  /// Blocks until the queue is empty and the executor is idle. Only
  /// meaningful while the caller prevents new submissions (by closing
  /// the router's placement gate for this worker); see the file comment.
  void Quiesce() EXCLUDES(mutex_);

  /// Caller-runs fast path: atomically claims an idle lane (no queued
  /// jobs, nothing in flight, not stopped). On success the caller owns
  /// the worker's transport for ONE call on its own thread — skipping
  /// the enqueue/wake/future hop — and must call EndDirect() when done.
  /// While claimed the lane counts as busy: the executor parks, and
  /// Quiesce() waits for the direct call like any in-flight job. The
  /// claim must happen in the same critical section as the router's
  /// placement-gate check (exactly like Submit), or a fleet operation
  /// could close the gate between check and claim and then race the
  /// direct call on the transport.
  /// `elapsedNs` is the direct call's wall time; EndDirect folds it into
  /// the same dispatch metrics the executor records, so fleet accounting
  /// (requests, dispatchUs, dispatched) is path-independent.
  [[nodiscard]] bool TryBeginDirect() EXCLUDES(mutex_);
  void EndDirect(std::uint64_t elapsedNs = 0) EXCLUDES(mutex_);

  /// Terminates the executor. Requests still queued are answered with an
  /// error response. Idempotent.
  void Stop() EXCLUDES(mutex_);

  /// The lane's transport, for fleet operations acting under the quiesce
  /// barrier (and for Describe()/LocalServer() introspection, which is
  /// safe concurrently — both are immutable after construction).
  WorkerTransport* transport() { return transport_.get(); }

  /// Live lane load, surfaced per worker by the router's workerStats.
  /// Always-on (independent of obs::SetEnabled): these are functional
  /// fleet stats, and the cost is a handful of relaxed atomics per job.
  struct Stats {
    std::uint64_t queueDepth = 0;   ///< jobs waiting (excludes in-flight)
    bool inFlight = false;          ///< a job is executing right now
    double lastDispatchMs = 0.0;    ///< wall time of the last completed job
    std::uint64_t dispatched = 0;   ///< jobs completed since construction
  };
  Stats stats() const;

 private:
  struct Job {
    json::Json request;
    std::promise<Result<json::Json>> promise;
    std::uint64_t enqueuedNs = 0;
  };

  void Run() EXCLUDES(mutex_);

  std::shared_ptr<WorkerTransport> transport_;
  Mutex mutex_;
  CondVar wake_;  ///< signals the executor thread
  CondVar idle_;  ///< signals Quiesce() waiters
  std::deque<Job> queue_ GUARDED_BY(mutex_);
  const std::size_t maxQueueDepth_;
  /// The lane-ownership flag: set while the executor runs a batch or a
  /// caller-runs direct call owns the transport. The release-busy-before-
  /// promise ordering in Run() is part of the protocol — see there.
  bool busy_ GUARDED_BY(mutex_) = false;
  bool stopped_ GUARDED_BY(mutex_) = false;

  // Lane load, readable without the lane mutex (workerStats must not
  // block behind a minute-long `run` holding the executor busy).
  std::atomic<std::uint64_t> queueDepth_{0};
  std::atomic<bool> inFlight_{false};
  std::atomic<std::uint64_t> lastDispatchNs_{0};
  std::atomic<std::uint64_t> dispatched_{0};

  std::thread thread_;
};

}  // namespace rvss::shard
