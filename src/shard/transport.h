// Worker transports: how the shard router reaches a worker.
//
// PR 3's router owned its workers as in-process SimServer objects; this
// interface splits "where the worker lives" from "what the router does
// with it". The router sees only Call(): one JSON request in, one JSON
// response out. Transport-level failures (dead process, timeout, bad
// frame) come back as errors — distinct from a worker's own JSON error
// responses, which are successful Calls whose payload says "error".
//
// Two implementations:
//
//   InProcessTransport  wraps a SimServer in this process; Call is a
//                       direct Handle() — the PR 3 behaviour, still the
//                       default and the baseline bench_shard measures.
//   SocketTransport     speaks server/wire.h frames over a unix-domain or
//                       TCP socket to an rvss worker process. Connects
//                       lazily, performs the hello handshake on every
//                       fresh connection (refusing workers whose frame
//                       version, snapshot format version or config hash
//                       differ — see server/wire.h), reconnects after a
//                       failure on the next Call (so a restarted worker
//                       heals the slot), and fails closed: a request
//                       whose response never arrived is reported as an
//                       error, never retried blindly (it may have
//                       executed).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/socket.h"
#include "common/status.h"
#include "json/json.h"
#include "obs/registry.h"
#include "server/api.h"
#include "server/wire.h"

namespace rvss::shard {

class WorkerTransport {
 public:
  virtual ~WorkerTransport() = default;

  /// Dispatches one request and returns the worker's response. An error
  /// means the transport failed — the worker may or may not have seen
  /// the request; the caller must fail closed (report, don't assume).
  virtual Result<json::Json> Call(const json::Json& request) = 0;

  /// Dispatches `requests` in order and returns one result per request,
  /// index-aligned. The default loops Call(); transports with a real wire
  /// override it to pipeline the whole batch into fewer writes (the lane's
  /// coalesced fast path). Same failure contract as Call(), per entry.
  virtual std::vector<Result<json::Json>> CallBatch(
      const std::vector<const json::Json*>& requests) {
    std::vector<Result<json::Json>> results;
    results.reserve(requests.size());
    for (const json::Json* request : requests) {
      results.push_back(Call(*request));
    }
    return results;
  }

  /// True when the peer can decode base-referenced delta session blobs
  /// (snapshot format v3). Learned from the hello handshake for sockets;
  /// false until known — callers then ship full images, which is always
  /// safe, never lossy.
  virtual bool SupportsDeltaBlobs() const { return false; }

  /// Human-readable endpoint for logs and workerStats ("in-process",
  /// "unix:/tmp/rvss-w0.sock").
  virtual std::string Describe() const = 0;

  /// The wrapped SimServer for in-process transports; nullptr over a
  /// socket. Tests and embedders use this for white-box checks.
  virtual server::SimServer* LocalServer() { return nullptr; }
};

/// PR 3's in-process worker, behind the transport interface.
class InProcessTransport : public WorkerTransport {
 public:
  explicit InProcessTransport(const server::SimServer::Limits& limits)
      : server_(std::make_unique<server::SimServer>(limits)) {}

  Result<json::Json> Call(const json::Json& request) override {
    static obs::Counter& calls =
        obs::Registry::Instance().GetCounter("shard.transport.inproc.calls");
    static obs::Histogram& callUs =
        obs::Registry::Instance().GetHistogram(
            "shard.transport.inproc.callUs");
    calls.Increment();
    obs::ScopedLatency timer(callUs);
    return server_->Handle(request);
  }
  bool SupportsDeltaBlobs() const override { return true; }
  std::string Describe() const override { return "in-process"; }
  server::SimServer* LocalServer() override { return server_.get(); }

 private:
  std::unique_ptr<server::SimServer> server_;
};

struct SocketTransportOptions {
  /// Budget for establishing a connection (includes the bind race of a
  /// freshly spawned worker, retried inside ConnectTo).
  int connectTimeoutMs = 5'000;
  /// Per-call I/O deadline (request write + response read). Generous:
  /// a drain moves multi-MiB blobs and the worker simulates in between.
  int ioTimeoutMs = 60'000;
  std::size_t maxFrameBytes = net::kDefaultMaxFrameBytes;
};

class SocketTransport : public WorkerTransport {
 public:
  explicit SocketTransport(std::string address,
                           SocketTransportOptions options = {});

  Result<json::Json> Call(const json::Json& request) override;
  std::vector<Result<json::Json>> CallBatch(
      const std::vector<const json::Json*>& requests) override;
  bool SupportsDeltaBlobs() const override {
    // Set after each hello handshake; false while disconnected, which is
    // the conservative answer (a full image is always decodable).
    return peerDeltaBlobs_.load(std::memory_order_relaxed);
  }
  std::string Describe() const override { return address_; }

  const std::string& address() const { return address_; }

 private:
  Status EnsureConnected();

  std::string address_;
  SocketTransportOptions options_;
  net::Socket connection_;
  /// Atomic: read by the router's migration planner while the lane's
  /// executor thread owns the connection.
  std::atomic<bool> peerDeltaBlobs_{false};
};

}  // namespace rvss::shard
