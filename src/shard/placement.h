// Session placement policies for the shard router.
//
// New sessions land on a consistent-hash ring (virtual nodes per worker),
// so placement is stable: adding or draining one worker moves only the
// sessions that hash into its arc, not the whole fleet's mapping. Drain
// and rebalance instead pick destinations by load, so migration traffic
// flows to the emptiest peers. Both policies are deterministic — the same
// inputs place the same sessions on the same workers, which the shard
// tests (and any cross-process router pair) rely on.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace rvss::shard {

/// splitmix64: cheap, well-mixed 64-bit hash for session keys and ring
/// points. Deterministic across platforms (pure integer arithmetic).
std::uint64_t HashKey(std::uint64_t key);

/// Consistent-hash ring over worker indices [0, workerCount).
class HashRing {
 public:
  /// `virtualNodesPerWorker` points per worker smooth the arc lengths;
  /// 64 keeps the max/min arc ratio within ~2x for small fleets.
  explicit HashRing(std::size_t workerCount,
                    std::size_t virtualNodesPerWorker = 64);

  /// Worker owning `key`: the first ring point clockwise from
  /// HashKey(key) whose worker is eligible. Returns nullopt when no
  /// worker is eligible. `eligible` must have workerCount entries.
  std::optional<std::size_t> Pick(std::uint64_t key,
                                  const std::vector<bool>& eligible) const;

  /// Grows the ring by one worker slot (index = previous workerCount),
  /// inserting its virtual nodes with the same salted hash as the
  /// constructor — a ring grown to N points identically to one built at
  /// N, so placement stays deterministic across elastic histories.
  /// Returns the new worker's index.
  std::size_t AddWorker();

  /// Removes `worker`'s virtual nodes; its arcs fall to the clockwise
  /// successors. Slot indices are stable — workerCount() still counts
  /// the removed slot, it just owns no keyspace (and Pick never returns
  /// it).
  void RemoveWorker(std::size_t worker);

  std::size_t workerCount() const { return workerCount_; }

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t worker;
  };
  void InsertPointsFor(std::size_t worker);

  std::vector<Point> points_;  ///< sorted by hash
  std::size_t workerCount_;
  std::size_t virtualNodesPerWorker_;
};

/// Index of the eligible worker with the smallest load (ties break to the
/// lowest index, keeping the choice deterministic). Returns nullopt when
/// no worker is eligible.
std::optional<std::size_t> LeastLoaded(const std::vector<std::uint64_t>& loads,
                                       const std::vector<bool>& eligible);

}  // namespace rvss::shard
