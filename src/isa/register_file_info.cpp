#include "isa/register_file_info.h"

#include <array>
#include <cctype>

namespace rvss::isa {
namespace {

constexpr std::array<const char*, 32> kIntAliases = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0",   "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6",   "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8",   "s9", "s10", "s11", "t3", "t4", "t5", "t6"};

constexpr std::array<const char*, 32> kFpAliases = {
    "ft0", "ft1", "ft2",  "ft3",  "ft4", "ft5", "ft6",  "ft7",
    "fs0", "fs1", "fa0",  "fa1",  "fa2", "fa3", "fa4",  "fa5",
    "fa6", "fa7", "fs2",  "fs3",  "fs4", "fs5", "fs6",  "fs7",
    "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11"};

std::optional<std::uint8_t> ParseIndex(std::string_view digits) {
  if (digits.empty() || digits.size() > 2) return std::nullopt;
  unsigned value = 0;
  for (char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    value = value * 10 + static_cast<unsigned>(c - '0');
  }
  if (value >= 32) return std::nullopt;
  return static_cast<std::uint8_t>(value);
}

}  // namespace

std::optional<RegisterId> ParseRegisterName(std::string_view name) {
  if (name.empty()) return std::nullopt;
  // Machine names: x0..x31, f0..f31.
  if ((name[0] == 'x' || name[0] == 'f') && name.size() >= 2 &&
      std::isdigit(static_cast<unsigned char>(name[1]))) {
    auto index = ParseIndex(name.substr(1));
    if (index.has_value()) {
      return RegisterId{name[0] == 'x' ? RegisterKind::kInt : RegisterKind::kFp,
                        *index};
    }
  }
  // "fp" is the standard alias of s0/x8.
  if (name == "fp") return RegisterId{RegisterKind::kInt, 8};
  for (std::uint8_t i = 0; i < 32; ++i) {
    if (name == kIntAliases[i]) return RegisterId{RegisterKind::kInt, i};
  }
  for (std::uint8_t i = 0; i < 32; ++i) {
    if (name == kFpAliases[i]) return RegisterId{RegisterKind::kFp, i};
  }
  return std::nullopt;
}

std::string RegisterName(RegisterId id) {
  // Built char-by-char: `"x" + std::to_string(...)` trips GCC 12's
  // -Wrestrict false positive (PR105651) under -Werror.
  std::string name(1, id.kind == RegisterKind::kInt ? 'x' : 'f');
  name += std::to_string(id.index);
  return name;
}

std::string RegisterAbiName(RegisterId id) {
  if (id.index < 32) {
    return id.kind == RegisterKind::kInt ? kIntAliases[id.index]
                                         : kFpAliases[id.index];
  }
  return RegisterName(id);
}

}  // namespace rvss::isa
