#include "isa/instruction_set_json.h"

#include <array>

namespace rvss::isa {

const char* ToString(InstructionType type) {
  switch (type) {
    case InstructionType::kArithmetic: return "kArithmetic";
    case InstructionType::kMulDiv: return "kMulDiv";
    case InstructionType::kFloat: return "kFloat";
    case InstructionType::kLoad: return "kLoad";
    case InstructionType::kStore: return "kStore";
    case InstructionType::kBranch: return "kBranch";
    case InstructionType::kJump: return "kJump";
  }
  return "kArithmetic";
}

const char* ToString(OpClass opClass) {
  switch (opClass) {
    case OpClass::kIntAlu: return "kIntAlu";
    case OpClass::kIntMul: return "kIntMul";
    case OpClass::kIntDiv: return "kIntDiv";
    case OpClass::kFpAdd: return "kFpAdd";
    case OpClass::kFpMul: return "kFpMul";
    case OpClass::kFpDiv: return "kFpDiv";
    case OpClass::kFpFma: return "kFpFma";
    case OpClass::kFpOther: return "kFpOther";
    case OpClass::kBranch: return "kBranch";
    case OpClass::kMemAddr: return "kMemAddr";
  }
  return "kIntAlu";
}

const char* ToString(ArgType type) {
  switch (type) {
    case ArgType::kInt: return "kInt";
    case ArgType::kUInt: return "kUInt";
    case ArgType::kFloat: return "kFloat";
    case ArgType::kDouble: return "kDouble";
    case ArgType::kBool: return "kBool";
  }
  return "kInt";
}

namespace {

const char* ToString(BranchKind kind) {
  switch (kind) {
    case BranchKind::kNone: return "kNone";
    case BranchKind::kConditional: return "kConditional";
    case BranchKind::kUnconditionalDirect: return "kUnconditionalDirect";
    case BranchKind::kUnconditionalIndirect: return "kUnconditionalIndirect";
  }
  return "kNone";
}

template <typename Enum, std::size_t N>
std::optional<Enum> ParseEnum(
    std::string_view text,
    const std::array<std::pair<std::string_view, Enum>, N>& table) {
  for (const auto& [name, value] : table) {
    if (name == text) return value;
  }
  return std::nullopt;
}

constexpr std::array<std::pair<std::string_view, InstructionType>, 7>
    kInstructionTypes{{{"kArithmetic", InstructionType::kArithmetic},
                       {"kMulDiv", InstructionType::kMulDiv},
                       {"kFloat", InstructionType::kFloat},
                       {"kLoad", InstructionType::kLoad},
                       {"kStore", InstructionType::kStore},
                       {"kBranch", InstructionType::kBranch},
                       {"kJump", InstructionType::kJump}}};

constexpr std::array<std::pair<std::string_view, OpClass>, 10> kOpClasses{
    {{"kIntAlu", OpClass::kIntAlu},
     {"kIntMul", OpClass::kIntMul},
     {"kIntDiv", OpClass::kIntDiv},
     {"kFpAdd", OpClass::kFpAdd},
     {"kFpMul", OpClass::kFpMul},
     {"kFpDiv", OpClass::kFpDiv},
     {"kFpFma", OpClass::kFpFma},
     {"kFpOther", OpClass::kFpOther},
     {"kBranch", OpClass::kBranch},
     {"kMemAddr", OpClass::kMemAddr}}};

constexpr std::array<std::pair<std::string_view, ArgType>, 5> kArgTypes{
    {{"kInt", ArgType::kInt},
     {"kUInt", ArgType::kUInt},
     {"kFloat", ArgType::kFloat},
     {"kDouble", ArgType::kDouble},
     {"kBool", ArgType::kBool}}};

constexpr std::array<std::pair<std::string_view, BranchKind>, 4> kBranchKinds{
    {{"kNone", BranchKind::kNone},
     {"kConditional", BranchKind::kConditional},
     {"kUnconditionalDirect", BranchKind::kUnconditionalDirect},
     {"kUnconditionalIndirect", BranchKind::kUnconditionalIndirect}}};

}  // namespace

json::Json ToJson(const InstructionDescription& def) {
  json::Json node = json::Json::MakeObject();
  node.Set("name", def.name);
  node.Set("instructionType", ToString(def.type));
  node.Set("opClass", ToString(def.opClass));
  json::Json args = json::Json::MakeArray();
  for (const ArgumentDescription& arg : def.args) {
    json::Json argNode = json::Json::MakeObject();
    argNode.Set("name", arg.name);
    argNode.Set("type", ToString(arg.type));
    if (arg.writeBack) argNode.Set("writeBack", true);
    if (arg.isImmediate) argNode.Set("isImmediate", true);
    args.Append(std::move(argNode));
  }
  node.Set("arguments", std::move(args));
  node.Set("interpretableAs", def.interpretableAs);
  if (def.branch != BranchKind::kNone) node.Set("branch", ToString(def.branch));
  if (def.mem.isLoad || def.mem.isStore) {
    json::Json mem = json::Json::MakeObject();
    mem.Set("isLoad", def.mem.isLoad);
    mem.Set("isStore", def.mem.isStore);
    mem.Set("sizeBytes", static_cast<int>(def.mem.sizeBytes));
    mem.Set("isSigned", def.mem.isSigned);
    mem.Set("isFloat", def.mem.isFloat);
    node.Set("memory", std::move(mem));
  }
  if (def.flops != 0) node.Set("flops", static_cast<int>(def.flops));
  if (def.takesRoundingMode) node.Set("takesRoundingMode", true);
  if (def.isHalt) node.Set("isHalt", true);
  return node;
}

json::Json ToJson(const InstructionSet& set) {
  json::Json out = json::Json::MakeArray();
  for (const InstructionDescription& def : set.all()) {
    out.Append(ToJson(def));
  }
  return out;
}

Result<InstructionDescription> InstructionFromJson(const json::Json& node) {
  if (!node.IsObject()) {
    return Error{ErrorKind::kParse, "instruction definition must be an object"};
  }
  InstructionDescription def;
  def.name = node.GetString("name", "");
  if (def.name.empty()) {
    return Error{ErrorKind::kParse, "instruction definition missing 'name'"};
  }
  auto type = ParseEnum(node.GetString("instructionType", "kArithmetic"),
                        kInstructionTypes);
  if (!type) {
    return Error{ErrorKind::kParse,
                 "unknown instructionType in definition of '" + def.name + "'"};
  }
  def.type = *type;
  auto opClass = ParseEnum(node.GetString("opClass", "kIntAlu"), kOpClasses);
  if (!opClass) {
    return Error{ErrorKind::kParse,
                 "unknown opClass in definition of '" + def.name + "'"};
  }
  def.opClass = *opClass;
  if (const json::Json* args = node.Find("arguments"); args != nullptr) {
    if (!args->IsArray()) {
      return Error{ErrorKind::kParse, "'arguments' must be an array"};
    }
    for (const json::Json& argNode : args->AsArray()) {
      ArgumentDescription arg;
      arg.name = argNode.GetString("name", "");
      if (arg.name.empty()) {
        return Error{ErrorKind::kParse,
                     "argument of '" + def.name + "' missing 'name'"};
      }
      auto argType = ParseEnum(argNode.GetString("type", "kInt"), kArgTypes);
      if (!argType) {
        return Error{ErrorKind::kParse,
                     "unknown argument type in '" + def.name + "'"};
      }
      arg.type = *argType;
      arg.writeBack = argNode.GetBool("writeBack", false);
      arg.isImmediate =
          argNode.GetBool("isImmediate", arg.name == "imm");
      def.args.push_back(std::move(arg));
    }
  }
  def.interpretableAs = node.GetString("interpretableAs", "");
  auto branch = ParseEnum(node.GetString("branch", "kNone"), kBranchKinds);
  if (!branch) {
    return Error{ErrorKind::kParse,
                 "unknown branch kind in '" + def.name + "'"};
  }
  def.branch = *branch;
  if (const json::Json* mem = node.Find("memory"); mem != nullptr) {
    def.mem.isLoad = mem->GetBool("isLoad", false);
    def.mem.isStore = mem->GetBool("isStore", false);
    def.mem.sizeBytes = static_cast<std::uint8_t>(mem->GetInt("sizeBytes", 0));
    def.mem.isSigned = mem->GetBool("isSigned", false);
    def.mem.isFloat = mem->GetBool("isFloat", false);
    if (def.mem.sizeBytes != 1 && def.mem.sizeBytes != 2 &&
        def.mem.sizeBytes != 4 && def.mem.sizeBytes != 8) {
      return Error{ErrorKind::kParse,
                   "invalid memory sizeBytes in '" + def.name + "'"};
    }
  }
  def.flops = static_cast<std::uint8_t>(node.GetInt("flops", 0));
  def.takesRoundingMode = node.GetBool("takesRoundingMode", false);
  def.isHalt = node.GetBool("isHalt", false);
  return def;
}

Result<InstructionSet> InstructionSetFromJson(const json::Json& node) {
  if (!node.IsArray()) {
    return Error{ErrorKind::kParse, "instruction set must be a JSON array"};
  }
  std::vector<InstructionDescription> defs;
  defs.reserve(node.AsArray().size());
  for (const json::Json& defNode : node.AsArray()) {
    RVSS_ASSIGN_OR_RETURN(InstructionDescription def,
                          InstructionFromJson(defNode));
    defs.push_back(std::move(def));
  }
  return InstructionSet(std::move(defs));
}

}  // namespace rvss::isa
