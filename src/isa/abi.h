// ABI / simulation conventions shared by the OoO core, the golden-model
// interpreter and the program loader.
#pragma once

#include <cstdint>

namespace rvss::isa {

/// Sentinel return address installed in `ra` before entry. A jump landing
/// here means the main routine returned: the paper's "stack pointer reaches
/// the bottom of the call stack, indicating process completion as the main
/// routine is exited" — implemented as a link-register sentinel, which is
/// robust even for programs that juggle `sp`.
inline constexpr std::uint32_t kExitAddress = 0xfffffff0u;

/// Alignment of the program's .data image above user-defined arrays.
inline constexpr std::uint32_t kDataAlignment = 16;

}  // namespace rvss::isa
