// Pseudo-instruction expansion.
//
// Works at the text level, before operand resolution: the assembler hands
// in a mnemonic plus raw operand strings and receives one or more real
// RV32IMFD instructions. Label operands pass through untouched and are
// resolved later by the assembler's second pass, which also lets `li` with
// a label-valued immediate work.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace rvss::isa {

/// One expanded instruction: mnemonic + operand texts.
struct ExpandedInstruction {
  std::string mnemonic;
  std::vector<std::string> operands;
};

/// True if `mnemonic` names a pseudo-instruction this module expands.
bool IsPseudoInstruction(std::string_view mnemonic);

/// Expands a pseudo-instruction. For `li` with an immediate that does not
/// fit 12 bits this produces the standard lui+addi pair; `la`/`lla`
/// produce `lui %hi` + `addi %lo` so that compiler-style relocation
/// operators flow through the same path as hand-written code.
///
/// Returns an error for malformed operand counts. Calling this with a
/// non-pseudo mnemonic is an error.
Result<std::vector<ExpandedInstruction>> ExpandPseudoInstruction(
    std::string_view mnemonic, const std::vector<std::string>& operands);

}  // namespace rvss::isa
