// Architectural register naming: x0..x31 / f0..f31 plus ABI aliases.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rvss::isa {

enum class RegisterKind : std::uint8_t { kInt, kFp };

/// Identity of one architectural register.
struct RegisterId {
  RegisterKind kind = RegisterKind::kInt;
  std::uint8_t index = 0;  ///< 0..31

  friend bool operator==(const RegisterId&, const RegisterId&) = default;
};

/// Well-known integer registers.
inline constexpr std::uint8_t kZeroReg = 0;   ///< x0
inline constexpr std::uint8_t kRaReg = 1;     ///< x1, link register
inline constexpr std::uint8_t kSpReg = 2;     ///< x2, stack pointer

/// Parses "x7", "f3" or any ABI alias ("t0", "sp", "fa0", ...).
/// Returns nullopt for unknown names.
std::optional<RegisterId> ParseRegisterName(std::string_view name);

/// Canonical machine name: "x7" / "f3".
std::string RegisterName(RegisterId id);

/// ABI alias: "t2" / "fs1". Falls back to the machine name when the index
/// has no alias.
std::string RegisterAbiName(RegisterId id);

}  // namespace rvss::isa
