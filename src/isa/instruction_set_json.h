// JSON import/export of instruction definitions, following the paper's
// Listing 1 schema ("name" / "instructionType" / "arguments" /
// "interpretableAs") extended with the pipeline-routing metadata.
//
// This is what makes the instruction set *easily extensible* (the paper's
// claim): a user can dump the built-in table, add an instruction, and load
// the result back without recompiling.
#pragma once

#include "common/status.h"
#include "isa/instruction_set.h"
#include "json/json.h"

namespace rvss::isa {

/// Serializes a single definition to the Listing-1 schema.
json::Json ToJson(const InstructionDescription& def);

/// Serializes the whole set as a JSON array.
json::Json ToJson(const InstructionSet& set);

/// Parses one definition; validates enum values and argument sanity.
Result<InstructionDescription> InstructionFromJson(const json::Json& node);

/// Parses a whole set from a JSON array.
Result<InstructionSet> InstructionSetFromJson(const json::Json& node);

}  // namespace rvss::isa
