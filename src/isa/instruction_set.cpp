#include "isa/instruction_set.h"

namespace rvss::isa {

int InstructionDescription::ArgIndex(std::string_view argName) const {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i].name == argName) return static_cast<int>(i);
  }
  return -1;
}

InstructionSet::InstructionSet(std::vector<InstructionDescription> defs)
    : defs_(std::move(defs)) {
  index_.reserve(defs_.size());
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    index_.emplace(defs_[i].name, i);
  }
}

const InstructionDescription* InstructionSet::Find(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &defs_[it->second];
}

namespace {

using AD = ArgumentDescription;

AD Reg(const char* name, ArgType type, bool writeBack = false) {
  return AD{name, type, writeBack, /*isImmediate=*/false};
}
AD Imm(ArgType type = ArgType::kInt) {
  return AD{"imm", type, /*writeBack=*/false, /*isImmediate=*/true};
}

/// R-type integer op: `name rd, rs1, rs2`.
InstructionDescription R(const char* name, const char* expr,
                         OpClass opClass = OpClass::kIntAlu,
                         InstructionType type = InstructionType::kArithmetic,
                         ArgType srcType = ArgType::kInt) {
  InstructionDescription d;
  d.name = name;
  d.type = type;
  d.opClass = opClass;
  d.args = {Reg("rd", ArgType::kInt, true), Reg("rs1", srcType),
            Reg("rs2", srcType)};
  d.interpretableAs = expr;
  return d;
}

/// I-type integer op: `name rd, rs1, imm`.
InstructionDescription I(const char* name, const char* expr,
                         ArgType srcType = ArgType::kInt) {
  InstructionDescription d;
  d.name = name;
  d.type = InstructionType::kArithmetic;
  d.opClass = OpClass::kIntAlu;
  d.args = {Reg("rd", ArgType::kInt, true), Reg("rs1", srcType), Imm(srcType)};
  d.interpretableAs = expr;
  return d;
}

/// U-type: `name rd, imm`.
InstructionDescription U(const char* name, const char* expr) {
  InstructionDescription d;
  d.name = name;
  d.type = InstructionType::kArithmetic;
  d.opClass = OpClass::kIntAlu;
  d.args = {Reg("rd", ArgType::kInt, true), Imm()};
  d.interpretableAs = expr;
  return d;
}

/// Load: `name rd, imm(rs1)`. Semantics compute the effective address; the
/// load/store unit performs the access and the register write.
InstructionDescription Ld(const char* name, std::uint8_t size, bool isSigned,
                          bool isFloat, ArgType dstType = ArgType::kInt) {
  InstructionDescription d;
  d.name = name;
  d.type = InstructionType::kLoad;
  d.opClass = OpClass::kMemAddr;
  d.args = {Reg("rd", dstType, true), Reg("rs1", ArgType::kInt), Imm()};
  d.interpretableAs = "\\rs1 \\imm +";
  d.mem = MemAccess{true, false, size, isSigned, isFloat};
  return d;
}

/// Store: `name rs2, imm(rs1)`.
InstructionDescription St(const char* name, std::uint8_t size, bool isFloat,
                          ArgType srcType = ArgType::kInt) {
  InstructionDescription d;
  d.name = name;
  d.type = InstructionType::kStore;
  d.opClass = OpClass::kMemAddr;
  d.args = {Reg("rs2", srcType), Reg("rs1", ArgType::kInt), Imm()};
  d.interpretableAs = "\\rs1 \\imm +";
  d.mem = MemAccess{false, true, size, false, isFloat};
  return d;
}

/// Conditional branch: `name rs1, rs2, label`. Semantics yield the taken
/// condition; the target is PC + imm.
InstructionDescription Br(const char* name, const char* expr,
                          ArgType srcType = ArgType::kInt) {
  InstructionDescription d;
  d.name = name;
  d.type = InstructionType::kBranch;
  d.opClass = OpClass::kBranch;
  d.args = {Reg("rs1", srcType), Reg("rs2", srcType), Imm()};
  d.interpretableAs = expr;
  d.branch = BranchKind::kConditional;
  return d;
}

/// FP three-operand op: `name rd, rs1, rs2`.
InstructionDescription F3(const char* name, const char* expr, OpClass opClass,
                          ArgType fpType, std::uint8_t flops,
                          bool rounded = false) {
  InstructionDescription d;
  d.name = name;
  d.type = InstructionType::kFloat;
  d.opClass = opClass;
  d.args = {Reg("rd", fpType, true), Reg("rs1", fpType), Reg("rs2", fpType)};
  d.interpretableAs = expr;
  d.flops = flops;
  d.takesRoundingMode = rounded;
  return d;
}

/// FP fused multiply-add family: `name rd, rs1, rs2, rs3`.
InstructionDescription F4(const char* name, const char* expr, ArgType fpType) {
  InstructionDescription d;
  d.name = name;
  d.type = InstructionType::kFloat;
  d.opClass = OpClass::kFpFma;
  d.args = {Reg("rd", fpType, true), Reg("rs1", fpType), Reg("rs2", fpType),
            Reg("rs3", fpType)};
  d.interpretableAs = expr;
  d.flops = 2;
  d.takesRoundingMode = true;
  return d;
}

/// Two-operand FP/integer transfer or conversion: `name rd, rs1`.
InstructionDescription F2(const char* name, const char* expr, ArgType dstType,
                          ArgType srcType, OpClass opClass = OpClass::kFpOther,
                          std::uint8_t flops = 0, bool rounded = false) {
  InstructionDescription d;
  d.name = name;
  d.type = InstructionType::kFloat;
  d.opClass = opClass;
  d.args = {Reg("rd", dstType, true), Reg("rs1", srcType)};
  d.interpretableAs = expr;
  d.flops = flops;
  d.takesRoundingMode = rounded;
  return d;
}

/// FP compare producing an integer flag: `name rd, rs1, rs2`.
InstructionDescription FCmp(const char* name, const char* expr,
                            ArgType fpType) {
  InstructionDescription d;
  d.name = name;
  d.type = InstructionType::kFloat;
  d.opClass = OpClass::kFpOther;
  d.args = {Reg("rd", ArgType::kInt, true), Reg("rs1", fpType),
            Reg("rs2", fpType)};
  d.interpretableAs = expr;
  return d;
}

std::vector<InstructionDescription> BuildRv32Imfd() {
  constexpr ArgType F = ArgType::kFloat;
  constexpr ArgType D = ArgType::kDouble;
  constexpr ArgType UI = ArgType::kUInt;

  std::vector<InstructionDescription> defs;
  defs.reserve(160);

  // ---- RV32I: integer register-register -------------------------------
  defs.push_back(R("add", "\\rs1 \\rs2 + \\rd ="));
  defs.push_back(R("sub", "\\rs1 \\rs2 - \\rd ="));
  defs.push_back(R("sll", "\\rs1 \\rs2 << \\rd ="));
  defs.push_back(R("slt", "\\rs1 \\rs2 < \\rd ="));
  defs.push_back(R("sltu", "\\rs1 \\rs2 < \\rd =", OpClass::kIntAlu,
                   InstructionType::kArithmetic, UI));
  defs.push_back(R("xor", "\\rs1 \\rs2 ^ \\rd ="));
  defs.push_back(R("srl", "\\rs1 \\rs2 >> \\rd =", OpClass::kIntAlu,
                   InstructionType::kArithmetic, UI));
  defs.push_back(R("sra", "\\rs1 \\rs2 >> \\rd ="));
  defs.push_back(R("or", "\\rs1 \\rs2 | \\rd ="));
  defs.push_back(R("and", "\\rs1 \\rs2 & \\rd ="));

  // ---- RV32I: integer immediate ---------------------------------------
  defs.push_back(I("addi", "\\rs1 \\imm + \\rd ="));
  defs.push_back(I("slti", "\\rs1 \\imm < \\rd ="));
  defs.push_back(I("sltiu", "\\rs1 \\imm < \\rd =", UI));
  defs.push_back(I("xori", "\\rs1 \\imm ^ \\rd ="));
  defs.push_back(I("ori", "\\rs1 \\imm | \\rd ="));
  defs.push_back(I("andi", "\\rs1 \\imm & \\rd ="));
  defs.push_back(I("slli", "\\rs1 \\imm << \\rd ="));
  defs.push_back(I("srli", "\\rs1 \\imm >> \\rd =", UI));
  defs.push_back(I("srai", "\\rs1 \\imm >> \\rd ="));

  defs.push_back(U("lui", "\\imm 12 << \\rd ="));
  defs.push_back(U("auipc", "\\pc \\imm 12 << + \\rd ="));

  // ---- RV32I: control flow --------------------------------------------
  {
    InstructionDescription jal;
    jal.name = "jal";
    jal.type = InstructionType::kJump;
    jal.opClass = OpClass::kBranch;
    jal.args = {Reg("rd", ArgType::kInt, true), Imm()};
    jal.interpretableAs = "\\pc 4 + \\rd = \\pc \\imm +";
    jal.branch = BranchKind::kUnconditionalDirect;
    defs.push_back(jal);

    InstructionDescription jalr;
    jalr.name = "jalr";
    jalr.type = InstructionType::kJump;
    jalr.opClass = OpClass::kBranch;
    jalr.args = {Reg("rd", ArgType::kInt, true), Reg("rs1", ArgType::kInt),
                 Imm()};
    jalr.interpretableAs = "\\pc 4 + \\rd = \\rs1 \\imm + -2 &";
    jalr.branch = BranchKind::kUnconditionalIndirect;
    defs.push_back(jalr);
  }

  defs.push_back(Br("beq", "\\rs1 \\rs2 =="));
  defs.push_back(Br("bne", "\\rs1 \\rs2 !="));
  defs.push_back(Br("blt", "\\rs1 \\rs2 <"));
  defs.push_back(Br("bge", "\\rs1 \\rs2 >="));
  defs.push_back(Br("bltu", "\\rs1 \\rs2 <", UI));
  defs.push_back(Br("bgeu", "\\rs1 \\rs2 >=", UI));

  // ---- RV32I: loads and stores ----------------------------------------
  defs.push_back(Ld("lb", 1, true, false));
  defs.push_back(Ld("lh", 2, true, false));
  defs.push_back(Ld("lw", 4, true, false));
  defs.push_back(Ld("lbu", 1, false, false));
  defs.push_back(Ld("lhu", 2, false, false));
  defs.push_back(St("sb", 1, false));
  defs.push_back(St("sh", 2, false));
  defs.push_back(St("sw", 4, false));

  // ---- RV32I: system ----------------------------------------------------
  {
    InstructionDescription fence;
    fence.name = "fence";
    fence.type = InstructionType::kArithmetic;
    fence.opClass = OpClass::kIntAlu;
    fence.interpretableAs = "";
    defs.push_back(fence);

    for (const char* haltName : {"ecall", "ebreak"}) {
      InstructionDescription halt;
      halt.name = haltName;
      halt.type = InstructionType::kArithmetic;
      halt.opClass = OpClass::kIntAlu;
      halt.interpretableAs = "";
      halt.isHalt = true;
      defs.push_back(halt);
    }
  }

  // ---- M extension ------------------------------------------------------
  auto m = [](const char* name, const char* expr,
              OpClass opClass) {
    InstructionDescription d = R(name, expr, opClass, InstructionType::kMulDiv);
    return d;
  };
  defs.push_back(m("mul", "\\rs1 \\rs2 * \\rd =", OpClass::kIntMul));
  defs.push_back(m("mulh", "\\rs1 i2l \\rs2 i2l * 32 >> l2i \\rd =",
                   OpClass::kIntMul));
  defs.push_back(m("mulhsu", "\\rs1 i2l \\rs2 u2l * 32 >> l2i \\rd =",
                   OpClass::kIntMul));
  defs.push_back(m("mulhu", "\\rs1 u2l \\rs2 u2l * 32 >> l2i \\rd =",
                   OpClass::kIntMul));
  defs.push_back(m("div", "\\rs1 \\rs2 / \\rd =", OpClass::kIntDiv));
  {
    InstructionDescription d = R("divu", "\\rs1 \\rs2 / \\rd =",
                                 OpClass::kIntDiv, InstructionType::kMulDiv, UI);
    defs.push_back(d);
    defs.push_back(m("rem", "\\rs1 \\rs2 % \\rd =", OpClass::kIntDiv));
    InstructionDescription r = R("remu", "\\rs1 \\rs2 % \\rd =",
                                 OpClass::kIntDiv, InstructionType::kMulDiv, UI);
    defs.push_back(r);
  }

  // ---- F extension ------------------------------------------------------
  defs.push_back(Ld("flw", 4, false, true, F));
  defs.push_back(St("fsw", 4, true, F));

  defs.push_back(F3("fadd.s", "\\rs1 \\rs2 + \\rd =", OpClass::kFpAdd, F, 1, true));
  defs.push_back(F3("fsub.s", "\\rs1 \\rs2 - \\rd =", OpClass::kFpAdd, F, 1, true));
  defs.push_back(F3("fmul.s", "\\rs1 \\rs2 * \\rd =", OpClass::kFpMul, F, 1, true));
  defs.push_back(F3("fdiv.s", "\\rs1 \\rs2 / \\rd =", OpClass::kFpDiv, F, 1, true));
  defs.push_back(F2("fsqrt.s", "\\rs1 sqrt \\rd =", F, F, OpClass::kFpDiv, 1, true));

  defs.push_back(F4("fmadd.s", "\\rs1 \\rs2 \\rs3 fma \\rd =", F));
  defs.push_back(F4("fmsub.s", "\\rs1 \\rs2 \\rs3 neg fma \\rd =", F));
  defs.push_back(F4("fnmsub.s", "\\rs1 neg \\rs2 \\rs3 fma \\rd =", F));
  defs.push_back(F4("fnmadd.s", "\\rs1 neg \\rs2 \\rs3 neg fma \\rd =", F));

  defs.push_back(F3("fsgnj.s", "\\rs1 \\rs2 sgnj \\rd =", OpClass::kFpOther, F, 0));
  defs.push_back(F3("fsgnjn.s", "\\rs1 \\rs2 sgnjn \\rd =", OpClass::kFpOther, F, 0));
  defs.push_back(F3("fsgnjx.s", "\\rs1 \\rs2 sgnjx \\rd =", OpClass::kFpOther, F, 0));
  defs.push_back(F3("fmin.s", "\\rs1 \\rs2 min \\rd =", OpClass::kFpOther, F, 1));
  defs.push_back(F3("fmax.s", "\\rs1 \\rs2 max \\rd =", OpClass::kFpOther, F, 1));

  defs.push_back(FCmp("feq.s", "\\rs1 \\rs2 == \\rd =", F));
  defs.push_back(FCmp("flt.s", "\\rs1 \\rs2 < \\rd =", F));
  defs.push_back(FCmp("fle.s", "\\rs1 \\rs2 <= \\rd =", F));
  defs.push_back(F2("fclass.s", "\\rs1 class \\rd =", ArgType::kInt, F));

  defs.push_back(F2("fcvt.w.s", "\\rs1 f2i \\rd =", ArgType::kInt, F,
                    OpClass::kFpOther, 0, true));
  defs.push_back(F2("fcvt.wu.s", "\\rs1 f2u \\rd =", UI, F,
                    OpClass::kFpOther, 0, true));
  defs.push_back(F2("fcvt.s.w", "\\rs1 i2f \\rd =", F, ArgType::kInt,
                    OpClass::kFpOther, 0, true));
  defs.push_back(F2("fcvt.s.wu", "\\rs1 u2f \\rd =", F, UI,
                    OpClass::kFpOther, 0, true));
  defs.push_back(F2("fmv.x.w", "\\rs1 fbits \\rd =", ArgType::kInt, F));
  defs.push_back(F2("fmv.w.x", "\\rs1 ifbits \\rd =", F, ArgType::kInt));

  // ---- D extension ------------------------------------------------------
  defs.push_back(Ld("fld", 8, false, true, D));
  defs.push_back(St("fsd", 8, true, D));

  defs.push_back(F3("fadd.d", "\\rs1 \\rs2 + \\rd =", OpClass::kFpAdd, D, 1, true));
  defs.push_back(F3("fsub.d", "\\rs1 \\rs2 - \\rd =", OpClass::kFpAdd, D, 1, true));
  defs.push_back(F3("fmul.d", "\\rs1 \\rs2 * \\rd =", OpClass::kFpMul, D, 1, true));
  defs.push_back(F3("fdiv.d", "\\rs1 \\rs2 / \\rd =", OpClass::kFpDiv, D, 1, true));
  defs.push_back(F2("fsqrt.d", "\\rs1 sqrt \\rd =", D, D, OpClass::kFpDiv, 1, true));

  defs.push_back(F4("fmadd.d", "\\rs1 \\rs2 \\rs3 fma \\rd =", D));
  defs.push_back(F4("fmsub.d", "\\rs1 \\rs2 \\rs3 neg fma \\rd =", D));
  defs.push_back(F4("fnmsub.d", "\\rs1 neg \\rs2 \\rs3 fma \\rd =", D));
  defs.push_back(F4("fnmadd.d", "\\rs1 neg \\rs2 \\rs3 neg fma \\rd =", D));

  defs.push_back(F3("fsgnj.d", "\\rs1 \\rs2 sgnj \\rd =", OpClass::kFpOther, D, 0));
  defs.push_back(F3("fsgnjn.d", "\\rs1 \\rs2 sgnjn \\rd =", OpClass::kFpOther, D, 0));
  defs.push_back(F3("fsgnjx.d", "\\rs1 \\rs2 sgnjx \\rd =", OpClass::kFpOther, D, 0));
  defs.push_back(F3("fmin.d", "\\rs1 \\rs2 min \\rd =", OpClass::kFpOther, D, 1));
  defs.push_back(F3("fmax.d", "\\rs1 \\rs2 max \\rd =", OpClass::kFpOther, D, 1));

  defs.push_back(FCmp("feq.d", "\\rs1 \\rs2 == \\rd =", D));
  defs.push_back(FCmp("flt.d", "\\rs1 \\rs2 < \\rd =", D));
  defs.push_back(FCmp("fle.d", "\\rs1 \\rs2 <= \\rd =", D));
  defs.push_back(F2("fclass.d", "\\rs1 class \\rd =", ArgType::kInt, D));

  defs.push_back(F2("fcvt.w.d", "\\rs1 d2i \\rd =", ArgType::kInt, D,
                    OpClass::kFpOther, 0, true));
  defs.push_back(F2("fcvt.wu.d", "\\rs1 d2u \\rd =", UI, D,
                    OpClass::kFpOther, 0, true));
  defs.push_back(F2("fcvt.d.w", "\\rs1 i2d \\rd =", D, ArgType::kInt));
  defs.push_back(F2("fcvt.d.wu", "\\rs1 u2d \\rd =", D, UI));
  defs.push_back(F2("fcvt.s.d", "\\rs1 d2f \\rd =", F, D,
                    OpClass::kFpOther, 0, true));
  defs.push_back(F2("fcvt.d.s", "\\rs1 f2d \\rd =", D, F));

  return defs;
}

}  // namespace

const InstructionSet& InstructionSet::Default() {
  static const InstructionSet* kSet = new InstructionSet(BuildRv32Imfd());
  return *kSet;
}

}  // namespace rvss::isa
