#include "isa/pseudo.h"

#include <unordered_map>

#include "common/strings.h"

namespace rvss::isa {
namespace {

using Expansion = std::vector<ExpandedInstruction>;

Error WrongOperandCount(std::string_view mnemonic, std::size_t expected,
                        std::size_t got) {
  return Error{ErrorKind::kParse,
               std::string(mnemonic) + " expects " + std::to_string(expected) +
                   " operand(s), got " + std::to_string(got)};
}

ExpandedInstruction Make(std::string mnemonic,
                         std::vector<std::string> operands) {
  return ExpandedInstruction{std::move(mnemonic), std::move(operands)};
}

/// True when `text` parses as an integer that fits a signed 12-bit
/// immediate. Label operands return false and defer to lui+addi.
bool FitsImm12(std::string_view text) {
  auto value = ParseInt(text);
  return value.has_value() && *value >= -2048 && *value <= 2047;
}

}  // namespace

bool IsPseudoInstruction(std::string_view mnemonic) {
  static const std::unordered_map<std::string_view, int>* kNames = [] {
    auto* set = new std::unordered_map<std::string_view, int>();
    for (const char* name :
         {"nop",  "li",   "la",    "lla",  "mv",    "not",   "neg",
          "seqz", "snez", "sltz",  "sgtz", "beqz",  "bnez",  "blez",
          "bgez", "bltz", "bgtz",  "bgt",  "ble",   "bgtu",  "bleu",
          "j",    "jr",   "ret",   "call", "tail",  "fmv.s", "fabs.s",
          "fneg.s", "fmv.d", "fabs.d", "fneg.d"}) {
      set->emplace(name, 0);
    }
    return set;
  }();
  // `jal label` / `jalr rs` single-operand forms are handled as pseudo too,
  // but dispatch on operand count happens in ExpandPseudoInstruction.
  return kNames->contains(mnemonic);
}

Result<Expansion> ExpandPseudoInstruction(
    std::string_view mnemonic, const std::vector<std::string>& ops) {
  auto require = [&](std::size_t n) -> Status {
    if (ops.size() != n) return WrongOperandCount(mnemonic, n, ops.size());
    return Status::Ok();
  };

  if (mnemonic == "nop") {
    RVSS_RETURN_IF_ERROR(require(0));
    return Expansion{Make("addi", {"x0", "x0", "0"})};
  }
  if (mnemonic == "li") {
    RVSS_RETURN_IF_ERROR(require(2));
    if (FitsImm12(ops[1])) {
      return Expansion{Make("addi", {ops[0], "x0", ops[1]})};
    }
    // lui rd, %hi(imm); addi rd, rd, %lo(imm) — the relocation operators
    // handle the +0x800 rounding interplay exactly like compiler output.
    return Expansion{Make("lui", {ops[0], "%hi(" + ops[1] + ")"}),
                     Make("addi", {ops[0], ops[0], "%lo(" + ops[1] + ")"})};
  }
  if (mnemonic == "la" || mnemonic == "lla") {
    RVSS_RETURN_IF_ERROR(require(2));
    return Expansion{Make("lui", {ops[0], "%hi(" + ops[1] + ")"}),
                     Make("addi", {ops[0], ops[0], "%lo(" + ops[1] + ")"})};
  }
  if (mnemonic == "mv") {
    RVSS_RETURN_IF_ERROR(require(2));
    return Expansion{Make("addi", {ops[0], ops[1], "0"})};
  }
  if (mnemonic == "not") {
    RVSS_RETURN_IF_ERROR(require(2));
    return Expansion{Make("xori", {ops[0], ops[1], "-1"})};
  }
  if (mnemonic == "neg") {
    RVSS_RETURN_IF_ERROR(require(2));
    return Expansion{Make("sub", {ops[0], "x0", ops[1]})};
  }
  if (mnemonic == "seqz") {
    RVSS_RETURN_IF_ERROR(require(2));
    return Expansion{Make("sltiu", {ops[0], ops[1], "1"})};
  }
  if (mnemonic == "snez") {
    RVSS_RETURN_IF_ERROR(require(2));
    return Expansion{Make("sltu", {ops[0], "x0", ops[1]})};
  }
  if (mnemonic == "sltz") {
    RVSS_RETURN_IF_ERROR(require(2));
    return Expansion{Make("slt", {ops[0], ops[1], "x0"})};
  }
  if (mnemonic == "sgtz") {
    RVSS_RETURN_IF_ERROR(require(2));
    return Expansion{Make("slt", {ops[0], "x0", ops[1]})};
  }

  // Branch-against-zero family.
  if (mnemonic == "beqz" || mnemonic == "bnez" || mnemonic == "bgez" ||
      mnemonic == "bltz") {
    RVSS_RETURN_IF_ERROR(require(2));
    static const std::unordered_map<std::string_view, const char*> kMap = {
        {"beqz", "beq"}, {"bnez", "bne"}, {"bgez", "bge"}, {"bltz", "blt"}};
    return Expansion{Make(kMap.at(mnemonic), {ops[0], "x0", ops[1]})};
  }
  if (mnemonic == "blez") {
    RVSS_RETURN_IF_ERROR(require(2));
    return Expansion{Make("bge", {"x0", ops[0], ops[1]})};
  }
  if (mnemonic == "bgtz") {
    RVSS_RETURN_IF_ERROR(require(2));
    return Expansion{Make("blt", {"x0", ops[0], ops[1]})};
  }

  // Swapped-operand comparison branches.
  if (mnemonic == "bgt" || mnemonic == "ble" || mnemonic == "bgtu" ||
      mnemonic == "bleu") {
    RVSS_RETURN_IF_ERROR(require(3));
    static const std::unordered_map<std::string_view, const char*> kMap = {
        {"bgt", "blt"}, {"ble", "bge"}, {"bgtu", "bltu"}, {"bleu", "bgeu"}};
    return Expansion{Make(kMap.at(mnemonic), {ops[1], ops[0], ops[2]})};
  }

  // Jumps.
  if (mnemonic == "j") {
    RVSS_RETURN_IF_ERROR(require(1));
    return Expansion{Make("jal", {"x0", ops[0]})};
  }
  if (mnemonic == "jr") {
    RVSS_RETURN_IF_ERROR(require(1));
    return Expansion{Make("jalr", {"x0", ops[0], "0"})};
  }
  if (mnemonic == "ret") {
    RVSS_RETURN_IF_ERROR(require(0));
    return Expansion{Make("jalr", {"x0", "ra", "0"})};
  }
  if (mnemonic == "call") {
    RVSS_RETURN_IF_ERROR(require(1));
    return Expansion{Make("jal", {"ra", ops[0]})};
  }
  if (mnemonic == "tail") {
    RVSS_RETURN_IF_ERROR(require(1));
    return Expansion{Make("jal", {"x0", ops[0]})};
  }

  // FP register moves via sign injection.
  if (mnemonic == "fmv.s" || mnemonic == "fmv.d") {
    RVSS_RETURN_IF_ERROR(require(2));
    const char* base = mnemonic == "fmv.s" ? "fsgnj.s" : "fsgnj.d";
    return Expansion{Make(base, {ops[0], ops[1], ops[1]})};
  }
  if (mnemonic == "fabs.s" || mnemonic == "fabs.d") {
    RVSS_RETURN_IF_ERROR(require(2));
    const char* base = mnemonic == "fabs.s" ? "fsgnjx.s" : "fsgnjx.d";
    return Expansion{Make(base, {ops[0], ops[1], ops[1]})};
  }
  if (mnemonic == "fneg.s" || mnemonic == "fneg.d") {
    RVSS_RETURN_IF_ERROR(require(2));
    const char* base = mnemonic == "fneg.s" ? "fsgnjn.s" : "fsgnjn.d";
    return Expansion{Make(base, {ops[0], ops[1], ops[1]})};
  }

  return Error{ErrorKind::kInternal,
               "ExpandPseudoInstruction called with non-pseudo mnemonic '" +
                   std::string(mnemonic) + "'"};
}

}  // namespace rvss::isa
