// The RV32IMFD instruction-set description table.
//
// Mirrors the paper's data-driven design: every instruction is *data* — a
// name, a type, typed arguments and a postfix semantics string — rather
// than a hard-coded case in the simulator. Both the out-of-order core and
// the golden-model ISS execute instructions by interpreting these
// definitions, so there is a single source of truth for semantics.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "isa/isa_types.h"

namespace rvss::isa {

/// Full definition of one instruction (paper Listing 1 plus the routing
/// metadata the pipeline needs).
struct InstructionDescription {
  std::string name;                       ///< mnemonic, e.g. "add", "fmadd.s"
  InstructionType type = InstructionType::kArithmetic;
  OpClass opClass = OpClass::kIntAlu;
  std::vector<ArgumentDescription> args;  ///< in assembly operand order
  std::string interpretableAs;            ///< postfix semantics
  BranchKind branch = BranchKind::kNone;
  MemAccess mem;
  std::uint8_t flops = 0;                 ///< FLOPs contributed per execution
  bool takesRoundingMode = false;         ///< accepts an optional frm operand
  bool isHalt = false;                    ///< ecall/ebreak: stops simulation at
                                          ///< commit (no OS is modelled)

  /// Index of the argument named `name`, or -1.
  int ArgIndex(std::string_view argName) const;

  /// True for loads and stores.
  bool IsMemory() const { return mem.isLoad || mem.isStore; }

  /// True when the instruction may redirect control flow.
  bool IsControlFlow() const { return branch != BranchKind::kNone; }
};

/// Immutable collection of instruction definitions with O(1) lookup.
class InstructionSet {
 public:
  /// The built-in RV32IMFD table (plus the `halt` simulator convention for
  /// `ebreak`/`ecall`). Constructed once, thread-safe to share.
  static const InstructionSet& Default();

  /// Builds a set from explicit definitions (used by the JSON loader and
  /// by tests that extend the ISA, exercising the paper's extensibility
  /// claim).
  explicit InstructionSet(std::vector<InstructionDescription> defs);

  /// Looks up a mnemonic; nullptr when unknown.
  const InstructionDescription* Find(std::string_view name) const;

  const std::vector<InstructionDescription>& all() const { return defs_; }

 private:
  std::vector<InstructionDescription> defs_;
  std::unordered_map<std::string_view, std::size_t> index_;
};

}  // namespace rvss::isa
