// Shared enums and small structs describing RISC-V instructions.
//
// The paper defines its instruction set in a JSON configuration file
// (Listing 1): every instruction carries a type, a list of typed arguments
// (with a write-back flag) and a postfix expression ("interpretableAs")
// giving its semantics. We keep exactly that data model; the canonical
// table lives in instruction_set.cpp and can be exported to / imported
// from the paper's JSON schema (instruction_set_json.cpp).
#pragma once

#include <cstdint>
#include <string>

namespace rvss::isa {

/// Coarse category used for the static/dynamic instruction-mix statistics
/// (the paper's Runtime Statistics window shows this mix as table + chart).
enum class InstructionType : std::uint8_t {
  kArithmetic,  ///< integer ALU (add, xor, slt, lui, ...)
  kMulDiv,      ///< integer multiply / divide (M extension)
  kFloat,       ///< floating-point arithmetic (F/D extensions)
  kLoad,        ///< memory loads, integer and FP
  kStore,       ///< memory stores, integer and FP
  kBranch,      ///< conditional branches
  kJump,        ///< unconditional jumps (jal, jalr)
};

const char* ToString(InstructionType type);

/// Functional-unit capability class. Architecture configuration assigns a
/// set of these (with a latency each) to every functional unit; an
/// instruction may only issue to a unit whose set contains its op class.
enum class OpClass : std::uint8_t {
  kIntAlu,
  kIntMul,
  kIntDiv,
  kFpAdd,    ///< fadd / fsub
  kFpMul,
  kFpDiv,    ///< fdiv / fsqrt
  kFpFma,    ///< fused multiply-add family
  kFpOther,  ///< compares, converts, sign-injection, min/max, moves, class
  kBranch,   ///< handled by the branch unit
  kMemAddr,  ///< address generation for loads/stores (LS issue window)
};

const char* ToString(OpClass opClass);

/// Argument value type, from the paper's JSON argument schema.
enum class ArgType : std::uint8_t {
  kInt,     ///< 32-bit signed register or immediate
  kUInt,    ///< 32-bit unsigned view of a register
  kFloat,   ///< single-precision FP register
  kDouble,  ///< double-precision FP register
  kBool,    ///< condition output
};

const char* ToString(ArgType type);

/// Control-flow behaviour consumed by the fetch and branch units.
enum class BranchKind : std::uint8_t {
  kNone,
  kConditional,          ///< beq/bne/...: semantics yield the condition,
                         ///< target is PC + imm
  kUnconditionalDirect,  ///< jal: semantics yield the absolute target
  kUnconditionalIndirect ///< jalr: target depends on a register
};

/// Memory behaviour of loads and stores.
struct MemAccess {
  bool isLoad = false;
  bool isStore = false;
  std::uint8_t sizeBytes = 0;  ///< 1, 2, 4 or 8
  bool isSigned = false;       ///< sign-extend loaded value (lb/lh/lw)
  bool isFloat = false;        ///< targets the FP register file (flw/fld/fsw/fsd)
};

/// One operand in an instruction definition (paper Listing 1).
struct ArgumentDescription {
  std::string name;            ///< "rd", "rs1", "rs2", "rs3", "imm"
  ArgType type = ArgType::kInt;
  bool writeBack = false;      ///< true for destination registers
  bool isImmediate = false;    ///< encoded constant / label, not a register

  /// True when the operand lives in the FP register file.
  bool IsFpRegister() const {
    return !isImmediate &&
           (type == ArgType::kFloat || type == ArgType::kDouble);
  }
};

}  // namespace rvss::isa
