#include "snapshot/session.h"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "common/slz.h"
#include "json/json.h"
#include "memory/main_memory.h"
#include "memory/memory_initializer.h"
#include "snapshot/codec.h"
#include "snapshot/wire.h"

namespace rvss::snapshot {
namespace {

constexpr char kSessionMagic[4] = {'R', 'V', 'S', 'E'};
constexpr std::uint32_t kSessionVersion = 1;
constexpr std::uint8_t kFlagSlz = 1;

Error SessionError(std::string message) {
  return Error{ErrorKind::kInvalidArgument,
               "session blob: " + std::move(message)};
}

}  // namespace

SessionIdentity MakeIdentity(const core::Simulation& sim, std::string source,
                             std::string entryLabel, std::string arraysJson) {
  SessionIdentity identity;
  identity.configJson = config::ToJson(sim.config()).Dump();
  identity.source = std::move(source);
  identity.entryLabel = std::move(entryLabel);
  identity.arraysJson = std::move(arraysJson);
  return identity;
}

std::string EncodeSessionBlob(const core::Simulation& sim,
                              const SessionIdentity& identity) {
  return EncodeSessionBlob(sim, identity, SessionBlobOptions{});
}

std::string EncodeSessionBlob(const core::Simulation& sim,
                              const SessionIdentity& identity,
                              const SessionBlobOptions& options) {
  CodecContext context{&sim.config(), &sim.program()};
  EncodeOptions encode;
  if (options.formatVersion != 0) {
    encode.formatVersion = options.formatVersion;
  }
  std::vector<std::uint8_t> dirtyPages;
  if (options.delta && encode.formatVersion >= 3) {
    dirtyPages = sim.memorySystem().memory().DirtySinceBase();
    encode.deltaPages = &dirtyPages;
    encode.baseEpoch = sim.memoryBaseEpoch();
  }
  Writer container;
  container.U32(kSessionVersion);
  container.Str(identity.configJson);
  container.Str(identity.source);
  container.Str(identity.entryLabel);
  container.Str(identity.arraysJson);
  container.Str(EncodeSnapshot(sim.SaveState(), context, encode));

  std::string out(kSessionMagic, sizeof(kSessionMagic));
  out += static_cast<char>(kFlagSlz);
  out += SlzCompress(container.out());
  return out;
}

std::size_t EstimateSessionBlobBytes(const core::Simulation& sim,
                                     const SessionIdentity& identity) {
  // Upper bound on the uncompressed container; compression only shrinks
  // it, and placement needs relative load, not exact wire bytes.
  std::size_t bytes = identity.configJson.size() + identity.source.size() +
                      identity.entryLabel.size() + identity.arraysJson.size();
  bytes += sim.memorySystem().memory().size();
  bytes += sim.log().approxBytes();
  bytes += 64 * 1024;  // pipeline, predictor, rename, stats, headers
  return bytes;
}

Result<ImportedSession> ImportSessionBlob(
    std::string_view blob, std::uint64_t maxCheckpointBytesOverride) {
  if (blob.size() < sizeof(kSessionMagic) + 1 ||
      std::memcmp(blob.data(), kSessionMagic, sizeof(kSessionMagic)) != 0) {
    return SessionError("bad magic (not a session blob)");
  }
  const std::uint8_t flags = static_cast<std::uint8_t>(blob[4]);
  if (flags != kFlagSlz) {
    return SessionError("unknown container flags");
  }
  std::size_t consumed = 0;
  auto container = SlzDecompress(blob.substr(5), &consumed);
  if (!container.has_value()) {
    return SessionError("decompression failed (truncated or corrupted)");
  }
  if (consumed != blob.size() - 5) {
    return SessionError("trailing bytes after the compressed container");
  }

  Reader r(*container);
  const std::uint32_t version = r.U32();
  if (r.ok() && version != kSessionVersion) {
    return SessionError("unsupported container version");
  }
  SessionIdentity identity;
  identity.configJson = r.Str();
  identity.source = r.Str();
  identity.entryLabel = r.Str();
  identity.arraysJson = r.Str();
  const std::string snapshotBlob = r.Str();
  if (!r.ok()) return SessionError(r.failReason());
  if (r.remaining() != 0) {
    return SessionError("trailing bytes after the session container");
  }

  auto configNode = json::Parse(identity.configJson);
  if (!configNode.ok()) {
    return SessionError("embedded configuration is not valid JSON");
  }
  RVSS_ASSIGN_OR_RETURN(config::CpuConfig config,
                        config::CpuConfigFromJson(configNode.value()));
  if (maxCheckpointBytesOverride > 0) {
    config.checkpoint.maxTotalBytes = std::min(
        config.checkpoint.maxTotalBytes, maxCheckpointBytesOverride);
    identity.configJson = config::ToJson(config).Dump();
  }

  core::Simulation::CreateOptions options;
  options.entryLabel = identity.entryLabel;
  if (!identity.arraysJson.empty()) {
    auto arraysNode = json::Parse(identity.arraysJson);
    if (!arraysNode.ok() || !arraysNode.value().IsArray()) {
      return SessionError("embedded array definitions are not a JSON array");
    }
    for (const json::Json& node : arraysNode.value().AsArray()) {
      RVSS_ASSIGN_OR_RETURN(memory::ArrayDefinition def,
                            memory::ArrayDefinitionFromJson(node));
      options.arrays.push_back(std::move(def));
    }
  }

  RVSS_ASSIGN_OR_RETURN(
      std::unique_ptr<core::Simulation> sim,
      core::Simulation::Create(config, identity.source, options));

  // The freshly Created simulation holds exactly the base image a delta
  // snapshot was encoded against (same config/source/arrays reproduce the
  // same post-load memory), so hand it to the decoder; the base-epoch
  // check inside DecodeSnapshot fails closed if this build would produce
  // a different image.
  const auto baseSpan = std::as_const(*sim).memorySystem().memory().bytes();
  std::vector<std::uint8_t> baseImage(baseSpan.begin(), baseSpan.end());
  CodecContext context{&sim->config(), &sim->program()};
  context.baseMemory = std::string_view(
      reinterpret_cast<const char*>(baseImage.data()), baseImage.size());
  context.baseEpoch = sim->memoryBaseEpoch();
  DecodeInfo decodeInfo;
  RVSS_ASSIGN_OR_RETURN(core::SimSnapshot snapshot,
                        DecodeSnapshot(snapshotBlob, context, &decodeInfo));
  sim->RestoreState(snapshot);
  // Anchor backward stepping at the imported position; without this the
  // only checkpoint is the cycle-0 base and the first StepBack replays the
  // whole prefix.
  sim->CaptureCheckpointNow();
  // Seed precise dirty-since-base tracking so a later delta export of this
  // session stays small. Delta imports know the overlaid page set exactly;
  // full imports recover it by diffing the restored memory against the
  // base image (RestoreState itself conservatively marked everything).
  if (decodeInfo.deltaMemory) {
    sim->memorySystem().memory().SetDirtySinceBase(decodeInfo.overlaidPages);
  } else {
    const auto restored = std::as_const(*sim).memorySystem().memory().bytes();
    constexpr std::uint32_t kPage = memory::MainMemory::kPageSizeBytes;
    const std::size_t pageTotal = (restored.size() + kPage - 1) / kPage;
    std::vector<std::uint8_t> dirty(pageTotal, 0);
    for (std::size_t page = 0; page < pageTotal; ++page) {
      const std::size_t offset = page * kPage;
      const std::size_t size =
          std::min<std::size_t>(kPage, restored.size() - offset);
      if (std::memcmp(restored.data() + offset, baseImage.data() + offset,
                      size) != 0) {
        dirty[page] = 1;
      }
    }
    sim->memorySystem().memory().SetDirtySinceBase(dirty);
  }

  ImportedSession imported;
  imported.sim = std::move(sim);
  imported.identity = std::move(identity);
  return imported;
}

}  // namespace rvss::snapshot
