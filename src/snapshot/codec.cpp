#include "snapshot/codec.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/strings.h"
#include "memory/main_memory.h"
#include "snapshot/wire.h"

namespace rvss::snapshot {
namespace {

constexpr char kMagic[4] = {'R', 'V', 'S', 'P'};
/// magic + version + configHash + programHash + payloadHash + payloadSize.
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8 + 8 + 8;
constexpr std::uint32_t kNullIndex = 0xffffffffu;

std::uint64_t Fnv1a(std::string_view bytes,
                    std::uint64_t hash = 14695981039346656037ull) {
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::uint64_t Fnv1aU64(std::uint64_t value, std::uint64_t hash) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xff;
    hash *= 1099511628211ull;
  }
  return hash;
}

Error CodecError(std::string message) {
  return Error{ErrorKind::kInvalidArgument,
               "snapshot decode: " + std::move(message)};
}

// --- shared field helpers ---------------------------------------------------

void EncodeError(Writer& w, const Error& error) {
  w.U8(static_cast<std::uint8_t>(error.kind));
  w.Str(error.message);
  w.U32(error.pos.line);
  w.U32(error.pos.column);
}

bool DecodeError(Reader& r, Error& error) {
  const std::uint8_t kind = r.U8();
  if (kind > static_cast<std::uint8_t>(ErrorKind::kInternal)) return false;
  error.kind = static_cast<ErrorKind>(kind);
  error.message = r.Str();
  error.pos.line = r.U32();
  error.pos.column = r.U32();
  return r.ok();
}

void EncodeOptionalError(Writer& w, const std::optional<Error>& error) {
  w.Bool(error.has_value());
  if (error.has_value()) EncodeError(w, *error);
}

bool DecodeOptionalError(Reader& r, std::optional<Error>& error) {
  if (!r.Bool()) {
    error.reset();
    return r.ok();
  }
  Error decoded;
  if (!DecodeError(r, decoded)) return false;
  error = std::move(decoded);
  return true;
}

// --- in-flight instruction table --------------------------------------------

/// Deduplicated first-seen-order table of every InFlight reachable from the
/// snapshot's containers; containers then serialize as index lists, which
/// preserves aliasing across decode.
class InFlightTable {
 public:
  explicit InFlightTable(const core::SimSnapshot& snapshot) {
    auto visit = [this](const core::InFlightPtr& inst) {
      if (inst == nullptr) return;
      if (indexOf_.emplace(inst.get(), entries_.size()).second) {
        entries_.push_back(inst.get());
      }
    };
    for (const auto& inst : snapshot.fetchQueue) visit(inst);
    for (const auto& inst : snapshot.rob) visit(inst);
    for (const auto& window : snapshot.windows) {
      for (const auto& inst : window) visit(inst);
    }
    for (const auto& inst : snapshot.loadBuffer) visit(inst);
    for (const auto& inst : snapshot.storeBuffer) visit(inst);
    for (const auto& inst : snapshot.fuCurrent) visit(inst);
  }

  std::uint32_t IndexOf(const core::InFlightPtr& inst) const {
    if (inst == nullptr) return kNullIndex;
    return static_cast<std::uint32_t>(indexOf_.at(inst.get()));
  }

  const std::vector<const core::InFlight*>& entries() const { return entries_; }

 private:
  std::vector<const core::InFlight*> entries_;
  std::unordered_map<const core::InFlight*, std::size_t> indexOf_;
};

void EncodeInFlight(Writer& w, const core::InFlight& inst,
                    const assembler::Program& program) {
  w.U64(inst.seq);
  w.U32(static_cast<std::uint32_t>(inst.inst - program.instructions.data()));
  w.U32(inst.pc);
  w.U8(static_cast<std::uint8_t>(inst.phase));

  std::uint16_t flags = 0;
  const bool bits[] = {inst.isControl,     inst.predictedTaken,
                       inst.btbHit,        inst.branchTaken,
                       inst.mispredicted,  inst.isExit,
                       inst.addressReady,  inst.memoryStarted,
                       inst.memoryDone,    inst.cacheHit,
                       inst.forwarded,     inst.drainPending,
                       inst.drainStarted,  inst.stalledFetch,
                       inst.resultsReady};
  for (std::size_t i = 0; i < std::size(bits); ++i) {
    if (bits[i]) flags |= static_cast<std::uint16_t>(1u << i);
  }
  w.U16(flags);

  w.U32(inst.predictedNextPc);
  w.U32(inst.historyCheckpoint);
  w.U32(inst.branchTarget);
  w.U32(inst.effectiveAddress);
  w.U64(inst.forwardedRaw);
  EncodeOptionalError(w, inst.exception);
  w.U64(inst.fetchCycle);
  w.U64(inst.decodeCycle);
  w.U64(inst.issueCycle);
  w.U64(inst.executeDoneCycle);
  w.U64(inst.commitCycle);

  w.U8(inst.operandCount);
  for (std::size_t i = 0; i < inst.operandCount; ++i) {
    const core::OperandRuntime& operand = inst.operands[i];
    std::uint8_t opFlags = 0;
    if (operand.isSource) opFlags |= 1;
    if (operand.isDest) opFlags |= 2;
    if (operand.ready) opFlags |= 4;
    w.U8(opFlags);
    w.U8(static_cast<std::uint8_t>(operand.value.kind()));
    w.U64(operand.value.bits());
    w.I32(operand.waitTag);
    w.I32(operand.destTag);
    w.I32(operand.prevTag);
  }
}

/// Decodes one InFlight; `renameCount` bounds the rename tags so a hostile
/// blob cannot plant tags that index out of the speculative register file.
Result<core::InFlightPtr> DecodeInFlight(Reader& r,
                                         const assembler::Program& program,
                                         std::uint32_t renameCount) {
  auto inst = std::make_shared<core::InFlight>();
  inst->seq = r.U64();
  const std::uint32_t instIndex = r.U32();
  if (r.ok() && instIndex >= program.instructions.size()) {
    return CodecError("in-flight instruction index out of range");
  }
  inst->inst = r.ok() ? &program.instructions[instIndex] : nullptr;
  inst->pc = r.U32();
  const std::uint8_t phase = r.U8();
  if (phase > static_cast<std::uint8_t>(core::Phase::kSquashed)) {
    return CodecError("in-flight phase out of range");
  }
  inst->phase = static_cast<core::Phase>(phase);

  const std::uint16_t flags = r.U16();
  bool* bits[] = {&inst->isControl,     &inst->predictedTaken,
                  &inst->btbHit,        &inst->branchTaken,
                  &inst->mispredicted,  &inst->isExit,
                  &inst->addressReady,  &inst->memoryStarted,
                  &inst->memoryDone,    &inst->cacheHit,
                  &inst->forwarded,     &inst->drainPending,
                  &inst->drainStarted,  &inst->stalledFetch,
                  &inst->resultsReady};
  for (std::size_t i = 0; i < std::size(bits); ++i) {
    *bits[i] = (flags & (1u << i)) != 0;
  }

  inst->predictedNextPc = r.U32();
  inst->historyCheckpoint = r.U32();
  inst->branchTarget = r.U32();
  inst->effectiveAddress = r.U32();
  inst->forwardedRaw = r.U64();
  if (!DecodeOptionalError(r, inst->exception)) {
    return CodecError("malformed in-flight exception");
  }
  inst->fetchCycle = r.U64();
  inst->decodeCycle = r.U64();
  inst->issueCycle = r.U64();
  inst->executeDoneCycle = r.U64();
  inst->commitCycle = r.U64();

  inst->operandCount = r.U8();
  if (inst->operandCount > inst->operands.size()) {
    return CodecError("in-flight operand count out of range");
  }
  const auto validTag = [renameCount](std::int32_t tag, std::int32_t minimum) {
    return tag >= minimum && tag < static_cast<std::int32_t>(renameCount);
  };
  for (std::size_t i = 0; i < inst->operandCount; ++i) {
    core::OperandRuntime& operand = inst->operands[i];
    const std::uint8_t opFlags = r.U8();
    operand.isSource = (opFlags & 1) != 0;
    operand.isDest = (opFlags & 2) != 0;
    operand.ready = (opFlags & 4) != 0;
    const std::uint8_t kind = r.U8();
    if (kind > static_cast<std::uint8_t>(expr::ValueKind::kBool)) {
      return CodecError("operand value kind out of range");
    }
    operand.value =
        expr::Value::FromRaw(static_cast<expr::ValueKind>(kind), r.U64());
    operand.waitTag = r.I32();
    operand.destTag = r.I32();
    operand.prevTag = r.I32();
    if (r.ok() && (!validTag(operand.waitTag, -1) ||
                   !validTag(operand.destTag, -1) ||
                   !validTag(operand.prevTag, core::kPrevWasArchitectural))) {
      return CodecError("operand rename tag out of range");
    }
  }
  if (!r.ok()) return CodecError(r.failReason());
  return inst;
}

// --- container index lists --------------------------------------------------

template <typename Container>
void EncodeIndexList(Writer& w, const Container& container,
                     const InFlightTable& table) {
  w.U32(static_cast<std::uint32_t>(container.size()));
  for (const core::InFlightPtr& inst : container) w.U32(table.IndexOf(inst));
}

/// Decodes an index list into `out` (deque or vector of InFlightPtr).
/// `allowNull` admits the null sentinel (functional-unit slots only).
/// `maxSize` caps the list at the live container's configured capacity,
/// and duplicates within one list are rejected (a pipeline container
/// never holds the same instruction twice — aliasing is only legitimate
/// *across* containers), so a checksum-correct but hostile blob cannot
/// oversize a buffer or double-commit an instruction.
template <typename Container>
Status DecodeIndexList(Reader& r,
                       const std::vector<core::InFlightPtr>& table,
                       bool allowNull, std::size_t maxSize, Container& out) {
  const std::uint32_t count = r.Count(4);
  if (r.ok() && count > maxSize) {
    return CodecError("container larger than its configured capacity");
  }
  std::vector<bool> seen(table.size(), false);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t index = r.U32();
    if (!r.ok()) break;
    if (index == kNullIndex) {
      if (!allowNull) return CodecError("unexpected null in-flight reference");
      out.push_back(nullptr);
      continue;
    }
    if (index >= table.size()) {
      return CodecError("in-flight table index out of range");
    }
    if (seen[index]) {
      return CodecError("duplicate in-flight reference within one container");
    }
    seen[index] = true;
    out.push_back(table[index]);
  }
  if (!r.ok()) return CodecError(r.failReason());
  return Status::Ok();
}

}  // namespace

// --- hashes -----------------------------------------------------------------

std::uint64_t ConfigHash(const config::CpuConfig& config) {
  // Checkpoint settings and the display name tune ring behaviour and UI
  // labels, not simulation state, so they are normalized out: a server may
  // clamp a session's checkpoint budget on import without breaking blobs.
  config::CpuConfig normalized = config;
  normalized.checkpoint = config::CheckpointConfig{};
  normalized.name.clear();
  return Fnv1a(config::ToJson(normalized).Dump());
}

std::uint64_t ProgramHash(const assembler::Program& program) {
  std::uint64_t hash = Fnv1aU64(program.instructions.size(),
                                14695981039346656037ull);
  for (const assembler::Instruction& inst : program.instructions) {
    hash = Fnv1a(inst.text, hash);
    hash = Fnv1aU64(inst.pc, hash);
  }
  hash = Fnv1aU64(program.entryPc, hash);
  hash = Fnv1aU64(program.dataBase, hash);
  if (!program.dataImage.empty()) {
    hash = Fnv1a(std::string_view(
                     reinterpret_cast<const char*>(program.dataImage.data()),
                     program.dataImage.size()),
                 hash);
  }
  return hash;
}

// --- encode -----------------------------------------------------------------

std::string EncodeSnapshot(const core::SimSnapshot& snapshot,
                           const CodecContext& context) {
  return EncodeSnapshot(snapshot, context, EncodeOptions{});
}

std::string EncodeSnapshot(const core::SimSnapshot& snapshot,
                           const CodecContext& context,
                           const EncodeOptions& options) {
  const assembler::Program& program = *context.program;
  const std::uint32_t formatVersion =
      std::clamp(options.formatVersion, kMinFormatVersion, kFormatVersion);
  Writer w;

  // Scalars.
  w.U64(snapshot.cycle);
  w.U64(snapshot.nextSeq);
  w.U32(snapshot.pc);
  w.U64(snapshot.fetchResumeCycle);
  w.Bool(snapshot.fetchStalledIndirect);
  w.U8(static_cast<std::uint8_t>(snapshot.status));
  w.U8(static_cast<std::uint8_t>(snapshot.finishReason));
  EncodeOptionalError(w, snapshot.fault);

  // Fast-forward seed (v2): the ISS architectural state the detailed
  // window was seeded from, when this session used FastForwardTo.
  w.Bool(snapshot.ffSeed.has_value());
  if (snapshot.ffSeed.has_value()) {
    for (const std::uint64_t cell : snapshot.ffSeed->x) w.U64(cell);
    for (const std::uint64_t cell : snapshot.ffSeed->f) w.U64(cell);
    w.U32(snapshot.ffSeed->pc);
    w.U64(snapshot.ffSeed->instructions);
  }

  // In-flight table + containers as index lists.
  InFlightTable table(snapshot);
  w.U32(static_cast<std::uint32_t>(table.entries().size()));
  for (const core::InFlight* inst : table.entries()) {
    EncodeInFlight(w, *inst, program);
  }
  EncodeIndexList(w, snapshot.fetchQueue, table);
  EncodeIndexList(w, snapshot.rob, table);
  for (const auto& window : snapshot.windows) {
    EncodeIndexList(w, window, table);
  }
  EncodeIndexList(w, snapshot.loadBuffer, table);
  EncodeIndexList(w, snapshot.storeBuffer, table);
  EncodeIndexList(w, snapshot.fuCurrent, table);
  w.U32(static_cast<std::uint32_t>(snapshot.fuBusyUntil.size()));
  for (const std::uint64_t busy : snapshot.fuBusyUntil) w.U64(busy);

  // Architectural registers.
  for (const std::uint64_t cell : snapshot.arch.x) w.U64(cell);
  for (const std::uint64_t cell : snapshot.arch.f) w.U64(cell);

  // Rename state.
  w.U32(static_cast<std::uint32_t>(snapshot.rename.regs.size()));
  for (const core::SpecRegister& reg : snapshot.rename.regs) {
    w.Bool(reg.inUse);
    w.Bool(reg.valid);
    w.U64(reg.cell);
    w.U8(static_cast<std::uint8_t>(reg.arch.kind));
    w.U8(reg.arch.index);
    w.U32(reg.references);
  }
  w.U32(static_cast<std::uint32_t>(snapshot.rename.freeList.size()));
  for (const int tag : snapshot.rename.freeList) w.I32(tag);
  w.U32(snapshot.rename.freeCount);
  for (const int tag : snapshot.rename.map) w.I32(tag);

  // Predictor.
  w.U32(static_cast<std::uint32_t>(snapshot.predictor.pht.entries.size()));
  for (const auto& entry : snapshot.predictor.pht.entries) {
    w.U32(entry.state());
  }
  w.U32(static_cast<std::uint32_t>(snapshot.predictor.btb.entries.size()));
  for (const auto& entry : snapshot.predictor.btb.entries) {
    w.Bool(entry.valid);
    w.U32(entry.pc);
    w.U32(entry.target);
  }
  w.U32(snapshot.predictor.globalHistory);
  w.U32(static_cast<std::uint32_t>(snapshot.predictor.localHistories.size()));
  for (const std::uint32_t history : snapshot.predictor.localHistories) {
    w.U32(history);
  }

  // Memory system: raw image (full, or in v3 delta mode a sparse page
  // overlay against the negotiated base), cache residency, statistics.
  const auto& memoryBytes = snapshot.memory.memory.bytes;
  const bool deltaMemory =
      formatVersion >= 3 && options.deltaPages != nullptr;
  if (formatVersion >= 3) {
    w.U8(deltaMemory ? 1 : 0);
  }
  if (deltaMemory) {
    constexpr std::uint32_t kPage = memory::MainMemory::kPageSizeBytes;
    const std::vector<std::uint8_t>& dirty = *options.deltaPages;
    const auto totalSize = static_cast<std::uint32_t>(memoryBytes.size());
    const std::uint32_t pageTotal = (totalSize + kPage - 1) / kPage;
    // An undersized flag vector is treated as all-dirty past its end
    // (conservative: shipping an extra page is correct, skipping one is
    // not).
    const auto pageDirty = [&dirty](std::uint32_t page) {
      return page >= dirty.size() || dirty[page] != 0;
    };
    std::uint32_t dirtyCount = 0;
    for (std::uint32_t page = 0; page < pageTotal; ++page) {
      if (pageDirty(page)) ++dirtyCount;
    }
    w.U64(options.baseEpoch);
    w.U32(totalSize);
    w.U32(dirtyCount);
    for (std::uint32_t page = 0; page < pageTotal; ++page) {
      if (!pageDirty(page)) continue;
      const std::uint32_t offset = page * kPage;
      w.U32(page);
      w.Bytes(memoryBytes.data() + offset,
              std::min(kPage, totalSize - offset));
    }
  } else {
    w.U32(static_cast<std::uint32_t>(memoryBytes.size()));
    w.Bytes(memoryBytes.data(), memoryBytes.size());
  }
  w.Bool(snapshot.memory.cache.has_value());
  if (snapshot.memory.cache.has_value()) {
    const auto& cache = *snapshot.memory.cache;
    w.U32(static_cast<std::uint32_t>(cache.lines.size()));
    for (const auto& line : cache.lines) {
      w.Bool(line.valid);
      w.Bool(line.dirty);
      w.U32(line.tag);
      w.U64(line.lastUse);
      w.U64(line.insertTime);
    }
    for (const std::uint64_t word : cache.rng.SaveState()) w.U64(word);
    w.U64(cache.insertCounter);
  }
  const memory::MemoryStats& memStats = snapshot.memory.stats;
  w.U64(memStats.accesses);
  w.U64(memStats.loads);
  w.U64(memStats.stores);
  w.U64(memStats.cacheHits);
  w.U64(memStats.cacheMisses);
  w.U64(memStats.evictions);
  w.U64(memStats.dirtyEvictions);
  w.U64(memStats.bytesReadFromMemory);
  w.U64(memStats.bytesWrittenToMemory);
  w.U64(snapshot.memory.nextTransactionId);

  // Simulation statistics.
  const stats::SimulationStatistics& s = snapshot.stats;
  w.U64(s.cycles);
  w.U64(s.fetchedInstructions);
  w.U64(s.decodedInstructions);
  w.U64(s.issuedInstructions);
  w.U64(s.executedInstructions);
  w.U64(s.committedInstructions);
  w.U64(s.squashedInstructions);
  w.U64(s.fastForwardedInstructions);
  w.U64(s.robFlushes);
  w.U64(s.branchesResolved);
  w.U64(s.branchesMispredicted);
  w.U64(s.branchesTaken);
  w.U64(s.btbHits);
  w.U64(s.btbLookups);
  w.U64(s.flops);
  for (const std::uint64_t count : s.staticMix) w.U64(count);
  for (const std::uint64_t count : s.dynamicMix) w.U64(count);
  w.U32(static_cast<std::uint32_t>(s.unitUsage.size()));
  for (const stats::UnitUsage& usage : s.unitUsage) {
    w.Str(usage.name);
    w.U64(usage.busyCycles);
    w.U64(usage.instructions);
  }
  w.U64(s.stallCyclesRobFull);
  w.U64(s.stallCyclesRenameFull);
  w.U64(s.stallCyclesWindowFull);
  w.U64(s.stallCyclesLsBufferFull);

  // Log.
  w.U32(static_cast<std::uint32_t>(snapshot.log.entries.size()));
  for (const LogEntry& entry : snapshot.log.entries) {
    w.U64(entry.cycle);
    w.U8(static_cast<std::uint8_t>(entry.level));
    w.Str(entry.block);
    w.Str(entry.text);
  }

  // Header + payload.
  const std::string payload = w.Take();
  Writer header;
  header.Bytes(kMagic, sizeof(kMagic));
  header.U32(formatVersion);
  header.U64(ConfigHash(*context.config));
  header.U64(ProgramHash(program));
  header.U64(Fnv1a(payload));
  header.U64(payload.size());
  std::string out = header.Take();
  out += payload;
  return out;
}

// --- decode -----------------------------------------------------------------

Result<core::SimSnapshot> DecodeSnapshot(std::string_view blob,
                                         const CodecContext& context,
                                         DecodeInfo* info) {
  const config::CpuConfig& config = *context.config;
  const assembler::Program& program = *context.program;

  if (blob.size() < kHeaderBytes) {
    return CodecError("blob shorter than the snapshot header");
  }
  Reader r(blob);
  char magic[4];
  for (char& c : magic) c = static_cast<char>(r.U8());
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return CodecError("bad magic (not a snapshot blob)");
  }
  const std::uint32_t version = r.U32();
  if (version < kMinFormatVersion || version > kFormatVersion) {
    return CodecError(
        StrFormat("unsupported format version %u (this build reads %u..%u)",
                  version, kMinFormatVersion, kFormatVersion));
  }
  if (r.U64() != ConfigHash(config)) {
    return CodecError(
        "configuration hash mismatch (snapshot taken with a different "
        "architecture configuration)");
  }
  if (r.U64() != ProgramHash(program)) {
    return CodecError(
        "program hash mismatch (snapshot taken with a different program)");
  }
  const std::uint64_t payloadHash = r.U64();
  const std::uint64_t payloadSize = r.U64();
  if (payloadSize != blob.size() - kHeaderBytes) {
    return CodecError("payload size mismatch (truncated or padded blob)");
  }
  if (Fnv1a(blob.substr(kHeaderBytes)) != payloadHash) {
    return CodecError("payload checksum mismatch (corrupted blob)");
  }

  core::SimSnapshot snapshot;
  snapshot.cycle = r.U64();
  snapshot.nextSeq = r.U64();
  snapshot.pc = r.U32();
  snapshot.fetchResumeCycle = r.U64();
  snapshot.fetchStalledIndirect = r.Bool();
  const std::uint8_t status = r.U8();
  if (status > static_cast<std::uint8_t>(core::SimStatus::kFault)) {
    return CodecError("simulation status out of range");
  }
  snapshot.status = static_cast<core::SimStatus>(status);
  const std::uint8_t finishReason = r.U8();
  if (finishReason > static_cast<std::uint8_t>(core::FinishReason::kException)) {
    return CodecError("finish reason out of range");
  }
  snapshot.finishReason = static_cast<core::FinishReason>(finishReason);
  if (!DecodeOptionalError(r, snapshot.fault)) {
    return CodecError("malformed fault record");
  }

  // Fast-forward seed (v2).
  if (r.Bool()) {
    core::FastForwardSeed seed;
    for (std::uint64_t& cell : seed.x) cell = r.U64();
    for (std::uint64_t& cell : seed.f) cell = r.U64();
    seed.pc = r.U32();
    seed.instructions = r.U64();
    snapshot.ffSeed = seed;
  }

  // In-flight table.
  const std::uint32_t renameCount = config.memory.renameRegisterCount;
  const std::uint32_t tableCount = r.Count(40);
  std::vector<core::InFlightPtr> table;
  table.reserve(tableCount);
  for (std::uint32_t i = 0; i < tableCount; ++i) {
    RVSS_ASSIGN_OR_RETURN(core::InFlightPtr inst,
                          DecodeInFlight(r, program, renameCount));
    table.push_back(std::move(inst));
  }
  // StageFetch tops the queue up by one fetch group past the width check,
  // so the live fetch queue can briefly hold up to 2*fetchWidth - 1.
  RVSS_RETURN_IF_ERROR(DecodeIndexList(
      r, table, false, std::size_t{2} * config.buffers.fetchWidth,
      snapshot.fetchQueue));
  RVSS_RETURN_IF_ERROR(DecodeIndexList(r, table, false,
                                       config.buffers.robSize, snapshot.rob));
  for (auto& window : snapshot.windows) {
    RVSS_RETURN_IF_ERROR(DecodeIndexList(
        r, table, false, config.buffers.issueWindowSize, window));
  }
  RVSS_RETURN_IF_ERROR(DecodeIndexList(
      r, table, false, config.memory.loadBufferSize, snapshot.loadBuffer));
  RVSS_RETURN_IF_ERROR(DecodeIndexList(
      r, table, false, config.memory.storeBufferSize, snapshot.storeBuffer));
  RVSS_RETURN_IF_ERROR(DecodeIndexList(r, table, true,
                                       config.functionalUnits.size(),
                                       snapshot.fuCurrent));
  const std::uint32_t fuCount = r.Count(8);
  if (r.ok() && (snapshot.fuCurrent.size() != config.functionalUnits.size() ||
                 fuCount != config.functionalUnits.size())) {
    return CodecError("functional-unit count does not match configuration");
  }
  snapshot.fuBusyUntil.reserve(fuCount);
  for (std::uint32_t i = 0; i < fuCount; ++i) {
    snapshot.fuBusyUntil.push_back(r.U64());
  }

  // Architectural registers.
  for (std::uint64_t& cell : snapshot.arch.x) cell = r.U64();
  for (std::uint64_t& cell : snapshot.arch.f) cell = r.U64();

  // Rename state. Sizes must match the configuration: RestoreState swaps
  // these vectors in wholesale, and the pipeline indexes them by tag.
  const std::uint32_t regCount = r.Count(16);
  if (r.ok() && regCount != renameCount) {
    return CodecError("rename register count does not match configuration");
  }
  snapshot.rename.regs.resize(regCount);
  for (core::SpecRegister& reg : snapshot.rename.regs) {
    reg.inUse = r.Bool();
    reg.valid = r.Bool();
    reg.cell = r.U64();
    const std::uint8_t kind = r.U8();
    if (kind > static_cast<std::uint8_t>(isa::RegisterKind::kFp)) {
      return CodecError("speculative register kind out of range");
    }
    reg.arch.kind = static_cast<isa::RegisterKind>(kind);
    reg.arch.index = r.U8();
    if (r.ok() && reg.arch.index >= 32) {
      return CodecError("speculative register target out of range");
    }
    reg.references = r.U32();
  }
  const std::uint32_t freeCount = r.Count(4);
  if (r.ok() && freeCount > renameCount) {
    return CodecError("rename free list longer than the register file");
  }
  snapshot.rename.freeList.reserve(freeCount);
  std::vector<bool> freeSeen(renameCount, false);
  for (std::uint32_t i = 0; i < freeCount; ++i) {
    const std::int32_t tag = r.I32();
    if (r.ok() && (tag < 0 || tag >= static_cast<std::int32_t>(renameCount))) {
      return CodecError("rename free-list tag out of range");
    }
    if (r.ok()) {
      // A tag listed twice (or free while marked in use) would hand one
      // speculative register to two instructions after a few allocations.
      const auto index = static_cast<std::size_t>(tag);
      if (freeSeen[index]) {
        return CodecError("duplicate rename free-list tag");
      }
      if (snapshot.rename.regs[index].inUse) {
        return CodecError("rename free-list tag marked in use");
      }
      freeSeen[index] = true;
    }
    snapshot.rename.freeList.push_back(tag);
  }
  snapshot.rename.freeCount = r.U32();
  if (r.ok() && snapshot.rename.freeCount > renameCount) {
    return CodecError("rename free count out of range");
  }
  for (int& tag : snapshot.rename.map) {
    tag = r.I32();
    if (r.ok() && (tag < -1 || tag >= static_cast<std::int32_t>(renameCount))) {
      return CodecError("rename map tag out of range");
    }
  }

  // Predictor. Sizes are fixed by the configuration; the index masks in
  // the predictor assume them.
  const std::uint32_t phtCount = r.Count(4);
  if (r.ok() && phtCount != config.predictor.phtSize) {
    return CodecError("PHT size does not match configuration");
  }
  snapshot.predictor.pht.entries.reserve(phtCount);
  for (std::uint32_t i = 0; i < phtCount; ++i) {
    // The BitPredictor constructor clamps out-of-range counters.
    snapshot.predictor.pht.entries.emplace_back(config.predictor.type,
                                                r.U32());
  }
  const std::uint32_t btbCount = r.Count(9);
  if (r.ok() && btbCount != config.predictor.btbSize) {
    return CodecError("BTB size does not match configuration");
  }
  snapshot.predictor.btb.entries.resize(btbCount);
  for (auto& entry : snapshot.predictor.btb.entries) {
    entry.valid = r.Bool();
    entry.pc = r.U32();
    entry.target = r.U32();
  }
  snapshot.predictor.globalHistory = r.U32();
  const std::uint32_t localCount = r.Count(4);
  const std::uint32_t expectedLocal =
      (config.predictor.history == config::HistoryKind::kLocal &&
       config.predictor.historyBits > 0)
          ? config.predictor.phtSize
          : 0;
  if (r.ok() && localCount != expectedLocal) {
    return CodecError("local history size does not match configuration");
  }
  snapshot.predictor.localHistories.reserve(localCount);
  for (std::uint32_t i = 0; i < localCount; ++i) {
    snapshot.predictor.localHistories.push_back(r.U32());
  }

  // Memory system. v3 leads with a mode byte; v2 is always a full image.
  std::uint8_t memoryMode = 0;
  if (version >= 3) {
    memoryMode = r.U8();
    if (r.ok() && memoryMode > 1) {
      return CodecError("memory mode out of range");
    }
  }
  DecodeInfo decodeInfo;
  if (memoryMode == 1) {
    constexpr std::uint32_t kPage = memory::MainMemory::kPageSizeBytes;
    const std::uint64_t baseEpoch = r.U64();
    const std::uint32_t totalSize = r.U32();
    if (r.ok() && totalSize != config.memory.sizeBytes) {
      return CodecError("memory size does not match configuration");
    }
    // Fail closed: a delta is only restorable over the exact base it was
    // computed against. No base (or a different one) means this side must
    // ask for a full image instead — never patch over the wrong bytes.
    if (r.ok() && (context.baseMemory.size() != totalSize ||
                   context.baseEpoch != baseEpoch)) {
      return CodecError(
          "delta blob references a base image this side does not have "
          "(base-epoch mismatch)");
    }
    const std::uint32_t pageTotal = (totalSize + kPage - 1) / kPage;
    const std::uint32_t pageCount = r.Count(4);
    if (r.ok() && pageCount > pageTotal) {
      return CodecError("delta page count exceeds the memory's page count");
    }
    snapshot.memory.memory.bytes.assign(context.baseMemory.begin(),
                                        context.baseMemory.end());
    decodeInfo.deltaMemory = true;
    decodeInfo.overlaidPages.assign(pageTotal, 0);
    std::int64_t lastPage = -1;
    for (std::uint32_t i = 0; i < pageCount; ++i) {
      const std::uint32_t page = r.U32();
      if (!r.ok()) break;
      if (page >= pageTotal || static_cast<std::int64_t>(page) <= lastPage) {
        return CodecError("delta page index out of order or out of range");
      }
      lastPage = page;
      const std::uint32_t offset = page * kPage;
      r.BytesInto(snapshot.memory.memory.bytes.data() + offset,
                  std::min(kPage, totalSize - offset));
      decodeInfo.overlaidPages[page] = 1;
    }
  } else {
    const std::uint32_t memorySize = r.Count(1);
    if (r.ok() && memorySize != config.memory.sizeBytes) {
      return CodecError("memory size does not match configuration");
    }
    snapshot.memory.memory.bytes.resize(memorySize);
    r.BytesInto(snapshot.memory.memory.bytes.data(), memorySize);
  }
  const bool hasCache = r.Bool();
  if (r.ok() && hasCache != config.cache.enabled) {
    return CodecError("cache presence does not match configuration");
  }
  if (hasCache) {
    memory::Cache::State cache;
    const std::uint32_t lineCount = r.Count(22);
    const std::uint32_t expectedLines =
        config.cache.associativity == 0
            ? 0
            : (config.cache.lineCount / config.cache.associativity) *
                  config.cache.associativity;
    if (r.ok() && lineCount != expectedLines) {
      return CodecError("cache line count does not match configuration");
    }
    cache.lines.resize(lineCount);
    for (auto& line : cache.lines) {
      line.valid = r.Bool();
      line.dirty = r.Bool();
      line.tag = r.U32();
      line.lastUse = r.U64();
      line.insertTime = r.U64();
    }
    std::array<std::uint64_t, 4> rngState;
    for (std::uint64_t& word : rngState) word = r.U64();
    cache.rng.RestoreState(rngState);
    cache.insertCounter = r.U64();
    snapshot.memory.cache = std::move(cache);
  }
  memory::MemoryStats& memStats = snapshot.memory.stats;
  memStats.accesses = r.U64();
  memStats.loads = r.U64();
  memStats.stores = r.U64();
  memStats.cacheHits = r.U64();
  memStats.cacheMisses = r.U64();
  memStats.evictions = r.U64();
  memStats.dirtyEvictions = r.U64();
  memStats.bytesReadFromMemory = r.U64();
  memStats.bytesWrittenToMemory = r.U64();
  snapshot.memory.nextTransactionId = r.U64();

  // Simulation statistics.
  stats::SimulationStatistics& s = snapshot.stats;
  s.cycles = r.U64();
  s.fetchedInstructions = r.U64();
  s.decodedInstructions = r.U64();
  s.issuedInstructions = r.U64();
  s.executedInstructions = r.U64();
  s.committedInstructions = r.U64();
  s.squashedInstructions = r.U64();
  s.fastForwardedInstructions = r.U64();
  s.robFlushes = r.U64();
  s.branchesResolved = r.U64();
  s.branchesMispredicted = r.U64();
  s.branchesTaken = r.U64();
  s.btbHits = r.U64();
  s.btbLookups = r.U64();
  s.flops = r.U64();
  for (std::uint64_t& count : s.staticMix) count = r.U64();
  for (std::uint64_t& count : s.dynamicMix) count = r.U64();
  const std::uint32_t usageCount = r.Count(20);
  if (r.ok() && usageCount != config.functionalUnits.size()) {
    return CodecError("unit usage count does not match configuration");
  }
  s.unitUsage.resize(usageCount);
  for (stats::UnitUsage& usage : s.unitUsage) {
    usage.name = r.Str();
    usage.busyCycles = r.U64();
    usage.instructions = r.U64();
  }
  s.stallCyclesRobFull = r.U64();
  s.stallCyclesRenameFull = r.U64();
  s.stallCyclesWindowFull = r.U64();
  s.stallCyclesLsBufferFull = r.U64();

  // Log.
  const std::uint32_t logCount = r.Count(17);
  snapshot.log.entries.resize(logCount);
  for (LogEntry& entry : snapshot.log.entries) {
    entry.cycle = r.U64();
    const std::uint8_t level = r.U8();
    if (level > static_cast<std::uint8_t>(LogLevel::kError)) {
      return CodecError("log level out of range");
    }
    entry.level = static_cast<LogLevel>(level);
    entry.block = r.Str();
    entry.text = r.Str();
  }

  if (!r.ok()) return CodecError(r.failReason());
  if (r.remaining() != 0) {
    return CodecError("trailing bytes after the snapshot payload");
  }
  if (info != nullptr) *info = std::move(decodeInfo);
  return snapshot;
}

}  // namespace rvss::snapshot
