// Wire primitives for the snapshot codec: a little-endian byte writer and
// a bounds-checked reader.
//
// Everything is explicit-width and little-endian regardless of host
// endianness, so blobs are portable between machines (the session
// migration path). The reader is designed for hostile input: every read
// checks bounds, failure latches (subsequent reads return zero values),
// and length-prefixed fields validate the prefix against the bytes
// actually remaining before allocating — a truncated or corrupted blob
// produces an error, never undefined behaviour or an absurd allocation.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace rvss::snapshot {

class Writer {
 public:
  void U8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(std::uint16_t v) { Raw(v, 2); }
  void U32(std::uint32_t v) { Raw(v, 4); }
  void U64(std::uint64_t v) { Raw(v, 8); }
  void I32(std::int32_t v) { U32(static_cast<std::uint32_t>(v)); }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }

  void Bytes(const void* data, std::size_t size) {
    if (size > 0) out_.append(static_cast<const char*>(data), size);
  }

  /// u32 length prefix + raw bytes.
  void Str(std::string_view s) {
    U32(static_cast<std::uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }

  const std::string& out() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Raw(std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint8_t U8() { return static_cast<std::uint8_t>(Raw(1)); }
  std::uint16_t U16() { return static_cast<std::uint16_t>(Raw(2)); }
  std::uint32_t U32() { return static_cast<std::uint32_t>(Raw(4)); }
  std::uint64_t U64() { return Raw(8); }
  std::int32_t I32() { return static_cast<std::int32_t>(U32()); }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  bool Bool() { return U8() != 0; }

  /// Length-prefixed string; fails when the prefix exceeds the remaining
  /// bytes (so corrupt prefixes cannot trigger huge allocations).
  std::string Str() {
    const std::uint32_t size = U32();
    if (failed_ || size > remaining()) {
      Fail("string length exceeds remaining bytes");
      return {};
    }
    std::string out(data_.substr(pos_, size));
    pos_ += size;
    return out;
  }

  /// Bulk copy of `size` raw bytes into `dst`; no-op after failure.
  void BytesInto(void* dst, std::size_t size) {
    if (failed_ || remaining() < size) {
      Fail("raw byte range exceeds remaining bytes");
      return;
    }
    if (size > 0) std::memcpy(dst, data_.data() + pos_, size);
    pos_ += size;
  }

  /// Element count for a fixed-stride array; fails when even one byte per
  /// element would run past the end of the blob.
  std::uint32_t Count(std::size_t minBytesPerElement) {
    const std::uint32_t count = U32();
    if (failed_ ||
        static_cast<std::uint64_t>(count) * minBytesPerElement > remaining()) {
      Fail("element count exceeds remaining bytes");
      return 0;
    }
    return count;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool ok() const { return !failed_; }
  const char* failReason() const { return failReason_; }

  void Fail(const char* why) {
    if (!failed_) failReason_ = why;
    failed_ = true;
  }

 private:
  std::uint64_t Raw(int bytes) {
    if (failed_ || remaining() < static_cast<std::size_t>(bytes)) {
      Fail("read past end of blob");
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos_ += static_cast<std::size_t>(bytes);
    return v;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  const char* failReason_ = "";
};

}  // namespace rvss::snapshot
