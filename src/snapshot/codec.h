// Versioned, endian-stable binary codec for core::SimSnapshot.
//
// PR 1 made the full simulation snapshottable, but snapshots were
// in-memory deep copies restorable only into the simulation that produced
// them. This codec turns a SimSnapshot into a self-describing byte blob
// that can be persisted, shipped to another process and decoded into any
// simulation built from the same (program, config) pair — the primitive
// behind session export/import and migration.
//
// Safety model (decode never trusts the blob):
//   - a fixed header carries magic, format version, a config hash, a
//     program hash and an FNV-1a payload checksum; stale versions,
//     mismatched configurations/programs, truncation and corruption all
//     fail with a Status before any state is built;
//   - every variable-length field validates its length prefix against the
//     bytes actually remaining, and every index (instruction, rename tag,
//     in-flight table slot) is range-checked against the live
//     configuration, so even a blob crafted to pass the checksum cannot
//     produce out-of-bounds state.
//
// In-flight instructions are encoded as a deduplicated table plus index
// lists per pipeline container, preserving the aliasing RestoreState
// relies on (one instruction sitting in the ROB and a load buffer decodes
// back into one shared object).
//
// The config hash covers the state-shaping configuration only: checkpoint
// settings and the display name are normalized away, so a server may
// clamp a session's checkpoint budget on import without invalidating the
// blob.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "assembler/program.h"
#include "common/status.h"
#include "config/cpu_config.h"
#include "core/simulation.h"

namespace rvss::snapshot {

/// Bumped on any incompatible layout change. Decode is *versioned*: this
/// build reads every version in [kMinFormatVersion, kFormatVersion], so
/// persisted blobs from older releases keep importing.
/// v2: fast-forward seed (core::FastForwardSeed) and the
/// fastForwardedInstructions statistic.
/// v3: memory-mode byte ahead of the memory image — mode 0 is the full
/// image (v2 layout after the byte), mode 1 is a base-referenced delta
/// (base-epoch id + sparse 4 KiB pages dirtied since the base).
inline constexpr std::uint32_t kFormatVersion = 3;
inline constexpr std::uint32_t kMinFormatVersion = 2;

/// What a blob must match to be restorable. `baseMemory`/`baseEpoch`
/// describe the base image available on the decoding side (the post-Create
/// memory of the same (config, program) pair); they are only consulted for
/// delta-mode blobs, which fail closed without a matching base.
struct CodecContext {
  const config::CpuConfig* config = nullptr;
  const assembler::Program* program = nullptr;
  std::string_view baseMemory{};
  std::uint64_t baseEpoch = 0;
};

/// Encode-side knobs. Defaults produce a v3 full-image blob identical in
/// meaning to what EncodeSnapshot always produced.
struct EncodeOptions {
  /// Must lie in [kMinFormatVersion, kFormatVersion]. v2 output is
  /// byte-identical to what older builds wrote (no memory-mode byte, so
  /// no delta form).
  std::uint32_t formatVersion = kFormatVersion;
  /// Non-null selects delta memory mode (v3 only): one flag per 4 KiB
  /// page, set when the page may differ from the base image. Pages with
  /// the flag clear are *not* shipped and are taken from the decoder's
  /// base.
  const std::vector<std::uint8_t>* deltaPages = nullptr;
  /// Identifies the base image a delta was computed against; decode
  /// refuses a delta whose epoch differs from the context's.
  std::uint64_t baseEpoch = 0;
};

/// What DecodeSnapshot learned about the blob's memory section.
struct DecodeInfo {
  bool deltaMemory = false;
  /// Delta mode only: one flag per page, set for pages the blob overlaid
  /// on the base (i.e. the decoded memory's precise dirty-since-base set).
  std::vector<std::uint8_t> overlaidPages;
};

/// FNV-1a over the canonical JSON dump of `config` with checkpoint
/// settings and the display name normalized to defaults (they do not shape
/// simulation state).
[[nodiscard]] std::uint64_t ConfigHash(const config::CpuConfig& config);

/// FNV-1a over the program's instructions, entry point and data image.
[[nodiscard]] std::uint64_t ProgramHash(const assembler::Program& program);

/// Serializes a snapshot. The context must describe the simulation the
/// snapshot came from.
[[nodiscard]] std::string EncodeSnapshot(const core::SimSnapshot& snapshot,
                           const CodecContext& context);
[[nodiscard]] std::string EncodeSnapshot(const core::SimSnapshot& snapshot,
                           const CodecContext& context,
                           const EncodeOptions& options);

/// Parses and validates a blob against `context`. Returns a snapshot ready
/// for Simulation::RestoreState, or an error for any version, hash, size
/// or structural mismatch — including a delta blob whose base the context
/// cannot supply (fail closed, never lossy). Never crashes on malformed
/// input. `info`, when non-null, reports the memory mode encountered.
Result<core::SimSnapshot> DecodeSnapshot(std::string_view blob,
                                         const CodecContext& context,
                                         DecodeInfo* info = nullptr);

}  // namespace rvss::snapshot
