// Versioned, endian-stable binary codec for core::SimSnapshot.
//
// PR 1 made the full simulation snapshottable, but snapshots were
// in-memory deep copies restorable only into the simulation that produced
// them. This codec turns a SimSnapshot into a self-describing byte blob
// that can be persisted, shipped to another process and decoded into any
// simulation built from the same (program, config) pair — the primitive
// behind session export/import and migration.
//
// Safety model (decode never trusts the blob):
//   - a fixed header carries magic, format version, a config hash, a
//     program hash and an FNV-1a payload checksum; stale versions,
//     mismatched configurations/programs, truncation and corruption all
//     fail with a Status before any state is built;
//   - every variable-length field validates its length prefix against the
//     bytes actually remaining, and every index (instruction, rename tag,
//     in-flight table slot) is range-checked against the live
//     configuration, so even a blob crafted to pass the checksum cannot
//     produce out-of-bounds state.
//
// In-flight instructions are encoded as a deduplicated table plus index
// lists per pipeline container, preserving the aliasing RestoreState
// relies on (one instruction sitting in the ROB and a load buffer decodes
// back into one shared object).
//
// The config hash covers the state-shaping configuration only: checkpoint
// settings and the display name are normalized away, so a server may
// clamp a session's checkpoint budget on import without invalidating the
// blob.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "assembler/program.h"
#include "common/status.h"
#include "config/cpu_config.h"
#include "core/simulation.h"

namespace rvss::snapshot {

/// Bumped on any incompatible layout change; decode rejects other versions.
/// v2: fast-forward seed (core::FastForwardSeed) and the
/// fastForwardedInstructions statistic.
inline constexpr std::uint32_t kFormatVersion = 2;

/// What a blob must match to be restorable.
struct CodecContext {
  const config::CpuConfig* config = nullptr;
  const assembler::Program* program = nullptr;
};

/// FNV-1a over the canonical JSON dump of `config` with checkpoint
/// settings and the display name normalized to defaults (they do not shape
/// simulation state).
std::uint64_t ConfigHash(const config::CpuConfig& config);

/// FNV-1a over the program's instructions, entry point and data image.
std::uint64_t ProgramHash(const assembler::Program& program);

/// Serializes a snapshot. The context must describe the simulation the
/// snapshot came from.
std::string EncodeSnapshot(const core::SimSnapshot& snapshot,
                           const CodecContext& context);

/// Parses and validates a blob against `context`. Returns a snapshot ready
/// for Simulation::RestoreState, or an error for any version, hash, size
/// or structural mismatch. Never crashes on malformed input.
Result<core::SimSnapshot> DecodeSnapshot(std::string_view blob,
                                         const CodecContext& context);

}  // namespace rvss::snapshot
