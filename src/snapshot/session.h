// Portable session blobs: everything needed to re-create a running
// simulation in a fresh process.
//
// A SimSnapshot alone is not restorable elsewhere — it references the
// decoded program and assumes a matching configuration. A session blob
// therefore bundles the session's *identity* (configuration JSON, the
// assembly source actually loaded, entry label, array definitions) with a
// codec-encoded snapshot of the current state, slz-compressed behind a
// small container header. The server's exportSession/importSession
// commands and the CLI's --save-snapshot/--load-snapshot flags are thin
// wrappers around the two functions here; because both speak the same
// format, a session saved by the CLI can be imported by a server and vice
// versa — the migration/sharding primitive the ROADMAP asks for.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/simulation.h"

namespace rvss::snapshot {

/// How a session was created. Everything is stored as canonical JSON/text
/// so the blob stays self-describing across builds.
struct SessionIdentity {
  std::string configJson;  ///< config::ToJson(config).Dump()
  std::string source;      ///< the assembly actually loaded (post-compile)
  std::string entryLabel;
  std::string arraysJson;  ///< JSON array of array definitions; "" = none
};

/// Builds `identity` from a live simulation plus the source/arrays it was
/// created from (the simulation does not retain them).
SessionIdentity MakeIdentity(const core::Simulation& sim,
                             std::string source,
                             std::string entryLabel,
                             std::string arraysJson);

/// Encode-side knobs for EncodeSessionBlob.
struct SessionBlobOptions {
  /// Ship only the 4 KiB memory pages dirtied since the session's base
  /// image (the post-Create memory of its config/program/arrays) instead
  /// of the full image. The importer re-Creates that base from the
  /// identity carried in the blob, so a delta blob is just as restorable —
  /// it only requires the reader to understand snapshot format v3, which
  /// the hello handshake negotiates. Ignored when formatVersion < 3.
  bool delta = false;
  /// Snapshot format version to emit; older versions let current sessions
  /// be saved for legacy readers.
  std::uint32_t formatVersion = 0;  ///< 0 = current (snapshot::kFormatVersion)
};

/// Serializes identity + current state into a compressed binary blob.
[[nodiscard]] std::string EncodeSessionBlob(const core::Simulation& sim,
                              const SessionIdentity& identity);
[[nodiscard]] std::string EncodeSessionBlob(const core::Simulation& sim,
                              const SessionIdentity& identity,
                              const SessionBlobOptions& options);

/// Cheap upper-bound estimate of EncodeSessionBlob's output for `sim`,
/// for shard placement and per-worker byte accounting: the dominant terms
/// (memory image, log text, identity strings) are measured directly, the
/// fixed-size pipeline/predictor payload is covered by a constant. No deep
/// state copy, no compression pass — callable per request.
std::size_t EstimateSessionBlobBytes(const core::Simulation& sim,
                                     const SessionIdentity& identity);

struct ImportedSession {
  std::unique_ptr<core::Simulation> sim;
  SessionIdentity identity;
};

/// Re-creates a simulation from a session blob: decompresses, re-parses
/// the configuration and source, rebuilds the simulation and restores the
/// encoded snapshot (which re-validates config/program hashes). A non-zero
/// `maxCheckpointBytesOverride` clamps the session's checkpoint byte
/// budget (shared servers do not trust session-supplied budgets); this
/// does not invalidate the snapshot hash, which ignores checkpoint
/// settings. The imported simulation immediately deposits a checkpoint at
/// the restored cycle so backward stepping has a nearby anchor.
Result<ImportedSession> ImportSessionBlob(
    std::string_view blob, std::uint64_t maxCheckpointBytesOverride = 0);

}  // namespace rvss::snapshot
