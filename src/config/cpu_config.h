// Processor / memory / predictor configuration.
//
// Mirrors the paper's Architecture Settings window tab by tab (§II-C):
//   1. name + core/memory clock speeds,
//   2. "Buffers": ROB size, fetch/commit width, flush penalty, jumps the
//      fetch unit may follow per cycle,
//   3. functional units (FX, FP, LS, branch, memory) with per-operation
//      latencies for FX/FP and plain latencies for the rest,
//   4. "Cache": enable, line count/size, associativity, LRU/FIFO/Random,
//      write-back vs write-through, access and replacement delays,
//   5. "Memory": load/store buffer sizes, load/store latencies, call stack
//      size, register rename file size,
//   6. "Branch prediction": BTB size, PHT size, zero/one/two-bit predictor,
//      default state, local vs global history.
//
// Configurations import/export as JSON (the paper's shareable architecture
// files); validation returns the full list of problems, not just the first.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "isa/isa_types.h"
#include "json/json.h"

namespace rvss::config {

enum class ReplacementPolicy : std::uint8_t { kLru, kFifo, kRandom };
enum class StorePolicy : std::uint8_t { kWriteBack, kWriteThrough };
enum class PredictorType : std::uint8_t { kZeroBit, kOneBit, kTwoBit };
enum class HistoryKind : std::uint8_t { kLocal, kGlobal };

const char* ToString(ReplacementPolicy policy);
const char* ToString(StorePolicy policy);
const char* ToString(PredictorType type);
const char* ToString(HistoryKind kind);

/// One functional unit. FX/FP units list the operation classes they can
/// execute with a latency per class; LS, branch and memory units have a
/// single latency.
struct FunctionalUnitConfig {
  enum class Kind : std::uint8_t { kFx, kFp, kLs, kBranch, kMemory };

  Kind kind = Kind::kFx;
  std::string name;  ///< display name; auto-generated when empty

  /// Supported operation classes with their latencies (FX/FP only).
  struct Operation {
    isa::OpClass opClass = isa::OpClass::kIntAlu;
    std::uint32_t latency = 1;
  };
  std::vector<Operation> operations;

  /// Latency for kLs / kBranch / kMemory units.
  std::uint32_t latency = 1;

  /// Latency for `opClass`, or 0 when the unit cannot execute it.
  std::uint32_t LatencyFor(isa::OpClass opClass) const;
};

const char* ToString(FunctionalUnitConfig::Kind kind);

/// Paper tab 2 ("Buffers") — the superscalar width controls.
struct BufferConfig {
  std::uint32_t robSize = 64;
  std::uint32_t fetchWidth = 4;   ///< instructions fetched per cycle
  std::uint32_t commitWidth = 4;  ///< instructions committed per cycle
  std::uint32_t flushPenalty = 2; ///< cycles the front end stalls on flush
  std::uint32_t fetchBranchFollowLimit = 1;  ///< jumps followed per fetch cycle
  std::uint32_t issueWindowSize = 16;        ///< entries per issue window
};

/// Paper tab 4 ("Cache") — L1 data cache geometry and behaviour.
struct CacheConfig {
  bool enabled = true;
  std::uint32_t lineCount = 64;       ///< total lines (all ways)
  std::uint32_t lineSizeBytes = 32;
  std::uint32_t associativity = 2;
  ReplacementPolicy replacement = ReplacementPolicy::kLru;
  StorePolicy storePolicy = StorePolicy::kWriteBack;
  std::uint32_t accessDelay = 1;           ///< hit latency, cycles
  std::uint32_t lineReplacementDelay = 10; ///< extra cycles on refill
};

/// Paper tab 5 ("Memory").
struct MemoryConfig {
  std::uint32_t sizeBytes = 64 * 1024;
  std::uint32_t loadBufferSize = 16;
  std::uint32_t storeBufferSize = 16;
  std::uint32_t loadLatency = 10;   ///< main-memory load latency, cycles
  std::uint32_t storeLatency = 10;
  std::uint32_t callStackBytes = 4096;
  std::uint32_t renameRegisterCount = 64;  ///< speculative register file size
};

/// Backward-simulation checkpointing (not a paper tab; powers the O(K)
/// StepBack/scrubbing path instead of the paper's re-execution from reset).
struct CheckpointConfig {
  /// Cycles between automatic snapshots; 0 disables checkpointing and falls
  /// back to the paper's full re-execution.
  std::uint64_t intervalCycles = 1024;
  /// Memory budget for the per-simulation checkpoint ring; the oldest
  /// non-base checkpoints are evicted beyond this.
  std::uint64_t maxTotalBytes = 64ull * 1024 * 1024;
  /// Store page-delta checkpoints (only the 4 KiB memory pages dirtied
  /// since the last full snapshot) between full snapshots. Memory images
  /// dominate snapshot size, so this shrinks the ring 5-100x on typical
  /// workloads and allows denser intervals.
  bool deltaPages = true;
  /// Every Nth checkpoint is a full snapshot (delta chains patch the most
  /// recent full one). Higher values compress better but pin the full
  /// snapshot longer. Must be >= 1; 1 means every checkpoint is full.
  std::uint64_t fullSnapshotEvery = 16;
  /// Grow the effective checkpoint interval (doubling, up to 1024x) when
  /// observed bytes/checkpoint exceed the byte budget, instead of churning
  /// the ring through evictions.
  bool adaptiveInterval = false;
};

/// Paper tab 6 ("Branch prediction").
struct PredictorConfig {
  std::uint32_t btbSize = 64;
  std::uint32_t phtSize = 64;
  PredictorType type = PredictorType::kTwoBit;
  std::uint32_t defaultState = 0;  ///< initial counter value (0..2^bits-1)
  HistoryKind history = HistoryKind::kLocal;
  std::uint32_t historyBits = 0;   ///< 0 = plain PC indexing; >0 mixes a
                                   ///< history shift register into the index
};

/// Complete architecture description.
struct CpuConfig {
  std::string name = "rvss-default";
  std::uint64_t coreClockHz = 100'000'000;
  std::uint64_t memClockHz = 100'000'000;
  BufferConfig buffers;
  std::vector<FunctionalUnitConfig> functionalUnits;
  CacheConfig cache;
  MemoryConfig memory;
  PredictorConfig predictor;
  CheckpointConfig checkpoint;
  /// The paper raises an exception on division by zero at commit; RISC-V
  /// itself does not trap. Off by default for spec fidelity.
  bool trapOnDivZero = false;
  /// Seed for the Random cache-replacement policy (determinism is required
  /// for backward simulation).
  std::uint64_t randomSeed = 1;

  /// Counts functional units of a kind.
  std::size_t CountUnits(FunctionalUnitConfig::Kind kind) const;
};

/// JSON round trip (architecture import/export).
json::Json ToJson(const CpuConfig& config);
Result<CpuConfig> CpuConfigFromJson(const json::Json& node);

/// Validates a configuration; returns every problem found. An empty vector
/// means the configuration is usable.
std::vector<Error> Validate(const CpuConfig& config);

/// Presets, mirroring the paper's switchable architectures.
CpuConfig DefaultConfig();       ///< balanced 4-wide OoO core
CpuConfig ScalarConfig();        ///< single-issue baseline (Creator/Venus-like)
CpuConfig WideConfig();          ///< aggressive 8-wide core
CpuConfig NoCacheConfig();       ///< default core with the L1 disabled

}  // namespace rvss::config
