// Preset architectures, mirroring the paper's switchable configurations.
#include "config/cpu_config.h"

namespace rvss::config {
namespace {

using Kind = FunctionalUnitConfig::Kind;
using Op = FunctionalUnitConfig::Operation;

FunctionalUnitConfig FxUnit(std::string name, std::uint32_t aluLatency = 1,
                            std::uint32_t mulLatency = 3,
                            std::uint32_t divLatency = 12) {
  FunctionalUnitConfig fu;
  fu.kind = Kind::kFx;
  fu.name = std::move(name);
  fu.operations = {Op{isa::OpClass::kIntAlu, aluLatency},
                   Op{isa::OpClass::kIntMul, mulLatency},
                   Op{isa::OpClass::kIntDiv, divLatency}};
  return fu;
}

FunctionalUnitConfig SimpleFxUnit(std::string name) {
  FunctionalUnitConfig fu;
  fu.kind = Kind::kFx;
  fu.name = std::move(name);
  fu.operations = {Op{isa::OpClass::kIntAlu, 1}};
  return fu;
}

FunctionalUnitConfig FpUnit(std::string name, std::uint32_t addLatency = 3,
                            std::uint32_t mulLatency = 4,
                            std::uint32_t divLatency = 16,
                            std::uint32_t fmaLatency = 5,
                            std::uint32_t otherLatency = 2) {
  FunctionalUnitConfig fu;
  fu.kind = Kind::kFp;
  fu.name = std::move(name);
  fu.operations = {Op{isa::OpClass::kFpAdd, addLatency},
                   Op{isa::OpClass::kFpMul, mulLatency},
                   Op{isa::OpClass::kFpDiv, divLatency},
                   Op{isa::OpClass::kFpFma, fmaLatency},
                   Op{isa::OpClass::kFpOther, otherLatency}};
  return fu;
}

FunctionalUnitConfig PlainUnit(Kind kind, std::string name,
                               std::uint32_t latency) {
  FunctionalUnitConfig fu;
  fu.kind = kind;
  fu.name = std::move(name);
  fu.latency = latency;
  return fu;
}

}  // namespace

CpuConfig DefaultConfig() {
  CpuConfig config;
  config.name = "rvss-default";
  config.functionalUnits = {
      FxUnit("FX1"),
      SimpleFxUnit("FX2"),
      FpUnit("FP1"),
      PlainUnit(Kind::kLs, "LS1", 1),
      PlainUnit(Kind::kLs, "LS2", 1),
      PlainUnit(Kind::kBranch, "BR1", 1),
      PlainUnit(Kind::kMemory, "MEM1", 1),
  };
  return config;
}

CpuConfig ScalarConfig() {
  CpuConfig config;
  config.name = "rvss-scalar";
  config.buffers.robSize = 8;
  config.buffers.fetchWidth = 1;
  config.buffers.commitWidth = 1;
  config.buffers.issueWindowSize = 2;
  config.buffers.fetchBranchFollowLimit = 1;
  config.memory.renameRegisterCount = 16;
  config.predictor.type = PredictorType::kOneBit;
  config.predictor.btbSize = 16;
  config.predictor.phtSize = 16;
  config.functionalUnits = {
      FxUnit("FX1"),
      FpUnit("FP1"),
      PlainUnit(Kind::kLs, "LS1", 1),
      PlainUnit(Kind::kBranch, "BR1", 1),
      PlainUnit(Kind::kMemory, "MEM1", 1),
  };
  return config;
}

CpuConfig WideConfig() {
  CpuConfig config;
  config.name = "rvss-wide";
  config.buffers.robSize = 192;
  config.buffers.fetchWidth = 8;
  config.buffers.commitWidth = 8;
  config.buffers.issueWindowSize = 48;
  config.buffers.fetchBranchFollowLimit = 2;
  config.memory.renameRegisterCount = 192;
  config.memory.loadBufferSize = 48;
  config.memory.storeBufferSize = 48;
  config.predictor.btbSize = 512;
  config.predictor.phtSize = 1024;
  config.predictor.historyBits = 8;
  config.predictor.history = HistoryKind::kGlobal;
  config.cache.lineCount = 256;
  config.cache.associativity = 4;
  config.functionalUnits = {
      FxUnit("FX1"), FxUnit("FX2"), SimpleFxUnit("FX3"), SimpleFxUnit("FX4"),
      FpUnit("FP1"), FpUnit("FP2"),
      PlainUnit(Kind::kLs, "LS1", 1),
      PlainUnit(Kind::kLs, "LS2", 1),
      PlainUnit(Kind::kLs, "LS3", 1),
      PlainUnit(Kind::kBranch, "BR1", 1),
      PlainUnit(Kind::kBranch, "BR2", 1),
      PlainUnit(Kind::kMemory, "MEM1", 1),
  };
  return config;
}

CpuConfig NoCacheConfig() {
  CpuConfig config = DefaultConfig();
  config.name = "rvss-nocache";
  config.cache.enabled = false;
  return config;
}

}  // namespace rvss::config
