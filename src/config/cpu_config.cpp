#include "config/cpu_config.h"

#include <array>
#include <optional>

namespace rvss::config {

const char* ToString(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kLru: return "LRU";
    case ReplacementPolicy::kFifo: return "FIFO";
    case ReplacementPolicy::kRandom: return "Random";
  }
  return "LRU";
}

const char* ToString(StorePolicy policy) {
  switch (policy) {
    case StorePolicy::kWriteBack: return "write-back";
    case StorePolicy::kWriteThrough: return "write-through";
  }
  return "write-back";
}

const char* ToString(PredictorType type) {
  switch (type) {
    case PredictorType::kZeroBit: return "zero-bit";
    case PredictorType::kOneBit: return "one-bit";
    case PredictorType::kTwoBit: return "two-bit";
  }
  return "two-bit";
}

const char* ToString(HistoryKind kind) {
  switch (kind) {
    case HistoryKind::kLocal: return "local";
    case HistoryKind::kGlobal: return "global";
  }
  return "local";
}

const char* ToString(FunctionalUnitConfig::Kind kind) {
  switch (kind) {
    case FunctionalUnitConfig::Kind::kFx: return "FX";
    case FunctionalUnitConfig::Kind::kFp: return "FP";
    case FunctionalUnitConfig::Kind::kLs: return "LS";
    case FunctionalUnitConfig::Kind::kBranch: return "Branch";
    case FunctionalUnitConfig::Kind::kMemory: return "Memory";
  }
  return "FX";
}

std::uint32_t FunctionalUnitConfig::LatencyFor(isa::OpClass opClass) const {
  for (const Operation& op : operations) {
    if (op.opClass == opClass) return op.latency;
  }
  return 0;
}

std::size_t CpuConfig::CountUnits(FunctionalUnitConfig::Kind kind) const {
  std::size_t count = 0;
  for (const FunctionalUnitConfig& fu : functionalUnits) {
    if (fu.kind == kind) ++count;
  }
  return count;
}

namespace {

template <typename Enum, std::size_t N>
std::optional<Enum> ParseEnum(
    std::string_view text,
    const std::array<std::pair<std::string_view, Enum>, N>& table) {
  for (const auto& [name, value] : table) {
    if (name == text) return value;
  }
  return std::nullopt;
}

constexpr std::array<std::pair<std::string_view, ReplacementPolicy>, 3>
    kReplacementPolicies{{{"LRU", ReplacementPolicy::kLru},
                          {"FIFO", ReplacementPolicy::kFifo},
                          {"Random", ReplacementPolicy::kRandom}}};

constexpr std::array<std::pair<std::string_view, StorePolicy>, 2>
    kStorePolicies{{{"write-back", StorePolicy::kWriteBack},
                    {"write-through", StorePolicy::kWriteThrough}}};

constexpr std::array<std::pair<std::string_view, PredictorType>, 3>
    kPredictorTypes{{{"zero-bit", PredictorType::kZeroBit},
                     {"one-bit", PredictorType::kOneBit},
                     {"two-bit", PredictorType::kTwoBit}}};

constexpr std::array<std::pair<std::string_view, HistoryKind>, 2>
    kHistoryKinds{{{"local", HistoryKind::kLocal},
                   {"global", HistoryKind::kGlobal}}};

constexpr std::array<std::pair<std::string_view, FunctionalUnitConfig::Kind>, 5>
    kUnitKinds{{{"FX", FunctionalUnitConfig::Kind::kFx},
                {"FP", FunctionalUnitConfig::Kind::kFp},
                {"LS", FunctionalUnitConfig::Kind::kLs},
                {"Branch", FunctionalUnitConfig::Kind::kBranch},
                {"Memory", FunctionalUnitConfig::Kind::kMemory}}};

constexpr std::array<std::pair<std::string_view, isa::OpClass>, 10> kOpClasses{
    {{"kIntAlu", isa::OpClass::kIntAlu},
     {"kIntMul", isa::OpClass::kIntMul},
     {"kIntDiv", isa::OpClass::kIntDiv},
     {"kFpAdd", isa::OpClass::kFpAdd},
     {"kFpMul", isa::OpClass::kFpMul},
     {"kFpDiv", isa::OpClass::kFpDiv},
     {"kFpFma", isa::OpClass::kFpFma},
     {"kFpOther", isa::OpClass::kFpOther},
     {"kBranch", isa::OpClass::kBranch},
     {"kMemAddr", isa::OpClass::kMemAddr}}};

json::Json ToJson(const FunctionalUnitConfig& fu) {
  json::Json node = json::Json::MakeObject();
  node.Set("kind", ToString(fu.kind));
  if (!fu.name.empty()) node.Set("name", fu.name);
  if (fu.kind == FunctionalUnitConfig::Kind::kFx ||
      fu.kind == FunctionalUnitConfig::Kind::kFp) {
    json::Json ops = json::Json::MakeArray();
    for (const FunctionalUnitConfig::Operation& op : fu.operations) {
      json::Json opNode = json::Json::MakeObject();
      opNode.Set("opClass", isa::ToString(op.opClass));
      opNode.Set("latency", static_cast<std::int64_t>(op.latency));
      ops.Append(std::move(opNode));
    }
    node.Set("operations", std::move(ops));
  } else {
    node.Set("latency", static_cast<std::int64_t>(fu.latency));
  }
  return node;
}

Result<FunctionalUnitConfig> UnitFromJson(const json::Json& node) {
  FunctionalUnitConfig fu;
  auto kind = ParseEnum(node.GetString("kind", "FX"), kUnitKinds);
  if (!kind) {
    return Error{ErrorKind::kConfig,
                 "unknown functional-unit kind '" +
                     node.GetString("kind", "") + "'"};
  }
  fu.kind = *kind;
  fu.name = node.GetString("name", "");
  fu.latency = static_cast<std::uint32_t>(node.GetInt("latency", 1));
  if (const json::Json* ops = node.Find("operations"); ops != nullptr) {
    if (!ops->IsArray()) {
      return Error{ErrorKind::kConfig, "'operations' must be an array"};
    }
    for (const json::Json& opNode : ops->AsArray()) {
      auto opClass = ParseEnum(opNode.GetString("opClass", ""), kOpClasses);
      if (!opClass) {
        return Error{ErrorKind::kConfig,
                     "unknown opClass '" + opNode.GetString("opClass", "") +
                         "' in functional unit"};
      }
      fu.operations.push_back(FunctionalUnitConfig::Operation{
          *opClass, static_cast<std::uint32_t>(opNode.GetInt("latency", 1))});
    }
  }
  return fu;
}

}  // namespace

json::Json ToJson(const CpuConfig& config) {
  json::Json root = json::Json::MakeObject();
  root.Set("name", config.name);
  root.Set("coreClockHz", static_cast<std::int64_t>(config.coreClockHz));
  root.Set("memClockHz", static_cast<std::int64_t>(config.memClockHz));

  json::Json buffers = json::Json::MakeObject();
  buffers.Set("robSize", static_cast<std::int64_t>(config.buffers.robSize));
  buffers.Set("fetchWidth", static_cast<std::int64_t>(config.buffers.fetchWidth));
  buffers.Set("commitWidth",
              static_cast<std::int64_t>(config.buffers.commitWidth));
  buffers.Set("flushPenalty",
              static_cast<std::int64_t>(config.buffers.flushPenalty));
  buffers.Set("fetchBranchFollowLimit",
              static_cast<std::int64_t>(config.buffers.fetchBranchFollowLimit));
  buffers.Set("issueWindowSize",
              static_cast<std::int64_t>(config.buffers.issueWindowSize));
  root.Set("buffers", std::move(buffers));

  json::Json units = json::Json::MakeArray();
  for (const FunctionalUnitConfig& fu : config.functionalUnits) {
    units.Append(ToJson(fu));
  }
  root.Set("functionalUnits", std::move(units));

  json::Json cache = json::Json::MakeObject();
  cache.Set("enabled", config.cache.enabled);
  cache.Set("lineCount", static_cast<std::int64_t>(config.cache.lineCount));
  cache.Set("lineSizeBytes",
            static_cast<std::int64_t>(config.cache.lineSizeBytes));
  cache.Set("associativity",
            static_cast<std::int64_t>(config.cache.associativity));
  cache.Set("replacement", ToString(config.cache.replacement));
  cache.Set("storePolicy", ToString(config.cache.storePolicy));
  cache.Set("accessDelay", static_cast<std::int64_t>(config.cache.accessDelay));
  cache.Set("lineReplacementDelay",
            static_cast<std::int64_t>(config.cache.lineReplacementDelay));
  root.Set("cache", std::move(cache));

  json::Json memory = json::Json::MakeObject();
  memory.Set("sizeBytes", static_cast<std::int64_t>(config.memory.sizeBytes));
  memory.Set("loadBufferSize",
             static_cast<std::int64_t>(config.memory.loadBufferSize));
  memory.Set("storeBufferSize",
             static_cast<std::int64_t>(config.memory.storeBufferSize));
  memory.Set("loadLatency",
             static_cast<std::int64_t>(config.memory.loadLatency));
  memory.Set("storeLatency",
             static_cast<std::int64_t>(config.memory.storeLatency));
  memory.Set("callStackBytes",
             static_cast<std::int64_t>(config.memory.callStackBytes));
  memory.Set("renameRegisterCount",
             static_cast<std::int64_t>(config.memory.renameRegisterCount));
  root.Set("memory", std::move(memory));

  json::Json predictor = json::Json::MakeObject();
  predictor.Set("btbSize", static_cast<std::int64_t>(config.predictor.btbSize));
  predictor.Set("phtSize", static_cast<std::int64_t>(config.predictor.phtSize));
  predictor.Set("type", ToString(config.predictor.type));
  predictor.Set("defaultState",
                static_cast<std::int64_t>(config.predictor.defaultState));
  predictor.Set("history", ToString(config.predictor.history));
  predictor.Set("historyBits",
                static_cast<std::int64_t>(config.predictor.historyBits));
  root.Set("predictor", std::move(predictor));

  json::Json checkpoint = json::Json::MakeObject();
  checkpoint.Set("intervalCycles",
                 static_cast<std::int64_t>(config.checkpoint.intervalCycles));
  checkpoint.Set("maxTotalBytes",
                 static_cast<std::int64_t>(config.checkpoint.maxTotalBytes));
  checkpoint.Set("deltaPages", config.checkpoint.deltaPages);
  checkpoint.Set("fullSnapshotEvery",
                 static_cast<std::int64_t>(config.checkpoint.fullSnapshotEvery));
  checkpoint.Set("adaptiveInterval", config.checkpoint.adaptiveInterval);
  root.Set("checkpoint", std::move(checkpoint));

  root.Set("trapOnDivZero", config.trapOnDivZero);
  root.Set("randomSeed", static_cast<std::int64_t>(config.randomSeed));
  return root;
}

Result<CpuConfig> CpuConfigFromJson(const json::Json& node) {
  if (!node.IsObject()) {
    return Error{ErrorKind::kConfig, "configuration must be a JSON object"};
  }
  CpuConfig config;
  config.name = node.GetString("name", config.name);
  config.coreClockHz = static_cast<std::uint64_t>(
      node.GetInt("coreClockHz", static_cast<std::int64_t>(config.coreClockHz)));
  config.memClockHz = static_cast<std::uint64_t>(
      node.GetInt("memClockHz", static_cast<std::int64_t>(config.memClockHz)));

  if (const json::Json* buffers = node.Find("buffers"); buffers != nullptr) {
    BufferConfig& b = config.buffers;
    b.robSize = static_cast<std::uint32_t>(buffers->GetInt("robSize", b.robSize));
    b.fetchWidth =
        static_cast<std::uint32_t>(buffers->GetInt("fetchWidth", b.fetchWidth));
    b.commitWidth = static_cast<std::uint32_t>(
        buffers->GetInt("commitWidth", b.commitWidth));
    b.flushPenalty = static_cast<std::uint32_t>(
        buffers->GetInt("flushPenalty", b.flushPenalty));
    b.fetchBranchFollowLimit = static_cast<std::uint32_t>(
        buffers->GetInt("fetchBranchFollowLimit", b.fetchBranchFollowLimit));
    b.issueWindowSize = static_cast<std::uint32_t>(
        buffers->GetInt("issueWindowSize", b.issueWindowSize));
  }

  if (const json::Json* units = node.Find("functionalUnits"); units != nullptr) {
    if (!units->IsArray()) {
      return Error{ErrorKind::kConfig, "'functionalUnits' must be an array"};
    }
    for (const json::Json& unitNode : units->AsArray()) {
      RVSS_ASSIGN_OR_RETURN(FunctionalUnitConfig fu, UnitFromJson(unitNode));
      config.functionalUnits.push_back(std::move(fu));
    }
  } else {
    config.functionalUnits = DefaultConfig().functionalUnits;
  }

  if (const json::Json* cache = node.Find("cache"); cache != nullptr) {
    CacheConfig& c = config.cache;
    c.enabled = cache->GetBool("enabled", c.enabled);
    c.lineCount =
        static_cast<std::uint32_t>(cache->GetInt("lineCount", c.lineCount));
    c.lineSizeBytes = static_cast<std::uint32_t>(
        cache->GetInt("lineSizeBytes", c.lineSizeBytes));
    c.associativity = static_cast<std::uint32_t>(
        cache->GetInt("associativity", c.associativity));
    auto replacement =
        ParseEnum(cache->GetString("replacement", "LRU"), kReplacementPolicies);
    if (!replacement) {
      return Error{ErrorKind::kConfig, "unknown cache replacement policy"};
    }
    c.replacement = *replacement;
    auto store =
        ParseEnum(cache->GetString("storePolicy", "write-back"), kStorePolicies);
    if (!store) {
      return Error{ErrorKind::kConfig, "unknown cache store policy"};
    }
    c.storePolicy = *store;
    c.accessDelay =
        static_cast<std::uint32_t>(cache->GetInt("accessDelay", c.accessDelay));
    c.lineReplacementDelay = static_cast<std::uint32_t>(
        cache->GetInt("lineReplacementDelay", c.lineReplacementDelay));
  }

  if (const json::Json* memory = node.Find("memory"); memory != nullptr) {
    MemoryConfig& m = config.memory;
    m.sizeBytes =
        static_cast<std::uint32_t>(memory->GetInt("sizeBytes", m.sizeBytes));
    m.loadBufferSize = static_cast<std::uint32_t>(
        memory->GetInt("loadBufferSize", m.loadBufferSize));
    m.storeBufferSize = static_cast<std::uint32_t>(
        memory->GetInt("storeBufferSize", m.storeBufferSize));
    m.loadLatency = static_cast<std::uint32_t>(
        memory->GetInt("loadLatency", m.loadLatency));
    m.storeLatency = static_cast<std::uint32_t>(
        memory->GetInt("storeLatency", m.storeLatency));
    m.callStackBytes = static_cast<std::uint32_t>(
        memory->GetInt("callStackBytes", m.callStackBytes));
    m.renameRegisterCount = static_cast<std::uint32_t>(
        memory->GetInt("renameRegisterCount", m.renameRegisterCount));
  }

  if (const json::Json* predictor = node.Find("predictor"); predictor != nullptr) {
    PredictorConfig& p = config.predictor;
    p.btbSize =
        static_cast<std::uint32_t>(predictor->GetInt("btbSize", p.btbSize));
    p.phtSize =
        static_cast<std::uint32_t>(predictor->GetInt("phtSize", p.phtSize));
    auto type = ParseEnum(predictor->GetString("type", "two-bit"), kPredictorTypes);
    if (!type) {
      return Error{ErrorKind::kConfig, "unknown predictor type"};
    }
    p.type = *type;
    p.defaultState = static_cast<std::uint32_t>(
        predictor->GetInt("defaultState", p.defaultState));
    auto history = ParseEnum(predictor->GetString("history", "local"), kHistoryKinds);
    if (!history) {
      return Error{ErrorKind::kConfig, "unknown predictor history kind"};
    }
    p.history = *history;
    p.historyBits = static_cast<std::uint32_t>(
        predictor->GetInt("historyBits", p.historyBits));
  }

  if (const json::Json* checkpoint = node.Find("checkpoint");
      checkpoint != nullptr) {
    CheckpointConfig& k = config.checkpoint;
    k.intervalCycles = static_cast<std::uint64_t>(checkpoint->GetInt(
        "intervalCycles", static_cast<std::int64_t>(k.intervalCycles)));
    k.maxTotalBytes = static_cast<std::uint64_t>(checkpoint->GetInt(
        "maxTotalBytes", static_cast<std::int64_t>(k.maxTotalBytes)));
    k.deltaPages = checkpoint->GetBool("deltaPages", k.deltaPages);
    k.fullSnapshotEvery = static_cast<std::uint64_t>(checkpoint->GetInt(
        "fullSnapshotEvery", static_cast<std::int64_t>(k.fullSnapshotEvery)));
    k.adaptiveInterval =
        checkpoint->GetBool("adaptiveInterval", k.adaptiveInterval);
  }

  config.trapOnDivZero = node.GetBool("trapOnDivZero", config.trapOnDivZero);
  config.randomSeed = static_cast<std::uint64_t>(
      node.GetInt("randomSeed", static_cast<std::int64_t>(config.randomSeed)));
  return config;
}

}  // namespace rvss::config
