// Configuration validation: collects *all* problems, mirroring the paper's
// settings window which refuses to start a simulation with an invalid
// architecture but shows every offending field at once.
#include "common/bitops.h"
#include "config/cpu_config.h"

namespace rvss::config {
namespace {

void Check(std::vector<Error>& errors, bool ok, std::string message) {
  if (!ok) {
    errors.push_back(Error{ErrorKind::kConfig, std::move(message)});
  }
}

}  // namespace

std::vector<Error> Validate(const CpuConfig& config) {
  std::vector<Error> errors;
  const BufferConfig& b = config.buffers;
  Check(errors, b.robSize >= 1, "robSize must be at least 1");
  Check(errors, b.fetchWidth >= 1, "fetchWidth must be at least 1");
  Check(errors, b.commitWidth >= 1, "commitWidth must be at least 1");
  Check(errors, b.issueWindowSize >= 1, "issueWindowSize must be at least 1");
  Check(errors, b.fetchWidth <= 16, "fetchWidth above 16 is not supported");
  Check(errors, b.robSize <= 4096, "robSize above 4096 is not supported");

  Check(errors, config.coreClockHz > 0, "coreClockHz must be positive");
  Check(errors, config.memClockHz > 0, "memClockHz must be positive");

  // Functional units: the pipeline needs at least one of each role to make
  // progress on arbitrary RV32IMFD programs.
  bool hasFx = false, hasFp = false, hasLs = false, hasBranch = false,
       hasMemory = false;
  for (const FunctionalUnitConfig& fu : config.functionalUnits) {
    switch (fu.kind) {
      case FunctionalUnitConfig::Kind::kFx: {
        hasFx = hasFx || fu.LatencyFor(isa::OpClass::kIntAlu) > 0;
        for (const auto& op : fu.operations) {
          Check(errors, op.latency >= 1 && op.latency <= 512,
                "FX operation latency must be in [1, 512]");
          Check(errors,
                op.opClass == isa::OpClass::kIntAlu ||
                    op.opClass == isa::OpClass::kIntMul ||
                    op.opClass == isa::OpClass::kIntDiv,
                "FX units may only support integer operation classes");
        }
        break;
      }
      case FunctionalUnitConfig::Kind::kFp: {
        if (!fu.operations.empty()) hasFp = true;
        for (const auto& op : fu.operations) {
          Check(errors, op.latency >= 1 && op.latency <= 512,
                "FP operation latency must be in [1, 512]");
          Check(errors,
                op.opClass == isa::OpClass::kFpAdd ||
                    op.opClass == isa::OpClass::kFpMul ||
                    op.opClass == isa::OpClass::kFpDiv ||
                    op.opClass == isa::OpClass::kFpFma ||
                    op.opClass == isa::OpClass::kFpOther,
                "FP units may only support floating-point operation classes");
        }
        break;
      }
      case FunctionalUnitConfig::Kind::kLs:
        hasLs = true;
        Check(errors, fu.latency >= 1, "LS unit latency must be at least 1");
        break;
      case FunctionalUnitConfig::Kind::kBranch:
        hasBranch = true;
        Check(errors, fu.latency >= 1, "branch unit latency must be at least 1");
        break;
      case FunctionalUnitConfig::Kind::kMemory:
        hasMemory = true;
        Check(errors, fu.latency >= 1, "memory unit latency must be at least 1");
        break;
    }
  }
  Check(errors, hasFx, "at least one FX unit supporting kIntAlu is required");
  Check(errors, hasLs, "at least one LS (address) unit is required");
  Check(errors, hasBranch, "at least one branch unit is required");
  Check(errors, hasMemory, "at least one memory-access unit is required");
  (void)hasFp;  // FP units are optional; FP programs stall forever without
                // them, which validation cannot know statically.

  const CacheConfig& c = config.cache;
  if (c.enabled) {
    Check(errors, IsPowerOfTwo(c.lineSizeBytes),
          "cache lineSizeBytes must be a power of two");
    Check(errors, c.lineSizeBytes >= 4 && c.lineSizeBytes <= 4096,
          "cache lineSizeBytes must be in [4, 4096]");
    Check(errors, c.lineCount >= 1, "cache lineCount must be at least 1");
    Check(errors, c.associativity >= 1,
          "cache associativity must be at least 1");
    Check(errors, c.associativity <= c.lineCount,
          "cache associativity cannot exceed lineCount");
    if (c.associativity >= 1 && c.lineCount >= 1) {
      Check(errors, c.lineCount % c.associativity == 0,
            "cache lineCount must be a multiple of associativity");
      if (c.lineCount % c.associativity == 0) {
        Check(errors, IsPowerOfTwo(c.lineCount / c.associativity),
              "cache set count (lineCount / associativity) must be a power "
              "of two");
      }
    }
  }

  const MemoryConfig& m = config.memory;
  Check(errors, m.sizeBytes >= 1024, "memory sizeBytes must be at least 1 KiB");
  Check(errors, m.loadBufferSize >= 1, "loadBufferSize must be at least 1");
  Check(errors, m.storeBufferSize >= 1, "storeBufferSize must be at least 1");
  Check(errors, m.callStackBytes >= 64,
        "callStackBytes must be at least 64 bytes");
  Check(errors, m.callStackBytes < m.sizeBytes,
        "call stack must fit inside memory");
  Check(errors, m.renameRegisterCount >= config.buffers.fetchWidth,
        "renameRegisterCount must be at least fetchWidth");

  // Checkpoint settings are client-supplied on shared servers, so both ends
  // are bounded: a dense interval turns every step into a snapshot copy,
  // and an unbounded budget defeats the per-session memory cap. A budget
  // too small for two snapshots is fine — the ring pins the cycle-0 base
  // and the newest entry and degrades to longer replays. The upper bounds
  // also catch negative JSON values wrapping to huge unsigned ones.
  const CheckpointConfig& k = config.checkpoint;
  if (k.intervalCycles > 0) {
    Check(errors, k.intervalCycles >= 16,
          "checkpoint intervalCycles below 16 is not supported (0 disables)");
    Check(errors, k.intervalCycles <= (1ull << 32),
          "checkpoint intervalCycles above 2^32 is not supported");
    Check(errors, k.maxTotalBytes >= 1,
          "checkpoint maxTotalBytes must be positive");
  }
  // The budget bound applies even with automatic checkpointing disabled:
  // manual saveCheckpoint requests still deposit into the ring.
  Check(errors, k.maxTotalBytes <= (1ull << 30),
        "checkpoint maxTotalBytes above 1 GiB is not supported");
  Check(errors, k.fullSnapshotEvery >= 1 && k.fullSnapshotEvery <= 1024,
        "checkpoint fullSnapshotEvery must be in [1, 1024]");

  const PredictorConfig& p = config.predictor;
  Check(errors, IsPowerOfTwo(p.btbSize), "btbSize must be a power of two");
  Check(errors, IsPowerOfTwo(p.phtSize), "phtSize must be a power of two");
  const std::uint32_t stateLimit =
      p.type == PredictorType::kTwoBit ? 4u : 2u;
  Check(errors, p.defaultState < stateLimit,
        "predictor defaultState out of range for predictor type");
  Check(errors, p.historyBits <= 16, "historyBits above 16 is not supported");

  return errors;
}

}  // namespace rvss::config
