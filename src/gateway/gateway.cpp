#include "gateway/gateway.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "common/framing.h"
#include "common/socket.h"
#include "common/sync.h"
#include "obs/registry.h"
#include "server/api.h"

namespace rvss::gateway {
namespace {

/// Sentinel epoll cookies for the two non-connection descriptors;
/// connection ids start above them.
constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kEventTag = 1;
constexpr std::uint64_t kFirstConnectionId = 2;

json::Json UnavailableError(std::string message) {
  return server::MakeErrorResponse(
      Error{ErrorKind::kUnavailable, std::move(message)});
}

/// Moves a non-empty top-level "blob" string out of `message` — the
/// send-side half of the wire split (server/wire.h), re-implemented here
/// because the gateway serializes into buffers, not onto a socket.
std::string DetachBlob(json::Json& message) {
  if (!message.IsObject()) return {};
  json::Object& object = message.AsObject();
  for (auto it = object.begin(); it != object.end(); ++it) {
    if (it->first == "blob" && it->second.IsString() &&
        !it->second.AsString().empty()) {
      std::string blob = std::move(it->second.AsString());
      object.erase(it);
      return blob;
    }
  }
  return {};
}

/// All gateway metrics, resolved once. Counters/gauges are always-on
/// (functional load signals, like the lane stats); only the per-command
/// latency split is gated on obs::Enabled().
struct Metrics {
  obs::Registry& registry = obs::Registry::Instance();
  obs::Gauge& connections = registry.GetGauge("gateway.connections");
  obs::Gauge& inFlight = registry.GetGauge("gateway.inFlight");
  obs::Counter& accepted = registry.GetCounter("gateway.accepted");
  obs::Counter& acceptErrors = registry.GetCounter("gateway.acceptErrors");
  obs::Counter& rejectedConnections =
      registry.GetCounter("gateway.rejectedConnections");
  obs::Counter& quotaRejections =
      registry.GetCounter("gateway.quotaRejections");
  obs::Counter& shed = registry.GetCounter("gateway.shed");
  obs::Counter& frames = registry.GetCounter("gateway.frames");
  obs::Counter& frameErrors = registry.GetCounter("gateway.frameErrors");
  obs::Histogram& requestUs = registry.GetHistogram("gateway.requestUs");

  static Metrics& Get() {
    static Metrics* metrics = new Metrics();
    return *metrics;
  }
};

}  // namespace

class Gateway::Impl {
 public:
  Impl(Handler handler, GatewayOptions options, net::Socket listener)
      : handler_(std::move(handler)),
        options_(std::move(options)),
        listener_(std::move(listener)) {}

  ~Impl() { Stop(); }

  Status StartThreads() {
    epollFd_ = ::epoll_create1(0);
    if (epollFd_ < 0) {
      return Status::Fail(ErrorKind::kInternal,
                          std::string("epoll_create1: ") +
                              std::strerror(errno));
    }
    eventFd_ = ::eventfd(0, EFD_NONBLOCK);
    if (eventFd_ < 0) {
      return Status::Fail(ErrorKind::kInternal,
                          std::string("eventfd: ") + std::strerror(errno));
    }
    RVSS_RETURN_IF_ERROR(AddToEpoll(listener_.fd(), kListenerTag, EPOLLIN));
    RVSS_RETURN_IF_ERROR(AddToEpoll(eventFd_, kEventTag, EPOLLIN));
    const std::size_t dispatchers =
        options_.dispatchThreads > 0 ? options_.dispatchThreads : 1;
    dispatchers_.reserve(dispatchers);
    for (std::size_t i = 0; i < dispatchers; ++i) {
      dispatchers_.emplace_back([this] { DispatchLoop(); });
    }
    ioThread_ = std::thread([this] { Run(); });
    return Status::Ok();
  }

  Status Wait() EXCLUDES(doneMutex_) {
    MutexLock lock(doneMutex_);
    while (!done_) doneCv_.Wait(doneMutex_);
    return finalStatus_;
  }

  void Stop() EXCLUDES(dispatchMutex_) {
    stopping_.store(true, std::memory_order_relaxed);
    WakeIoThread();
    if (ioThread_.joinable()) ioThread_.join();
    {
      MutexLock lock(dispatchMutex_);
      dispatchStop_ = true;
    }
    dispatchCv_.NotifyAll();
    for (std::thread& dispatcher : dispatchers_) {
      if (dispatcher.joinable()) dispatcher.join();
    }
    if (eventFd_ >= 0) {
      ::close(eventFd_);
      eventFd_ = -1;
    }
    if (epollFd_ >= 0) {
      ::close(epollFd_);
      epollFd_ = -1;
    }
  }

 private:
  struct Connection {
    std::uint64_t id = 0;  ///< its key in connections_ / epoll cookie
    net::Socket socket;
    std::string readBuf;
    std::string writeBuf;
    std::size_t writeOffset = 0;
    std::uint32_t epollEvents = 0;  ///< currently registered interest
    bool inFlight = false;
    bool closeAfterFlush = false;
    /// Context of the in-flight request, for completion-side session
    /// bookkeeping and the per-command latency split.
    std::string pendingCommand;
    std::int64_t pendingSessionId = -1;
    std::uint64_t pendingStartNs = 0;
    /// Global session ids this connection admitted (and has not yet
    /// deleted) — the unit the per-connection quota is charged against.
    /// Sessions outlive connections by design (a browser reload
    /// reattaches by id), so closing a connection frees its quota but
    /// never deletes fleet state.
    std::set<std::int64_t> sessions;
  };

  struct DispatchJob {
    std::uint64_t connectionId = 0;
    json::Json request;
  };

  struct Completion {
    std::uint64_t connectionId = 0;
    json::Json response;
  };

  Status AddToEpoll(int fd, std::uint64_t tag, std::uint32_t events) {
    struct epoll_event event = {};
    event.events = events;
    event.data.u64 = tag;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &event) < 0) {
      return Status::Fail(ErrorKind::kInternal,
                          std::string("epoll_ctl(ADD): ") +
                              std::strerror(errno));
    }
    return Status::Ok();
  }

  void WakeIoThread() {
    if (eventFd_ < 0) return;
    const std::uint64_t one = 1;
    // A full eventfd counter still wakes the reader; nothing to handle.
    (void)!::write(eventFd_, &one, sizeof(one));
  }

  // ---- dispatcher side ------------------------------------------------

  void DispatchLoop() EXCLUDES(dispatchMutex_, completionMutex_) {
    while (true) {
      DispatchJob job;
      {
        MutexLock lock(dispatchMutex_);
        while (!dispatchStop_ && dispatchQueue_.empty()) {
          dispatchCv_.Wait(dispatchMutex_);
        }
        if (dispatchQueue_.empty()) return;  // only on dispatchStop_
        job = std::move(dispatchQueue_.front());
        dispatchQueue_.pop_front();
      }
      json::Json response = handler_(job.request);
      {
        MutexLock lock(completionMutex_);
        completions_.push_back(
            Completion{job.connectionId, std::move(response)});
      }
      WakeIoThread();
    }
  }

  // ---- I/O thread -----------------------------------------------------
  //
  // Everything below runs on the I/O thread only (connections_ and each
  // Connection have no lock — single-owner by construction).

  void Run() {
    Metrics& metrics = Metrics::Get();
    std::vector<struct epoll_event> events(64);
    while (!stopping_.load(std::memory_order_relaxed)) {
      const int ready =
          ::epoll_wait(epollFd_, events.data(),
                       static_cast<int>(events.size()), /*timeout=*/-1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        Finish(Status::Fail(ErrorKind::kInternal,
                            std::string("epoll_wait: ") +
                                std::strerror(errno)));
        return;
      }
      for (int i = 0; i < ready; ++i) {
        const std::uint64_t tag = events[static_cast<std::size_t>(i)].data.u64;
        const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
        if (tag == kEventTag) {
          DrainEventFd();
          ProcessCompletions();
        } else if (tag == kListenerTag) {
          AcceptPending();
        } else {
          HandleConnectionEvent(tag, mask);
        }
        if (stopping_.load(std::memory_order_relaxed)) break;
      }
      metrics.connections.Set(static_cast<double>(connections_.size()));
      metrics.inFlight.Set(static_cast<double>(inFlightCount_));
    }
    Finish(Status::Ok());
  }

  void Finish(Status status) EXCLUDES(doneMutex_) {
    connections_.clear();  // closes every socket (RAII)
    Metrics::Get().connections.Set(0);
    {
      MutexLock lock(doneMutex_);
      if (!done_) {
        done_ = true;
        finalStatus_ = std::move(status);
      }
    }
    doneCv_.NotifyAll();
  }

  void DrainEventFd() {
    std::uint64_t counter = 0;
    (void)!::read(eventFd_, &counter, sizeof(counter));
  }

  void AcceptPending() {
    Metrics& metrics = Metrics::Get();
    while (true) {
      const int fd = ::accept(listener_.fd(), nullptr, nullptr);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        const int acceptErrno = errno;
        metrics.acceptErrors.Increment();
        std::fprintf(stderr, "rvss gateway: accept failed: %s\n",
                     std::strerror(acceptErrno));
        if (acceptErrno == EMFILE || acceptErrno == ENFILE ||
            acceptErrno == ENOBUFS || acceptErrno == ENOMEM) {
          // Out of descriptors: a level-triggered listener would wake us
          // immediately and forever. Park it; the next connection close
          // frees a descriptor and resumes it.
          ParkListener();
          return;
        }
        if (net::IsTransientAcceptError(acceptErrno)) continue;
        Finish(Status::Fail(ErrorKind::kInternal,
                            std::string("accept: ") +
                                std::strerror(acceptErrno)));
        stopping_.store(true, std::memory_order_relaxed);
        return;
      }
      net::Socket socket(fd);
      if (connections_.size() >= options_.maxConnections) {
        // At the cap the close IS the backpressure signal: nothing was
        // read, nothing executed, the client retries against a gateway
        // that may have shed other load by then.
        metrics.rejectedConnections.Increment();
        continue;  // ~socket closes fd
      }
      const int flags = ::fcntl(fd, F_GETFL, 0);
      if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        metrics.acceptErrors.Increment();
        continue;
      }
      const std::uint64_t id = nextConnectionId_++;
      Connection connection;
      connection.id = id;
      connection.socket = std::move(socket);
      connection.epollEvents = EPOLLIN;
      if (!AddToEpoll(connection.socket.fd(), id, EPOLLIN).ok()) {
        metrics.acceptErrors.Increment();
        continue;
      }
      connections_.emplace(id, std::move(connection));
      metrics.accepted.Increment();
    }
  }

  void ParkListener() {
    if (listenerParked_) return;
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, listener_.fd(), nullptr);
    listenerParked_ = true;
  }

  void ResumeListener() {
    if (!listenerParked_) return;
    if (AddToEpoll(listener_.fd(), kListenerTag, EPOLLIN).ok()) {
      listenerParked_ = false;
    }
  }

  void HandleConnectionEvent(std::uint64_t id, std::uint32_t mask) {
    auto it = connections_.find(id);
    if (it == connections_.end()) return;  // closed earlier this batch
    Connection& connection = it->second;
    if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
      CloseConnection(id);
      return;
    }
    if ((mask & EPOLLOUT) != 0) {
      if (!FlushWrites(id, connection)) return;
    }
    if ((mask & EPOLLIN) != 0) {
      ReadFromConnection(id, connection);
    }
  }

  void ReadFromConnection(std::uint64_t id, Connection& connection) {
    char chunk[64 * 1024];
    while (true) {
      // While a request is in flight, stop pulling pipelined bytes past
      // the buffer bound — the kernel's socket buffer (and eventually
      // the client) absorbs the rest. With nothing in flight the next
      // frame must be able to complete, however large (the frame cap is
      // enforced from its header below).
      if (connection.inFlight &&
          connection.readBuf.size() >= options_.maxPipelineBufferBytes) {
        break;
      }
      const ssize_t got =
          ::recv(connection.socket.fd(), chunk, sizeof(chunk), 0);
      if (got > 0) {
        connection.readBuf.append(chunk, static_cast<std::size_t>(got));
        continue;
      }
      if (got == 0) {  // orderly EOF
        CloseConnection(id);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConnection(id);
      return;
    }
    if (!ProcessReadBuffer(id, connection)) return;  // connection closed
    UpdateInterest(connection);
  }

  /// Extracts and handles every complete frame buffered on `connection`,
  /// stopping at a partial frame or once a request is in flight (frames
  /// behind it stay buffered — per-connection ordering). Returns false
  /// when the connection was closed.
  bool ProcessReadBuffer(std::uint64_t id, Connection& connection) {
    Metrics& metrics = Metrics::Get();
    while (!connection.inFlight && !connection.closeAfterFlush) {
      if (connection.readBuf.size() < net::kFrameHeaderBytes) return true;
      auto header = net::DecodeFrameHeader(
          std::string_view(connection.readBuf.data(),
                           net::kFrameHeaderBytes),
          options_.wire.maxFrameBytes);
      if (!header.ok()) {
        // Bad magic / version / absurd lengths: the byte stream is not
        // ours (or not trustworthy); there is no frame boundary to
        // answer on.
        metrics.frameErrors.Increment();
        CloseConnection(id);
        return false;
      }
      const std::size_t frameBytes =
          net::kFrameHeaderBytes + header.value().payloadBytes();
      if (connection.readBuf.size() < frameBytes) return true;

      std::string text = connection.readBuf.substr(net::kFrameHeaderBytes,
                                                   header.value().jsonBytes);
      std::string blob = connection.readBuf.substr(
          net::kFrameHeaderBytes + header.value().jsonBytes,
          header.value().blobBytes);
      connection.readBuf.erase(0, frameBytes);
      metrics.frames.Increment();

      auto parsed = json::Parse(text);
      if (!parsed.ok()) {
        // Framing was intact, only the JSON was bad: answer on the
        // (trustworthy) frame boundary and keep serving, exactly like
        // the worker frame loop.
        metrics.frameErrors.Increment();
        if (!SendResponse(connection,
                          server::MakeErrorResponse(parsed.error()))) {
          return false;
        }
        continue;
      }
      json::Json request = std::move(parsed).value();
      if (!blob.empty()) request.Set("blob", std::move(blob));
      if (!HandleRequest(connection, std::move(request))) return false;
    }
    return true;
  }

  /// One parsed request: answered inline (hello, shutdown, admission
  /// refusals) or handed to the dispatcher pool. Returns false when the
  /// connection was closed (a failed inline answer).
  bool HandleRequest(Connection& connection, json::Json request)
      EXCLUDES(dispatchMutex_) {
    Metrics& metrics = Metrics::Get();
    const std::string command = request.GetString("command", "");
    if (command == "hello") {
      return SendResponse(connection, server::MakeHelloResponse());
    }
    if (command == "shutdownGateway") {
      // Out-of-band, mirroring the workers' shutdownWorker: acknowledge,
      // then stop the loop. The ack flushes best-effort — for this small
      // frame the socket buffer all but guarantees it.
      json::Json response = json::Json::MakeObject();
      response.Set("status", "ok");
      response.Set("shutdown", true);
      const bool alive = SendResponse(connection, std::move(response));
      stopping_.store(true, std::memory_order_relaxed);
      return alive;
    }
    const bool admits =
        command == "createSession" || command == "importSession";
    if (admits &&
        connection.sessions.size() >= options_.maxSessionsPerConnection) {
      metrics.quotaRejections.Increment();
      return SendResponse(
          connection,
          UnavailableError(
              "session quota reached (" +
              std::to_string(options_.maxSessionsPerConnection) +
              " per connection); delete a session or open another "
              "connection"));
    }
    const std::int64_t requestSessionId = request.GetInt("sessionId", -1);
    bool shed = false;
    {
      MutexLock lock(dispatchMutex_);
      if (dispatchQueue_.size() >= options_.maxDispatchQueue) {
        shed = true;
      } else {
        dispatchQueue_.push_back(
            DispatchJob{connection.id, std::move(request)});
      }
    }
    if (shed) {
      metrics.shed.Increment();
      return SendResponse(
          connection,
          UnavailableError("gateway dispatch queue is full (" +
                           std::to_string(options_.maxDispatchQueue) +
                           " requests waiting); load shed, retry later"));
    }
    dispatchCv_.NotifyOne();
    connection.inFlight = true;
    connection.pendingCommand = command;
    connection.pendingSessionId = requestSessionId;
    connection.pendingStartNs = obs::MonotonicNowNs();
    ++inFlightCount_;
    return true;
  }

  void ProcessCompletions() EXCLUDES(completionMutex_) {
    std::vector<Completion> batch;
    {
      MutexLock lock(completionMutex_);
      batch.swap(completions_);
    }
    Metrics& metrics = Metrics::Get();
    for (Completion& completion : batch) {
      auto it = connections_.find(completion.connectionId);
      if (it == connections_.end()) {
        // The client vanished mid-request. The fleet did its work — a
        // created session exists and is reattachable by id — only the
        // response has nowhere to go.
        continue;
      }
      Connection& connection = it->second;
      connection.inFlight = false;
      --inFlightCount_;

      // Session-quota bookkeeping from the response, on the I/O thread:
      // a successful admission charges the quota, a successful delete
      // releases it.
      const bool ok = completion.response.GetString("status", "") == "ok";
      if (ok && (connection.pendingCommand == "createSession" ||
                 connection.pendingCommand == "importSession")) {
        connection.sessions.insert(
            completion.response.GetInt("sessionId", -1));
      } else if (ok && connection.pendingCommand == "deleteSession") {
        connection.sessions.erase(connection.pendingSessionId);
      }
      const std::uint64_t elapsedUs =
          (obs::MonotonicNowNs() - connection.pendingStartNs) / 1000;
      metrics.requestUs.Record(elapsedUs);
      if (obs::Enabled()) {
        metrics.registry
            .GetHistogram("gateway.requestUs." +
                          std::string(obs::SanitizedCommandName(
                              connection.pendingCommand)))
            .Record(elapsedUs);
      }
      if (!SendResponse(connection, std::move(completion.response))) {
        continue;
      }
      // The response may have unblocked a pipelined frame.
      if (ProcessReadBuffer(completion.connectionId, connection)) {
        UpdateInterest(connection);
      }
    }
  }

  /// Serializes `response` into the connection's write buffer (header +
  /// JSON + detached blob) and flushes what the socket accepts now; the
  /// rest drains on EPOLLOUT. Returns false when the flush hit a hard
  /// error and the connection was closed.
  bool SendResponse(Connection& connection, json::Json response) {
    const std::string blob = DetachBlob(response);
    const std::string text = response.Dump();
    connection.writeBuf +=
        net::EncodeFrameHeader(text.size(), blob.size());
    connection.writeBuf += text;
    connection.writeBuf += blob;
    TryFlush(connection);
    if (connection.closeAfterFlush && connection.writeBuf.empty()) {
      CloseConnection(connection.id);
      return false;
    }
    UpdateInterest(connection);
    return true;
  }

  /// Writes as much buffered output as the socket accepts. Marks the
  /// connection for close on a hard error (the caller-side close happens
  /// via closeAfterFlush + empty buffer, or the next EPOLLHUP).
  void TryFlush(Connection& connection) {
    while (connection.writeOffset < connection.writeBuf.size()) {
      const ssize_t wrote = ::send(
          connection.socket.fd(),
          connection.writeBuf.data() + connection.writeOffset,
          connection.writeBuf.size() - connection.writeOffset, MSG_NOSIGNAL);
      if (wrote > 0) {
        connection.writeOffset += static_cast<std::size_t>(wrote);
        continue;
      }
      if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (wrote < 0 && errno == EINTR) continue;
      // Peer gone: drop the remaining output and let the reader side
      // observe the close.
      connection.writeBuf.clear();
      connection.writeOffset = 0;
      connection.closeAfterFlush = true;
      return;
    }
    connection.writeBuf.clear();
    connection.writeOffset = 0;
  }

  /// Returns false when the connection was closed.
  bool FlushWrites(std::uint64_t id, Connection& connection) {
    TryFlush(connection);
    if (connection.writeBuf.empty() && connection.closeAfterFlush) {
      CloseConnection(id);
      return false;
    }
    UpdateInterest(connection);
    return true;
  }

  void UpdateInterest(Connection& connection) {
    std::uint32_t want = 0;
    const bool readParked =
        connection.inFlight &&
        connection.readBuf.size() >= options_.maxPipelineBufferBytes;
    if (!readParked && !connection.closeAfterFlush) want |= EPOLLIN;
    if (connection.writeOffset < connection.writeBuf.size()) {
      want |= EPOLLOUT;
    }
    if (want == connection.epollEvents) return;
    struct epoll_event event = {};
    event.events = want;
    event.data.u64 = connection.id;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_MOD, connection.socket.fd(),
                    &event) == 0) {
      connection.epollEvents = want;
    }
  }

  void CloseConnection(std::uint64_t id) {
    auto it = connections_.find(id);
    if (it == connections_.end()) return;
    if (it->second.inFlight) --inFlightCount_;
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, it->second.socket.fd(), nullptr);
    connections_.erase(it);  // RAII closes the descriptor
    ResumeListener();        // a descriptor just freed up
  }

  Handler handler_;
  GatewayOptions options_;
  net::Socket listener_;
  int epollFd_ = -1;
  int eventFd_ = -1;
  bool listenerParked_ = false;

  std::thread ioThread_;
  std::vector<std::thread> dispatchers_;
  std::atomic<bool> stopping_{false};

  Mutex dispatchMutex_;
  CondVar dispatchCv_;
  std::deque<DispatchJob> dispatchQueue_ GUARDED_BY(dispatchMutex_);
  bool dispatchStop_ GUARDED_BY(dispatchMutex_) = false;

  Mutex completionMutex_;
  std::vector<Completion> completions_ GUARDED_BY(completionMutex_);

  Mutex doneMutex_;
  CondVar doneCv_;
  bool done_ GUARDED_BY(doneMutex_) = false;
  Status finalStatus_ GUARDED_BY(doneMutex_) = Status::Ok();

  // I/O-thread-only state: single-owner by construction (see the section
  // comment above Run), so deliberately lock-free and unannotated.
  std::map<std::uint64_t, Connection> connections_;
  std::uint64_t nextConnectionId_ = kFirstConnectionId;
  std::size_t inFlightCount_ = 0;
};

Gateway::Gateway(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

Gateway::~Gateway() {
  if (impl_ != nullptr) impl_->Stop();
}

Result<std::unique_ptr<Gateway>> Gateway::Start(Handler handler,
                                                GatewayOptions options) {
  if (!handler) {
    return Error{ErrorKind::kInvalidArgument, "gateway needs a handler"};
  }
  auto listener = net::ListenOn(options.address, /*backlog=*/128);
  if (!listener.ok()) return listener.error();

  // Resolve "tcp:HOST:0" to the kernel-assigned port so clients (and the
  // CLI banner) get a connectable address back.
  std::string address = options.address;
  if (address.rfind("tcp:", 0) == 0) {
    auto port = net::BoundPort(listener.value());
    if (port.ok()) {
      const std::size_t colon = address.rfind(':');
      address = address.substr(0, colon + 1) + std::to_string(port.value());
    }
  }

  auto impl = std::make_unique<Impl>(std::move(handler), std::move(options),
                                     std::move(listener).value());
  RVSS_RETURN_IF_ERROR(impl->StartThreads());
  std::unique_ptr<Gateway> gateway(new Gateway(std::move(impl)));
  gateway->address_ = std::move(address);
  return gateway;
}

Status Gateway::Wait() { return impl_->Wait(); }

void Gateway::Stop() { impl_->Stop(); }

}  // namespace rvss::gateway
