// The front-door gateway: one epoll loop multiplexing many client
// connections onto a shard fleet.
//
// Workers hold exactly one connection each (the router's transport), and
// the frame loop a worker runs (server/frame_loop.h) serves exactly one
// connection at a time — fine for the fleet's internals, useless as a
// front door: a classroom of browsers, or a bench with 64 concurrent
// clients, needs thousands of sockets feeding one router. The gateway is
// that front door:
//
//   * One I/O thread owns an epoll set (level-triggered) with every
//     accepted connection non-blocking. All per-connection state — read
//     buffer, write buffer, in-flight bookkeeping, session quota — lives
//     on that thread; no per-connection locks exist.
//   * Frames are the same length-prefixed wire format workers speak
//     (common/framing.h, assembled/split exactly as server/wire.h does),
//     so a client library talks to a gateway or a worker identically.
//     Partial frames are first-class: the read buffer accumulates until
//     a full frame is present, the write buffer drains as EPOLLOUT
//     allows — a slow or dribbling client costs its own connection
//     memory, never a thread and never another client's latency.
//   * Parsed requests are handed to a dispatcher pool that calls the
//     (blocking) Handler — in production shard::ShardRouter::Handle,
//     whose lanes fan the work across workers. Completions return to the
//     I/O thread over an eventfd. One request per connection is in
//     flight at a time; frames pipelined behind it wait buffered, so a
//     connection's requests execute in order.
//
// Admission control, all answered with retryable kUnavailable errors
// rather than queueing without bound (the ErrorKind exists for exactly
// this: the client may retry, nothing was executed):
//
//   * connection cap — accepts beyond maxConnections are closed on
//     arrival; at descriptor exhaustion (EMFILE) the listener is parked
//     (removed from the epoll set) and resumed when a connection closes,
//     so the loop never spins on an accept it cannot complete.
//   * per-connection session quota — createSession/importSession beyond
//     maxSessionsPerConnection is refused at the gateway; the quota is
//     released by deleteSession (or the connection closing — though
//     sessions themselves outlive connections; clients reattach by id).
//   * dispatch backpressure — a full dispatcher queue sheds the request
//     immediately (gateway.shed). Worker-lane depth caps (the router's
//     maxLaneQueueDepth) shed deeper overload the same way.
//
// Frame-level garbage (bad magic, over-cap lengths) closes the
// connection — the byte stream cannot be trusted past it. JSON-level
// garbage gets an error response and the connection lives on, exactly
// like the worker frame loop. {"command":"hello"} is answered inline by
// the I/O thread; {"command":"shutdownGateway"} acknowledges and stops
// the gateway (the out-of-band teardown used by the CLI and tests,
// mirroring the workers' shutdownWorker).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "json/json.h"
#include "server/wire.h"

namespace rvss::gateway {

struct GatewayOptions {
  /// Listen address (unix:/path or tcp:HOST:PORT; tcp port 0 works —
  /// read the bound address back from Gateway::address()).
  std::string address;
  /// Accepted connections beyond this are closed on arrival (counted in
  /// gateway.rejectedConnections).
  std::size_t maxConnections = 1024;
  /// createSession/importSession quota per connection; exceeding it is
  /// refused with kUnavailable before reaching the fleet.
  std::size_t maxSessionsPerConnection = 16;
  /// Dispatcher threads calling the Handler. More than the worker count
  /// buys nothing once every lane is busy; the default suits small test
  /// fleets and the CI bench alike.
  std::size_t dispatchThreads = 8;
  /// Requests waiting for a dispatcher beyond this are load-shed.
  std::size_t maxDispatchQueue = 256;
  /// While a connection has a request in flight, additional buffered
  /// request bytes beyond this stop being read (EPOLLIN parked) until
  /// the response goes out — a pipelining client cannot buffer
  /// unboundedly. A connection with nothing in flight may always buffer
  /// one full frame (up to wire.maxFrameBytes).
  std::size_t maxPipelineBufferBytes = 64 * 1024;
  /// Frame caps shared with the wire codec (ioTimeoutMs is unused here:
  /// the gateway never blocks on a socket).
  server::WireOptions wire;
};

class Gateway {
 public:
  /// The request handler, called from dispatcher threads — must be
  /// thread-safe and may block (shard::ShardRouter::Handle is both).
  using Handler = std::function<json::Json(const json::Json&)>;

  /// Binds `options.address`, spawns the I/O thread and the dispatcher
  /// pool, and starts serving. Fails if the address cannot be bound.
  static Result<std::unique_ptr<Gateway>> Start(Handler handler,
                                                GatewayOptions options);

  ~Gateway();
  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// The bound listen address — options.address with a tcp port of 0
  /// resolved to the real port.
  const std::string& address() const { return address_; }

  /// Blocks until the gateway stops: shutdownGateway arrived, Stop() was
  /// called, or the I/O loop failed. Returns the loop's final status.
  Status Wait();

  /// Stops the loop, closes every connection and joins all threads.
  /// Idempotent; the destructor calls it.
  void Stop();

 private:
  class Impl;
  explicit Gateway(std::unique_ptr<Impl> impl);

  std::string address_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rvss::gateway
