// Small string helpers shared by the assembler, compiler and JSON modules.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rvss {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string_view> Split(std::string_view text, char sep);

/// Splits on any amount of whitespace, dropping empty fields.
std::vector<std::string_view> SplitWhitespace(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Case-sensitive join with separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view text);

/// Parses a signed 64-bit integer in C syntax: decimal, 0x hex, 0b binary,
/// 0 octal, optional leading '-'. Returns nullopt on any trailing garbage.
std::optional<std::int64_t> ParseInt(std::string_view text);

/// Parses a double; returns nullopt on trailing garbage.
std::optional<double> ParseDouble(std::string_view text);

/// Formats a byte count as "12.3 KiB" style text (used by stats output).
std::string FormatBytes(std::uint64_t bytes);

/// Escapes a string for embedding in JSON or log output ("\n" etc.).
std::string EscapeForDisplay(std::string_view text);

/// Standard base64 (RFC 4648, with '=' padding). Binary-safe transport for
/// snapshot blobs inside JSON responses.
std::string Base64Encode(std::string_view bytes);

/// Decodes base64; returns nullopt on any character outside the alphabet
/// or a malformed length. Padding is required.
std::optional<std::string> Base64Decode(std::string_view text);

/// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace rvss
