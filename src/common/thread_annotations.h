// Clang Thread Safety Analysis attribute macros.
//
// The concurrent subsystems (shard router/lanes, gateway, obs) carry
// their locking contracts as these annotations instead of comments, and
// the clang CI leg compiles with -Werror=thread-safety, so "caller must
// hold the fleet mutex" is machine-checked on every build. GCC has no
// equivalent analysis: the macros expand to nothing there, so the g++
// legs (including local tier-1) compile the same source unchanged.
//
// Conventions (docs/static_analysis.md has the full write-up):
//   * Guarded data:  member declarations get GUARDED_BY(mutex_).
//   * Contracts:     functions that expect a lock held get REQUIRES(mu);
//                    functions that take the lock internally get
//                    EXCLUDES(mu) so a holder cannot re-enter and
//                    self-deadlock.
//   * Split locking: a public Foo() EXCLUDES(mu_) wraps a private
//                    FooLocked() REQUIRES(mu_) when both call shapes are
//                    needed.
//   * Lock types:    use common/sync.h (Mutex/MutexLock/CondVar) — the
//                    libstdc++ std::mutex is invisible to the analysis.
#pragma once

#if defined(__clang__)
#define RVSS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define RVSS_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability ("mutex" by convention).
#define CAPABILITY(x) RVSS_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define SCOPED_CAPABILITY RVSS_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while the capability is held.
#define GUARDED_BY(x) RVSS_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded (the pointer itself is not).
#define PT_GUARDED_BY(x) RVSS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declared lock-acquisition order between capabilities (checked under
/// -Wthread-safety-beta; harmless documentation otherwise).
#define ACQUIRED_BEFORE(...) RVSS_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) RVSS_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// The caller must hold the capability when calling this function.
#define REQUIRES(...) \
  RVSS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  RVSS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define ACQUIRE(...) RVSS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  RVSS_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// The function releases a capability the caller held.
#define RELEASE(...) RVSS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  RVSS_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// The function tries to acquire; first argument is the success value.
#define TRY_ACQUIRE(...) \
  RVSS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the capability (the function takes it
/// itself; calling while holding would self-deadlock).
#define EXCLUDES(...) RVSS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) RVSS_THREAD_ANNOTATION_(lock_returned(x))

/// Runtime assertion that the capability is held (fact injected into the
/// analysis; use where the proof is dynamic, e.g. after a handoff).
#define ASSERT_CAPABILITY(x) RVSS_THREAD_ANNOTATION_(assert_capability(x))

/// Escape hatch: the function is exempt from analysis. Every use needs a
/// comment explaining why the analysis cannot see the invariant.
#define NO_THREAD_SAFETY_ANALYSIS \
  RVSS_THREAD_ANNOTATION_(no_thread_safety_analysis)
