#include "common/framing.h"

namespace rvss::net {
namespace {

void PutU32(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xff));
  out.push_back(static_cast<char>((value >> 8) & 0xff));
  out.push_back(static_cast<char>((value >> 16) & 0xff));
  out.push_back(static_cast<char>((value >> 24) & 0xff));
}

std::uint32_t GetU32(std::string_view bytes, std::size_t offset) {
  return static_cast<std::uint32_t>(
      static_cast<std::uint8_t>(bytes[offset]) |
      static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[offset + 1]))
          << 8 |
      static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[offset + 2]))
          << 16 |
      static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[offset + 3]))
          << 24);
}

}  // namespace

std::string EncodeFrameHeader(std::size_t jsonBytes, std::size_t blobBytes) {
  std::string header;
  header.reserve(kFrameHeaderBytes);
  PutU32(header, kFrameMagic);
  PutU32(header, kFrameVersion);
  PutU32(header, static_cast<std::uint32_t>(jsonBytes));
  PutU32(header, static_cast<std::uint32_t>(blobBytes));
  return header;
}

Result<FrameHeader> DecodeFrameHeader(std::string_view header,
                                      std::size_t maxFrameBytes) {
  if (header.size() != kFrameHeaderBytes) {
    return Error{ErrorKind::kInvalidArgument,
                 "frame header must be " + std::to_string(kFrameHeaderBytes) +
                     " bytes, got " + std::to_string(header.size())};
  }
  if (GetU32(header, 0) != kFrameMagic) {
    return Error{ErrorKind::kInvalidArgument,
                 "bad frame magic (peer is not speaking the rvss shard "
                 "protocol)"};
  }
  const std::uint32_t version = GetU32(header, 4);
  if (version != kFrameVersion) {
    return Error{ErrorKind::kUnsupported,
                 "unsupported frame version " + std::to_string(version) +
                     " (this build speaks version " +
                     std::to_string(kFrameVersion) + ")"};
  }
  FrameHeader parsed;
  parsed.jsonBytes = GetU32(header, 8);
  parsed.blobBytes = GetU32(header, 12);
  if (parsed.payloadBytes() > maxFrameBytes) {
    return Error{ErrorKind::kInvalidArgument,
                 "frame of " + std::to_string(parsed.payloadBytes()) +
                     " bytes exceeds the " + std::to_string(maxFrameBytes) +
                     "-byte frame cap"};
  }
  return parsed;
}

}  // namespace rvss::net
