// Minimal POSIX socket helpers for the cross-process shard transport.
//
// Addresses are strings so they travel through JSON commands and CLI
// flags unchanged:
//
//   unix:/path/to/worker.sock    Unix-domain stream socket
//   tcp:HOST:PORT                TCP — HOST is a hostname (resolved via
//                                getaddrinfo), an IPv4 literal, or a
//                                bracketed IPv6 literal (tcp:[::1]:80).
//                                An empty HOST listens on the wildcard
//                                address and connects to loopback.
//
// Every operation that can block takes a millisecond deadline and returns
// a Status/Result instead of hanging: sockets run non-blocking internally
// and each call polls with the remaining budget. A timeout, a peer close,
// and a refused connection are all ordinary errors the transport layer
// turns into fail-closed router responses — nothing here throws or aborts.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <string_view>

#include "common/status.h"

namespace rvss::net {

/// Waits forever (use for worker accept loops, never for router calls).
inline constexpr int kNoTimeout = -1;

/// A fixed millisecond budget shared across several blocking operations:
/// each one polls with RemainingMs(), so the total never exceeds the
/// budget no matter how the peer dribbles bytes. Negative = unbounded.
class Deadline {
 public:
  explicit Deadline(int timeoutMs)
      : unbounded_(timeoutMs < 0),
        end_(std::chrono::steady_clock::now() +
             std::chrono::milliseconds(timeoutMs < 0 ? 0 : timeoutMs)) {}

  /// Remaining budget in ms for poll(): -1 when unbounded, 0 once
  /// expired (operations then fail unless data is already pending).
  int RemainingMs() const {
    if (unbounded_) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        end_ - std::chrono::steady_clock::now());
    return left.count() <= 0 ? 0 : static_cast<int>(left.count());
  }

  bool Expired() const {
    return !unbounded_ && std::chrono::steady_clock::now() >= end_;
  }

 private:
  bool unbounded_;
  std::chrono::steady_clock::time_point end_;
};

/// RAII file-descriptor owner, move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

/// Binds and listens on `address`. A stale unix-socket file from a dead
/// process is unlinked first, so restarting a worker on the same address
/// works. TCP may bind port 0; read the real port with BoundPort.
Result<Socket> ListenOn(const std::string& address, int backlog = 8);

/// The locally bound port of a TCP listener (for tcp:...:0 binds).
/// Works for both IPv4 and IPv6 listeners; an error for unix sockets.
Result<int> BoundPort(const Socket& listener);

/// Accepts one connection, waiting up to `timeoutMs` (kNoTimeout blocks).
/// EINTR/EAGAIN are absorbed internally. On failure, `acceptErrno` (when
/// non-null) receives the errno of the failed accept(2) — 0 for a
/// timeout — so callers can tell transient exhaustion (ECONNABORTED,
/// EMFILE, ENFILE, ENOBUFS) apart from a dead listener (EBADF, EINVAL)
/// without parsing the error message.
Result<Socket> AcceptOn(Socket& listener, int timeoutMs,
                        int* acceptErrno = nullptr);

/// True when `acceptErrno` (from AcceptOn) names a transient condition —
/// the connection that failed is gone, but the listener is healthy and
/// the next accept may succeed: aborted handshakes (ECONNABORTED,
/// EPROTO) and resource exhaustion (EMFILE, ENFILE, ENOBUFS, ENOMEM).
/// False for listener-is-broken errors, where retrying would spin.
bool IsTransientAcceptError(int acceptErrno);

/// Connects to `address` within `timeoutMs`. Retries refused connections
/// until the deadline, covering the race where a freshly spawned worker
/// has not bound its socket yet.
Result<Socket> ConnectTo(const std::string& address, int timeoutMs);

/// Waits until `socket` has readable data (or EOF) within `timeoutMs`.
/// Returns false on timeout. Lets a server idle on a connection forever
/// while still bounding each message read once bytes start arriving.
Result<bool> WaitReadable(Socket& socket, int timeoutMs);

/// Writes all of `data` within `timeoutMs`.
Status SendAll(Socket& socket, std::string_view data, int timeoutMs);

/// Reads exactly `size` bytes within `timeoutMs`. EOF before `size` bytes
/// is an error ("peer closed the connection mid-frame").
Status RecvAll(Socket& socket, char* buffer, std::size_t size, int timeoutMs);

}  // namespace rvss::net
