#include "common/status.h"

namespace rvss {

const char* ToString(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kInvalidArgument: return "invalid_argument";
    case ErrorKind::kParse: return "parse";
    case ErrorKind::kSemantic: return "semantic";
    case ErrorKind::kConfig: return "config";
    case ErrorKind::kRuntime: return "runtime";
    case ErrorKind::kUnsupported: return "unsupported";
    case ErrorKind::kInternal: return "internal";
    case ErrorKind::kUnavailable: return "unavailable";
  }
  return "unknown";
}

std::string Error::ToText() const {
  std::string out = ToString(kind);
  out += ": ";
  out += message;
  if (pos.line != 0) {
    out += " (line " + std::to_string(pos.line);
    if (pos.column != 0) out += ", col " + std::to_string(pos.column);
    out += ")";
  }
  return out;
}

std::string Status::ToText() const {
  return ok() ? std::string("ok") : error().ToText();
}

}  // namespace rvss
