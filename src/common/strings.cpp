#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace rvss {

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> SplitWhitespace(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<std::int64_t> ParseInt(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return std::nullopt;
  bool negative = false;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    text.remove_prefix(1);
    if (text.empty()) return std::nullopt;
  }
  int base = 10;
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    base = 16;
    text.remove_prefix(2);
  } else if (text.size() > 2 && text[0] == '0' && (text[1] == 'b' || text[1] == 'B')) {
    base = 2;
    text.remove_prefix(2);
  } else if (text.size() > 1 && text[0] == '0') {
    base = 8;
  }
  std::uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return std::nullopt;
    if (digit >= base) return std::nullopt;
    value = value * static_cast<std::uint64_t>(base) + static_cast<std::uint64_t>(digit);
  }
  std::int64_t signedValue = static_cast<std::int64_t>(value);
  return negative ? -signedValue : signedValue;
}

std::optional<double> ParseDouble(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return std::nullopt;
  std::string buffer(text);
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) return std::nullopt;
  return value;
}

std::string FormatBytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  char buffer[64];
  if (unit == 0) {
    std::snprintf(buffer, sizeof buffer, "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buffer, sizeof buffer, "%.1f %s", value, kUnits[unit]);
  }
  return buffer;
}

std::string EscapeForDisplay(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default: out += c;
    }
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list argsCopy;
  va_copy(argsCopy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, argsCopy);
  }
  va_end(argsCopy);
  return out;
}

namespace {

constexpr char kBase64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Value of a base64 character, or -1 when outside the alphabet.
int Base64Value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

}  // namespace

std::string Base64Encode(std::string_view bytes) {
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= bytes.size(); i += 3) {
    const std::uint32_t group =
        (static_cast<std::uint8_t>(bytes[i]) << 16) |
        (static_cast<std::uint8_t>(bytes[i + 1]) << 8) |
        static_cast<std::uint8_t>(bytes[i + 2]);
    out += kBase64Alphabet[(group >> 18) & 63];
    out += kBase64Alphabet[(group >> 12) & 63];
    out += kBase64Alphabet[(group >> 6) & 63];
    out += kBase64Alphabet[group & 63];
  }
  const std::size_t rest = bytes.size() - i;
  if (rest == 1) {
    const std::uint32_t group = static_cast<std::uint8_t>(bytes[i]) << 16;
    out += kBase64Alphabet[(group >> 18) & 63];
    out += kBase64Alphabet[(group >> 12) & 63];
    out += "==";
  } else if (rest == 2) {
    const std::uint32_t group =
        (static_cast<std::uint8_t>(bytes[i]) << 16) |
        (static_cast<std::uint8_t>(bytes[i + 1]) << 8);
    out += kBase64Alphabet[(group >> 18) & 63];
    out += kBase64Alphabet[(group >> 12) & 63];
    out += kBase64Alphabet[(group >> 6) & 63];
    out += '=';
  }
  return out;
}

std::optional<std::string> Base64Decode(std::string_view text) {
  if (text.size() % 4 != 0) return std::nullopt;
  std::string out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    const bool lastGroup = i + 4 == text.size();
    int pad = 0;
    std::uint32_t group = 0;
    for (int j = 0; j < 4; ++j) {
      const char c = text[i + static_cast<std::size_t>(j)];
      if (c == '=') {
        // Padding is only legal in the last one or two positions of the
        // final group.
        if (!lastGroup || j < 2) return std::nullopt;
        ++pad;
        group <<= 6;
        continue;
      }
      if (pad > 0) return std::nullopt;  // data after padding
      const int value = Base64Value(c);
      if (value < 0) return std::nullopt;
      group = (group << 6) | static_cast<std::uint32_t>(value);
    }
    out += static_cast<char>((group >> 16) & 0xff);
    if (pad < 2) out += static_cast<char>((group >> 8) & 0xff);
    if (pad < 1) out += static_cast<char>(group & 0xff);
  }
  return out;
}

}  // namespace rvss
