// slz: a small LZSS-family compressor.
//
// Lives in common/ (not server/) so that lower layers — the snapshot
// codec compresses encoded session blobs — can use it too. Stand-in for
// the gzip content-encoding in the paper's deployment
// (DESIGN.md substitution table): the E3 experiment only needs a real
// general-purpose compressor with a realistic ratio on JSON state payloads
// (3-6x) and a realistic CPU cost, both of which byte-pair LZSS delivers.
//
// Format: a 4-byte little-endian uncompressed size, then groups of eight
// items preceded by a flag byte (bit set = match). Matches encode a
// 13-bit offset and 3-bit length (4..11) in two bytes; literals are raw.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rvss {

/// Compresses `input`. Never fails; incompressible data grows by ~1/8.
std::string SlzCompress(std::string_view input);

/// Decompresses; returns nullopt on malformed input. `consumedBytes`
/// (optional) receives how much of `input` the stream actually used, so
/// callers embedding slz in a larger format can reject trailing garbage.
std::optional<std::string> SlzDecompress(std::string_view input,
                                         std::size_t* consumedBytes = nullptr);

}  // namespace rvss
