// Annotated synchronization primitives: Mutex, MutexLock, CondVar.
//
// libstdc++'s std::mutex / std::lock_guard carry no thread-safety
// attributes, so Clang's analysis (common/thread_annotations.h) cannot
// track them — GUARDED_BY(someStdMutex) would warn on every access, held
// or not. These thin wrappers are the annotated equivalents the
// concurrent subsystems use instead; they add no state and no overhead
// beyond the underlying primitive.
//
// CondVar wraps std::condition_variable_any, which can wait on any
// BasicLockable — so Wait() takes the Mutex itself (no unique_lock
// needed) and can be annotated REQUIRES(mu): the analysis then enforces
// that every wait happens with the mutex held, and the classic
//
//     MutexLock lock(mutex_);
//     while (!condition) cv_.Wait(mutex_);
//
// loop type-checks as written. Predicate-lambda waits do not survive the
// analysis (the lambda body cannot carry the REQUIRES fact), which is
// why the codebase spells waits as explicit while loops.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace rvss {

/// std::mutex with capability annotations. Lowercase lock/unlock keep it
/// BasicLockable so std::condition_variable_any can wait on it directly.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped holder (the annotated std::lock_guard). Constructor acquires,
/// destructor releases; the analysis tracks the capability for the
/// enclosing scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable waiting on a Mutex. Wait() atomically releases the
/// mutex and re-acquires it before returning, like std::condition_variable
/// — the REQUIRES contract is therefore preserved across the call, which
/// is exactly how the analysis models it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace rvss
