// Deterministic pseudo-random number generator.
//
// Everything stochastic in the simulator (Random cache replacement, random
// memory fills, the fuzzing program generator, the load-test arrival jitter)
// draws from this generator so that a (program, config, seed) triple fully
// determines a simulation — a hard requirement for the paper's backward
// simulation, which re-executes the first t-1 cycles and must land in the
// exact same state.
#pragma once

#include <array>
#include <cstdint>

namespace rvss {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state, and —
/// unlike std::mt19937 — bit-identical across standard library versions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds via SplitMix64 so that small seeds still produce good streams.
  void Seed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t Next();

  /// Uniform value in [0, bound); bound == 0 returns 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Raw generator position, for exact serialization (snapshot codec).
  std::array<std::uint64_t, 4> SaveState() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void RestoreState(const std::array<std::uint64_t, 4>& state) {
    for (int i = 0; i < 4; ++i) state_[i] = state[i];
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace rvss
