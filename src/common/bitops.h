// Bit manipulation helpers used by the ISA decoder, cache indexing and the
// expression interpreter. Header-only; everything is constexpr.
#pragma once

#include <bit>
#include <cstdint>

namespace rvss {

/// Sign-extends the low `bits` bits of `value` to 64 bits.
constexpr std::int64_t SignExtend(std::uint64_t value, unsigned bits) {
  if (bits == 0 || bits >= 64) return static_cast<std::int64_t>(value);
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  const std::uint64_t sign = std::uint64_t{1} << (bits - 1);
  value &= mask;
  return static_cast<std::int64_t>((value ^ sign) - sign);
}

/// Extracts bits [lo, lo+width) of `value`.
constexpr std::uint64_t ExtractBits(std::uint64_t value, unsigned lo,
                                    unsigned width) {
  if (width >= 64) return value >> lo;
  return (value >> lo) & ((std::uint64_t{1} << width) - 1);
}

/// True if `value` is a power of two (0 is not).
constexpr bool IsPowerOfTwo(std::uint64_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

/// log2 of a power of two.
constexpr unsigned Log2(std::uint64_t value) {
  return static_cast<unsigned>(std::bit_width(value) - 1);
}

/// Rounds `value` up to the next multiple of `alignment` (a power of two).
constexpr std::uint64_t AlignUp(std::uint64_t value, std::uint64_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

/// Reinterprets float bits <-> integer bits without UB.
constexpr std::uint32_t FloatToBits(float f) { return std::bit_cast<std::uint32_t>(f); }
constexpr float BitsToFloat(std::uint32_t b) { return std::bit_cast<float>(b); }
constexpr std::uint64_t DoubleToBits(double d) { return std::bit_cast<std::uint64_t>(d); }
constexpr double BitsToDouble(std::uint64_t b) { return std::bit_cast<double>(b); }

/// NaN-boxes a 32-bit float payload into a 64-bit FP register value, as
/// required by the RISC-V F-on-D register file model.
constexpr std::uint64_t NanBoxFloat(std::uint32_t bits) {
  return 0xffffffff00000000ULL | bits;
}

/// Recovers a float payload from a 64-bit FP register; a value that is not
/// properly NaN-boxed reads as the canonical quiet NaN, per the RISC-V spec.
constexpr std::uint32_t UnboxFloat(std::uint64_t reg) {
  if ((reg >> 32) == 0xffffffffULL) return static_cast<std::uint32_t>(reg);
  return 0x7fc00000u;  // canonical qNaN
}

}  // namespace rvss
