// Lightweight status / expected-value error handling used across rvss.
//
// The simulator is a library first: nothing in src/ throws across module
// boundaries. Fallible operations return Status (void results) or
// Result<T> (value results). Both carry a human-readable message plus an
// optional source location (line/column) so assembler and compiler
// diagnostics can point at user code.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace rvss {

/// Position inside a user-supplied text (assembly or C source).
/// Lines and columns are 1-based; 0 means "unknown".
struct SourcePos {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  friend bool operator==(const SourcePos&, const SourcePos&) = default;
};

/// Broad classification of an error, mirrored in JSON API responses.
enum class ErrorKind : std::uint8_t {
  kInvalidArgument,  ///< caller passed something malformed
  kParse,            ///< syntax error in asm / C / JSON input
  kSemantic,         ///< well-formed but meaningless (type error, bad label)
  kConfig,           ///< architecture configuration rejected by validation
  kRuntime,          ///< simulation-time fault (bad memory access, div fault)
  kUnsupported,      ///< feature intentionally outside the supported subset
  kInternal,         ///< invariant violation inside the simulator itself
  kUnavailable,      ///< transient capacity/transport failure — retryable:
                     ///< the same request may succeed later or elsewhere
};

/// Returns a stable lower-case identifier for the kind ("parse", ...).
const char* ToString(ErrorKind kind);

/// Error value: kind + message + optional source position.
struct Error {
  ErrorKind kind = ErrorKind::kInternal;
  std::string message;
  SourcePos pos;

  Error() = default;
  Error(ErrorKind k, std::string msg, SourcePos p = {})
      : kind(k), message(std::move(msg)), pos(p) {}

  /// Formats "kind: message (line L, col C)" for logs and CLI output.
  std::string ToText() const;
};

/// Status of a void operation. Default-constructed status is OK.
class [[nodiscard]] Status {
 public:
  Status() = default;
  /*implicit*/ Status(Error error) : error_(std::move(error)) {}

  static Status Ok() { return Status(); }
  static Status Fail(ErrorKind kind, std::string message, SourcePos pos = {}) {
    return Status(Error{kind, std::move(message), pos});
  }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Requires !ok().
  const Error& error() const { return *error_; }

  /// "ok" or the error text.
  std::string ToText() const;

 private:
  std::optional<Error> error_;
};

/// Expected-style result: either a value or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /*implicit*/ Result(T value) : data_(std::move(value)) {}
  /*implicit*/ Result(Error error) : data_(std::move(error)) {}

  static Result Fail(ErrorKind kind, std::string message, SourcePos pos = {}) {
    return Result(Error{kind, std::move(message), pos});
  }

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  /// Requires ok().
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  /// Requires !ok().
  const Error& error() const { return std::get<Error>(data_); }

  /// Drops the value, keeping only success/failure.
  Status status() const {
    return ok() ? Status::Ok() : Status(std::get<Error>(data_));
  }

 private:
  std::variant<T, Error> data_;
};

/// Propagate-on-error helper: `RVSS_RETURN_IF_ERROR(DoThing());`
#define RVSS_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::rvss::Status rvss_status_ = (expr);           \
    if (!rvss_status_.ok()) return rvss_status_.error(); \
  } while (false)

/// `RVSS_ASSIGN_OR_RETURN(auto v, MakeThing());`
#define RVSS_ASSIGN_OR_RETURN(decl, expr)       \
  decl = ({                                     \
    auto rvss_result_ = (expr);                 \
    if (!rvss_result_.ok()) return rvss_result_.error(); \
    std::move(rvss_result_).value();            \
  })

}  // namespace rvss
