// Cycle-stamped debug log, mirroring the paper's right-hand panel log: each
// message is tagged with the simulation cycle in which it was generated so a
// GUI (or our pipeline_viewer example) can navigate to that cycle.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rvss {

enum class LogLevel : std::uint8_t { kDebug, kInfo, kWarning, kError };

const char* ToString(LogLevel level);

/// One emitted message.
struct LogEntry {
  std::uint64_t cycle = 0;
  LogLevel level = LogLevel::kInfo;
  std::string block;  ///< originating block name, e.g. "Fetch"
  std::string text;
};

/// Bounded in-memory log. Deterministic: no timestamps, only cycles.
class SimLog {
 public:
  explicit SimLog(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// Appends a message; evicts the oldest entry beyond capacity.
  void Add(std::uint64_t cycle, LogLevel level, std::string block,
           std::string text);

  /// Minimum level stored; lower-level messages are dropped at the source.
  void SetMinLevel(LogLevel level) { minLevel_ = level; }
  LogLevel minLevel() const { return minLevel_; }

  const std::vector<LogEntry>& entries() const { return entries_; }
  void Clear() { entries_.clear(); }

  /// Copyable snapshot of the stored entries. The capacity and minimum
  /// level are settings, not simulation state, and are left untouched by
  /// RestoreState.
  struct State {
    std::vector<LogEntry> entries;
  };
  State SaveState() const { return State{entries_}; }
  void RestoreState(const State& state) { entries_ = state.entries; }

  /// Renders "cycle [level] block: text" lines.
  std::string ToText() const;

 private:
  std::size_t capacity_;
  LogLevel minLevel_ = LogLevel::kInfo;
  std::vector<LogEntry> entries_;
};

}  // namespace rvss
