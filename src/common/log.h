// Cycle-stamped debug log, mirroring the paper's right-hand panel log: each
// message is tagged with the simulation cycle in which it was generated so a
// GUI (or our pipeline_viewer example) can navigate to that cycle.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

namespace rvss {

enum class LogLevel : std::uint8_t { kDebug, kInfo, kWarning, kError };

const char* ToString(LogLevel level);

/// One emitted message.
struct LogEntry {
  std::uint64_t cycle = 0;
  LogLevel level = LogLevel::kInfo;
  std::string block;  ///< originating block name, e.g. "Fetch"
  std::string text;
};

/// Bounded in-memory log. Deterministic: no timestamps, only cycles.
///
/// The bound is two-dimensional: an entry-count capacity and a byte budget.
/// The byte budget is what keeps snapshot blobs small — on chatty runs the
/// log otherwise dominates the non-memory bytes of an encoded snapshot
/// (free-form text entries grow without limit while every other subsystem
/// is fixed-size). Oldest entries are evicted first; the newest entry is
/// always kept even if it alone exceeds the budget.
class SimLog {
 public:
  static constexpr std::size_t kDefaultMaxBytes = 256 * 1024;

  explicit SimLog(std::size_t capacity = 4096,
                  std::size_t maxBytes = kDefaultMaxBytes)
      : capacity_(capacity), maxBytes_(maxBytes) {}

  /// Appends a message; evicts the oldest entries beyond the entry
  /// capacity or the byte budget.
  void Add(std::uint64_t cycle, LogLevel level, std::string block,
           std::string text);

  /// Minimum level stored; lower-level messages are dropped at the source.
  void SetMinLevel(LogLevel level) { minLevel_ = level; }
  LogLevel minLevel() const { return minLevel_; }

  /// Byte budget for the stored entries (0 = unlimited). A setting, not
  /// simulation state: snapshots do not carry it.
  void SetByteBudget(std::size_t maxBytes);
  std::size_t byteBudget() const { return maxBytes_; }

  /// Approximate heap footprint of the stored entries — the quantity the
  /// byte budget bounds and checkpoint accounting charges.
  std::size_t approxBytes() const { return bytes_; }

  /// Cost one entry contributes to approxBytes().
  static std::size_t EntryBytes(const LogEntry& entry) {
    return sizeof(LogEntry) + entry.block.size() + entry.text.size();
  }

  const std::deque<LogEntry>& entries() const { return entries_; }
  void Clear() {
    entries_.clear();
    bytes_ = 0;
  }

  /// Copyable snapshot of the stored entries. The capacity, byte budget
  /// and minimum level are settings, not simulation state, and are left
  /// untouched by RestoreState.
  struct State {
    std::deque<LogEntry> entries;
  };
  State SaveState() const { return State{entries_}; }
  void RestoreState(const State& state);

  /// Renders "cycle [level] block: text" lines.
  std::string ToText() const;

 private:
  /// Drops oldest entries until both bounds hold (keeping >= 1 entry).
  void EvictToBounds();

  std::size_t capacity_;  // snapshot: derived
  std::size_t maxBytes_;  // snapshot: derived
  std::size_t bytes_ = 0;
  LogLevel minLevel_ = LogLevel::kInfo;  // snapshot: derived
  std::deque<LogEntry> entries_;
};

}  // namespace rvss
