#include "common/log.h"

namespace rvss {

const char* ToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarning: return "warning";
    case LogLevel::kError: return "error";
  }
  return "unknown";
}

void SimLog::Add(std::uint64_t cycle, LogLevel level, std::string block,
                 std::string text) {
  if (static_cast<int>(level) < static_cast<int>(minLevel_)) return;
  entries_.push_back(LogEntry{cycle, level, std::move(block), std::move(text)});
  bytes_ += EntryBytes(entries_.back());
  EvictToBounds();
}

void SimLog::SetByteBudget(std::size_t maxBytes) {
  maxBytes_ = maxBytes;
  EvictToBounds();
}

void SimLog::EvictToBounds() {
  while (entries_.size() > 1 &&
         ((capacity_ > 0 && entries_.size() > capacity_) ||
          (maxBytes_ > 0 && bytes_ > maxBytes_))) {
    bytes_ -= EntryBytes(entries_.front());
    entries_.pop_front();
  }
}

void SimLog::RestoreState(const State& state) {
  entries_ = state.entries;
  bytes_ = 0;
  for (const LogEntry& entry : entries_) bytes_ += EntryBytes(entry);
}

std::string SimLog::ToText() const {
  std::string out;
  for (const LogEntry& entry : entries_) {
    out += std::to_string(entry.cycle);
    out += " [";
    out += ToString(entry.level);
    out += "] ";
    out += entry.block;
    out += ": ";
    out += entry.text;
    out += '\n';
  }
  return out;
}

}  // namespace rvss
