#include "common/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/strings.h"

namespace rvss::net {
namespace {

Error SysError(const std::string& what) {
  return Error{ErrorKind::kInternal, what + ": " + std::strerror(errno)};
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return SysError("fcntl(O_NONBLOCK)");
  }
  return Status::Ok();
}

/// Waits for `events` on `fd` within the deadline. Returns false on
/// timeout, an error on poll failure.
Result<bool> WaitFor(int fd, short events, const Deadline& deadline) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  while (true) {
    const int ready = ::poll(&pfd, 1, deadline.RemainingMs());
    if (ready > 0) return true;
    if (ready == 0) return false;  // timeout
    if (errno == EINTR) continue;
    return SysError("poll");
  }
}

struct ParsedAddress {
  bool isUnix = false;
  std::string path;  ///< unix socket path
  std::string host;  ///< tcp literal address
  int port = 0;
};

Result<ParsedAddress> ParseAddress(const std::string& address) {
  ParsedAddress parsed;
  if (address.rfind("unix:", 0) == 0) {
    parsed.isUnix = true;
    parsed.path = address.substr(5);
    if (parsed.path.empty()) {
      return Error{ErrorKind::kInvalidArgument,
                   "unix socket address needs a path: " + address};
    }
    if (parsed.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return Error{ErrorKind::kInvalidArgument,
                   "unix socket path too long: " + parsed.path};
    }
    return parsed;
  }
  if (address.rfind("tcp:", 0) == 0) {
    const std::string rest = address.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      return Error{ErrorKind::kInvalidArgument,
                   "tcp address must be tcp:HOST:PORT, got " + address};
    }
    parsed.host = rest.substr(0, colon);
    const auto port = ParseInt(rest.substr(colon + 1));
    if (!port.has_value() || *port < 0 || *port > 65535) {
      return Error{ErrorKind::kInvalidArgument,
                   "bad tcp port in " + address};
    }
    parsed.port = static_cast<int>(*port);
    return parsed;
  }
  return Error{ErrorKind::kInvalidArgument,
               "address must start with unix: or tcp:, got '" + address +
                   "'"};
}

/// Fills a sockaddr for `parsed`; returns its size.
Result<socklen_t> FillSockaddr(const ParsedAddress& parsed,
                               sockaddr_storage& storage) {
  std::memset(&storage, 0, sizeof(storage));
  if (parsed.isUnix) {
    auto* addr = reinterpret_cast<sockaddr_un*>(&storage);
    addr->sun_family = AF_UNIX;
    std::memcpy(addr->sun_path, parsed.path.c_str(), parsed.path.size() + 1);
    return static_cast<socklen_t>(sizeof(sockaddr_un));
  }
  auto* addr = reinterpret_cast<sockaddr_in*>(&storage);
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<std::uint16_t>(parsed.port));
  if (::inet_pton(AF_INET, parsed.host.c_str(), &addr->sin_addr) != 1) {
    return Error{ErrorKind::kInvalidArgument,
                 "tcp host must be a literal IPv4 address, got '" +
                     parsed.host + "'"};
  }
  return static_cast<socklen_t>(sizeof(sockaddr_in));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> ListenOn(const std::string& address, int backlog) {
  RVSS_ASSIGN_OR_RETURN(const ParsedAddress parsed, ParseAddress(address));
  if (parsed.isUnix) {
    // Only a *stale* socket file (dead owner -> connect refused) may be
    // unlinked; silently hijacking a live worker's endpoint would strand
    // every session placed on it with no error at bind time.
    sockaddr_storage probeAddr;
    auto probeLength = FillSockaddr(parsed, probeAddr);
    Socket probe(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (probeLength.ok() && probe.valid() &&
        ::connect(probe.fd(), reinterpret_cast<sockaddr*>(&probeAddr),
                  probeLength.value()) == 0) {
      return Error{ErrorKind::kInvalidArgument,
                   address + " is already served by a live process"};
    }
    ::unlink(parsed.path.c_str());
  }

  Socket socket(::socket(parsed.isUnix ? AF_UNIX : AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) return SysError("socket");
  if (!parsed.isUnix) {
    const int enable = 1;
    ::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &enable,
                 sizeof(enable));
  }
  sockaddr_storage storage;
  RVSS_ASSIGN_OR_RETURN(const socklen_t length,
                        FillSockaddr(parsed, storage));
  if (::bind(socket.fd(), reinterpret_cast<sockaddr*>(&storage), length) <
      0) {
    return SysError("bind " + address);
  }
  if (::listen(socket.fd(), backlog) < 0) {
    return SysError("listen " + address);
  }
  RVSS_RETURN_IF_ERROR(SetNonBlocking(socket.fd()));
  return socket;
}

Result<int> BoundPort(const Socket& listener) {
  sockaddr_in addr;
  socklen_t length = sizeof(addr);
  if (::getsockname(listener.fd(), reinterpret_cast<sockaddr*>(&addr),
                    &length) < 0) {
    return SysError("getsockname");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

Result<Socket> AcceptOn(Socket& listener, int timeoutMs) {
  const Deadline deadline(timeoutMs);
  while (true) {
    RVSS_ASSIGN_OR_RETURN(const bool ready,
                          WaitFor(listener.fd(), POLLIN, deadline));
    if (!ready) {
      return Error{ErrorKind::kInternal, "accept timed out"};
    }
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket accepted(fd);
      RVSS_RETURN_IF_ERROR(SetNonBlocking(accepted.fd()));
      return accepted;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return SysError("accept");
  }
}

Result<Socket> ConnectTo(const std::string& address, int timeoutMs) {
  RVSS_ASSIGN_OR_RETURN(const ParsedAddress parsed, ParseAddress(address));
  sockaddr_storage storage;
  RVSS_ASSIGN_OR_RETURN(const socklen_t length,
                        FillSockaddr(parsed, storage));
  const Deadline deadline(timeoutMs);

  // A freshly forked worker may not have bound its socket yet, so a
  // refused/missing endpoint is retried until the deadline instead of
  // failing the first Call of every spawn.
  while (true) {
    Socket socket(::socket(parsed.isUnix ? AF_UNIX : AF_INET, SOCK_STREAM, 0));
    if (!socket.valid()) return SysError("socket");
    RVSS_RETURN_IF_ERROR(SetNonBlocking(socket.fd()));

    if (::connect(socket.fd(), reinterpret_cast<sockaddr*>(&storage),
                  length) == 0) {
      return socket;
    }
    if (errno == EINPROGRESS) {
      RVSS_ASSIGN_OR_RETURN(const bool ready,
                            WaitFor(socket.fd(), POLLOUT, deadline));
      if (ready) {
        int error = 0;
        socklen_t errorLength = sizeof(error);
        if (::getsockopt(socket.fd(), SOL_SOCKET, SO_ERROR, &error,
                         &errorLength) == 0 &&
            error == 0) {
          return socket;
        }
        errno = error;
      } else {
        errno = ETIMEDOUT;
      }
    }
    const bool retryable =
        errno == ECONNREFUSED || errno == ENOENT || errno == ETIMEDOUT;
    if (!retryable || deadline.Expired()) {
      return SysError("connect " + address);
    }
    socket.Close();
    struct timespec pause = {0, 10'000'000};  // 10ms between attempts
    ::nanosleep(&pause, nullptr);
  }
}

Result<bool> WaitReadable(Socket& socket, int timeoutMs) {
  return WaitFor(socket.fd(), POLLIN, Deadline(timeoutMs));
}

Status SendAll(Socket& socket, std::string_view data, int timeoutMs) {
  const Deadline deadline(timeoutMs);
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a worker dying mid-write must surface as EPIPE, not
    // kill the router process with SIGPIPE.
    const ssize_t wrote = ::send(socket.fd(), data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
    if (wrote > 0) {
      sent += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      RVSS_ASSIGN_OR_RETURN(const bool ready,
                            WaitFor(socket.fd(), POLLOUT, deadline));
      if (!ready) {
        return Status::Fail(ErrorKind::kInternal, "send timed out");
      }
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;
    return SysError("send");
  }
  return Status::Ok();
}

Status RecvAll(Socket& socket, char* buffer, std::size_t size,
               int timeoutMs) {
  const Deadline deadline(timeoutMs);
  std::size_t received = 0;
  while (received < size) {
    const ssize_t got =
        ::recv(socket.fd(), buffer + received, size - received, 0);
    if (got > 0) {
      received += static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) {
      return Status::Fail(ErrorKind::kInternal,
                          "peer closed the connection mid-frame (" +
                              std::to_string(received) + " of " +
                              std::to_string(size) + " bytes)");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      RVSS_ASSIGN_OR_RETURN(const bool ready,
                            WaitFor(socket.fd(), POLLIN, deadline));
      if (!ready) {
        return Status::Fail(ErrorKind::kInternal, "recv timed out");
      }
      continue;
    }
    if (errno == EINTR) continue;
    return SysError("recv");
  }
  return Status::Ok();
}

}  // namespace rvss::net
