#include "common/socket.h"

#include <arpa/inet.h>
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <vector>

#include "common/strings.h"

namespace rvss::net {
namespace {

Error SysError(const std::string& what) {
  return Error{ErrorKind::kInternal, what + ": " + std::strerror(errno)};
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return SysError("fcntl(O_NONBLOCK)");
  }
  return Status::Ok();
}

/// Waits for `events` on `fd` within the deadline. Returns false on
/// timeout, an error on poll failure.
Result<bool> WaitFor(int fd, short events, const Deadline& deadline) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  while (true) {
    const int ready = ::poll(&pfd, 1, deadline.RemainingMs());
    if (ready > 0) return true;
    if (ready == 0) return false;  // timeout
    if (errno == EINTR) continue;
    return SysError("poll");
  }
}

struct ParsedAddress {
  bool isUnix = false;
  std::string path;  ///< unix socket path
  std::string host;  ///< tcp hostname, IPv4 literal or [IPv6] literal
  std::string port;  ///< tcp port, validated decimal
};

Result<ParsedAddress> ParseAddress(const std::string& address) {
  ParsedAddress parsed;
  if (address.rfind("unix:", 0) == 0) {
    parsed.isUnix = true;
    parsed.path = address.substr(5);
    if (parsed.path.empty()) {
      return Error{ErrorKind::kInvalidArgument,
                   "unix socket address needs a path: " + address};
    }
    if (parsed.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return Error{ErrorKind::kInvalidArgument,
                   "unix socket path too long: " + parsed.path};
    }
    return parsed;
  }
  if (address.rfind("tcp:", 0) == 0) {
    const std::string rest = address.substr(4);
    std::string host;
    std::string portText;
    if (!rest.empty() && rest.front() == '[') {
      // Bracketed IPv6 literal: tcp:[::1]:8080. The brackets make the
      // host:port split unambiguous — bare IPv6 literals are rejected
      // below because every colon would be a plausible separator.
      const std::size_t closing = rest.find(']');
      if (closing == std::string::npos || closing + 1 >= rest.size() ||
          rest[closing + 1] != ':') {
        return Error{ErrorKind::kInvalidArgument,
                     "bracketed tcp address must be tcp:[HOST]:PORT, got " +
                         address};
      }
      host = rest.substr(1, closing - 1);
      portText = rest.substr(closing + 2);
    } else {
      const std::size_t colon = rest.rfind(':');
      if (colon == std::string::npos) {
        return Error{ErrorKind::kInvalidArgument,
                     "tcp address must be tcp:HOST:PORT, got " + address};
      }
      host = rest.substr(0, colon);
      portText = rest.substr(colon + 1);
      if (host.find(':') != std::string::npos) {
        return Error{ErrorKind::kInvalidArgument,
                     "IPv6 literals need brackets: tcp:[" + host + "]:" +
                         portText};
      }
    }
    const auto port = ParseInt(portText);
    if (!port.has_value() || *port < 0 || *port > 65535) {
      return Error{ErrorKind::kInvalidArgument,
                   "bad tcp port in " + address};
    }
    parsed.host = std::move(host);
    parsed.port = std::to_string(*port);
    return parsed;
  }
  return Error{ErrorKind::kInvalidArgument,
               "address must start with unix: or tcp:, got '" + address +
                   "'"};
}

/// One concrete endpoint a parsed address resolved to.
struct ResolvedAddress {
  int family = AF_UNSPEC;
  sockaddr_storage storage = {};
  socklen_t length = 0;
};

/// Resolves `parsed` to one or more endpoints. Unix paths resolve to
/// themselves; tcp hosts go through getaddrinfo, so hostnames and IPv6
/// literals work, and a dual-stack name yields every candidate in the
/// resolver's preference order. `forListen` requests passive (wildcard)
/// resolution of an empty host; an empty host on the connect side means
/// loopback. Note getaddrinfo may block on DNS — callers' deadlines
/// cover the socket operations that follow, not the lookup.
Result<std::vector<ResolvedAddress>> ResolveAddress(
    const ParsedAddress& parsed, bool forListen) {
  std::vector<ResolvedAddress> resolved;
  if (parsed.isUnix) {
    ResolvedAddress entry;
    entry.family = AF_UNIX;
    auto* addr = reinterpret_cast<sockaddr_un*>(&entry.storage);
    addr->sun_family = AF_UNIX;
    std::memcpy(addr->sun_path, parsed.path.c_str(), parsed.path.size() + 1);
    entry.length = static_cast<socklen_t>(sizeof(sockaddr_un));
    resolved.push_back(entry);
    return resolved;
  }
  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV | (forListen ? AI_PASSIVE : 0);
  struct addrinfo* results = nullptr;
  const int status =
      ::getaddrinfo(parsed.host.empty() ? nullptr : parsed.host.c_str(),
                    parsed.port.c_str(), &hints, &results);
  if (status != 0) {
    return Error{ErrorKind::kInvalidArgument,
                 "cannot resolve tcp host '" + parsed.host +
                     "': " + ::gai_strerror(status)};
  }
  for (const addrinfo* info = results; info != nullptr;
       info = info->ai_next) {
    if (info->ai_addrlen > sizeof(sockaddr_storage)) continue;
    ResolvedAddress entry;
    entry.family = info->ai_family;
    std::memcpy(&entry.storage, info->ai_addr, info->ai_addrlen);
    entry.length = static_cast<socklen_t>(info->ai_addrlen);
    resolved.push_back(entry);
  }
  ::freeaddrinfo(results);
  if (resolved.empty()) {
    return Error{ErrorKind::kInvalidArgument,
                 "tcp host '" + parsed.host + "' resolved to no addresses"};
  }
  return resolved;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> ListenOn(const std::string& address, int backlog) {
  RVSS_ASSIGN_OR_RETURN(const ParsedAddress parsed, ParseAddress(address));
  RVSS_ASSIGN_OR_RETURN(const std::vector<ResolvedAddress> candidates,
                        ResolveAddress(parsed, /*forListen=*/true));
  if (parsed.isUnix) {
    // Only a *stale* socket file (dead owner -> connect refused) may be
    // unlinked; silently hijacking a live worker's endpoint would strand
    // every session placed on it with no error at bind time.
    Socket probe(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (probe.valid() &&
        ::connect(probe.fd(),
                  reinterpret_cast<const sockaddr*>(&candidates[0].storage),
                  candidates[0].length) == 0) {
      return Error{ErrorKind::kInvalidArgument,
                   address + " is already served by a live process"};
    }
    ::unlink(parsed.path.c_str());
  }

  // Try each resolved endpoint in resolver order (a dual-stack hostname
  // yields both families); the first one that binds and listens wins.
  Error lastError{ErrorKind::kInternal, "no endpoint to bind"};
  for (const ResolvedAddress& candidate : candidates) {
    Socket socket(::socket(candidate.family, SOCK_STREAM, 0));
    if (!socket.valid()) {
      lastError = SysError("socket");
      continue;
    }
    if (!parsed.isUnix) {
      const int enable = 1;
      ::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &enable,
                   sizeof(enable));
    }
    if (::bind(socket.fd(),
               reinterpret_cast<const sockaddr*>(&candidate.storage),
               candidate.length) < 0) {
      lastError = SysError("bind " + address);
      continue;
    }
    if (::listen(socket.fd(), backlog) < 0) {
      lastError = SysError("listen " + address);
      continue;
    }
    RVSS_RETURN_IF_ERROR(SetNonBlocking(socket.fd()));
    return socket;
  }
  return lastError;
}

Result<int> BoundPort(const Socket& listener) {
  // The listener may be AF_INET or AF_INET6: read into a storage big
  // enough for either and pull the port out of the right member (the
  // old sockaddr_in-only read returned garbage — flowinfo bytes — for
  // an IPv6 listener).
  sockaddr_storage storage = {};
  socklen_t length = sizeof(storage);
  if (::getsockname(listener.fd(), reinterpret_cast<sockaddr*>(&storage),
                    &length) < 0) {
    return SysError("getsockname");
  }
  switch (storage.ss_family) {
    case AF_INET:
      return static_cast<int>(
          ntohs(reinterpret_cast<const sockaddr_in*>(&storage)->sin_port));
    case AF_INET6:
      return static_cast<int>(
          ntohs(reinterpret_cast<const sockaddr_in6*>(&storage)->sin6_port));
    default:
      return Error{ErrorKind::kInvalidArgument,
                   "listener is not a TCP socket (family " +
                       std::to_string(storage.ss_family) + ")"};
  }
}

Result<Socket> AcceptOn(Socket& listener, int timeoutMs, int* acceptErrno) {
  if (acceptErrno != nullptr) *acceptErrno = 0;
  const Deadline deadline(timeoutMs);
  while (true) {
    RVSS_ASSIGN_OR_RETURN(const bool ready,
                          WaitFor(listener.fd(), POLLIN, deadline));
    if (!ready) {
      return Error{ErrorKind::kInternal, "accept timed out"};
    }
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket accepted(fd);
      RVSS_RETURN_IF_ERROR(SetNonBlocking(accepted.fd()));
      return accepted;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    // Everything else is reported, with errno preserved for the caller:
    // strerror text alone cannot be classified portably, and accept
    // loops must treat EMFILE very differently from EBADF.
    if (acceptErrno != nullptr) *acceptErrno = errno;
    return SysError("accept");
  }
}

bool IsTransientAcceptError(int acceptErrno) {
  switch (acceptErrno) {
    case ECONNABORTED:  // peer gave up during the handshake
    case EPROTO:        // protocol error on the aborted connection
    case EMFILE:        // this process is out of descriptors
    case ENFILE:        // the system is out of descriptors
    case ENOBUFS:
    case ENOMEM:
      return true;
    default:
      return false;
  }
}

namespace {

/// One non-blocking connect attempt to a single endpoint, bounded by the
/// shared deadline. On failure errno describes the reason.
Result<Socket> TryConnect(const ResolvedAddress& endpoint,
                          const Deadline& deadline) {
  Socket socket(::socket(endpoint.family, SOCK_STREAM, 0));
  if (!socket.valid()) return SysError("socket");
  RVSS_RETURN_IF_ERROR(SetNonBlocking(socket.fd()));

  if (::connect(socket.fd(),
                reinterpret_cast<const sockaddr*>(&endpoint.storage),
                endpoint.length) == 0) {
    return socket;
  }
  if (errno == EINPROGRESS) {
    RVSS_ASSIGN_OR_RETURN(const bool ready,
                          WaitFor(socket.fd(), POLLOUT, deadline));
    if (ready) {
      int error = 0;
      socklen_t errorLength = sizeof(error);
      if (::getsockopt(socket.fd(), SOL_SOCKET, SO_ERROR, &error,
                       &errorLength) == 0 &&
          error == 0) {
        return socket;
      }
      errno = error;
    } else {
      errno = ETIMEDOUT;
    }
  }
  const int connectErrno = errno;
  Error failure = SysError("connect");
  errno = connectErrno;  // callers classify retryability by errno
  return failure;
}

}  // namespace

Result<Socket> ConnectTo(const std::string& address, int timeoutMs) {
  RVSS_ASSIGN_OR_RETURN(const ParsedAddress parsed, ParseAddress(address));
  // Resolve once, outside the retry loop: the spawn race this loop
  // absorbs is about the peer binding late, not about DNS flapping.
  RVSS_ASSIGN_OR_RETURN(const std::vector<ResolvedAddress> candidates,
                        ResolveAddress(parsed, /*forListen=*/false));
  const Deadline deadline(timeoutMs);

  // A freshly forked worker may not have bound its socket yet, so a
  // refused/missing endpoint is retried until the deadline instead of
  // failing the first Call of every spawn. Each round tries every
  // resolved endpoint (v6 and v4 of a dual-stack name) before pausing:
  // a candidate failing hard (say, EAFNOSUPPORT for ::1 in an
  // IPv6-less container) must not stop the v4 candidate behind it from
  // being tried — the whole connect fails only when no candidate is
  // worth retrying.
  while (true) {
    int lastErrno = ECONNREFUSED;
    bool anyRetryable = false;
    for (const ResolvedAddress& candidate : candidates) {
      // Slice the remaining budget across the candidate list: a
      // blackholed endpoint (SYN silently dropped — EINPROGRESS that
      // never resolves) must time out on its share, not consume the
      // whole deadline and starve the candidates behind it. With an
      // unbounded deadline each candidate still gets a finite slice —
      // the outer loop retries the whole list forever, so "wait
      // forever" holds overall without any one endpoint hogging it.
      int slice = deadline.RemainingMs();
      if (candidates.size() > 1) {
        slice = slice < 0 ? 10'000
                          : std::max(slice / static_cast<int>(
                                                 candidates.size()),
                                     std::min(slice, 50));
      }
      const Deadline candidateDeadline(slice);
      auto connected = TryConnect(candidate, candidateDeadline);
      if (connected.ok()) return connected;
      lastErrno = errno;
      anyRetryable = anyRetryable || lastErrno == ECONNREFUSED ||
                     lastErrno == ENOENT || lastErrno == ETIMEDOUT ||
                     lastErrno == ENETUNREACH || lastErrno == EADDRNOTAVAIL;
    }
    if (!anyRetryable || deadline.Expired()) {
      errno = lastErrno;
      return SysError("connect " + address);
    }
    struct timespec pause = {0, 10'000'000};  // 10ms between attempts
    ::nanosleep(&pause, nullptr);
  }
}

Result<bool> WaitReadable(Socket& socket, int timeoutMs) {
  return WaitFor(socket.fd(), POLLIN, Deadline(timeoutMs));
}

Status SendAll(Socket& socket, std::string_view data, int timeoutMs) {
  const Deadline deadline(timeoutMs);
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a worker dying mid-write must surface as EPIPE, not
    // kill the router process with SIGPIPE.
    const ssize_t wrote = ::send(socket.fd(), data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
    if (wrote > 0) {
      sent += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      RVSS_ASSIGN_OR_RETURN(const bool ready,
                            WaitFor(socket.fd(), POLLOUT, deadline));
      if (!ready) {
        return Status::Fail(ErrorKind::kInternal, "send timed out");
      }
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;
    return SysError("send");
  }
  return Status::Ok();
}

Status RecvAll(Socket& socket, char* buffer, std::size_t size,
               int timeoutMs) {
  const Deadline deadline(timeoutMs);
  std::size_t received = 0;
  while (received < size) {
    const ssize_t got =
        ::recv(socket.fd(), buffer + received, size - received, 0);
    if (got > 0) {
      received += static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) {
      return Status::Fail(ErrorKind::kInternal,
                          "peer closed the connection mid-frame (" +
                              std::to_string(received) + " of " +
                              std::to_string(size) + " bytes)");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      RVSS_ASSIGN_OR_RETURN(const bool ready,
                            WaitFor(socket.fd(), POLLIN, deadline));
      if (!ready) {
        return Status::Fail(ErrorKind::kInternal, "recv timed out");
      }
      continue;
    }
    if (errno == EINTR) continue;
    return SysError("recv");
  }
  return Status::Ok();
}

}  // namespace rvss::net
