#include "common/slz.h"

#include <array>
#include <cstring>
#include <vector>

namespace rvss {
namespace {

constexpr std::size_t kWindowSize = 1 << 13;   // 8 KiB, 13-bit offsets
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = kMinMatch + 7;  // 3-bit length field
constexpr std::size_t kHashSize = 1 << 15;

std::uint32_t Hash4(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 17;  // fold into kHashSize bits
}

}  // namespace

std::string SlzCompress(std::string_view input) {
  std::string out;
  out.reserve(input.size() / 2 + 16);
  const auto size32 = static_cast<std::uint32_t>(input.size());
  for (int i = 0; i < 4; ++i) {
    out += static_cast<char>(size32 >> (8 * i));
  }

  // head[h] = most recent position with hash h.
  std::vector<std::int32_t> head(kHashSize, -1);
  std::vector<std::int32_t> prev(input.size(), -1);

  std::size_t pos = 0;
  while (pos < input.size()) {
    std::uint8_t flags = 0;
    std::string group;
    for (int item = 0; item < 8 && pos < input.size(); ++item) {
      std::size_t bestLen = 0;
      std::size_t bestOffset = 0;
      if (pos + kMinMatch <= input.size()) {
        const std::uint32_t hash = Hash4(input.data() + pos) % kHashSize;
        std::int32_t candidate = head[hash];
        int chain = 16;
        while (candidate >= 0 && chain-- > 0 &&
               pos - static_cast<std::size_t>(candidate) <= kWindowSize) {
          const char* a = input.data() + candidate;
          const char* b = input.data() + pos;
          std::size_t len = 0;
          const std::size_t maxLen =
              std::min(kMaxMatch, input.size() - pos);
          while (len < maxLen && a[len] == b[len]) ++len;
          if (len >= kMinMatch && len > bestLen) {
            bestLen = len;
            bestOffset = pos - static_cast<std::size_t>(candidate);
          }
          candidate = prev[static_cast<std::size_t>(candidate)];
        }
        prev[pos] = head[hash];
        head[hash] = static_cast<std::int32_t>(pos);
      }

      if (bestLen >= kMinMatch) {
        flags |= static_cast<std::uint8_t>(1 << item);
        // Layout: [len:3][offset:13] across two little-endian bytes.
        const std::uint16_t packed = static_cast<std::uint16_t>(
            ((bestOffset - 1) & 0x1fff) |
            (static_cast<std::uint16_t>(bestLen - kMinMatch) << 13));
        group += static_cast<char>(packed & 0xff);
        group += static_cast<char>(packed >> 8);
        // Insert skipped positions into the hash chains for better matches.
        for (std::size_t k = 1; k < bestLen && pos + k + 4 <= input.size();
             ++k) {
          const std::uint32_t h = Hash4(input.data() + pos + k) % kHashSize;
          prev[pos + k] = head[h];
          head[h] = static_cast<std::int32_t>(pos + k);
        }
        pos += bestLen;
      } else {
        group += input[pos];
        ++pos;
      }
    }
    out += static_cast<char>(flags);
    out += group;
  }
  return out;
}

std::optional<std::string> SlzDecompress(std::string_view input,
                                         std::size_t* consumedBytes) {
  if (input.size() < 4) return std::nullopt;
  std::uint32_t expected = 0;
  for (int i = 0; i < 4; ++i) {
    expected |= static_cast<std::uint32_t>(
                    static_cast<std::uint8_t>(input[static_cast<std::size_t>(i)]))
                << (8 * i);
  }
  // The header size is attacker-controlled on untrusted blobs; a match
  // emits at most kMaxMatch bytes for two input bytes, so any claimed
  // expansion beyond that is malformed. Checking before reserve() keeps a
  // tiny hostile input from demanding a 4 GiB allocation.
  if (expected > (input.size() - 4) * kMaxMatch) return std::nullopt;
  std::string out;
  out.reserve(expected);
  std::size_t pos = 4;
  while (pos < input.size() && out.size() < expected) {
    const std::uint8_t flags = static_cast<std::uint8_t>(input[pos++]);
    for (int item = 0; item < 8 && out.size() < expected; ++item) {
      if (flags & (1 << item)) {
        if (pos + 2 > input.size()) return std::nullopt;
        const std::uint16_t packed = static_cast<std::uint16_t>(
            static_cast<std::uint8_t>(input[pos]) |
            (static_cast<std::uint8_t>(input[pos + 1]) << 8));
        pos += 2;
        const std::size_t offset = (packed & 0x1fff) + 1;
        const std::size_t length = (packed >> 13) + kMinMatch;
        if (offset > out.size()) return std::nullopt;
        for (std::size_t k = 0; k < length; ++k) {
          out += out[out.size() - offset];
        }
      } else {
        if (pos >= input.size()) return std::nullopt;
        out += input[pos++];
      }
    }
  }
  if (out.size() != expected) return std::nullopt;
  if (consumedBytes != nullptr) *consumedBytes = pos;
  return out;
}

}  // namespace rvss
