// Length-prefixed wire frames for the cross-process shard transport.
//
// A frame is a fixed 16-byte little-endian header followed by two payload
// sections:
//
//   u32 magic    "RVSF" (0x46535652)
//   u32 version  kFrameVersion
//   u32 jsonBytes
//   u32 blobBytes
//   [jsonBytes]  UTF-8 JSON text (the request or response document)
//   [blobBytes]  opaque session-blob bytes (the detached top-level "blob"
//                field — see server/wire.h), possibly empty
//
// The header is validated before any payload is read: a wrong magic or
// version fails immediately, and each section length is checked against a
// cap so a hostile or corrupted peer cannot make the reader allocate
// gigabytes from four bytes of input. Everything here is pure byte
// manipulation — no sockets, no JSON — so the codec is unit-testable and
// shared verbatim by both ends of the connection.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace rvss::net {

inline constexpr std::uint32_t kFrameMagic = 0x46535652u;  // "RVSF" LE
inline constexpr std::uint32_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;

/// Default cap on jsonBytes + blobBytes. Session blobs are the largest
/// legitimate payload (tens of MiB for big memory images); 256 MiB leaves
/// headroom while still rejecting absurd lengths outright.
inline constexpr std::size_t kDefaultMaxFrameBytes = 256u << 20;

struct FrameHeader {
  std::uint32_t jsonBytes = 0;
  std::uint32_t blobBytes = 0;

  std::size_t payloadBytes() const {
    return std::size_t{jsonBytes} + std::size_t{blobBytes};
  }
};

/// The 16-byte header for a frame with the given section sizes.
std::string EncodeFrameHeader(std::size_t jsonBytes, std::size_t blobBytes);

/// Parses and validates a header. `header` must be exactly
/// kFrameHeaderBytes; magic/version mismatches and section lengths whose
/// sum exceeds `maxFrameBytes` are errors.
Result<FrameHeader> DecodeFrameHeader(std::string_view header,
                                      std::size_t maxFrameBytes);

}  // namespace rvss::net
