#include "obs/trace.h"

#include <utility>

#include "obs/registry.h"

namespace rvss::obs {

TraceRing& TraceRing::Instance() {
  static TraceRing* instance = new TraceRing();  // never destroyed, like
  return *instance;                              // Registry::Instance()
}

void TraceRing::Record(std::string category, std::string name,
                       std::uint64_t startNs, std::uint64_t durationNs,
                       std::string detail) {
  if (!Enabled()) return;
  MutexLock lock(mutex_);
  SpanEvent event;
  event.seq = nextSeq_++;
  event.category = std::move(category);
  event.name = std::move(name);
  event.startNs = startNs;
  event.durationNs = durationNs;
  event.detail = std::move(detail);
  events_.push_back(std::move(event));
  while (events_.size() > kCapacity) {
    events_.pop_front();
    ++dropped_;
  }
}

json::Json TraceRing::ToJson() const {
  MutexLock lock(mutex_);
  json::Json root = json::Json::MakeObject();
  json::Json spans = json::Json::MakeArray();
  for (const SpanEvent& event : events_) {
    json::Json node = json::Json::MakeObject();
    node.Set("seq", static_cast<std::int64_t>(event.seq));
    node.Set("category", event.category);
    node.Set("name", event.name);
    node.Set("startNs", static_cast<std::int64_t>(event.startNs));
    node.Set("durationNs", static_cast<std::int64_t>(event.durationNs));
    if (!event.detail.empty()) node.Set("detail", event.detail);
    spans.Append(std::move(node));
  }
  root.Set("spans", std::move(spans));
  root.Set("dropped", static_cast<std::int64_t>(dropped_));
  root.Set("capacity", static_cast<std::int64_t>(kCapacity));
  return root;
}

void TraceRing::Clear() {
  MutexLock lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

ScopedSpan::ScopedSpan(std::string category, std::string name)
    : category_(std::move(category)),
      name_(std::move(name)),
      startNs_(MonotonicNowNs()) {}

ScopedSpan::~ScopedSpan() {
  TraceRing::Instance().Record(std::move(category_), std::move(name_),
                               startNs_, MonotonicNowNs() - startNs_,
                               std::move(detail_));
}

}  // namespace rvss::obs
