// Fleet observability: a process-wide registry of named counters, gauges
// and log2-bucket latency histograms.
//
// The fleet grew real moving parts — dispatch lanes, socket transports, a
// routing layer, drain/rebalance fleet operations — whose live behaviour
// (queue depth, dispatch latency, wire bytes) was invisible outside the
// offline benches. This registry is the always-on substrate: every layer
// records into named metrics, the `metrics` server command serializes the
// registry as JSON, and the shard router fans that command out to its
// workers and merges the documents into one fleet view (sum counters,
// merge histogram buckets bucket-wise, max gauges).
//
// Design constraints, in order:
//
//  * Wait-free on the hot path. Recording is one (or two) relaxed atomic
//    RMW operations; no locks, no allocation, no syscalls. The registry
//    mutex is taken only on first registration of a name — callers cache
//    the returned reference (metric objects have stable addresses for the
//    process lifetime; the registry never deletes).
//  * Cheap enough to leave always-on. bench_obs pins the end-to-end cost
//    at <2% on the detailed simulation loop and the routed request path;
//    SetEnabled(false) exists so the bench can measure an honest A/B, not
//    so production turns it off.
//  * Deterministic simulation stays deterministic. Metrics are
//    observational only: nothing in the registry feeds back into
//    simulation state, snapshots never carry it.
//
// Histogram scheme: 32 fixed log2 buckets. A value v lands in bucket 0
// when v == 0 and otherwise in bucket min(31, floor(log2(v)) + 1), i.e.
// bucket i >= 1 covers [2^(i-1), 2^i). By convention latency histograms
// record *microseconds*, so the usable range is 1us .. ~18 minutes with
// 2x resolution — coarse, but latency investigations care about orders of
// magnitude, and fixed buckets keep Record() wait-free and merges exact.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/sync.h"
#include "json/json.h"

namespace rvss::obs {

/// Global switch, checked by every Record/Add. On by default; exists for
/// bench_obs's enabled-vs-disabled A/B and for tests.
bool Enabled();
void SetEnabled(bool enabled);

/// Monotonic wall-clock, ns. Shared by latency timers and span events.
std::uint64_t MonotonicNowNs();

/// Monotonically increasing event count. Merge: sum.
class Counter {
 public:
  void Add(std::uint64_t n) {
    if (Enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, bytes held, cycles/s).
/// Merge: max — a fleet-wide sum of instantaneous readings taken at
/// different moments means nothing, but "the hottest worker" does.
class Gauge {
 public:
  void Set(double value) {
    if (Enabled()) value_.store(value, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket log2 histogram (see the file comment for the scheme).
/// Merge: bucket-wise sum; count and sum add.
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 32;

  static std::size_t BucketOf(std::uint64_t value) {
    if (value == 0) return 0;
    const std::size_t bit = 64 - static_cast<std::size_t>(
                                     __builtin_clzll(value));  // floor(log2)+1
    return bit < kBucketCount ? bit : kBucketCount - 1;
  }

  /// Inclusive upper bound of `bucket`; UINT64_MAX for the overflow
  /// bucket. Used by the Prometheus exposition's `le` labels.
  static std::uint64_t BucketUpperBound(std::size_t bucket);

  void Record(std::uint64_t value) {
    if (!Enabled()) return;
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
    return total;
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
  std::atomic<std::uint64_t> sum_{0};
};

/// Records the wall-clock from construction to destruction into a
/// histogram, in microseconds (the latency-histogram convention).
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& histogram)
      : histogram_(histogram), startNs_(MonotonicNowNs()) {}
  ~ScopedLatency() { histogram_.Record((MonotonicNowNs() - startNs_) / 1000); }

  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram& histogram_;
  std::uint64_t startNs_;
};

/// The process-wide metric namespace. Get* registers on first use (under
/// the registry mutex) and afterwards returns the same object — cache the
/// reference at the recording site; the pointer is stable forever.
class Registry {
 public:
  static Registry& Instance();

  Counter& GetCounter(std::string_view name) EXCLUDES(mutex_);
  Gauge& GetGauge(std::string_view name) EXCLUDES(mutex_);
  Histogram& GetHistogram(std::string_view name) EXCLUDES(mutex_);

  /// {counters: {name: n}, gauges: {name: x},
  ///  histograms: {name: {count, sum, buckets: [...]}}}.
  /// Bucket arrays are trimmed of trailing zeros (merge pads them back).
  json::Json ToJson() const EXCLUDES(mutex_);

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry() = default;

  mutable Mutex mutex_;
  // unique_ptr nodes give every metric a stable address across rehash-free
  // map growth; names are registered once and never removed. The maps are
  // mutex-guarded; the metric objects they point at are wait-free atomics,
  // deliberately recorded into without the lock.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mutex_);
};

/// Registry::Instance().ToJson() — the payload of the `metrics` command.
json::Json MetricsToJson();

/// Merges one registry document into another: counters sum, gauges max,
/// histograms merge bucket-wise (count and sum add). Unknown sections or
/// malformed entries in `from` are ignored — a skewed worker must not
/// poison the fleet view.
void MergeMetricsJson(json::Json& into, const json::Json& from);

/// Prometheus text exposition of a registry document ('.' in metric names
/// becomes '_', everything prefixed rvss_; histograms render cumulative
/// _bucket{le=...} series plus _count and _sum).
std::string MetricsToPrometheusText(const json::Json& metrics);

/// Bounds per-command metric names: returns `command` when it is a known
/// API or fleet command, "other" otherwise — client-supplied strings must
/// not grow the registry without bound.
std::string_view SanitizedCommandName(std::string_view command);

}  // namespace rvss::obs
