#include "obs/registry.h"

#include <algorithm>
#include <atomic>

#include "common/strings.h"

namespace rvss::obs {
namespace {

std::atomic<bool> g_enabled{true};

/// Every command name the server or router dispatches on. Per-command
/// metrics use this closed set so a hostile client sending random command
/// strings cannot allocate unbounded registry entries.
constexpr std::string_view kKnownCommands[] = {
    // SimServer API.
    "compile", "parseAsm", "checkConfig", "createSession", "importSession",
    "exportSession", "deleteSession", "listSessions", "step", "stepBack",
    "run", "state", "stats", "fastForward", "saveCheckpoint",
    "restoreCheckpoint", "metrics", "traceDump",
    // Router fleet operations and the wire handshake.
    "hello", "workerStats", "drainWorker", "openWorker", "addWorker",
    "removeWorker", "rebalance", "shutdownWorker",
};

/// Canonicalizes a metric name arriving from a (possibly older) worker:
/// snake_case runs within each dot-separated segment fold into camelCase
/// humps ("shard.lane.queue_wait_us" -> "shard.lane.queueWaitUs"), so a
/// fleet merge during a rolling upgrade never splits one logical metric
/// across two keys. Already-camelCase names pass through unchanged.
std::string CanonicalMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  bool upperNext = false;
  for (const char c : name) {
    if (c == '_') {
      upperNext = true;
      continue;
    }
    if (c == '.') {
      upperNext = false;
      out.push_back(c);
      continue;
    }
    out.push_back(upperNext && c >= 'a' && c <= 'z'
                      ? static_cast<char>(c - 'a' + 'A')
                      : c);
    upperNext = false;
  }
  return out;
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t MonotonicNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t Histogram::BucketUpperBound(std::size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= kBucketCount - 1) return UINT64_MAX;
  return (std::uint64_t{1} << bucket) - 1;
}

Registry& Registry::Instance() {
  static Registry* instance = new Registry();  // never destroyed: metric
  return *instance;  // references outlive static teardown order
}

Counter& Registry::GetCounter(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

json::Json Registry::ToJson() const {
  MutexLock lock(mutex_);
  json::Json root = json::Json::MakeObject();

  json::Json counters = json::Json::MakeObject();
  for (const auto& [name, counter] : counters_) {
    counters.Set(name, static_cast<std::int64_t>(counter->value()));
  }
  root.Set("counters", std::move(counters));

  json::Json gauges = json::Json::MakeObject();
  for (const auto& [name, gauge] : gauges_) {
    gauges.Set(name, gauge->value());
  }
  root.Set("gauges", std::move(gauges));

  json::Json histograms = json::Json::MakeObject();
  for (const auto& [name, histogram] : histograms_) {
    json::Json node = json::Json::MakeObject();
    // Trim trailing zero buckets: most latency histograms populate a
    // handful of adjacent buckets, and the fleet view ships one document
    // per worker per scrape.
    std::size_t last = 0;
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
      if (histogram->bucket(i) != 0) last = i + 1;
    }
    json::Json buckets = json::Json::MakeArray();
    std::uint64_t count = 0;
    for (std::size_t i = 0; i < last; ++i) {
      const std::uint64_t n = histogram->bucket(i);
      count += n;
      buckets.Append(static_cast<std::int64_t>(n));
    }
    node.Set("count", static_cast<std::int64_t>(count));
    node.Set("sum", static_cast<std::int64_t>(histogram->sum()));
    node.Set("buckets", std::move(buckets));
    histograms.Set(name, std::move(node));
  }
  root.Set("histograms", std::move(histograms));
  return root;
}

json::Json MetricsToJson() { return Registry::Instance().ToJson(); }

void MergeMetricsJson(json::Json& into, const json::Json& from) {
  if (!from.IsObject()) return;
  if (!into.IsObject()) into = json::Json::MakeObject();

  auto section = [](json::Json& doc, std::string_view name) -> json::Json& {
    json::Json* found = doc.Find(name);
    if (found == nullptr || !found->IsObject()) {
      doc.Set(name, json::Json::MakeObject());
      found = doc.Find(name);
    }
    return *found;
  };

  if (const json::Json* counters = from.Find("counters");
      counters != nullptr && counters->IsObject()) {
    json::Json& mine = section(into, "counters");
    for (const auto& [name, value] : counters->AsObject()) {
      if (!value.IsNumber()) continue;
      const std::string canonical = CanonicalMetricName(name);
      const json::Json* existing = mine.Find(canonical);
      const std::int64_t base =
          existing != nullptr && existing->IsNumber() ? existing->AsInt() : 0;
      mine.Set(canonical, base + value.AsInt());
    }
  }

  if (const json::Json* gauges = from.Find("gauges");
      gauges != nullptr && gauges->IsObject()) {
    json::Json& mine = section(into, "gauges");
    for (const auto& [name, value] : gauges->AsObject()) {
      if (!value.IsNumber()) continue;
      const std::string canonical = CanonicalMetricName(name);
      const json::Json* existing = mine.Find(canonical);
      const double base = existing != nullptr && existing->IsNumber()
                              ? existing->AsDouble()
                              : 0.0;
      mine.Set(canonical, std::max(base, value.AsDouble()));
    }
  }

  if (const json::Json* histograms = from.Find("histograms");
      histograms != nullptr && histograms->IsObject()) {
    json::Json& mine = section(into, "histograms");
    for (const auto& [name, node] : histograms->AsObject()) {
      if (!node.IsObject()) continue;
      const std::string canonical = CanonicalMetricName(name);
      json::Json* existing = mine.Find(canonical);
      if (existing == nullptr || !existing->IsObject()) {
        mine.Set(canonical, node);
        continue;
      }
      existing->Set("count",
                    existing->GetInt("count", 0) + node.GetInt("count", 0));
      existing->Set("sum", existing->GetInt("sum", 0) + node.GetInt("sum", 0));
      const json::Json* theirs = node.Find("buckets");
      json::Json* ours = existing->Find("buckets");
      if (theirs == nullptr || !theirs->IsArray() || ours == nullptr ||
          !ours->IsArray()) {
        continue;
      }
      // Bucket arrays are trailing-zero trimmed, so the two may differ in
      // length; pad ours out before adding element-wise.
      json::Array& ourBuckets = ours->AsArray();
      const json::Array& theirBuckets = theirs->AsArray();
      while (ourBuckets.size() < theirBuckets.size()) {
        ourBuckets.push_back(json::Json(std::int64_t{0}));
      }
      for (std::size_t i = 0; i < theirBuckets.size(); ++i) {
        ourBuckets[i] = json::Json(ourBuckets[i].AsInt() +
                                   theirBuckets[i].AsInt());
      }
    }
  }
}

namespace {

/// JSON metric names are camelCase (the API surface); the Prometheus
/// rendering is the one snake_case surface. camelCase humps become
/// '_<lower>' and every other non-alphanumeric becomes '_':
/// "shard.lane.queueWaitUs" -> "rvss_shard_lane_queue_wait_us",
/// "server.cmd.createSession" -> "rvss_server_cmd_create_session".
std::string PrometheusName(std::string_view name) {
  std::string out = "rvss_";
  for (const char c : name) {
    if (c >= 'A' && c <= 'Z') {
      out.push_back('_');
      out.push_back(static_cast<char>(c - 'A' + 'a'));
      continue;
    }
    const bool ok =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string FormatDouble(double value) {
  std::string text = StrFormat("%.6f", value);
  // Trim trailing zeros (and a bare trailing dot) for readability.
  while (!text.empty() && text.back() == '0') text.pop_back();
  if (!text.empty() && text.back() == '.') text.pop_back();
  return text;
}

}  // namespace

std::string MetricsToPrometheusText(const json::Json& metrics) {
  std::string out;
  if (const json::Json* counters = metrics.Find("counters");
      counters != nullptr && counters->IsObject()) {
    for (const auto& [name, value] : counters->AsObject()) {
      const std::string prom = PrometheusName(name);
      out += "# TYPE " + prom + " counter\n";
      out += prom + " " + std::to_string(value.AsInt()) + "\n";
    }
  }
  if (const json::Json* gauges = metrics.Find("gauges");
      gauges != nullptr && gauges->IsObject()) {
    for (const auto& [name, value] : gauges->AsObject()) {
      const std::string prom = PrometheusName(name);
      out += "# TYPE " + prom + " gauge\n";
      out += prom + " " + FormatDouble(value.AsDouble()) + "\n";
    }
  }
  if (const json::Json* histograms = metrics.Find("histograms");
      histograms != nullptr && histograms->IsObject()) {
    for (const auto& [name, node] : histograms->AsObject()) {
      if (!node.IsObject()) continue;
      const std::string prom = PrometheusName(name);
      out += "# TYPE " + prom + " histogram\n";
      std::uint64_t cumulative = 0;
      const json::Json* buckets = node.Find("buckets");
      if (buckets != nullptr && buckets->IsArray()) {
        const json::Array& entries = buckets->AsArray();
        for (std::size_t i = 0; i < entries.size(); ++i) {
          cumulative += static_cast<std::uint64_t>(entries[i].AsInt());
          // The overflow bucket is folded into the +Inf series below.
          if (i >= Histogram::kBucketCount - 1) continue;
          out += prom + "_bucket{le=\"" +
                 std::to_string(Histogram::BucketUpperBound(i)) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
      }
      out += prom + "_bucket{le=\"+Inf\"} " +
             std::to_string(node.GetInt("count", 0)) + "\n";
      out += prom + "_sum " + std::to_string(node.GetInt("sum", 0)) + "\n";
      out += prom + "_count " + std::to_string(node.GetInt("count", 0)) + "\n";
    }
  }
  return out;
}

std::string_view SanitizedCommandName(std::string_view command) {
  for (const std::string_view known : kKnownCommands) {
    if (command == known) return command;
  }
  return "other";
}

}  // namespace rvss::obs
