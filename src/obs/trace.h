// Span events for the rare-but-expensive fleet operations.
//
// Histograms (obs/registry.h) answer "how slow is this operation usually";
// spans answer "why was *that* drain slow last Tuesday". Each span is one
// begin/end pair with a monotonic start timestamp, a duration, a category
// (fleet, session, sim) and a free-form detail string. The ring is
// bounded: the newest kCapacity spans survive, older ones are dropped and
// counted, so a long-lived worker cannot grow without bound and the
// `traceDump` command always returns quickly.
//
// Recording takes a mutex — deliberately. Spans cover operations measured
// in milliseconds-to-seconds (drain, rebalance, quiesce, export/import,
// fast-forward, checkpoint restore) and happen a few times a minute at
// most; a lock-free ring would buy nothing and cost ordering. Never put a
// span on a per-request or per-cycle path — that is what histograms are
// for.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/sync.h"
#include "json/json.h"

namespace rvss::obs {

struct SpanEvent {
  std::uint64_t seq = 0;       ///< process-wide ordering, 1-based
  std::string category;        ///< "fleet", "session", "sim"
  std::string name;            ///< "drainWorker", "fastForward", ...
  std::uint64_t startNs = 0;   ///< MonotonicNowNs() at begin
  std::uint64_t durationNs = 0;
  std::string detail;          ///< free-form ("worker=2 moved=8"), may be empty
};

class TraceRing {
 public:
  static constexpr std::size_t kCapacity = 256;

  static TraceRing& Instance();

  /// Appends one completed span, evicting the oldest beyond kCapacity.
  /// No-op while obs is disabled (obs::SetEnabled).
  void Record(std::string category, std::string name, std::uint64_t startNs,
              std::uint64_t durationNs, std::string detail) EXCLUDES(mutex_);

  /// {spans: [{seq, category, name, startNs, durationNs, detail}...],
  ///  dropped, capacity} — spans oldest-first.
  json::Json ToJson() const EXCLUDES(mutex_);

  /// Drops everything (tests; also resets the dropped count, not seq).
  void Clear() EXCLUDES(mutex_);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

 private:
  TraceRing() = default;

  mutable Mutex mutex_;
  std::deque<SpanEvent> events_ GUARDED_BY(mutex_);
  std::uint64_t nextSeq_ GUARDED_BY(mutex_) = 1;
  std::uint64_t dropped_ GUARDED_BY(mutex_) = 0;
};

/// Records a span over its own lifetime. Detail can be filled in as the
/// operation learns its outcome; it is captured at destruction.
class ScopedSpan {
 public:
  ScopedSpan(std::string category, std::string name);
  ~ScopedSpan();

  void SetDetail(std::string detail) { detail_ = std::move(detail); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  std::string category_;
  std::string name_;
  std::string detail_;
  std::uint64_t startNs_;
};

}  // namespace rvss::obs
