#include "json/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rvss::json {

const char* ToString(Type type) {
  switch (type) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kInt: return "int";
    case Type::kDouble: return "double";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "unknown";
}

const Json* Json::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json* Json::Find(std::string_view key) {
  return const_cast<Json*>(static_cast<const Json*>(this)->Find(key));
}

void Json::Set(std::string_view key, Json value) {
  if (type_ == Type::kNull) *this = MakeObject();
  if (type_ != Type::kObject) return;
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::string(key), std::move(value));
}

void Json::Append(Json value) {
  if (type_ == Type::kNull) *this = MakeArray();
  if (type_ != Type::kArray) return;
  array_.push_back(std::move(value));
}

bool Json::GetBool(std::string_view key, bool fallback) const {
  const Json* node = Find(key);
  return node != nullptr && node->IsBool() ? node->AsBool() : fallback;
}

std::int64_t Json::GetInt(std::string_view key, std::int64_t fallback) const {
  const Json* node = Find(key);
  return node != nullptr && node->IsNumber() ? node->AsInt() : fallback;
}

double Json::GetDouble(std::string_view key, double fallback) const {
  const Json* node = Find(key);
  return node != nullptr && node->IsNumber() ? node->AsDouble() : fallback;
}

std::string Json::GetString(std::string_view key,
                            std::string_view fallback) const {
  const Json* node = Find(key);
  return node != nullptr && node->IsString() ? node->AsString()
                                             : std::string(fallback);
}

bool operator==(const Json& a, const Json& b) {
  if (a.IsNumber() && b.IsNumber()) {
    if (a.type_ == Type::kInt && b.type_ == Type::kInt) return a.int_ == b.int_;
    return a.AsDouble() == b.AsDouble();
  }
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Type::kNull: return true;
    case Type::kBool: return a.bool_ == b.bool_;
    case Type::kInt: return a.int_ == b.int_;
    case Type::kDouble: return a.double_ == b.double_;
    case Type::kString: return a.string_ == b.string_;
    case Type::kArray: return a.array_ == b.array_;
    case Type::kObject: return a.object_ == b.object_;
  }
  return false;
}

void EscapeStringInto(std::string_view text, std::string& out) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

namespace {

void AppendDouble(std::string& out, double value) {
  if (std::isnan(value)) {
    out += "null";  // JSON has no NaN; null is the conventional stand-in.
    return;
  }
  if (std::isinf(value)) {
    out += value > 0 ? "1e999" : "-1e999";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  // Trim to shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[32];
    std::snprintf(candidate, sizeof candidate, "%.*g", precision, value);
    double parsed = 0;
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == value) {
      std::memcpy(buffer, candidate, sizeof candidate);
      break;
    }
  }
  out += buffer;
  // Ensure the text re-parses as a double, not an int.
  if (out.find_first_of(".eE", out.size() - std::strlen(buffer)) ==
      std::string::npos) {
    out += ".0";
  }
}

}  // namespace

void Json::DumpTo(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kInt: out += std::to_string(int_); return;
    case Type::kDouble: AppendDouble(out, double_); return;
    case Type::kString:
      out += '"';
      EscapeStringInto(string_, out);
      out += '"';
      return;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ',';
        newline(depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out += ',';
        newline(depth + 1);
        out += '"';
        EscapeStringInto(object_[i].first, out);
        out += pretty ? "\": " : "\":";
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      return;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(out, 0, 0);
  return out;
}

std::string Json::DumpPretty() const {
  std::string out;
  DumpTo(out, 2, 0);
  return out;
}

std::size_t Json::DumpSize() const {
  // Exact by construction: serialize into a reusable thread-local scratch
  // buffer instead of duplicating DumpTo with a counting variant.
  thread_local std::string scratch;
  scratch.clear();
  DumpTo(scratch, 0, 0);
  return scratch.size();
}

namespace {

/// Recursive-descent JSON parser tracking line/column for diagnostics.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> ParseDocument() {
    SkipWhitespace();
    RVSS_ASSIGN_OR_RETURN(Json value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing content after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 256;

  Error Fail(std::string message) const {
    return Error{ErrorKind::kParse, std::move(message),
                 SourcePos{line_, static_cast<std::uint32_t>(pos_ - lineStart_ + 1)}};
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  char Advance() {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      lineStart_ = pos_;
    }
    return c;
  }

  void SkipWhitespace() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        Advance();
      } else {
        break;
      }
    }
  }

  bool Consume(char expected) {
    if (AtEnd() || Peek() != expected) return false;
    Advance();
    return true;
  }

  Result<Json> ParseValue(int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (AtEnd()) return Fail("unexpected end of input");
    char c = Peek();
    switch (c) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': {
        RVSS_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json(std::move(s));
      }
      case 't':
        if (ConsumeKeyword("true")) return Json(true);
        return Fail("invalid literal");
      case 'f':
        if (ConsumeKeyword("false")) return Json(false);
        return Fail("invalid literal");
      case 'n':
        if (ConsumeKeyword("null")) return Json(nullptr);
        return Fail("invalid literal");
      default:
        return ParseNumber();
    }
  }

  bool ConsumeKeyword(std::string_view keyword) {
    if (text_.substr(pos_, keyword.size()) != keyword) return false;
    for (std::size_t i = 0; i < keyword.size(); ++i) Advance();
    return true;
  }

  Result<Json> ParseObject(int depth) {
    Advance();  // '{'
    Json object = Json::MakeObject();
    SkipWhitespace();
    if (Consume('}')) return object;
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Fail("expected object key string");
      RVSS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      SkipWhitespace();
      RVSS_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      object.AsObject().emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return object;
      return Fail("expected ',' or '}' in object");
    }
  }

  Result<Json> ParseArray(int depth) {
    Advance();  // '['
    Json array = Json::MakeArray();
    SkipWhitespace();
    if (Consume(']')) return array;
    while (true) {
      SkipWhitespace();
      RVSS_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      array.AsArray().push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return array;
      return Fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    Advance();  // '"'
    std::string out;
    while (true) {
      if (AtEnd()) return Fail("unterminated string");
      char c = Advance();
      if (c == '"') return out;
      if (c == '\\') {
        if (AtEnd()) return Fail("unterminated escape");
        char esc = Advance();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            RVSS_ASSIGN_OR_RETURN(unsigned cp, ParseHex4());
            // Surrogate pair handling.
            if (cp >= 0xd800 && cp <= 0xdbff) {
              if (!Consume('\\') || !Consume('u')) {
                return Fail("unpaired surrogate in \\u escape");
              }
              RVSS_ASSIGN_OR_RETURN(unsigned lo, ParseHex4());
              if (lo < 0xdc00 || lo > 0xdfff) {
                return Fail("invalid low surrogate");
              }
              cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
            }
            AppendUtf8(out, cp);
            break;
          }
          default:
            return Fail("invalid escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      } else {
        out += c;
      }
    }
  }

  Result<unsigned> ParseHex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (AtEnd()) return Fail("truncated \\u escape");
      char c = Advance();
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else return Fail("invalid hex digit in \\u escape");
    }
    return value;
  }

  static void AppendUtf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  Result<Json> ParseNumber() {
    const std::size_t start = pos_;
    bool isDouble = false;
    if (Consume('-')) {
    }
    if (AtEnd()) return Fail("truncated number");
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Fail("invalid number");
    }
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
    if (!AtEnd() && Peek() == '.') {
      isDouble = true;
      Advance();
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("digit expected after decimal point");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      isDouble = true;
      Advance();
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) Advance();
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("digit expected in exponent");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
    }
    std::string literal(text_.substr(start, pos_ - start));
    if (!isDouble) {
      errno = 0;
      char* end = nullptr;
      long long value = std::strtoll(literal.c_str(), &end, 10);
      if (errno == 0 && end == literal.c_str() + literal.size()) {
        return Json(static_cast<std::int64_t>(value));
      }
      // Fall through to double for out-of-range integers.
    }
    char* end = nullptr;
    double value = std::strtod(literal.c_str(), &end);
    if (end != literal.c_str() + literal.size()) return Fail("invalid number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::size_t lineStart_ = 0;
};

}  // namespace

Result<Json> Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace rvss::json
