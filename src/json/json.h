// Self-contained JSON value, parser and writer.
//
// The paper's system leans on JSON in three places: the architecture
// configuration files (import/export in the settings window), the
// instruction-set definition file (Listing 1), and the client-server API —
// whose serialization cost turns out to dominate request handling (the
// paper's E2 observation). This module is therefore both a substrate and a
// measurement subject; bench_json_overhead times exactly these routines.
//
// Design notes:
//  * Objects preserve insertion order (config files round-trip cleanly).
//  * Numbers are stored as int64 when the literal is integral and fits;
//    otherwise as double. `AsDouble()` converts transparently.
//  * The parser is a single-pass recursive-descent parser with a depth
//    limit; it reports line/column on errors.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace rvss::json {

class Json;

/// Ordered key-value storage for objects. Lookup is linear; rvss objects are
/// small (tens of keys), and preserving author order matters more here.
using Object = std::vector<std::pair<std::string, Json>>;
using Array = std::vector<Json>;

enum class Type : std::uint8_t { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

const char* ToString(Type type);

/// A JSON document node.
class Json {
 public:
  Json() : type_(Type::kNull) {}
  /*implicit*/ Json(std::nullptr_t) : type_(Type::kNull) {}
  /*implicit*/ Json(bool value) : type_(Type::kBool), bool_(value) {}
  /*implicit*/ Json(int value) : type_(Type::kInt), int_(value) {}
  /*implicit*/ Json(unsigned value) : type_(Type::kInt), int_(value) {}
  /*implicit*/ Json(std::int64_t value) : type_(Type::kInt), int_(value) {}
  /*implicit*/ Json(std::uint64_t value)
      : type_(Type::kInt), int_(static_cast<std::int64_t>(value)) {}
  /*implicit*/ Json(double value) : type_(Type::kDouble), double_(value) {}
  /*implicit*/ Json(const char* value) : type_(Type::kString), string_(value) {}
  /*implicit*/ Json(std::string value)
      : type_(Type::kString), string_(std::move(value)) {}
  /*implicit*/ Json(std::string_view value)
      : type_(Type::kString), string_(value) {}
  /*implicit*/ Json(Array value)
      : type_(Type::kArray), array_(std::move(value)) {}
  /*implicit*/ Json(Object value)
      : type_(Type::kObject), object_(std::move(value)) {}

  static Json MakeObject() { return Json(Object{}); }
  static Json MakeArray() { return Json(Array{}); }

  Type type() const { return type_; }
  bool IsNull() const { return type_ == Type::kNull; }
  bool IsBool() const { return type_ == Type::kBool; }
  bool IsInt() const { return type_ == Type::kInt; }
  bool IsNumber() const { return type_ == Type::kInt || type_ == Type::kDouble; }
  bool IsString() const { return type_ == Type::kString; }
  bool IsArray() const { return type_ == Type::kArray; }
  bool IsObject() const { return type_ == Type::kObject; }

  /// Typed accessors; behaviour is checked (aborts) in debug builds and
  /// defined (returns zero value) otherwise. Prefer the Get* forms below
  /// for untrusted input.
  bool AsBool() const { return IsBool() ? bool_ : false; }
  std::int64_t AsInt() const {
    if (IsInt()) return int_;
    if (type_ == Type::kDouble) return static_cast<std::int64_t>(double_);
    return 0;
  }
  double AsDouble() const {
    if (type_ == Type::kDouble) return double_;
    if (IsInt()) return static_cast<double>(int_);
    return 0.0;
  }
  const std::string& AsString() const { return string_; }
  /// Mutable access for callers that move large strings (session blobs)
  /// in or out of a document without copying.
  std::string& AsString() { return string_; }
  const Array& AsArray() const { return array_; }
  Array& AsArray() { return array_; }
  const Object& AsObject() const { return object_; }
  Object& AsObject() { return object_; }

  /// Object field access. `Find` returns nullptr when missing or when this
  /// node is not an object.
  const Json* Find(std::string_view key) const;
  Json* Find(std::string_view key);

  /// Sets (or replaces) an object field; converts a null node to an object.
  void Set(std::string_view key, Json value);

  /// Appends to an array; converts a null node to an array.
  void Append(Json value);

  /// Convenience typed getters with defaults, for config parsing.
  bool GetBool(std::string_view key, bool fallback) const;
  std::int64_t GetInt(std::string_view key, std::int64_t fallback) const;
  double GetDouble(std::string_view key, double fallback) const;
  std::string GetString(std::string_view key, std::string_view fallback) const;

  /// Structural equality. Int and double nodes compare equal when their
  /// numeric values are equal (2 == 2.0), matching round-trip expectations.
  friend bool operator==(const Json& a, const Json& b);
  friend bool operator!=(const Json& a, const Json& b) { return !(a == b); }

  /// Compact serialization ({"a":1}).
  std::string Dump() const;

  /// Pretty serialization with two-space indentation.
  std::string DumpPretty() const;

  /// Serialized size in bytes without building the string (used by the
  /// load model to cost payloads cheaply).
  std::size_t DumpSize() const;

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses a JSON document. Accepts exactly one top-level value; trailing
/// whitespace is allowed, trailing content is an error.
Result<Json> Parse(std::string_view text);

/// Escapes `text` as the body of a JSON string literal (no quotes added).
void EscapeStringInto(std::string_view text, std::string& out);

}  // namespace rvss::json
