// Branch prediction: saturating-counter predictors, pattern history table,
// branch target buffer and history registers.
//
// Matches the paper's Branch prediction tab: BTB size, PHT size, predictor
// type (zero / one / two bit), configurable default state, and local or
// global history shift registers. `historyBits = 0` reproduces the paper's
// plain PC-indexed PHT; non-zero history bits mix a shift register into
// the PHT index (local = per-PC registers, global = one register), which
// the paper lists under future work ("advanced branch predictors") and we
// ship as an extension, exercised by bench_predictor_sweep.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "config/cpu_config.h"

namespace rvss::predictor {

/// One direction predictor entry: an n-bit saturating counter (n in
/// {0, 1, 2}). Zero-bit predictors have no state and always predict the
/// configured default direction.
class BitPredictor {
 public:
  BitPredictor(config::PredictorType type, std::uint32_t initialState);

  /// Predicted direction (true = taken).
  bool Predict() const;

  /// Trains with the resolved outcome.
  void Update(bool taken);

  /// Raw counter value (GUI display: e.g. "weakly taken").
  std::uint32_t state() const { return state_; }

  /// Human-readable state name ("strongly not taken", ...).
  const char* StateName() const;

 private:
  config::PredictorType type_;
  std::uint32_t state_ = 0;
  std::uint32_t maxState_ = 0;
};

/// Pattern history table: `size` BitPredictors indexed by PC (optionally
/// hashed with branch history).
class PatternHistoryTable {
 public:
  explicit PatternHistoryTable(const config::PredictorConfig& config);

  bool Predict(std::uint32_t index) const;
  void Update(std::uint32_t index, bool taken);
  const BitPredictor& entry(std::uint32_t index) const {
    return entries_[index & mask_];
  }
  std::uint32_t size() const { return static_cast<std::uint32_t>(entries_.size()); }

  void Reset();

  /// Copyable snapshot of every counter.
  struct State {
    std::vector<BitPredictor> entries;
  };
  State SaveState() const { return State{entries_}; }
  void RestoreState(const State& state) { entries_ = state.entries; }

 private:
  config::PredictorConfig config_;  // snapshot: derived
  std::vector<BitPredictor> entries_;
  std::uint32_t mask_;  // snapshot: derived
};

/// Branch target buffer: direct-mapped PC -> target cache.
class BranchTargetBuffer {
 private:
  struct Entry {
    bool valid = false;
    std::uint32_t pc = 0;
    std::uint32_t target = 0;
  };

 public:
  explicit BranchTargetBuffer(std::uint32_t size);

  /// Returns the stored target for `pc`, or nullopt on miss.
  std::optional<std::uint32_t> Lookup(std::uint32_t pc) const;

  void Insert(std::uint32_t pc, std::uint32_t target);
  void Reset();

  std::uint32_t size() const { return static_cast<std::uint32_t>(entries_.size()); }

  /// Copyable snapshot of every entry.
  struct State {
    std::vector<Entry> entries;
  };
  State SaveState() const { return State{entries_}; }
  void RestoreState(const State& state) { entries_ = state.entries; }

 private:
  std::vector<Entry> entries_;
  std::uint32_t mask_;  // snapshot: derived
};

/// The complete front-end predictor: BTB + PHT + history registers.
///
/// Speculative-history discipline: Predict() uses the current (speculative)
/// history; the fetch unit updates speculative history as it predicts, and
/// OnResolve() repairs it on mispredictions using the checkpoint the
/// instruction carried.
class PredictorUnit {
 public:
  explicit PredictorUnit(const config::PredictorConfig& config);

  struct Prediction {
    bool predictTaken = false;
    std::optional<std::uint32_t> target;  ///< from BTB; nullopt on BTB miss
    std::uint32_t historyCheckpoint = 0;  ///< to restore on mispredict
  };

  /// Predicts direction and target for the branch at `pc`.
  Prediction Predict(std::uint32_t pc);

  /// Advances speculative history after predicting direction `taken`.
  void SpeculateOutcome(std::uint32_t pc, bool taken);

  /// Trains tables with a resolved branch and, on a misprediction, restores
  /// the history register(s) from `checkpoint` and re-applies the actual
  /// outcome.
  void Resolve(std::uint32_t pc, bool taken, std::uint32_t target,
               bool mispredicted, std::uint32_t checkpoint);

  /// Trains only the BTB (indirect jumps: jalr targets, no direction state).
  void TrainIndirect(std::uint32_t pc, std::uint32_t target) {
    btb_.Insert(pc, target);
  }

  void Reset();

  /// Copyable snapshot of all trained state: PHT counters, BTB entries and
  /// the speculative history registers.
  struct State {
    PatternHistoryTable::State pht;
    BranchTargetBuffer::State btb;
    std::uint32_t globalHistory = 0;
    std::vector<std::uint32_t> localHistories;
  };
  State SaveState() const {
    return State{pht_.SaveState(), btb_.SaveState(), globalHistory_,
                 localHistories_};
  }
  void RestoreState(const State& state) {
    pht_.RestoreState(state.pht);
    btb_.RestoreState(state.btb);
    globalHistory_ = state.globalHistory;
    localHistories_ = state.localHistories;
  }

  const PatternHistoryTable& pht() const { return pht_; }
  const BranchTargetBuffer& btb() const { return btb_; }

 private:
  std::uint32_t PhtIndex(std::uint32_t pc, std::uint32_t history) const;
  std::uint32_t HistoryFor(std::uint32_t pc) const;
  void SetHistoryFor(std::uint32_t pc, std::uint32_t history);

  config::PredictorConfig config_;  // snapshot: derived
  PatternHistoryTable pht_;
  BranchTargetBuffer btb_;
  std::uint32_t historyMask_;  // snapshot: derived
  std::uint32_t globalHistory_ = 0;
  std::vector<std::uint32_t> localHistories_;
};

}  // namespace rvss::predictor
