#include "predictor/predictors.h"

namespace rvss::predictor {

BitPredictor::BitPredictor(config::PredictorType type,
                           std::uint32_t initialState)
    : type_(type), state_(initialState) {
  switch (type_) {
    // Zero-bit predictors have no trained state, but the configured
    // default acts as the fixed direction (0 = not taken, 1 = taken).
    case config::PredictorType::kZeroBit: maxState_ = 1; break;
    case config::PredictorType::kOneBit: maxState_ = 1; break;
    case config::PredictorType::kTwoBit: maxState_ = 3; break;
  }
  if (state_ > maxState_) state_ = maxState_;
}

bool BitPredictor::Predict() const {
  switch (type_) {
    case config::PredictorType::kZeroBit:
      // Stateless: the "default state" acts as the fixed prediction
      // (0 = always not taken, which is the classic static predictor).
      return state_ != 0;
    case config::PredictorType::kOneBit:
      return state_ != 0;
    case config::PredictorType::kTwoBit:
      return state_ >= 2;
  }
  return false;
}

void BitPredictor::Update(bool taken) {
  if (type_ == config::PredictorType::kZeroBit) return;
  if (taken) {
    if (state_ < maxState_) ++state_;
  } else {
    if (state_ > 0) --state_;
  }
}

const char* BitPredictor::StateName() const {
  switch (type_) {
    case config::PredictorType::kZeroBit:
      return state_ != 0 ? "always taken" : "always not taken";
    case config::PredictorType::kOneBit:
      return state_ != 0 ? "taken" : "not taken";
    case config::PredictorType::kTwoBit:
      switch (state_) {
        case 0: return "strongly not taken";
        case 1: return "weakly not taken";
        case 2: return "weakly taken";
        default: return "strongly taken";
      }
  }
  return "unknown";
}

PatternHistoryTable::PatternHistoryTable(const config::PredictorConfig& config)
    : config_(config), mask_(config.phtSize - 1) {
  entries_.assign(config.phtSize,
                  BitPredictor(config.type, config.defaultState));
}

bool PatternHistoryTable::Predict(std::uint32_t index) const {
  return entries_[index & mask_].Predict();
}

void PatternHistoryTable::Update(std::uint32_t index, bool taken) {
  entries_[index & mask_].Update(taken);
}

void PatternHistoryTable::Reset() {
  entries_.assign(entries_.size(),
                  BitPredictor(config_.type, config_.defaultState));
}

BranchTargetBuffer::BranchTargetBuffer(std::uint32_t size)
    : entries_(size), mask_(size - 1) {}

std::optional<std::uint32_t> BranchTargetBuffer::Lookup(std::uint32_t pc) const {
  const Entry& entry = entries_[(pc >> 2) & mask_];
  if (entry.valid && entry.pc == pc) return entry.target;
  return std::nullopt;
}

void BranchTargetBuffer::Insert(std::uint32_t pc, std::uint32_t target) {
  Entry& entry = entries_[(pc >> 2) & mask_];
  entry.valid = true;
  entry.pc = pc;
  entry.target = target;
}

void BranchTargetBuffer::Reset() { entries_.assign(entries_.size(), Entry{}); }

PredictorUnit::PredictorUnit(const config::PredictorConfig& config)
    : config_(config),
      pht_(config),
      btb_(config.btbSize),
      historyMask_((config.historyBits >= 32
                        ? 0xffffffffu
                        : (1u << config.historyBits) - 1u)) {
  if (config_.history == config::HistoryKind::kLocal &&
      config_.historyBits > 0) {
    localHistories_.assign(config_.phtSize, 0);
  }
}

std::uint32_t PredictorUnit::HistoryFor(std::uint32_t pc) const {
  if (config_.historyBits == 0) return 0;
  if (config_.history == config::HistoryKind::kGlobal) return globalHistory_;
  return localHistories_[(pc >> 2) & (config_.phtSize - 1)];
}

void PredictorUnit::SetHistoryFor(std::uint32_t pc, std::uint32_t history) {
  if (config_.historyBits == 0) return;
  if (config_.history == config::HistoryKind::kGlobal) {
    globalHistory_ = history & historyMask_;
  } else {
    localHistories_[(pc >> 2) & (config_.phtSize - 1)] = history & historyMask_;
  }
}

std::uint32_t PredictorUnit::PhtIndex(std::uint32_t pc,
                                      std::uint32_t history) const {
  // gshare-style XOR mix; with historyBits == 0 this degenerates to plain
  // PC indexing, the paper's base design.
  return ((pc >> 2) ^ history) & (config_.phtSize - 1);
}

PredictorUnit::Prediction PredictorUnit::Predict(std::uint32_t pc) {
  Prediction prediction;
  const std::uint32_t history = HistoryFor(pc);
  prediction.historyCheckpoint = history;
  prediction.predictTaken = pht_.Predict(PhtIndex(pc, history));
  prediction.target = btb_.Lookup(pc);
  return prediction;
}

void PredictorUnit::SpeculateOutcome(std::uint32_t pc, bool taken) {
  if (config_.historyBits == 0) return;
  const std::uint32_t history = HistoryFor(pc);
  SetHistoryFor(pc, (history << 1) | (taken ? 1u : 0u));
}

void PredictorUnit::Resolve(std::uint32_t pc, bool taken, std::uint32_t target,
                            bool mispredicted, std::uint32_t checkpoint) {
  pht_.Update(PhtIndex(pc, checkpoint), taken);
  if (taken) btb_.Insert(pc, target);
  if (mispredicted && config_.historyBits != 0) {
    // Squash the wrong speculative history and re-apply the real outcome.
    SetHistoryFor(pc, (checkpoint << 1) | (taken ? 1u : 0u));
  }
}

void PredictorUnit::Reset() {
  pht_.Reset();
  btb_.Reset();
  globalHistory_ = 0;
  if (!localHistories_.empty()) {
    localHistories_.assign(localHistories_.size(), 0);
  }
}

}  // namespace rvss::predictor
