#include "memory/memory_system.h"

namespace rvss::memory {

MemorySystem::MemorySystem(const config::CpuConfig& config)
    : config_(config), memory_(config.memory.sizeBytes) {
  if (config_.cache.enabled) {
    cache_ = std::make_unique<Cache>(config_.cache, config_.memory.loadLatency,
                                     config_.memory.storeLatency,
                                     config_.randomSeed);
  }
}

MemoryTransaction MemorySystem::Register(std::uint32_t address,
                                         std::uint32_t sizeBytes, bool isStore,
                                         std::uint64_t cycle) {
  MemoryTransaction txn;
  txn.id = nextTransactionId_++;
  txn.address = address;
  txn.sizeBytes = sizeBytes;
  txn.isStore = isStore;
  txn.issuedCycle = cycle;

  ++stats_.accesses;
  if (isStore) {
    ++stats_.stores;
  } else {
    ++stats_.loads;
  }

  if (cache_) {
    CacheAccessResult result = cache_->Access(address, sizeBytes, isStore, cycle);
    txn.cacheHit = result.hit;
    txn.causedEviction = result.evicted;
    txn.evictionWasDirty = result.evictedDirty;
    txn.completesAtCycle = cycle + result.latency;
    if (result.hit) {
      ++stats_.cacheHits;
    } else {
      ++stats_.cacheMisses;
    }
    if (result.evicted) ++stats_.evictions;
    if (result.evictedDirty) ++stats_.dirtyEvictions;
    stats_.bytesReadFromMemory += result.memoryBytesRead;
    stats_.bytesWrittenToMemory += result.memoryBytesWritten;
  } else {
    const std::uint32_t latency =
        isStore ? config_.memory.storeLatency : config_.memory.loadLatency;
    txn.completesAtCycle = cycle + latency;
    if (isStore) {
      stats_.bytesWrittenToMemory += sizeBytes;
    } else {
      stats_.bytesReadFromMemory += sizeBytes;
    }
  }
  return txn;
}

MemorySystem::State MemorySystem::SaveState(bool includeMemoryBytes) const {
  State state;
  if (includeMemoryBytes) state.memory = memory_.SaveState();
  if (cache_) state.cache = cache_->SaveState();
  state.stats = stats_;
  state.nextTransactionId = nextTransactionId_;
  return state;
}

void MemorySystem::RestoreState(const State& state) {
  memory_.RestoreState(state.memory);
  if (cache_ && state.cache.has_value()) cache_->RestoreState(*state.cache);
  stats_ = state.stats;
  nextTransactionId_ = state.nextTransactionId;
}

void MemorySystem::Reset() {
  memory_.Clear();
  if (cache_) cache_->Reset();
  stats_ = MemoryStats{};
  nextTransactionId_ = 1;
}

}  // namespace rvss::memory
