#include "memory/dump.h"

#include "common/strings.h"

namespace rvss::memory {
namespace {

std::uint32_t ClampLength(const MainMemory& memory, std::uint32_t start,
                          std::uint32_t length) {
  if (start >= memory.size()) return 0;
  const std::uint32_t available = memory.size() - start;
  if (length == 0 || length > available) return available;
  return length;
}

}  // namespace

std::string ExportBinary(const MainMemory& memory, std::uint32_t start,
                         std::uint32_t length) {
  length = ClampLength(memory, start, length);
  return std::string(reinterpret_cast<const char*>(memory.bytes().data()) + start,
                     length);
}

Status ImportBinary(MainMemory& memory, std::string_view data,
                    std::uint32_t start) {
  if (!memory.InBounds(start, static_cast<std::uint32_t>(data.size()))) {
    return Status::Fail(ErrorKind::kInvalidArgument,
                        "binary dump does not fit in memory");
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    memory.Write8(start + static_cast<std::uint32_t>(i),
                  static_cast<std::uint8_t>(data[i]));
  }
  return Status::Ok();
}

std::string ExportCsv(const MainMemory& memory, std::uint32_t start,
                      std::uint32_t length) {
  length = ClampLength(memory, start, length);
  std::string out = "address,value\n";
  for (std::uint32_t i = 0; i < length; ++i) {
    const std::uint32_t address = start + i;
    out += StrFormat("0x%08x,%u\n", address,
                     static_cast<unsigned>(memory.Read8(address)));
  }
  return out;
}

Status ImportCsv(MainMemory& memory, std::string_view csv) {
  std::uint32_t lineNo = 0;
  for (std::string_view line : Split(csv, '\n')) {
    ++lineNo;
    line = Trim(line);
    if (line.empty() || line == "address,value") continue;
    auto fields = Split(line, ',');
    if (fields.size() != 2) {
      return Status::Fail(ErrorKind::kParse, "CSV row needs 2 fields",
                          SourcePos{lineNo, 0});
    }
    auto address = ParseInt(Trim(fields[0]));
    auto value = ParseInt(Trim(fields[1]));
    if (!address || !value) {
      return Status::Fail(ErrorKind::kParse, "malformed CSV row",
                          SourcePos{lineNo, 0});
    }
    if (*address < 0 || *value < 0 || *value > 255 ||
        !memory.InBounds(static_cast<std::uint32_t>(*address), 1)) {
      return Status::Fail(ErrorKind::kParse, "CSV row out of range",
                          SourcePos{lineNo, 0});
    }
    memory.Write8(static_cast<std::uint32_t>(*address),
                  static_cast<std::uint8_t>(*value));
  }
  return Status::Ok();
}

}  // namespace rvss::memory
