#include "memory/cache.h"

#include "common/bitops.h"

namespace rvss::memory {

Cache::Cache(const config::CacheConfig& config, std::uint32_t loadLatency,
             std::uint32_t storeLatency, std::uint64_t randomSeed)
    : config_(config),
      loadLatency_(loadLatency),
      storeLatency_(storeLatency),
      seed_(randomSeed),
      rng_(randomSeed) {
  ways_ = config_.associativity;
  setCount_ = config_.lineCount / config_.associativity;
  offsetBits_ = Log2(config_.lineSizeBytes);
  indexBits_ = Log2(setCount_);
  lines_.assign(static_cast<std::size_t>(setCount_) * ways_, Line{});
}

void Cache::Reset() {
  lines_.assign(lines_.size(), Line{});
  rng_.Seed(seed_);
  insertCounter_ = 0;
}

Cache::Line* Cache::Lookup(std::uint32_t set, std::uint32_t tag) {
  Line* base = &lines_[static_cast<std::size_t>(set) * ways_];
  for (std::uint32_t way = 0; way < ways_; ++way) {
    if (base[way].valid && base[way].tag == tag) return &base[way];
  }
  return nullptr;
}

std::uint32_t Cache::VictimWay(std::uint32_t set) {
  Line* base = &lines_[static_cast<std::size_t>(set) * ways_];
  // Prefer an invalid way.
  for (std::uint32_t way = 0; way < ways_; ++way) {
    if (!base[way].valid) return way;
  }
  switch (config_.replacement) {
    case config::ReplacementPolicy::kRandom:
      return static_cast<std::uint32_t>(rng_.NextBelow(ways_));
    case config::ReplacementPolicy::kFifo: {
      std::uint32_t victim = 0;
      for (std::uint32_t way = 1; way < ways_; ++way) {
        if (base[way].insertTime < base[victim].insertTime) victim = way;
      }
      return victim;
    }
    case config::ReplacementPolicy::kLru:
    default: {
      std::uint32_t victim = 0;
      for (std::uint32_t way = 1; way < ways_; ++way) {
        if (base[way].lastUse < base[victim].lastUse) victim = way;
      }
      return victim;
    }
  }
}

void Cache::AccessLine(std::uint32_t address, bool isStore, std::uint64_t cycle,
                       CacheAccessResult& result) {
  const std::uint32_t set = (address >> offsetBits_) & (setCount_ - 1);
  const std::uint32_t tag = address >> (offsetBits_ + indexBits_);

  result.latency += config_.accessDelay;

  Line* line = Lookup(set, tag);
  if (line != nullptr) {
    result.hit = true;
  } else {
    // Miss: charge the refill and install the line.
    result.hit = false;
    result.latency += config_.lineReplacementDelay + loadLatency_;
    result.memoryBytesRead += config_.lineSizeBytes;

    const std::uint32_t way = VictimWay(set);
    Line& victim = lines_[static_cast<std::size_t>(set) * ways_ + way];
    if (victim.valid) {
      result.evicted = true;
      if (victim.dirty) {
        result.evictedDirty = true;
        result.latency += storeLatency_;
        result.memoryBytesWritten += config_.lineSizeBytes;
      }
    }
    victim.valid = true;
    victim.dirty = false;
    victim.tag = tag;
    victim.insertTime = ++insertCounter_;
    line = &victim;
  }
  line->lastUse = cycle;

  if (isStore) {
    if (config_.storePolicy == config::StorePolicy::kWriteBack) {
      line->dirty = true;
    } else {
      // Write-through: every store also goes to memory.
      result.latency += storeLatency_;
    }
  }
}

CacheAccessResult Cache::Access(std::uint32_t address, std::uint32_t sizeBytes,
                                bool isStore, std::uint64_t cycle) {
  CacheAccessResult result;
  const std::uint32_t lineMask = config_.lineSizeBytes - 1;
  const std::uint32_t firstLine = address & ~lineMask;
  const std::uint32_t lastLine =
      (address + (sizeBytes == 0 ? 0 : sizeBytes - 1)) & ~lineMask;

  bool allHit = true;
  for (std::uint32_t lineAddr = firstLine;;
       lineAddr += config_.lineSizeBytes) {
    CacheAccessResult part;
    AccessLine(lineAddr, isStore, cycle, part);
    allHit = allHit && part.hit;
    result.latency += part.latency;
    result.evicted = result.evicted || part.evicted;
    result.evictedDirty = result.evictedDirty || part.evictedDirty;
    result.memoryBytesRead += part.memoryBytesRead;
    result.memoryBytesWritten += part.memoryBytesWritten;
    if (lineAddr == lastLine) break;
  }
  result.hit = allHit;
  if (isStore && config_.storePolicy == config::StorePolicy::kWriteThrough) {
    // Traffic accounting: write-through stores write the accessed bytes.
    result.memoryBytesWritten += sizeBytes;
  }
  return result;
}

std::uint32_t Cache::FlushLine(std::uint32_t address) {
  const std::uint32_t set = (address >> offsetBits_) & (setCount_ - 1);
  const std::uint32_t tag = address >> (offsetBits_ + indexBits_);
  Line* line = Lookup(set, tag);
  if (line == nullptr) return 0;
  std::uint32_t cost = 0;
  if (line->dirty) cost = storeLatency_;
  line->valid = false;
  line->dirty = false;
  return cost;
}

CacheLineView Cache::Inspect(std::uint32_t set, std::uint32_t way) const {
  const Line& line = lines_[static_cast<std::size_t>(set) * ways_ + way];
  CacheLineView view;
  view.valid = line.valid;
  view.dirty = line.dirty;
  view.tag = line.tag;
  view.baseAddress =
      (line.tag << (offsetBits_ + indexBits_)) | (set << offsetBits_);
  view.lastUseCycle = line.lastUse;
  return view;
}

}  // namespace rvss::memory
