#include "memory/main_memory.h"

#include <algorithm>

namespace rvss::memory {

std::uint16_t MainMemory::Read16(std::uint32_t address) const {
  return static_cast<std::uint16_t>(bytes_[address]) |
         static_cast<std::uint16_t>(bytes_[address + 1]) << 8;
}

std::uint32_t MainMemory::Read32(std::uint32_t address) const {
  return static_cast<std::uint32_t>(bytes_[address]) |
         static_cast<std::uint32_t>(bytes_[address + 1]) << 8 |
         static_cast<std::uint32_t>(bytes_[address + 2]) << 16 |
         static_cast<std::uint32_t>(bytes_[address + 3]) << 24;
}

std::uint64_t MainMemory::Read64(std::uint32_t address) const {
  return static_cast<std::uint64_t>(Read32(address)) |
         static_cast<std::uint64_t>(Read32(address + 4)) << 32;
}

void MainMemory::Write16(std::uint32_t address, std::uint16_t value) {
  bytes_[address] = static_cast<std::uint8_t>(value);
  bytes_[address + 1] = static_cast<std::uint8_t>(value >> 8);
  MarkDirtyRange(address, 2);
}

void MainMemory::Write32(std::uint32_t address, std::uint32_t value) {
  Write16(address, static_cast<std::uint16_t>(value));
  Write16(address + 2, static_cast<std::uint16_t>(value >> 16));
}

void MainMemory::Write64(std::uint32_t address, std::uint64_t value) {
  Write32(address, static_cast<std::uint32_t>(value));
  Write32(address + 4, static_cast<std::uint32_t>(value >> 32));
}

std::uint64_t MainMemory::ReadBytes(std::uint32_t address,
                                    std::uint32_t accessSize) const {
  switch (accessSize) {
    case 1: return Read8(address);
    case 2: return Read16(address);
    case 4: return Read32(address);
    default: return Read64(address);
  }
}

void MainMemory::WriteBytes(std::uint32_t address, std::uint32_t accessSize,
                            std::uint64_t value) {
  switch (accessSize) {
    case 1: Write8(address, static_cast<std::uint8_t>(value)); break;
    case 2: Write16(address, static_cast<std::uint16_t>(value)); break;
    case 4: Write32(address, static_cast<std::uint32_t>(value)); break;
    default: Write64(address, value); break;
  }
}

void MainMemory::Clear() {
  std::fill(bytes_.begin(), bytes_.end(), 0);
  MarkAllDirty();
}

void MainMemory::FoldDirtyInto(std::vector<std::uint8_t>& accumulator) const {
  accumulator.resize(dirtyPages_.size(), 1);
  for (std::size_t page = 0; page < dirtyPages_.size(); ++page) {
    accumulator[page] |= dirtyPages_[page];
  }
}

void MainMemory::ClearDirtyFlags() {
  for (std::size_t page = 0; page < dirtyPages_.size(); ++page) {
    dirtySinceBase_[page] |= dirtyPages_[page];
  }
  std::fill(dirtyPages_.begin(), dirtyPages_.end(), 0);
}

void MainMemory::MarkAllDirty() {
  std::fill(dirtyPages_.begin(), dirtyPages_.end(), 1);
  std::fill(dirtySinceBase_.begin(), dirtySinceBase_.end(), 1);
}

std::vector<std::uint8_t> MainMemory::DirtySinceBase() const {
  std::vector<std::uint8_t> pages(dirtyPages_.size(), 0);
  for (std::size_t page = 0; page < pages.size(); ++page) {
    pages[page] = PageDirtySinceBase(static_cast<std::uint32_t>(page)) ? 1 : 0;
  }
  return pages;
}

void MainMemory::RebaseDirtyTracking() {
  std::fill(dirtyPages_.begin(), dirtyPages_.end(), 0);
  std::fill(dirtySinceBase_.begin(), dirtySinceBase_.end(), 0);
}

void MainMemory::SetDirtySinceBase(const std::vector<std::uint8_t>& pages) {
  std::fill(dirtyPages_.begin(), dirtyPages_.end(), 0);
  for (std::size_t page = 0; page < dirtySinceBase_.size(); ++page) {
    dirtySinceBase_[page] = page < pages.size() ? pages[page] : 1;
  }
}

}  // namespace rvss::memory
