// Static data-array definitions — the paper's Memory Settings window.
//
// Users define global arrays (basic data types, explicit alignment) filled
// with listed values, a repeated constant, or random values; the allocator
// places them after the call stack and publishes label addresses that
// assembly programs (and `extern` symbols in C) resolve against.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "json/json.h"
#include "memory/main_memory.h"

namespace rvss::memory {

enum class DataTypeKind : std::uint8_t { kByte, kHalf, kWord, kFloat, kDouble };

const char* ToString(DataTypeKind kind);
std::uint32_t SizeOf(DataTypeKind kind);

/// One user-defined array.
struct ArrayDefinition {
  std::string name;
  DataTypeKind type = DataTypeKind::kWord;
  std::uint32_t alignment = 0;  ///< bytes; 0 = natural alignment of the type

  enum class Fill : std::uint8_t {
    kValues,    ///< explicit comma-separated values
    kConstant,  ///< `count` copies of values[0] (e.g. zeros)
    kRandom,    ///< `count` deterministic pseudo-random values
  };
  Fill fill = Fill::kValues;
  std::vector<double> values;   ///< explicit values / the constant
  std::uint32_t count = 0;      ///< element count for kConstant / kRandom
  std::uint64_t randomSeed = 1;

  std::uint32_t ElementCount() const {
    return fill == Fill::kValues ? static_cast<std::uint32_t>(values.size())
                                 : count;
  }
  std::uint32_t ByteSize() const { return ElementCount() * SizeOf(type); }
};

/// Result of allocation: label -> start address, in definition order.
struct MemoryLayout {
  std::map<std::string, std::uint32_t> symbols;
  std::uint32_t dataStart = 0;  ///< first byte used
  std::uint32_t dataEnd = 0;    ///< one past the last byte used
};

/// Pure allocation: computes where each array would start, without writing
/// anything. `memorySize` bounds the layout. Used by the program loader to
/// fix data addresses before assembling.
Result<MemoryLayout> ComputeLayout(const std::vector<ArrayDefinition>& arrays,
                                   std::uint32_t baseAddress,
                                   std::uint32_t memorySize);

/// Allocates and writes `arrays` into `memory` starting at `baseAddress`
/// (typically just above the call stack). Fails when arrays collide with
/// the end of memory or a name repeats.
Result<MemoryLayout> InitializeArrays(MainMemory& memory,
                                      const std::vector<ArrayDefinition>& arrays,
                                      std::uint32_t baseAddress);

/// JSON round trip for the memory-settings window import/export.
json::Json ToJson(const ArrayDefinition& def);
Result<ArrayDefinition> ArrayDefinitionFromJson(const json::Json& node);

}  // namespace rvss::memory
