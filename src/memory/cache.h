// Configurable L1 data cache timing model.
//
// Geometry (line count, line size, associativity), replacement policy
// (LRU / FIFO / Random) and store policy (write-back / write-through) come
// straight from the paper's Cache settings tab. The cache is a *timing and
// statistics* model: data always lives in MainMemory (see main_memory.h
// for why this is architecturally exact), and the cache tracks which lines
// would be resident to charge hit or miss latencies and count traffic.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "config/cpu_config.h"

namespace rvss::memory {

/// Result of one cache access.
struct CacheAccessResult {
  bool hit = false;
  std::uint32_t latency = 0;        ///< cycles charged to this access
  bool evicted = false;             ///< a valid line was replaced
  bool evictedDirty = false;        ///< ... and it needed writing back
  std::uint32_t memoryBytesRead = 0;     ///< line fill traffic
  std::uint32_t memoryBytesWritten = 0;  ///< write-back / write-through traffic
};

/// One line's externally visible state (GUI cache view / tests).
struct CacheLineView {
  bool valid = false;
  bool dirty = false;
  std::uint32_t tag = 0;
  std::uint32_t baseAddress = 0;
  std::uint64_t lastUseCycle = 0;
};

class Cache {
 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    std::uint32_t tag = 0;
    std::uint64_t lastUse = 0;   ///< for LRU
    std::uint64_t insertTime = 0;///< for FIFO
  };

 public:
  /// `config` must have passed config::Validate. `loadLatency` and
  /// `storeLatency` are the main-memory latencies charged on misses and
  /// write-throughs.
  Cache(const config::CacheConfig& config, std::uint32_t loadLatency,
        std::uint32_t storeLatency, std::uint64_t randomSeed);

  /// Performs one access at `cycle`, updating line state, and returns the
  /// latency and traffic. An access that straddles two lines touches both
  /// (charged sequentially, paper-style simplicity).
  CacheAccessResult Access(std::uint32_t address, std::uint32_t sizeBytes,
                           bool isStore, std::uint64_t cycle);

  /// Invalidates everything (simulation reset). Deterministic: also
  /// reseeds the Random-policy generator.
  void Reset();

  /// Flushes one line if resident: write-back cost is returned. Models the
  /// paper's "cache line flushing" transaction support.
  std::uint32_t FlushLine(std::uint32_t address);

  std::uint32_t setCount() const { return setCount_; }
  std::uint32_t ways() const { return ways_; }
  std::uint32_t lineSize() const { return config_.lineSizeBytes; }

  /// Snapshot of a set for visualization; `way` < ways().
  CacheLineView Inspect(std::uint32_t set, std::uint32_t way) const;

  /// Copyable snapshot of the mutable cache state: resident lines, the
  /// Random-policy generator position and the FIFO insertion clock.
  /// Geometry and policy are configuration, not state.
  struct State {
    std::vector<Line> lines;
    Rng rng;
    std::uint64_t insertCounter = 0;
  };
  State SaveState() const { return State{lines_, rng_, insertCounter_}; }
  void RestoreState(const State& state) {
    lines_ = state.lines;
    rng_ = state.rng;
    insertCounter_ = state.insertCounter;
  }

 private:
  Line* Lookup(std::uint32_t set, std::uint32_t tag);
  std::uint32_t VictimWay(std::uint32_t set);

  /// Handles one line-aligned chunk of an access.
  void AccessLine(std::uint32_t address, bool isStore, std::uint64_t cycle,
                  CacheAccessResult& result);

  config::CacheConfig config_;       // snapshot: derived
  std::uint32_t loadLatency_;        // snapshot: derived
  std::uint32_t storeLatency_;       // snapshot: derived
  std::uint64_t seed_;               // snapshot: derived
  std::uint32_t setCount_ = 1;       // snapshot: derived
  std::uint32_t ways_ = 1;           // snapshot: derived
  std::uint32_t offsetBits_ = 0;     // snapshot: derived
  std::uint32_t indexBits_ = 0;      // snapshot: derived
  std::vector<Line> lines_;  ///< sets * ways, row-major by set
  Rng rng_;
  std::uint64_t insertCounter_ = 0;
};

}  // namespace rvss::memory
