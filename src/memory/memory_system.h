// MemorySystem: the transactional front door to memory + L1 cache.
//
// Pipeline blocks never talk to MainMemory or Cache directly for timed
// accesses; they register a transaction and receive back the completion
// cycle (paper §III-A). This keeps access-time configuration, cache-line
// flushing and the interactive-simulation metadata in one place, and it is
// the single site where cache statistics accumulate.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "config/cpu_config.h"
#include "memory/cache.h"
#include "memory/main_memory.h"
#include "memory/transaction.h"

namespace rvss::memory {

/// Aggregate statistics (the paper's cache statistics panel).
struct MemoryStats {
  std::uint64_t accesses = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirtyEvictions = 0;
  std::uint64_t bytesReadFromMemory = 0;
  std::uint64_t bytesWrittenToMemory = 0;

  double HitRate() const {
    const std::uint64_t total = cacheHits + cacheMisses;
    return total == 0 ? 0.0 : static_cast<double>(cacheHits) / total;
  }
};

class MemorySystem {
 public:
  explicit MemorySystem(const config::CpuConfig& config);

  MainMemory& memory() { return memory_; }
  const MainMemory& memory() const { return memory_; }

  /// Cache model, or nullptr when disabled in the configuration.
  Cache* cache() { return cache_ ? cache_.get() : nullptr; }
  const Cache* cache() const { return cache_ ? cache_.get() : nullptr; }

  /// Registers a timed access starting at `cycle`; returns the transaction
  /// with `completesAtCycle` and the hit/eviction metadata populated.
  MemoryTransaction Register(std::uint32_t address, std::uint32_t sizeBytes,
                             bool isStore, std::uint64_t cycle);

  const MemoryStats& stats() const { return stats_; }

  /// Clears memory contents, cache state and statistics.
  void Reset();

  /// Copyable snapshot of everything mutable behind the front door: memory
  /// contents, cache residency, statistics and the transaction counter.
  struct State {
    MainMemory::State memory;
    std::optional<Cache::State> cache;  ///< engaged iff the cache is enabled
    MemoryStats stats;
    std::uint64_t nextTransactionId = 1;
  };
  /// `includeMemoryBytes = false` skips the (potentially multi-MiB) byte
  /// image — for delta checkpoints, which store dirty pages separately.
  State SaveState(bool includeMemoryBytes = true) const;
  void RestoreState(const State& state);

 private:
  config::CpuConfig config_;  // snapshot: derived
  MainMemory memory_;
  std::unique_ptr<Cache> cache_;
  MemoryStats stats_;
  std::uint64_t nextTransactionId_ = 1;
};

}  // namespace rvss::memory
