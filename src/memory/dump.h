// Memory dump import/export in binary and CSV formats (paper §II-C: the
// memory editor can import and export dumps in both formats).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "memory/main_memory.h"

namespace rvss::memory {

/// Raw bytes of [start, start+length). `length == 0` means "to the end".
std::string ExportBinary(const MainMemory& memory, std::uint32_t start = 0,
                         std::uint32_t length = 0);

/// Writes `data` into memory at `start`; fails when it does not fit.
Status ImportBinary(MainMemory& memory, std::string_view data,
                    std::uint32_t start = 0);

/// CSV with one "address,value" row per byte (hex address, decimal value).
std::string ExportCsv(const MainMemory& memory, std::uint32_t start = 0,
                      std::uint32_t length = 0);

/// Parses CSV produced by ExportCsv (tolerates a header row and blank
/// lines) and applies every row.
Status ImportCsv(MainMemory& memory, std::string_view csv);

}  // namespace rvss::memory
