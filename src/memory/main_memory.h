// Main memory: a 1-D byte array with little-endian typed accessors.
//
// Matching the paper (§III-A), the simulator's memory is a flat byte array
// of predefined capacity. Functional correctness and timing are split:
// data reads/writes happen immediately on this array, while access *timing*
// is produced by MemorySystem (cache + latency model) through transaction
// objects. Stores are only performed at commit, in program order, so the
// immediate-write model is architecturally exact.
//
// The array also tracks which 4 KiB pages have been written since the last
// ClearDirtyFlags() call. The checkpoint system uses this to store *delta*
// checkpoints (only the pages touched since the last full snapshot) instead
// of whole memory images. Tracking is conservative: anything that mutates
// bytes outside the typed Write* accessors (the mutable bytes() span, Clear,
// RestoreState) marks every page dirty.
//
// A second, longer-lived accumulator tracks pages dirtied since the memory
// was last *rebased* — i.e. since it last provably equaled the session's
// base image (the post-load state a fresh Create reproduces). The snapshot
// codec's delta blob form ships only these pages. The accumulator is fed
// for free: ClearDirtyFlags() folds the per-interval dirt into it before
// clearing, so the write hot path pays nothing extra.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace rvss::memory {

class MainMemory {
 public:
  /// Dirty-tracking granularity. 4 KiB balances bitmap cost against delta
  /// precision for the 64 KiB..64 MiB memories the simulator configures.
  static constexpr std::uint32_t kPageSizeBytes = 4096;

  explicit MainMemory(std::uint32_t sizeBytes)
      : bytes_(sizeBytes, 0),
        dirtyPages_(PageCountFor(sizeBytes), 1),
        dirtySinceBase_(PageCountFor(sizeBytes), 1) {}

  std::uint32_t size() const { return static_cast<std::uint32_t>(bytes_.size()); }

  /// True when [address, address+size) lies inside memory.
  bool InBounds(std::uint32_t address, std::uint32_t accessSize) const {
    return accessSize <= bytes_.size() &&
           address <= bytes_.size() - accessSize;
  }

  /// Unchecked little-endian loads; callers bounds-check first (the LSU
  /// turns violations into runtime exceptions at commit).
  std::uint8_t Read8(std::uint32_t address) const { return bytes_[address]; }
  std::uint16_t Read16(std::uint32_t address) const;
  std::uint32_t Read32(std::uint32_t address) const;
  std::uint64_t Read64(std::uint32_t address) const;

  void Write8(std::uint32_t address, std::uint8_t value) {
    bytes_[address] = value;
    dirtyPages_[address / kPageSizeBytes] = 1;
  }
  void Write16(std::uint32_t address, std::uint16_t value);
  void Write32(std::uint32_t address, std::uint32_t value);
  void Write64(std::uint32_t address, std::uint64_t value);

  /// Generic accessors used by the load/store unit (size in {1,2,4,8}).
  std::uint64_t ReadBytes(std::uint32_t address, std::uint32_t accessSize) const;
  void WriteBytes(std::uint32_t address, std::uint32_t accessSize,
                  std::uint64_t value);

  /// Whole-memory views for dump import/export and the GUI memory pop-up.
  /// The mutable view can bypass dirty tracking, so handing it out marks
  /// everything dirty (conservative, correct).
  std::span<const std::uint8_t> bytes() const { return bytes_; }
  std::span<std::uint8_t> bytes() {
    MarkAllDirty();
    return bytes_;
  }

  /// Zeroes all contents (simulation reset).
  void Clear();

  // --- page-level dirty tracking -------------------------------------------

  std::uint32_t PageCount() const {
    return static_cast<std::uint32_t>(dirtyPages_.size());
  }
  bool PageDirty(std::uint32_t page) const { return dirtyPages_[page] != 0; }

  /// ORs this memory's dirty flags into `accumulator` (one flag per page).
  /// The checkpoint system folds per-interval dirt into a dirty-since-full
  /// set this way.
  void FoldDirtyInto(std::vector<std::uint8_t>& accumulator) const;

  void ClearDirtyFlags();
  void MarkAllDirty();

  // --- dirty-since-base tracking (delta session blobs) ---------------------

  /// True when `page` may differ from the base image. Conservative: the
  /// union of the since-base accumulator and the current dirty window.
  bool PageDirtySinceBase(std::uint32_t page) const {
    return dirtySinceBase_[page] != 0 || dirtyPages_[page] != 0;
  }

  /// One flag per page, `PageDirtySinceBase` materialized.
  std::vector<std::uint8_t> DirtySinceBase() const;

  /// Declares the current contents to *be* the base image: both trackers
  /// clear. Call only at a point where the contents provably equal what a
  /// fresh Create would produce (end of Simulation::Create).
  void RebaseDirtyTracking();

  /// Declares the current contents to differ from the base image exactly at
  /// the pages flagged in `pages` (sized like the page count; excess pages
  /// are treated as dirty). Used after a delta import, where the overlaid
  /// page set is known precisely.
  void SetDirtySinceBase(const std::vector<std::uint8_t>& pages);

  /// Copyable snapshot of the full memory contents. Restoring a snapshot
  /// taken from a memory of a different capacity also restores that
  /// capacity (snapshots always come from the same configuration).
  struct State {
    std::vector<std::uint8_t> bytes;
  };
  State SaveState() const { return State{bytes_}; }
  void RestoreState(const State& state) {
    bytes_ = state.bytes;
    dirtyPages_.assign(PageCountFor(static_cast<std::uint32_t>(bytes_.size())),
                       1);
    dirtySinceBase_.assign(
        PageCountFor(static_cast<std::uint32_t>(bytes_.size())), 1);
  }

 private:
  static std::uint32_t PageCountFor(std::uint32_t sizeBytes) {
    return (sizeBytes + kPageSizeBytes - 1) / kPageSizeBytes;
  }
  void MarkDirtyRange(std::uint32_t address, std::uint32_t accessSize) {
    dirtyPages_[address / kPageSizeBytes] = 1;
    dirtyPages_[(address + accessSize - 1) / kPageSizeBytes] = 1;
  }

  std::vector<std::uint8_t> bytes_;
  std::vector<std::uint8_t> dirtyPages_;      ///< one flag per page
  std::vector<std::uint8_t> dirtySinceBase_;  ///< folded on ClearDirtyFlags
};

}  // namespace rvss::memory
