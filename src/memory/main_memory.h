// Main memory: a 1-D byte array with little-endian typed accessors.
//
// Matching the paper (§III-A), the simulator's memory is a flat byte array
// of predefined capacity. Functional correctness and timing are split:
// data reads/writes happen immediately on this array, while access *timing*
// is produced by MemorySystem (cache + latency model) through transaction
// objects. Stores are only performed at commit, in program order, so the
// immediate-write model is architecturally exact.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace rvss::memory {

class MainMemory {
 public:
  explicit MainMemory(std::uint32_t sizeBytes) : bytes_(sizeBytes, 0) {}

  std::uint32_t size() const { return static_cast<std::uint32_t>(bytes_.size()); }

  /// True when [address, address+size) lies inside memory.
  bool InBounds(std::uint32_t address, std::uint32_t accessSize) const {
    return accessSize <= bytes_.size() &&
           address <= bytes_.size() - accessSize;
  }

  /// Unchecked little-endian loads; callers bounds-check first (the LSU
  /// turns violations into runtime exceptions at commit).
  std::uint8_t Read8(std::uint32_t address) const { return bytes_[address]; }
  std::uint16_t Read16(std::uint32_t address) const;
  std::uint32_t Read32(std::uint32_t address) const;
  std::uint64_t Read64(std::uint32_t address) const;

  void Write8(std::uint32_t address, std::uint8_t value) {
    bytes_[address] = value;
  }
  void Write16(std::uint32_t address, std::uint16_t value);
  void Write32(std::uint32_t address, std::uint32_t value);
  void Write64(std::uint32_t address, std::uint64_t value);

  /// Generic accessors used by the load/store unit (size in {1,2,4,8}).
  std::uint64_t ReadBytes(std::uint32_t address, std::uint32_t accessSize) const;
  void WriteBytes(std::uint32_t address, std::uint32_t accessSize,
                  std::uint64_t value);

  /// Whole-memory views for dump import/export and the GUI memory pop-up.
  std::span<const std::uint8_t> bytes() const { return bytes_; }
  std::span<std::uint8_t> bytes() { return bytes_; }

  /// Zeroes all contents (simulation reset).
  void Clear();

  /// Copyable snapshot of the full memory contents. Restoring a snapshot
  /// taken from a memory of a different capacity also restores that
  /// capacity (snapshots always come from the same configuration).
  struct State {
    std::vector<std::uint8_t> bytes;
  };
  State SaveState() const { return State{bytes_}; }
  void RestoreState(const State& state) { bytes_ = state.bytes; }

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace rvss::memory
