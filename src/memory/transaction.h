// Memory transactions (paper §III-A): functional blocks that need memory
// generate a transaction object; the memory system "populates this object
// with information about the transaction's completion time". Transactions
// also carry the metadata the GUI shows (hit/miss, evictions).
#pragma once

#include <cstdint>

namespace rvss::memory {

struct MemoryTransaction {
  std::uint64_t id = 0;             ///< monotonically increasing
  std::uint32_t address = 0;
  std::uint32_t sizeBytes = 0;
  bool isStore = false;
  std::uint64_t issuedCycle = 0;    ///< cycle the request was registered
  std::uint64_t completesAtCycle = 0;  ///< filled in by MemorySystem
  bool cacheHit = false;
  bool causedEviction = false;      ///< replaced a valid line
  bool evictionWasDirty = false;    ///< eviction wrote the line back
};

}  // namespace rvss::memory
