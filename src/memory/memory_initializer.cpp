#include "memory/memory_initializer.h"

#include "common/bitops.h"
#include "common/rng.h"

namespace rvss::memory {

const char* ToString(DataTypeKind kind) {
  switch (kind) {
    case DataTypeKind::kByte: return "byte";
    case DataTypeKind::kHalf: return "half";
    case DataTypeKind::kWord: return "word";
    case DataTypeKind::kFloat: return "float";
    case DataTypeKind::kDouble: return "double";
  }
  return "word";
}

std::uint32_t SizeOf(DataTypeKind kind) {
  switch (kind) {
    case DataTypeKind::kByte: return 1;
    case DataTypeKind::kHalf: return 2;
    case DataTypeKind::kWord: return 4;
    case DataTypeKind::kFloat: return 4;
    case DataTypeKind::kDouble: return 8;
  }
  return 4;
}

namespace {

std::optional<DataTypeKind> ParseDataTypeKind(std::string_view text) {
  if (text == "byte") return DataTypeKind::kByte;
  if (text == "half") return DataTypeKind::kHalf;
  if (text == "word") return DataTypeKind::kWord;
  if (text == "float") return DataTypeKind::kFloat;
  if (text == "double") return DataTypeKind::kDouble;
  return std::nullopt;
}

void WriteElement(MainMemory& memory, std::uint32_t address, DataTypeKind kind,
                  double value) {
  switch (kind) {
    case DataTypeKind::kByte:
      memory.Write8(address, static_cast<std::uint8_t>(
                                 static_cast<std::int64_t>(value)));
      break;
    case DataTypeKind::kHalf:
      memory.Write16(address, static_cast<std::uint16_t>(
                                  static_cast<std::int64_t>(value)));
      break;
    case DataTypeKind::kWord:
      memory.Write32(address, static_cast<std::uint32_t>(
                                  static_cast<std::int64_t>(value)));
      break;
    case DataTypeKind::kFloat:
      memory.Write32(address, FloatToBits(static_cast<float>(value)));
      break;
    case DataTypeKind::kDouble:
      memory.Write64(address, DoubleToBits(value));
      break;
  }
}

double RandomElement(DataTypeKind kind, Rng& rng) {
  switch (kind) {
    case DataTypeKind::kByte:
      return static_cast<double>(rng.NextInRange(-128, 127));
    case DataTypeKind::kHalf:
      return static_cast<double>(rng.NextInRange(-32768, 32767));
    case DataTypeKind::kWord:
      return static_cast<double>(
          rng.NextInRange(-2147483648LL, 2147483647LL));
    case DataTypeKind::kFloat:
    case DataTypeKind::kDouble:
      return rng.NextDouble() * 2000.0 - 1000.0;
  }
  return 0.0;
}

}  // namespace

Result<MemoryLayout> ComputeLayout(const std::vector<ArrayDefinition>& arrays,
                                   std::uint32_t baseAddress,
                                   std::uint32_t memorySize) {
  MemoryLayout layout;
  layout.dataStart = baseAddress;
  std::uint32_t cursor = baseAddress;
  for (const ArrayDefinition& def : arrays) {
    if (def.name.empty()) {
      return Error{ErrorKind::kInvalidArgument, "array definition needs a name"};
    }
    if (layout.symbols.contains(def.name)) {
      return Error{ErrorKind::kInvalidArgument,
                   "duplicate array name '" + def.name + "'"};
    }
    const std::uint32_t alignment =
        def.alignment == 0 ? SizeOf(def.type) : def.alignment;
    if (!IsPowerOfTwo(alignment)) {
      return Error{ErrorKind::kInvalidArgument,
                   "alignment of '" + def.name + "' must be a power of two"};
    }
    cursor = static_cast<std::uint32_t>(AlignUp(cursor, alignment));
    const std::uint32_t byteSize = def.ByteSize();
    if (cursor > memorySize || byteSize > memorySize - cursor) {
      return Error{ErrorKind::kInvalidArgument,
                   "array '" + def.name + "' does not fit in memory"};
    }
    layout.symbols.emplace(def.name, cursor);
    cursor += byteSize;
  }
  layout.dataEnd = cursor;
  return layout;
}

Result<MemoryLayout> InitializeArrays(
    MainMemory& memory, const std::vector<ArrayDefinition>& arrays,
    std::uint32_t baseAddress) {
  RVSS_ASSIGN_OR_RETURN(MemoryLayout layout,
                        ComputeLayout(arrays, baseAddress, memory.size()));
  for (const ArrayDefinition& def : arrays) {
    const std::uint32_t start = layout.symbols.at(def.name);
    const std::uint32_t elemSize = SizeOf(def.type);
    Rng rng(def.randomSeed);
    for (std::uint32_t i = 0; i < def.ElementCount(); ++i) {
      double value = 0.0;
      switch (def.fill) {
        case ArrayDefinition::Fill::kValues:
          value = def.values[i];
          break;
        case ArrayDefinition::Fill::kConstant:
          value = def.values.empty() ? 0.0 : def.values[0];
          break;
        case ArrayDefinition::Fill::kRandom:
          value = RandomElement(def.type, rng);
          break;
      }
      WriteElement(memory, start + i * elemSize, def.type, value);
    }
  }
  return layout;
}

json::Json ToJson(const ArrayDefinition& def) {
  json::Json node = json::Json::MakeObject();
  node.Set("name", def.name);
  node.Set("type", ToString(def.type));
  if (def.alignment != 0) {
    node.Set("alignment", static_cast<std::int64_t>(def.alignment));
  }
  switch (def.fill) {
    case ArrayDefinition::Fill::kValues: {
      json::Json values = json::Json::MakeArray();
      for (double v : def.values) values.Append(v);
      node.Set("values", std::move(values));
      break;
    }
    case ArrayDefinition::Fill::kConstant:
      node.Set("constant", def.values.empty() ? 0.0 : def.values[0]);
      node.Set("count", static_cast<std::int64_t>(def.count));
      break;
    case ArrayDefinition::Fill::kRandom:
      node.Set("random", true);
      node.Set("count", static_cast<std::int64_t>(def.count));
      node.Set("randomSeed", static_cast<std::int64_t>(def.randomSeed));
      break;
  }
  return node;
}

Result<ArrayDefinition> ArrayDefinitionFromJson(const json::Json& node) {
  if (!node.IsObject()) {
    return Error{ErrorKind::kParse, "array definition must be an object"};
  }
  ArrayDefinition def;
  def.name = node.GetString("name", "");
  if (def.name.empty()) {
    return Error{ErrorKind::kParse, "array definition missing 'name'"};
  }
  auto type = ParseDataTypeKind(node.GetString("type", "word"));
  if (!type) {
    return Error{ErrorKind::kParse,
                 "unknown data type in array '" + def.name + "'"};
  }
  def.type = *type;
  def.alignment = static_cast<std::uint32_t>(node.GetInt("alignment", 0));

  if (const json::Json* values = node.Find("values"); values != nullptr) {
    if (!values->IsArray()) {
      return Error{ErrorKind::kParse, "'values' must be an array"};
    }
    def.fill = ArrayDefinition::Fill::kValues;
    for (const json::Json& v : values->AsArray()) {
      if (!v.IsNumber()) {
        return Error{ErrorKind::kParse,
                     "non-numeric value in array '" + def.name + "'"};
      }
      def.values.push_back(v.AsDouble());
    }
  } else if (node.GetBool("random", false)) {
    def.fill = ArrayDefinition::Fill::kRandom;
    def.count = static_cast<std::uint32_t>(node.GetInt("count", 0));
    def.randomSeed = static_cast<std::uint64_t>(node.GetInt("randomSeed", 1));
  } else if (node.Find("constant") != nullptr) {
    def.fill = ArrayDefinition::Fill::kConstant;
    def.values = {node.GetDouble("constant", 0.0)};
    def.count = static_cast<std::uint32_t>(node.GetInt("count", 0));
  } else {
    return Error{ErrorKind::kParse,
                 "array '" + def.name +
                     "' needs one of 'values', 'constant' or 'random'"};
  }
  return def;
}

}  // namespace rvss::memory
