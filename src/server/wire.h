// JSON messages over length-prefixed frames: the worker wire protocol.
//
// A message is one JSON document (a request or a response of the SimServer
// command API). On the wire it becomes a common/framing.h frame whose two
// sections split the document: a top-level string field named "blob" — the
// base64 session payload of exportSession/importSession, by far the
// largest thing the protocol carries — is detached and shipped in the
// frame's binary section, everything else is serialized as JSON text. The
// receiver reattaches the blob, so both ends observe identical documents
// and the split is invisible above this layer. Detaching keeps multi-MiB
// blobs out of the JSON writer and parser (no escape scanning, no string
// re-copying) and gives a future binary codec a ready channel.
//
// Read/write are synchronous with millisecond deadlines; every failure
// (timeout, truncated frame, over-cap length, version mismatch) is a
// Status the transport layer reports — the connection is then unusable
// and must be re-established.
#pragma once

#include <cstddef>
#include <string>

#include "common/framing.h"
#include "common/socket.h"
#include "common/status.h"
#include "json/json.h"

namespace rvss::server {

struct WireOptions {
  /// Deadline for one whole message: header and both payload sections
  /// share a single budget, so a peer dribbling bytes section-by-section
  /// cannot stretch one call past it.
  int ioTimeoutMs = 30'000;
  std::size_t maxFrameBytes = net::kDefaultMaxFrameBytes;
};

/// Writes one frame from pre-split sections. The zero-copy primitive:
/// both sections are borrowed views, nothing is re-serialized — callers
/// that resend (the transport's write retry) pay the serialization once.
Status WriteFrame(net::Socket& socket, std::string_view jsonText,
                  std::string_view blob, const WireOptions& options);

/// Serializes `message` into one frame and writes it. The message is
/// taken by value so a non-empty top-level "blob" string can be moved
/// into the binary section instead of copied.
Status WriteMessage(net::Socket& socket, json::Json message,
                    const WireOptions& options);

/// Reads one frame and reassembles the message (reattaching the blob).
Result<json::Json> ReadMessage(net::Socket& socket,
                               const WireOptions& options);

// ---- the hello handshake ----------------------------------------------------
//
// Before a router trusts a worker connection it sends {"command":"hello"}
// (carrying its own fingerprint, for the worker's logs) and checks the
// reply against its local build. The fingerprint pins everything the two
// processes must agree on to move sessions safely:
//
//   frameVersion           net::kFrameVersion — the wire framing
//   apiVersion             server::kApiVersion — the JSON API surface
//   snapshotFormatVersion  snapshot::kFormatVersion — session blobs
//   configHash             snapshot::ConfigHash(config::DefaultConfig()),
//                          hex — a stand-in for "same simulator build":
//                          any change to the config schema or defaults
//                          changes it, so a stale worker binary is caught
//                          at connect time instead of surfacing as a
//                          per-message decode error mid-migration.
//   deltaBlobs             true when this build can decode base-referenced
//                          delta session blobs (snapshot format >= 3); a
//                          capability, not a pinned version — a sender
//                          ships full images to a peer that lacks it.
//
// The worker side answers from the frame loop (out-of-band, like
// shutdownWorker); a pre-handshake worker answers with an unknown-command
// error, which the router also treats as a refusal.

/// Peer capabilities learned from an accepted hello response.
struct HelloInfo {
  bool deltaBlobs = false;
  std::int64_t apiVersion = 0;
};

/// This build's fingerprint as a hello response:
/// {status:"ok", hello:true, frameVersion, apiVersion,
///  snapshotFormatVersion, configHash, deltaBlobs}.
json::Json MakeHelloResponse();

/// The hello request a connecting router sends (same fields, command
/// "hello").
json::Json MakeHelloRequest();

/// Verifies a peer's hello response against the local fingerprint.
/// `peer` names the endpoint in the error message. On success fills
/// `info` (when non-null) with the peer's advertised capabilities.
Status CheckHelloResponse(const json::Json& response, const std::string& peer,
                          HelloInfo* info = nullptr);

}  // namespace rvss::server
