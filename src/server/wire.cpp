#include "server/wire.h"

#include <utility>

namespace rvss::server {
namespace {

/// Moves a non-empty top-level "blob" string out of `message`. An empty
/// or absent blob stays in the JSON (blobBytes == 0 on the wire means
/// "nothing detached", so empty-but-present must not take this path).
std::string DetachBlob(json::Json& message) {
  if (!message.IsObject()) return {};
  json::Object& object = message.AsObject();
  for (auto it = object.begin(); it != object.end(); ++it) {
    if (it->first == "blob" && it->second.IsString() &&
        !it->second.AsString().empty()) {
      std::string blob = std::move(it->second.AsString());
      object.erase(it);
      return blob;
    }
  }
  return {};
}

}  // namespace

Status WriteFrame(net::Socket& socket, std::string_view jsonText,
                  std::string_view blob, const WireOptions& options) {
  // The header's section lengths are u32: even a deployment that raises
  // maxFrameBytes past 4 GiB must not emit a truncated length, which
  // would desync every frame after it.
  constexpr std::size_t kMaxSectionBytes = 0xffffffffu;
  if (jsonText.size() > kMaxSectionBytes || blob.size() > kMaxSectionBytes) {
    return Status::Fail(ErrorKind::kInvalidArgument,
                        "frame section exceeds the u32 length field");
  }
  if (jsonText.size() + blob.size() > options.maxFrameBytes) {
    return Status::Fail(
        ErrorKind::kInvalidArgument,
        "message of " + std::to_string(jsonText.size() + blob.size()) +
            " bytes exceeds the " + std::to_string(options.maxFrameBytes) +
            "-byte frame cap");
  }
  const net::Deadline deadline(options.ioTimeoutMs);
  const std::string header =
      net::EncodeFrameHeader(jsonText.size(), blob.size());
  RVSS_RETURN_IF_ERROR(net::SendAll(socket, header, deadline.RemainingMs()));
  RVSS_RETURN_IF_ERROR(net::SendAll(socket, jsonText,
                                    deadline.RemainingMs()));
  if (!blob.empty()) {
    RVSS_RETURN_IF_ERROR(net::SendAll(socket, blob, deadline.RemainingMs()));
  }
  return Status::Ok();
}

Status WriteMessage(net::Socket& socket, json::Json message,
                    const WireOptions& options) {
  const std::string blob = DetachBlob(message);
  return WriteFrame(socket, message.Dump(), blob, options);
}

Result<json::Json> ReadMessage(net::Socket& socket,
                               const WireOptions& options) {
  const net::Deadline deadline(options.ioTimeoutMs);
  char headerBytes[net::kFrameHeaderBytes];
  RVSS_RETURN_IF_ERROR(net::RecvAll(socket, headerBytes,
                                    net::kFrameHeaderBytes,
                                    deadline.RemainingMs()));
  RVSS_ASSIGN_OR_RETURN(
      const net::FrameHeader header,
      net::DecodeFrameHeader(
          std::string_view(headerBytes, net::kFrameHeaderBytes),
          options.maxFrameBytes));

  // Consume the whole declared frame before parsing: a JSON error must
  // leave the stream positioned at the next frame boundary, so the
  // connection stays usable for an error response.
  std::string text(header.jsonBytes, '\0');
  if (header.jsonBytes > 0) {
    RVSS_RETURN_IF_ERROR(net::RecvAll(socket, text.data(), text.size(),
                                      deadline.RemainingMs()));
  }
  std::string blob(header.blobBytes, '\0');
  if (header.blobBytes > 0) {
    RVSS_RETURN_IF_ERROR(net::RecvAll(socket, blob.data(), blob.size(),
                                      deadline.RemainingMs()));
  }
  RVSS_ASSIGN_OR_RETURN(json::Json message, json::Parse(text));
  if (!blob.empty()) {
    message.Set("blob", std::move(blob));
  }
  return message;
}

}  // namespace rvss::server
