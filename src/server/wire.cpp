#include "server/wire.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "config/cpu_config.h"
#include "server/api.h"
#include "snapshot/codec.h"

namespace rvss::server {
namespace {

/// Moves a non-empty top-level "blob" string out of `message`. An empty
/// or absent blob stays in the JSON (blobBytes == 0 on the wire means
/// "nothing detached", so empty-but-present must not take this path).
std::string DetachBlob(json::Json& message) {
  if (!message.IsObject()) return {};
  json::Object& object = message.AsObject();
  for (auto it = object.begin(); it != object.end(); ++it) {
    if (it->first == "blob" && it->second.IsString() &&
        !it->second.AsString().empty()) {
      std::string blob = std::move(it->second.AsString());
      object.erase(it);
      return blob;
    }
  }
  return {};
}

}  // namespace

Status WriteFrame(net::Socket& socket, std::string_view jsonText,
                  std::string_view blob, const WireOptions& options) {
  // The header's section lengths are u32: even a deployment that raises
  // maxFrameBytes past 4 GiB must not emit a truncated length, which
  // would desync every frame after it.
  constexpr std::size_t kMaxSectionBytes = 0xffffffffu;
  if (jsonText.size() > kMaxSectionBytes || blob.size() > kMaxSectionBytes) {
    return Status::Fail(ErrorKind::kInvalidArgument,
                        "frame section exceeds the u32 length field");
  }
  if (jsonText.size() + blob.size() > options.maxFrameBytes) {
    return Status::Fail(
        ErrorKind::kInvalidArgument,
        "message of " + std::to_string(jsonText.size() + blob.size()) +
            " bytes exceeds the " + std::to_string(options.maxFrameBytes) +
            "-byte frame cap");
  }
  const net::Deadline deadline(options.ioTimeoutMs);
  const std::string header =
      net::EncodeFrameHeader(jsonText.size(), blob.size());
  RVSS_RETURN_IF_ERROR(net::SendAll(socket, header, deadline.RemainingMs()));
  RVSS_RETURN_IF_ERROR(net::SendAll(socket, jsonText,
                                    deadline.RemainingMs()));
  if (!blob.empty()) {
    RVSS_RETURN_IF_ERROR(net::SendAll(socket, blob, deadline.RemainingMs()));
  }
  return Status::Ok();
}

Status WriteMessage(net::Socket& socket, json::Json message,
                    const WireOptions& options) {
  const std::string blob = DetachBlob(message);
  return WriteFrame(socket, message.Dump(), blob, options);
}

Result<json::Json> ReadMessage(net::Socket& socket,
                               const WireOptions& options) {
  const net::Deadline deadline(options.ioTimeoutMs);
  char headerBytes[net::kFrameHeaderBytes];
  RVSS_RETURN_IF_ERROR(net::RecvAll(socket, headerBytes,
                                    net::kFrameHeaderBytes,
                                    deadline.RemainingMs()));
  RVSS_ASSIGN_OR_RETURN(
      const net::FrameHeader header,
      net::DecodeFrameHeader(
          std::string_view(headerBytes, net::kFrameHeaderBytes),
          options.maxFrameBytes));

  // Consume the whole declared frame before parsing: a JSON error must
  // leave the stream positioned at the next frame boundary, so the
  // connection stays usable for an error response.
  std::string text(header.jsonBytes, '\0');
  if (header.jsonBytes > 0) {
    RVSS_RETURN_IF_ERROR(net::RecvAll(socket, text.data(), text.size(),
                                      deadline.RemainingMs()));
  }
  std::string blob(header.blobBytes, '\0');
  if (header.blobBytes > 0) {
    RVSS_RETURN_IF_ERROR(net::RecvAll(socket, blob.data(), blob.size(),
                                      deadline.RemainingMs()));
  }
  RVSS_ASSIGN_OR_RETURN(json::Json message, json::Parse(text));
  if (!blob.empty()) {
    message.Set("blob", std::move(blob));
  }
  return message;
}

namespace {

/// Hex of the default-config hash: the "same simulator build" stand-in.
/// Computed once — DefaultConfig() is deterministic.
const std::string& LocalConfigHashHex() {
  static const std::string hex = [] {
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016" PRIx64,
                  snapshot::ConfigHash(config::DefaultConfig()));
    return std::string(buffer);
  }();
  return hex;
}

void FillHelloFields(json::Json& message) {
  message.Set("hello", true);
  message.Set("frameVersion", static_cast<std::int64_t>(net::kFrameVersion));
  message.Set("apiVersion", kApiVersion);
  message.Set("snapshotFormatVersion",
              static_cast<std::int64_t>(snapshot::kFormatVersion));
  message.Set("configHash", LocalConfigHashHex());
  // Capability, not a version pin: a peer without it still interoperates,
  // it just always receives full session images.
  message.Set("deltaBlobs", true);
}

}  // namespace

json::Json MakeHelloResponse() {
  json::Json response = json::Json::MakeObject();
  response.Set("status", "ok");
  FillHelloFields(response);
  return response;
}

json::Json MakeHelloRequest() {
  json::Json request = json::Json::MakeObject();
  request.Set("command", "hello");
  FillHelloFields(request);
  return request;
}

Status CheckHelloResponse(const json::Json& response,
                          const std::string& peer, HelloInfo* info) {
  const auto refuse = [&peer](const std::string& why) {
    return Status::Fail(ErrorKind::kInvalidArgument,
                        "worker " + peer + " failed the hello handshake: " +
                            why);
  };
  if (response.GetString("status", "") != "ok" ||
      !response.GetBool("hello", false)) {
    // A pre-handshake worker answers hello with an unknown-command error;
    // a hostile or confused peer answers with anything else. Both are
    // refusals — skew must be discovered here, not mid-migration.
    return refuse("peer did not answer the handshake (" +
                  response.GetString("message", "no hello in response") +
                  ")");
  }
  const std::int64_t frameVersion = response.GetInt("frameVersion", -1);
  if (frameVersion != static_cast<std::int64_t>(net::kFrameVersion)) {
    return refuse("frame version " + std::to_string(frameVersion) +
                  " != local " + std::to_string(net::kFrameVersion));
  }
  const std::int64_t snapshotVersion =
      response.GetInt("snapshotFormatVersion", -1);
  if (snapshotVersion != static_cast<std::int64_t>(snapshot::kFormatVersion)) {
    return refuse("snapshot format version " +
                  std::to_string(snapshotVersion) + " != local " +
                  std::to_string(snapshot::kFormatVersion));
  }
  const std::int64_t apiVersion = response.GetInt("apiVersion", -1);
  if (apiVersion != kApiVersion) {
    return refuse("api version " + std::to_string(apiVersion) +
                  " != local " + std::to_string(kApiVersion));
  }
  const std::string configHash = response.GetString("configHash", "");
  if (configHash != LocalConfigHashHex()) {
    return refuse("config hash " + configHash + " != local " +
                  LocalConfigHashHex());
  }
  if (info != nullptr) {
    info->deltaBlobs = response.GetBool("deltaBlobs", false);
    info->apiVersion = apiVersion;
  }
  return Status::Ok();
}

}  // namespace rvss::server
