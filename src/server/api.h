// The simulation server: sessions plus the JSON request router.
//
// Mirrors the paper's client-server split (§III): all simulation logic is
// server-side; clients (the web GUI, the CLI) send JSON commands and
// receive JSON state. The transport here is in-process — HandleRaw takes
// and returns serialized bytes, so the full parse -> simulate -> serialize
// -> compress path is exercised and measurable (experiments E1-E3).
//
// Commands (field "command"):
//   compile           {code, optLevel}                 -> {assembly}
//   parseAsm          {code}                           -> {ok} | error
//   checkConfig       {config}                         -> {ok, problems[]}
//   createSession     {code, config?, entry?, arrays?} -> {sessionId}
//   step              {sessionId, count?}              -> {state, stepped}
//   stepBack          {sessionId}                      -> {state}
//   run               {sessionId, maxCycles?}          -> {statistics, ranCycles}
//   state             {sessionId, memory?}             -> {state}
//   stats             {sessionId}                      -> {statistics, checkpoints}
//   saveCheckpoint    {sessionId}                      -> {cycle, checkpoints}
//   restoreCheckpoint {sessionId, cycle}               -> {state, replayedCycles}
//   exportSession     {sessionId}                      -> {blob, cycle}
//   importSession     {blob}                           -> {sessionId, cycle}
//   deleteSession     {sessionId}                      -> {ok}
//   listSessions      {}                               -> {sessions[], totalApproxBytes}
//
// exportSession serializes the session (configuration, source, arrays and
// the complete simulation state) into a base64 blob via the snapshot
// codec; importSession re-creates it — in this process or any other — and
// execution continues byte-identically. Together they are the session
// migration primitive: a load balancer can drain a server by exporting
// its sessions and importing them elsewhere.
//
// step rejects a negative count and clamps it to Limits::maxStepsPerRequest;
// run clamps maxCycles likewise, so no single request can spin the dispatch
// loop unboundedly. stepBack and restoreCheckpoint ride the simulation's
// checkpoint ring (O(interval) instead of re-execution from reset);
// restoreCheckpoint scrubs to an arbitrary cycle, backward or forward. A
// scrub deeper than maxStepsPerRequest (checkpoints disabled or evicted)
// is replayed server-side in bounded hops rather than rejected; both
// commands report the cycles actually re-simulated as "replayedSteps"
// (restoreCheckpoint keeps the older "replayedCycles" alias too).
// Per-session checkpoint memory is capped by the session's
// config.checkpoint.maxTotalBytes and reported in the "checkpoints" object
// ({count, bytes, maxBytes, intervalCycles}).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/simulation.h"
#include "json/json.h"
#include "server/state_renderer.h"
#include "snapshot/session.h"

namespace rvss::server {

/// Wall-clock split of one request, for the E2 profiling experiment.
struct RequestTiming {
  std::uint64_t parseNs = 0;
  std::uint64_t handleNs = 0;     ///< simulation + session work
  std::uint64_t serializeNs = 0;
  std::uint64_t compressNs = 0;
  std::size_t responseBytes = 0;
  std::size_t compressedBytes = 0;

  std::uint64_t TotalNs() const {
    return parseNs + handleNs + serializeNs + compressNs;
  }
  double JsonShare() const {
    const std::uint64_t total = TotalNs();
    return total == 0 ? 0.0
                      : static_cast<double>(parseNs + serializeNs) / total;
  }
};

/// Version of the JSON API surface: the error envelope, field naming and
/// negotiation fields. Advertised as "apiVersion" in the hello handshake
/// and in createSession/metrics responses; bumped on incompatible changes.
/// v1: uniform error envelope, camelCase field names, delta-blob hello
/// negotiation.
inline constexpr std::int64_t kApiVersion = 1;

/// True exactly for the error kinds a client may retry verbatim (load
/// shed / backpressure, not a fault in the request itself).
inline bool ErrorIsRetryable(ErrorKind kind) {
  return kind == ErrorKind::kUnavailable;
}

/// The standard "status: error" JSON response for an Error: a nested
/// {"status":"error","error":{"kind","message","retryable","details":{}}}
/// envelope. For one release the legacy flat fields (top-level "kind",
/// "message" and any details) are mirrored alongside.
json::Json MakeErrorResponse(const Error& error);

/// Adds a machine-readable detail field to an error response built by
/// MakeErrorResponse, writing both the envelope's "error"."details" object
/// and the legacy top-level mirror.
void AddErrorDetail(json::Json& response, const std::string& key,
                    json::Json value);

/// Byte-level request pipeline shared by SimServer and the shard router:
/// parses `requestBytes`, dispatches through `handler`, serializes and
/// optionally compresses the response, filling `timing` when provided.
std::string HandleRawVia(
    const std::function<json::Json(const json::Json&)>& handler,
    std::string_view requestBytes, bool compress = false,
    RequestTiming* timing = nullptr);

class SimServer {
 public:
  /// Per-request work bounds (a public server must not let one request
  /// monopolize the dispatch loop).
  struct Limits {
    std::int64_t maxStepsPerRequest = 1'000'000;
    std::int64_t maxRunCyclesPerRequest = 1'000'000'000;
    /// Per-session checkpoint-ring byte budget ceiling. Session configs are
    /// client-supplied, so a shared server clamps them here instead of
    /// trusting them; 0 leaves session budgets untouched.
    std::int64_t maxCheckpointBytesPerSession = 0;
    /// Hard ceiling on an importSession blob (decoded bytes). Unlike the
    /// checkpoint clamp this *rejects* rather than shrinks: a migration
    /// destination refuses sessions it has no budget for, and the router
    /// must keep them where they are. 0 = unlimited.
    std::int64_t maxSessionBlobBytes = 0;
  };

  SimServer() = default;
  explicit SimServer(const Limits& limits) : limits_(limits) {}

  const Limits& limits() const { return limits_; }

  /// Structured entry point (no serialization cost).
  json::Json Handle(const json::Json& request);

  /// Byte-level entry point: parses, dispatches, serializes, optionally
  /// compresses; fills `timing` when provided.
  std::string HandleRaw(std::string_view requestBytes, bool compress = false,
                        RequestTiming* timing = nullptr);

  std::size_t sessionCount() const { return sessions_.size(); }

  /// Ids of all live sessions, ascending. A direct accessor for embedders
  /// and tests; the JSON surface for the same data is `listSessions`.
  std::vector<std::int64_t> sessionIds() const;

 private:
  struct Session {
    std::unique_ptr<core::Simulation> sim;
    /// Creation inputs retained for exportSession (the simulation itself
    /// does not keep its source text or array definitions).
    snapshot::SessionIdentity identity;
  };

  json::Json Dispatch(const json::Json& request);
  json::Json ErrorResponse(const Error& error) const;
  Result<Session*> FindSession(const json::Json& request);

  Limits limits_;
  std::map<std::int64_t, Session> sessions_;
  std::int64_t nextSessionId_ = 1;
};

}  // namespace rvss::server
