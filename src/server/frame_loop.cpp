#include "server/frame_loop.h"

#include <cerrno>
#include <cstdio>
#include <ctime>
#include <utility>

#include "obs/registry.h"

namespace rvss::server {
namespace {

/// Serves one connection. Returns true when the loop should stop
/// entirely (shutdownWorker), false to go back to accept.
bool ServeConnection(SimServer& server, net::Socket& connection,
                     const WireOptions& options) {
  obs::Registry& registry = obs::Registry::Instance();
  obs::Counter& framesServed =
      registry.GetCounter("server.framesServed");
  obs::Counter& frameErrors = registry.GetCounter("server.frameErrors");
  while (true) {
    // Idle indefinitely between requests; options.ioTimeoutMs bounds the
    // message read only once its first bytes arrive.
    auto readable = net::WaitReadable(connection, net::kNoTimeout);
    if (!readable.ok() || !readable.value()) return false;
    auto request = ReadMessage(connection, options);
    if (!request.ok()) {
      frameErrors.Increment();
      if (request.error().kind == ErrorKind::kParse) {
        // The frame was intact, only its JSON was malformed: the stream
        // is still at a frame boundary, so answer with an error.
        if (WriteMessage(connection, MakeErrorResponse(request.error()),
                         options)
                .ok()) {
          continue;
        }
      }
      // Framing/stream-level failure: we may be mid-frame, so the byte
      // stream can no longer be trusted — drop the connection.
      return false;
    }
    const std::string command = request.value().GetString("command", "");
    const bool shutdown = command == "shutdownWorker";
    json::Json response;
    if (shutdown) {
      response = json::Json::MakeObject();
      response.Set("status", "ok");
      response.Set("shutdown", true);
    } else if (command == "hello") {
      // Connect-time handshake, answered out-of-band like shutdownWorker:
      // the router compares this fingerprint (frame version, snapshot
      // format version, config hash) against its own build and drops the
      // connection on mismatch — version skew surfaces here, not as a
      // decode error mid-migration.
      response = MakeHelloResponse();
    } else {
      response = server.Handle(request.value());
    }
    if (!WriteMessage(connection, std::move(response), options).ok()) {
      return shutdown;  // peer vanished; nothing left to tell it
    }
    framesServed.Increment();
    if (shutdown) return true;
  }
}

}  // namespace

Status ServeFrames(SimServer& server, net::Socket& listener,
                   const WireOptions& options) {
  obs::Counter& acceptErrors =
      obs::Registry::Instance().GetCounter("server.acceptErrors");
  while (true) {
    int acceptErrno = 0;
    auto connection = net::AcceptOn(listener, net::kNoTimeout, &acceptErrno);
    if (!connection.ok()) {
      // A transient accept failure loses one connection attempt, never
      // the worker: an aborted handshake (ECONNABORTED) or descriptor
      // exhaustion (EMFILE under a client flood) used to kill the serve
      // loop here — and with it every session the worker held. Count it,
      // say so, and go back to accept; only a broken listener (EBADF,
      // EINVAL: nothing a retry could fix) still ends the loop.
      if (net::IsTransientAcceptError(acceptErrno)) {
        acceptErrors.Increment();
        std::fprintf(stderr, "rvss worker: transient accept failure: %s\n",
                     connection.error().message.c_str());
        if (acceptErrno != ECONNABORTED && acceptErrno != EPROTO) {
          // Exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM) needs descriptors
          // to free up; an immediate retry would spin at 100% CPU on the
          // still-readable listener. Back off briefly instead.
          struct timespec pause = {0, 10'000'000};  // 10ms
          ::nanosleep(&pause, nullptr);
        }
        continue;
      }
      return connection.status();
    }
    if (ServeConnection(server, connection.value(), options)) {
      return Status::Ok();
    }
  }
}

}  // namespace rvss::server
