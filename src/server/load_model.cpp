#include "server/load_model.h"

#include <algorithm>
#include <queue>
#include <vector>

namespace rvss::server {
namespace {

struct Event {
  double time = 0;
  enum class Kind : std::uint8_t { kArrival, kCompletion } kind = Kind::kArrival;
  int user = 0;

  bool operator>(const Event& other) const { return time > other.time; }
};

}  // namespace

LoadResult SimulateLoad(const LoadScenario& scenario,
                        const std::vector<double>& serviceTimeSamples) {
  LoadResult result;
  if (serviceTimeSamples.empty() || scenario.users <= 0) return result;

  Rng rng(scenario.seed);
  auto drawService = [&]() {
    double service =
        serviceTimeSamples[rng.NextBelow(serviceTimeSamples.size())];
    if (scenario.mode == DeploymentMode::kDocker) {
      service = service * scenario.dockerOverheadFactor +
                scenario.dockerFixedSeconds;
    }
    // Network transfer of the (possibly compressed) response.
    if (scenario.linkBytesPerSecond > 0) {
      service += scenario.payloadBytes /
                 std::max(scenario.compressionRatio, 1.0) /
                 scenario.linkBytesPerSecond;
    }
    return service;
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::vector<int> remaining(static_cast<std::size_t>(scenario.users),
                             scenario.requestsPerUser);
  std::vector<double> submitTime(static_cast<std::size_t>(scenario.users), 0);

  for (int user = 0; user < scenario.users; ++user) {
    const double start =
        scenario.users > 1
            ? scenario.rampUpSeconds * user / (scenario.users - 1)
            : 0.0;
    events.push(Event{start, Event::Kind::kArrival, user});
  }

  // FIFO request queue in front of `serverWorkers` handlers.
  std::queue<int> waiting;
  int busyWorkers = 0;
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(scenario.users) *
                    scenario.requestsPerUser);
  double lastCompletion = 0;

  auto startService = [&](int user, double now) {
    ++busyWorkers;
    events.push(Event{now + drawService(), Event::Kind::kCompletion, user});
  };

  while (!events.empty()) {
    const Event event = events.top();
    events.pop();
    switch (event.kind) {
      case Event::Kind::kArrival: {
        submitTime[static_cast<std::size_t>(event.user)] = event.time;
        if (busyWorkers < scenario.serverWorkers) {
          startService(event.user, event.time);
        } else {
          waiting.push(event.user);
        }
        break;
      }
      case Event::Kind::kCompletion: {
        --busyWorkers;
        latencies.push_back(
            event.time - submitTime[static_cast<std::size_t>(event.user)]);
        lastCompletion = event.time;
        // The user thinks, then submits the next request.
        int& left = remaining[static_cast<std::size_t>(event.user)];
        if (--left > 0) {
          events.push(Event{event.time + scenario.thinkTimeSeconds,
                            Event::Kind::kArrival, event.user});
        }
        // A queued request takes the freed worker immediately.
        if (!waiting.empty()) {
          const int next = waiting.front();
          waiting.pop();
          startService(next, event.time);
        }
        break;
      }
    }
  }

  if (latencies.empty()) return result;
  std::sort(latencies.begin(), latencies.end());
  result.completedRequests = latencies.size();
  result.medianLatencyMs = latencies[latencies.size() / 2] * 1000.0;
  result.p90LatencyMs = latencies[latencies.size() * 9 / 10] * 1000.0;
  result.durationSeconds = lastCompletion;
  result.throughputTps =
      lastCompletion > 0 ? static_cast<double>(latencies.size()) / lastCompletion
                         : 0.0;
  return result;
}

}  // namespace rvss::server
