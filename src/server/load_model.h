// Virtual-time closed-loop load model — the Table I harness.
//
// The paper load-tested its server with Apache JMeter: 30/100 users, each
// interactively running 40 simulation steps with a 4 s ramp-up and 1 s
// think time, directly vs inside Docker, with gzip on. We reproduce the
// *queueing structure* exactly and feed it *measured* per-request service
// times (samples collected by timing real SimServer::HandleRaw calls), so
// the latency distribution comes from a deterministic discrete-event
// simulation instead of minutes of wall-clock waiting (DESIGN.md
// substitution table).
//
// Deployment modes model the paper's Direct vs Docker rows: Docker adds a
// calibrated multiplicative service-time overhead plus a fixed per-request
// cost (network namespace + proxy hop), consistent with the ~9% median
// inflation the paper measured at low load.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace rvss::server {

enum class DeploymentMode : std::uint8_t { kDirect, kDocker };

struct LoadScenario {
  int users = 30;
  int requestsPerUser = 40;        ///< interactive steps per user
  double rampUpSeconds = 4.0;
  double thinkTimeSeconds = 1.0;
  DeploymentMode mode = DeploymentMode::kDirect;
  int serverWorkers = 4;           ///< concurrent request handlers
  /// Modeled client<->server link (bytes/s); compression reduces transfer
  /// time by the measured ratio. 0 disables the network term.
  double linkBytesPerSecond = 50e6;
  double payloadBytes = 60'000;    ///< mean response size (uncompressed)
  double compressionRatio = 1.0;   ///< >1 when compression is on
  std::uint64_t seed = 42;
  double dockerOverheadFactor = 1.12;
  double dockerFixedSeconds = 0.0004;
};

struct LoadResult {
  double medianLatencyMs = 0;
  double p90LatencyMs = 0;
  double throughputTps = 0;   ///< completed transactions / test duration
  double durationSeconds = 0;
  std::uint64_t completedRequests = 0;
};

/// Runs the closed-loop simulation. `serviceTimeSamples` are seconds per
/// request, measured from the real server; the model draws from them
/// uniformly (seeded, deterministic).
LoadResult SimulateLoad(const LoadScenario& scenario,
                        const std::vector<double>& serviceTimeSamples);

}  // namespace rvss::server
