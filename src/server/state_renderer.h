// State renderer: serializes the complete simulator state.
//
// This is the GUI substitution layer (DESIGN.md): the web client's main
// window is, from the simulator's point of view, a consumer of a full
// state snapshot every displayed cycle. RenderJson produces that snapshot
// (the API payload whose serialization dominates request time — experiment
// E2); RenderText produces the terminal rendering used by the
// pipeline_viewer example and benchmarked as the E4 render-cost analogue.
#pragma once

#include <string>

#include "core/simulation.h"
#include "json/json.h"

namespace rvss::server {

struct RenderOptions {
  bool includeMemoryDump = false;  ///< full memory pop-up (paper Fig. 2)
  std::uint32_t logTail = 16;      ///< most recent log entries to include
};

/// Full processor-state snapshot as JSON.
json::Json RenderJson(const core::Simulation& sim,
                      const RenderOptions& options = {});

/// Terminal rendering of the main simulator window (paper Fig. 12):
/// fetch/decode blocks, issue windows, functional units, ROB, registers
/// with rename tags, cache lines and the statistics sidebar.
std::string RenderText(const core::Simulation& sim);

}  // namespace rvss::server
