#include "server/state_renderer.h"

#include "common/strings.h"

namespace rvss::server {
namespace {

json::Json InstructionToJson(const core::InFlightPtr& inst) {
  json::Json node = json::Json::MakeObject();
  node.Set("seq", static_cast<std::int64_t>(inst->seq));
  node.Set("pc", static_cast<std::int64_t>(inst->pc));
  node.Set("text", inst->inst->text);
  node.Set("phase", core::ToString(inst->phase));
  if (inst->isControl) {
    node.Set("predictedTaken", inst->predictedTaken);
    node.Set("btbHit", inst->btbHit);
  }
  if (inst->inst->def->IsMemory()) {
    node.Set("addressReady", inst->addressReady);
    if (inst->addressReady) {
      node.Set("address", static_cast<std::int64_t>(inst->effectiveAddress));
      node.Set("cacheHit", inst->cacheHit);
    }
  }
  json::Json operands = json::Json::MakeArray();
  for (std::size_t i = 0; i < inst->operandCount; ++i) {
    const core::OperandRuntime& operand = inst->operands[i];
    json::Json opNode = json::Json::MakeObject();
    opNode.Set("name", inst->inst->def->args[i].name);
    if (operand.isSource) {
      opNode.Set("valid", operand.ready);
      if (operand.ready) opNode.Set("value", operand.value.ToText());
      if (operand.waitTag >= 0) opNode.Set("waitTag", operand.waitTag);
    }
    if (operand.isDest && operand.destTag >= 0) {
      opNode.Set("renamedTo", operand.destTag);
    }
    operands.Append(std::move(opNode));
  }
  node.Set("operands", std::move(operands));
  json::Json times = json::Json::MakeObject();
  times.Set("fetch", static_cast<std::int64_t>(inst->fetchCycle));
  times.Set("decode", static_cast<std::int64_t>(inst->decodeCycle));
  times.Set("issue", static_cast<std::int64_t>(inst->issueCycle));
  times.Set("execute", static_cast<std::int64_t>(inst->executeDoneCycle));
  times.Set("commit", static_cast<std::int64_t>(inst->commitCycle));
  node.Set("timestamps", std::move(times));
  return node;
}

json::Json QueueToJson(const std::deque<core::InFlightPtr>& queue) {
  json::Json out = json::Json::MakeArray();
  for (const core::InFlightPtr& inst : queue) {
    out.Append(InstructionToJson(inst));
  }
  return out;
}

const char* WindowName(core::WindowKind kind) {
  switch (kind) {
    case core::WindowKind::kFx: return "FX";
    case core::WindowKind::kFp: return "FP";
    case core::WindowKind::kLs: return "LS";
    case core::WindowKind::kBranch: return "Branch";
  }
  return "?";
}

}  // namespace

json::Json RenderJson(const core::Simulation& sim,
                      const RenderOptions& options) {
  json::Json root = json::Json::MakeObject();
  root.Set("cycle", static_cast<std::int64_t>(sim.cycle()));
  root.Set("status", core::ToString(sim.status()));
  root.Set("finishReason", core::ToString(sim.finishReason()));
  root.Set("fetchPc", static_cast<std::int64_t>(sim.fetchPc()));

  root.Set("fetchQueue", QueueToJson(sim.fetchQueue()));
  root.Set("reorderBuffer", QueueToJson(sim.rob()));
  root.Set("loadBuffer", QueueToJson(sim.loadBuffer()));
  root.Set("storeBuffer", QueueToJson(sim.storeBuffer()));

  json::Json windows = json::Json::MakeObject();
  for (int w = 0; w < 4; ++w) {
    const auto kind = static_cast<core::WindowKind>(w);
    json::Json entries = json::Json::MakeArray();
    for (const core::InFlightPtr& inst : sim.window(kind)) {
      entries.Append(InstructionToJson(inst));
    }
    windows.Set(WindowName(kind), std::move(entries));
  }
  root.Set("issueWindows", std::move(windows));

  json::Json units = json::Json::MakeArray();
  for (const core::FunctionalUnit& fu : sim.functionalUnits()) {
    json::Json unit = json::Json::MakeObject();
    unit.Set("name", fu.config.name);
    unit.Set("kind", config::ToString(fu.config.kind));
    unit.Set("busy", fu.current != nullptr);
    if (fu.current) {
      unit.Set("instruction", InstructionToJson(fu.current));
      unit.Set("busyUntil", static_cast<std::int64_t>(fu.busyUntil));
    }
    units.Append(std::move(unit));
  }
  root.Set("functionalUnits", std::move(units));

  // Registers with rename tags and valid bits (paper main-window panel).
  json::Json registers = json::Json::MakeObject();
  auto renderRegFile = [&](isa::RegisterKind kind, const char* key) {
    json::Json file = json::Json::MakeArray();
    for (std::uint8_t i = 0; i < 32; ++i) {
      const isa::RegisterId id{kind, i};
      json::Json reg = json::Json::MakeObject();
      reg.Set("name", isa::RegisterAbiName(id));
      reg.Set("value", StrFormat("0x%llx", static_cast<unsigned long long>(
                                               sim.archRegs().Read(id))));
      std::vector<int> renames = sim.rename().RenamesOf(id);
      if (!renames.empty()) {
        json::Json tags = json::Json::MakeArray();
        for (int tag : renames) {
          json::Json tagNode = json::Json::MakeObject();
          tagNode.Set("tag", tag);
          tagNode.Set("valid", sim.rename().reg(tag).valid);
          if (sim.rename().reg(tag).valid) {
            tagNode.Set("value",
                        StrFormat("0x%llx", static_cast<unsigned long long>(
                                                sim.rename().reg(tag).cell)));
          }
          tags.Append(std::move(tagNode));
        }
        reg.Set("renames", std::move(tags));
      }
      file.Append(std::move(reg));
    }
    registers.Set(key, std::move(file));
  };
  renderRegFile(isa::RegisterKind::kInt, "x");
  renderRegFile(isa::RegisterKind::kFp, "f");
  root.Set("registers", std::move(registers));

  // Cache lines (paper main-window cache panel).
  if (const memory::Cache* cache = sim.memorySystem().cache()) {
    json::Json cacheNode = json::Json::MakeObject();
    cacheNode.Set("sets", static_cast<std::int64_t>(cache->setCount()));
    cacheNode.Set("ways", static_cast<std::int64_t>(cache->ways()));
    cacheNode.Set("lineSize", static_cast<std::int64_t>(cache->lineSize()));
    json::Json lines = json::Json::MakeArray();
    for (std::uint32_t set = 0; set < cache->setCount(); ++set) {
      for (std::uint32_t way = 0; way < cache->ways(); ++way) {
        const memory::CacheLineView view = cache->Inspect(set, way);
        json::Json line = json::Json::MakeObject();
        line.Set("set", static_cast<std::int64_t>(set));
        line.Set("way", static_cast<std::int64_t>(way));
        line.Set("valid", view.valid);
        line.Set("dirty", view.dirty);
        if (view.valid) {
          line.Set("base", static_cast<std::int64_t>(view.baseAddress));
          line.Set("lastUse", static_cast<std::int64_t>(view.lastUseCycle));
        }
        lines.Append(std::move(line));
      }
    }
    cacheNode.Set("lines", std::move(lines));
    root.Set("cache", std::move(cacheNode));
  }

  // Statistics sidebar (default + expanded views).
  const stats::SimulationStatistics& st = sim.statistics();
  json::Json sidebar = json::Json::MakeObject();
  sidebar.Set("cycles", static_cast<std::int64_t>(st.cycles));
  sidebar.Set("committed", static_cast<std::int64_t>(st.committedInstructions));
  // Present whenever the session's timeline began with an ISS skip — the
  // `stats` statistics document reports the same field, and a GUI must be
  // able to tell a fresh session from a fast-forwarded one in either view.
  sidebar.Set("fastForwardedInstructions",
              static_cast<std::int64_t>(st.fastForwardedInstructions));
  sidebar.Set("ipc", st.Ipc());
  sidebar.Set("branchAccuracy", st.BranchAccuracy());
  sidebar.Set("flops", static_cast<std::int64_t>(st.flops));
  sidebar.Set("cacheHitRate", sim.memorySystem().stats().HitRate());
  root.Set("statistics", std::move(sidebar));

  // Debug log tail, cycle-stamped (paper right-hand panel).
  json::Json logNode = json::Json::MakeArray();
  const auto& entries = sim.log().entries();
  const std::size_t start =
      entries.size() > options.logTail ? entries.size() - options.logTail : 0;
  for (std::size_t i = start; i < entries.size(); ++i) {
    json::Json entry = json::Json::MakeObject();
    entry.Set("cycle", static_cast<std::int64_t>(entries[i].cycle));
    entry.Set("level", ToString(entries[i].level));
    entry.Set("block", entries[i].block);
    entry.Set("text", entries[i].text);
    logNode.Append(std::move(entry));
  }
  root.Set("log", std::move(logNode));

  if (options.includeMemoryDump) {
    // The paper's memory pop-up: pointers plus an expanded dump.
    json::Json memoryNode = json::Json::MakeObject();
    json::Json symbols = json::Json::MakeObject();
    for (const auto& [name, address] : sim.program().labels) {
      symbols.Set(name, static_cast<std::int64_t>(address));
    }
    memoryNode.Set("symbols", std::move(symbols));
    const auto bytes = sim.memorySystem().memory().bytes();
    std::string hex;
    hex.reserve(bytes.size() * 2);
    static const char* kDigits = "0123456789abcdef";
    for (std::uint8_t b : bytes) {
      hex += kDigits[b >> 4];
      hex += kDigits[b & 0xf];
    }
    memoryNode.Set("dumpHex", std::move(hex));
    root.Set("memory", std::move(memoryNode));
  }
  return root;
}

std::string RenderText(const core::Simulation& sim) {
  std::string out;
  const stats::SimulationStatistics& st = sim.statistics();
  out += StrFormat(
      "=== cycle %llu === status: %s   PC: 0x%08x   IPC %.2f   bp %.1f%%\n",
      static_cast<unsigned long long>(sim.cycle()),
      core::ToString(sim.status()), sim.fetchPc(), st.Ipc(),
      100.0 * st.BranchAccuracy());

  auto renderQueue = [&](const char* name, const auto& queue) {
    out += StrFormat("[%s]", name);
    for (const core::InFlightPtr& inst : queue) {
      out += StrFormat(" {%llu:0x%x %s}",
                       static_cast<unsigned long long>(inst->seq), inst->pc,
                       inst->inst->text.c_str());
    }
    out += '\n';
  };
  renderQueue("Fetch ", sim.fetchQueue());
  for (int w = 0; w < 4; ++w) {
    const auto kind = static_cast<core::WindowKind>(w);
    renderQueue(WindowName(kind), sim.window(kind));
  }
  out += "[Units ]";
  for (const core::FunctionalUnit& fu : sim.functionalUnits()) {
    if (fu.current) {
      out += StrFormat(" %s<%s until %llu>", fu.config.name.c_str(),
                       fu.current->inst->text.c_str(),
                       static_cast<unsigned long long>(fu.busyUntil));
    } else {
      out += StrFormat(" %s<idle>", fu.config.name.c_str());
    }
  }
  out += '\n';
  renderQueue("ROB   ", sim.rob());
  renderQueue("LoadB ", sim.loadBuffer());
  renderQueue("StoreB", sim.storeBuffer());

  // Architectural registers, ABI names, with rename markers.
  out += "[Regs  ]";
  for (std::uint8_t i = 0; i < 32; ++i) {
    const isa::RegisterId id{isa::RegisterKind::kInt, i};
    const std::uint64_t value = sim.archRegs().Read(id);
    std::vector<int> renames = sim.rename().RenamesOf(id);
    if (value != 0 || !renames.empty()) {
      out += StrFormat(" %s=0x%llx", isa::RegisterAbiName(id).c_str(),
                       static_cast<unsigned long long>(value));
      for (int tag : renames) {
        out += StrFormat("(t%d%s)", tag,
                         sim.rename().reg(tag).valid ? "*" : "");
      }
    }
  }
  out += '\n';
  return out;
}

}  // namespace rvss::server
