#include "server/api.h"

#include <algorithm>
#include <chrono>

#include "assembler/assembler.h"
#include "cc/compiler.h"
#include "common/slz.h"
#include "common/strings.h"
#include "memory/memory_initializer.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "server/wire.h"

namespace rvss::server {
namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

json::Json Ok() {
  json::Json response = json::Json::MakeObject();
  response.Set("status", "ok");
  return response;
}

/// Checkpoint-ring accounting for a session ({count, bytes, maxBytes,
/// intervalCycles}) — the per-session memory cap made visible to clients.
json::Json CheckpointInfo(const core::Simulation& sim) {
  const core::CheckpointRing& ring = sim.checkpoints();
  json::Json info = json::Json::MakeObject();
  info.Set("count", static_cast<std::int64_t>(ring.checkpointCount()));
  info.Set("bytes", static_cast<std::int64_t>(ring.totalBytes()));
  info.Set("maxBytes", static_cast<std::int64_t>(ring.maxTotalBytes()));
  info.Set("intervalCycles",
           static_cast<std::int64_t>(ring.intervalCycles()));
  return info;
}

/// The full statistics document a session reports — the one serialization
/// of SimulationStatistics, shared by the `run` and `stats` responses so
/// the two can never drift apart field-by-field again.
json::Json StatisticsJson(const core::Simulation& sim) {
  return sim.statistics().ToJson(sim.memorySystem().stats(),
                                 sim.config().coreClockHz);
}

/// Per-command request counters and handle-latency histograms. The name
/// set is bounded by SanitizedCommandName, so a hostile client cannot
/// grow the registry; the per-command lookup is a map find, amortized to
/// noise by the simulation work behind any command worth counting.
void RecordCommandMetrics(std::string_view command, std::uint64_t startNs) {
  if (!obs::Enabled()) return;
  obs::Registry& registry = obs::Registry::Instance();
  static obs::Counter& requests = registry.GetCounter("server.requests");
  static obs::Histogram& handleUs =
      registry.GetHistogram("server.handleUs");
  requests.Increment();
  const std::uint64_t elapsedUs = (obs::MonotonicNowNs() - startNs) / 1000;
  handleUs.Record(elapsedUs);
  const std::string suffix(obs::SanitizedCommandName(command));
  registry.GetCounter("server.cmd." + suffix).Increment();
  registry.GetHistogram("server.handleUs." + suffix).Record(elapsedUs);
}

/// One deep seek as a server-side loop of bounded SeekTo hops, instead of
/// rejecting (or silently clamping) anything deeper than `chunk`: each
/// hop replays at most `chunk` cycles, the checkpoint ring captures as
/// the replay advances, and the next hop starts from what it captured.
/// Honors the request's semantics — the loop ends at the target, when the
/// program finishes short of it (exactly what a single unbounded SeekTo
/// would do), or on the first real error. `chunk == 0` degenerates to the
/// single-shot SeekTo error, preserving a zero maxStepsPerRequest limit.
/// `*replayed` accumulates the cycles actually re-simulated.
Status ChunkedSeek(core::Simulation& sim, std::uint64_t target,
                   std::uint64_t chunk, std::uint64_t* replayed) {
  *replayed = 0;
  while (true) {
    const std::uint64_t cost = sim.SeekReplayCost(target);
    const std::uint64_t hop =
        chunk > 0 && cost > chunk ? target - (cost - chunk) : target;
    RVSS_RETURN_IF_ERROR(sim.SeekTo(hop, chunk));
    *replayed += sim.lastSeekReplayedCycles();
    // Short of the hop: the program finished mid-replay. Done — a
    // single-shot seek stops at the same cycle.
    if (sim.cycle() != hop || hop == target) return Status::Ok();
  }
}

}  // namespace

json::Json MakeErrorResponse(const Error& error) {
  json::Json response = json::Json::MakeObject();
  response.Set("status", "error");
  json::Json envelope = json::Json::MakeObject();
  envelope.Set("kind", ToString(error.kind));
  envelope.Set("message", error.message);
  envelope.Set("retryable", ErrorIsRetryable(error.kind));
  json::Json details = json::Json::MakeObject();
  if (error.pos.line != 0) {
    details.Set("line", static_cast<std::int64_t>(error.pos.line));
    details.Set("column", static_cast<std::int64_t>(error.pos.column));
  }
  envelope.Set("details", std::move(details));
  response.Set("error", std::move(envelope));
  // One-release compatibility shim: mirror the legacy flat fields so
  // clients written against the pre-envelope shape keep working.
  response.Set("kind", ToString(error.kind));
  response.Set("message", error.message);
  if (error.pos.line != 0) {
    response.Set("line", static_cast<std::int64_t>(error.pos.line));
    response.Set("column", static_cast<std::int64_t>(error.pos.column));
  }
  return response;
}

void AddErrorDetail(json::Json& response, const std::string& key,
                    json::Json value) {
  if (json::Json* envelope = response.Find("error"); envelope != nullptr) {
    if (json::Json* details = envelope->Find("details"); details != nullptr) {
      details->Set(key, value);
    }
  }
  // Legacy top-level mirror (the compatibility shim).
  response.Set(key, std::move(value));
}

json::Json SimServer::ErrorResponse(const Error& error) const {
  return MakeErrorResponse(error);
}

Result<SimServer::Session*> SimServer::FindSession(const json::Json& request) {
  const std::int64_t id = request.GetInt("sessionId", -1);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Error{ErrorKind::kInvalidArgument,
                 "unknown sessionId " + std::to_string(id)};
  }
  return &it->second;
}

json::Json SimServer::Dispatch(const json::Json& request) {
  const std::string command = request.GetString("command", "");

  // Every process that speaks the API answers hello itself — the frame
  // loop, gateway and router do it before routing, and the bare
  // in-process server matches them so an embedder sees the same
  // version/capability fields without a wire in between.
  if (command == "hello") {
    return MakeHelloResponse();
  }

  if (command == "compile") {
    cc::CompileOptions options;
    options.optLevel = static_cast<int>(request.GetInt("optLevel", 0));
    auto compiled = cc::Compile(request.GetString("code", ""), options);
    if (!compiled.ok()) return ErrorResponse(compiled.error());
    json::Json response = Ok();
    response.Set("assembly", compiled.value().assembly);
    return response;
  }

  if (command == "parseAsm") {
    assembler::Assembler asmArg;
    auto program = asmArg.Assemble(request.GetString("code", ""));
    if (!program.ok()) return ErrorResponse(program.error());
    json::Json response = Ok();
    response.Set("instructionCount",
                 static_cast<std::int64_t>(
                     program.value().instructions.size()));
    return response;
  }

  if (command == "checkConfig") {
    const json::Json* configNode = request.Find("config");
    if (configNode == nullptr) {
      return ErrorResponse(
          Error{ErrorKind::kInvalidArgument, "missing 'config'"});
    }
    auto config = config::CpuConfigFromJson(*configNode);
    if (!config.ok()) return ErrorResponse(config.error());
    json::Json response = Ok();
    json::Json problems = json::Json::MakeArray();
    for (const Error& problem : config::Validate(config.value())) {
      problems.Append(problem.message);
    }
    response.Set("problems", std::move(problems));
    return response;
  }

  if (command == "createSession") {
    config::CpuConfig config = config::DefaultConfig();
    if (const json::Json* configNode = request.Find("config");
        configNode != nullptr) {
      auto parsed = config::CpuConfigFromJson(*configNode);
      if (!parsed.ok()) return ErrorResponse(parsed.error());
      config = std::move(parsed).value();
    }
    // Session configs are client-supplied; the server's own checkpoint
    // byte ceiling wins over whatever budget the session asked for.
    if (limits_.maxCheckpointBytesPerSession > 0) {
      config.checkpoint.maxTotalBytes = std::min(
          config.checkpoint.maxTotalBytes,
          static_cast<std::uint64_t>(limits_.maxCheckpointBytesPerSession));
    }
    core::Simulation::CreateOptions options;
    options.entryLabel = request.GetString("entry", "");
    json::Json arraysJson = json::Json::MakeArray();
    if (const json::Json* arrays = request.Find("arrays");
        arrays != nullptr && arrays->IsArray()) {
      for (const json::Json& arrayNode : arrays->AsArray()) {
        auto def = memory::ArrayDefinitionFromJson(arrayNode);
        if (!def.ok()) return ErrorResponse(def.error());
        arraysJson.Append(memory::ToJson(def.value()));
        options.arrays.push_back(std::move(def).value());
      }
    }
    std::string code = request.GetString("code", "");
    if (request.GetBool("isC", false)) {
      cc::CompileOptions ccOptions;
      ccOptions.optLevel = static_cast<int>(request.GetInt("optLevel", 0));
      auto compiled = cc::Compile(code, ccOptions);
      if (!compiled.ok()) return ErrorResponse(compiled.error());
      code = compiled.value().assembly;
      if (options.entryLabel.empty()) options.entryLabel = "main";
    }
    auto sim = core::Simulation::Create(config, code, options);
    if (!sim.ok()) return ErrorResponse(sim.error());
    const std::int64_t id = nextSessionId_++;
    Session session;
    session.identity = snapshot::MakeIdentity(
        *sim.value(), std::move(code), options.entryLabel,
        options.arrays.empty() ? std::string() : arraysJson.Dump());
    session.sim = std::move(sim).value();
    sessions_[id] = std::move(session);
    json::Json response = Ok();
    response.Set("sessionId", id);
    response.Set("apiVersion", kApiVersion);
    return response;
  }

  if (command == "importSession") {
    obs::ScopedSpan span("session", "importSession");
    const json::Json* blobNode = request.Find("blob");
    static const std::string kNoBlob;
    const std::string& encoded = blobNode != nullptr && blobNode->IsString()
                                     ? blobNode->AsString()
                                     : kNoBlob;
    span.SetDetail(StrFormat("blobBytes=%zu", encoded.size()));
    auto blob = Base64Decode(encoded);
    if (!blob.has_value()) {
      return ErrorResponse(Error{ErrorKind::kInvalidArgument,
                                 "'blob' is not valid base64"});
    }
    if (limits_.maxSessionBlobBytes > 0 &&
        blob->size() >
            static_cast<std::size_t>(limits_.maxSessionBlobBytes)) {
      return ErrorResponse(Error{
          ErrorKind::kInvalidArgument,
          "session blob of " + std::to_string(blob->size()) +
              " bytes exceeds this server's budget of " +
              std::to_string(limits_.maxSessionBlobBytes) + " bytes"});
    }
    auto imported = snapshot::ImportSessionBlob(
        *blob, limits_.maxCheckpointBytesPerSession > 0
                   ? static_cast<std::uint64_t>(
                         limits_.maxCheckpointBytesPerSession)
                   : 0);
    if (!imported.ok()) return ErrorResponse(imported.error());
    const std::int64_t id = nextSessionId_++;
    Session session;
    session.sim = std::move(imported.value().sim);
    session.identity = std::move(imported.value().identity);
    json::Json response = Ok();
    response.Set("sessionId", id);
    response.Set("cycle", static_cast<std::int64_t>(session.sim->cycle()));
    sessions_[id] = std::move(session);
    return response;
  }

  if (command == "metrics") {
    // This process's observability registry. Behind the shard router the
    // same command returns the *fleet* view (the router fans it out to
    // every worker and merges); a bare server answers for itself.
    json::Json response = Ok();
    response.Set("apiVersion", kApiVersion);
    if (request.GetString("format", "json") == "text") {
      response.Set("text", obs::MetricsToPrometheusText(obs::MetricsToJson()));
    } else {
      response.Set("metrics", obs::MetricsToJson());
    }
    return response;
  }

  if (command == "traceDump") {
    json::Json response = Ok();
    response.Set("trace", obs::TraceRing::Instance().ToJson());
    return response;
  }

  if (command == "listSessions") {
    json::Json response = Ok();
    json::Json list = json::Json::MakeArray();
    std::int64_t totalBytes = 0;
    for (const auto& [id, session] : sessions_) {
      const std::size_t bytes = snapshot::EstimateSessionBlobBytes(
          *session.sim, session.identity);
      totalBytes += static_cast<std::int64_t>(bytes);
      json::Json entry = json::Json::MakeObject();
      entry.Set("sessionId", id);
      entry.Set("cycle", static_cast<std::int64_t>(session.sim->cycle()));
      entry.Set("status", core::ToString(session.sim->status()));
      entry.Set("approxBytes", static_cast<std::int64_t>(bytes));
      list.Append(std::move(entry));
    }
    response.Set("sessions", std::move(list));
    response.Set("totalApproxBytes", totalBytes);
    return response;
  }

  if (command == "deleteSession") {
    const std::int64_t id = request.GetInt("sessionId", -1);
    if (sessions_.erase(id) == 0) {
      return ErrorResponse(Error{ErrorKind::kInvalidArgument,
                                 "unknown sessionId " + std::to_string(id)});
    }
    return Ok();
  }

  // Session-bound commands.
  auto session = FindSession(request);
  if (!session.ok()) return ErrorResponse(session.error());
  core::Simulation& sim = *session.value()->sim;

  if (command == "step") {
    const std::int64_t count = request.GetInt("count", 1);
    if (count < 0) {
      return ErrorResponse(Error{ErrorKind::kInvalidArgument,
                                 "'count' must be non-negative"});
    }
    // Clamp, and bail out as soon as the simulation stops running: a huge
    // count on a finished session must not spin the dispatch loop.
    const std::int64_t bounded = std::min(count, limits_.maxStepsPerRequest);
    std::int64_t stepped = 0;
    for (; stepped < bounded && sim.status() == core::SimStatus::kRunning;
         ++stepped) {
      sim.Step();
    }
    json::Json response = Ok();
    response.Set("stepped", stepped);
    RenderOptions options;
    options.includeMemoryDump = request.GetBool("memory", false);
    response.Set("state", RenderJson(sim, options));
    return response;
  }
  if (command == "fastForward") {
    const std::int64_t instructions = request.GetInt("instructions", -1);
    if (instructions < 0) {
      return ErrorResponse(Error{ErrorKind::kInvalidArgument,
                                 "'instructions' must be non-negative"});
    }
    Status status =
        sim.FastForwardTo(static_cast<std::uint64_t>(instructions));
    if (!status.ok()) return ErrorResponse(status.error());
    json::Json response = Ok();
    response.Set("fastForwardedInstructions",
                 static_cast<std::int64_t>(
                     sim.statistics().fastForwardedInstructions));
    response.Set("state", RenderJson(sim));
    return response;
  }
  if (command == "stepBack") {
    if (sim.cycle() == 0) {
      return ErrorResponse(Error{ErrorKind::kInvalidArgument,
                                 "already at cycle 0; cannot step back"});
    }
    // With checkpoints disabled (or evicted) a deep StepBack replays the
    // whole prefix; maxStepsPerRequest used to clamp that by *failing*
    // the request. Loop the replay server-side in bounded chunks instead
    // — the request means "one cycle back", however much replay that
    // costs, and each chunk keeps the dispatch loop's unit of work
    // bounded.
    std::uint64_t replayed = 0;
    Status status = ChunkedSeek(
        sim, sim.cycle() - 1,
        static_cast<std::uint64_t>(limits_.maxStepsPerRequest), &replayed);
    if (!status.ok()) return ErrorResponse(status.error());
    json::Json response = Ok();
    response.Set("replayedSteps", static_cast<std::int64_t>(replayed));
    response.Set("state", RenderJson(sim));
    return response;
  }
  if (command == "exportSession") {
    obs::ScopedSpan span("session", "exportSession");
    // encoding:"delta" ships only the pages dirtied since the session's
    // base image — the router asks for it after the destination's hello
    // advertised delta support. Default stays full (self-contained for
    // unknown readers, e.g. a file saved for a future process).
    const std::string encoding = request.GetString("encoding", "full");
    if (encoding != "full" && encoding != "delta") {
      return ErrorResponse(Error{
          ErrorKind::kInvalidArgument,
          "'encoding' must be \"full\" or \"delta\", got '" + encoding + "'"});
    }
    snapshot::SessionBlobOptions blobOptions;
    blobOptions.delta = encoding == "delta";
    json::Json response = Ok();
    std::string blob = Base64Encode(snapshot::EncodeSessionBlob(
        sim, session.value()->identity, blobOptions));
    span.SetDetail(StrFormat("cycle=%llu blobBytes=%zu",
                             static_cast<unsigned long long>(sim.cycle()),
                             blob.size()));
    response.Set("blob", std::move(blob));
    response.Set("cycle", static_cast<std::int64_t>(sim.cycle()));
    response.Set("encoding", encoding);
    return response;
  }
  if (command == "saveCheckpoint") {
    obs::ScopedSpan span("session", "saveCheckpoint");
    sim.CaptureCheckpointNow();
    span.SetDetail(StrFormat(
        "cycle=%llu ringBytes=%zu",
        static_cast<unsigned long long>(sim.cycle()),
        static_cast<std::size_t>(sim.checkpoints().totalBytes())));
    json::Json response = Ok();
    response.Set("cycle", static_cast<std::int64_t>(sim.cycle()));
    response.Set("checkpoints", CheckpointInfo(sim));
    return response;
  }
  if (command == "restoreCheckpoint") {
    const std::int64_t cycle = request.GetInt("cycle", -1);
    if (cycle < 0) {
      return ErrorResponse(Error{ErrorKind::kInvalidArgument,
                                 "'cycle' must be a non-negative integer"});
    }
    obs::ScopedSpan span("session", "restoreCheckpoint");
    // Deep restores loop server-side in maxStepsPerRequest-sized hops
    // (see ChunkedSeek) rather than failing past the per-request bound.
    std::uint64_t replayed = 0;
    Status status = ChunkedSeek(
        sim, static_cast<std::uint64_t>(cycle),
        static_cast<std::uint64_t>(limits_.maxStepsPerRequest), &replayed);
    if (!status.ok()) return ErrorResponse(status.error());
    span.SetDetail(StrFormat("cycle=%lld replayed=%llu",
                             static_cast<long long>(cycle),
                             static_cast<unsigned long long>(replayed)));
    json::Json response = Ok();
    response.Set("replayedCycles", static_cast<std::int64_t>(replayed));
    response.Set("replayedSteps", static_cast<std::int64_t>(replayed));
    response.Set("state", RenderJson(sim));
    return response;
  }
  if (command == "run") {
    const std::int64_t maxCycles = request.GetInt("maxCycles", 10'000'000);
    if (maxCycles < 0) {
      return ErrorResponse(Error{ErrorKind::kInvalidArgument,
                                 "'maxCycles' must be non-negative"});
    }
    const std::uint64_t before = sim.cycle();
    sim.Run(static_cast<std::uint64_t>(
        std::min(maxCycles, limits_.maxRunCyclesPerRequest)));
    json::Json response = Ok();
    // Like step's "stepped": makes a clamped / truncated run visible.
    response.Set("ranCycles", static_cast<std::int64_t>(sim.cycle() - before));
    response.Set("statistics", StatisticsJson(sim));
    response.Set("finishReason", core::ToString(sim.finishReason()));
    if (sim.fault().has_value()) {
      response.Set("fault", sim.fault()->ToText());
    }
    return response;
  }
  if (command == "state") {
    json::Json response = Ok();
    RenderOptions options;
    options.includeMemoryDump = request.GetBool("memory", false);
    response.Set("state", RenderJson(sim, options));
    return response;
  }
  if (command == "stats") {
    json::Json response = Ok();
    response.Set("statistics", StatisticsJson(sim));
    response.Set("checkpoints", CheckpointInfo(sim));
    return response;
  }

  return ErrorResponse(
      Error{ErrorKind::kInvalidArgument, "unknown command '" + command + "'"});
}

std::vector<std::int64_t> SimServer::sessionIds() const {
  std::vector<std::int64_t> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) ids.push_back(id);
  return ids;
}

json::Json SimServer::Handle(const json::Json& request) {
  const std::uint64_t startNs = obs::MonotonicNowNs();
  json::Json response = Dispatch(request);
  RecordCommandMetrics(request.GetString("command", ""), startNs);
  return response;
}

std::string HandleRawVia(
    const std::function<json::Json(const json::Json&)>& handler,
    std::string_view requestBytes, bool compress, RequestTiming* timing) {
  RequestTiming local;
  std::uint64_t t0 = NowNs();
  auto request = json::Parse(requestBytes);
  std::uint64_t t1 = NowNs();
  local.parseNs = t1 - t0;

  json::Json response;
  if (!request.ok()) {
    response = MakeErrorResponse(request.error());
  } else {
    response = handler(request.value());
  }
  std::uint64_t t2 = NowNs();
  local.handleNs = t2 - t1;

  std::string serialized = response.Dump();
  std::uint64_t t3 = NowNs();
  local.serializeNs = t3 - t2;
  local.responseBytes = serialized.size();

  if (compress) {
    serialized = SlzCompress(serialized);
    std::uint64_t t4 = NowNs();
    local.compressNs = t4 - t3;
  }
  local.compressedBytes = serialized.size();

  if (timing != nullptr) *timing = local;
  return serialized;
}

std::string SimServer::HandleRaw(std::string_view requestBytes, bool compress,
                                 RequestTiming* timing) {
  return HandleRawVia(
      [this](const json::Json& request) { return Dispatch(request); },
      requestBytes, compress, timing);
}

}  // namespace rvss::server
