// The raw-frame serving loop: what a worker process runs.
//
// ServeFrames accepts one connection at a time on `listener` (the router
// holds exactly one connection per worker, so concurrency lives in the
// fleet, not in the worker) and answers server/wire.h messages with
// SimServer::Handle until told to stop:
//
//   * A malformed frame or JSON error produces an error response when the
//     connection can still be trusted (parse error with intact framing);
//     a framing-level failure (bad magic, over-cap length, truncated
//     read) closes the connection and returns to accept — the peer must
//     reconnect with a clean stream.
//   * A dropped connection (router restart, transport reconnect) simply
//     returns to accept, so the worker survives its clients.
//   * A transient accept failure — an aborted handshake (ECONNABORTED)
//     or descriptor exhaustion (EMFILE/ENFILE) — is counted in the
//     `server.acceptErrors` metric, logged, and retried (with a brief
//     pause for exhaustion, which an immediate retry would only spin
//     on). Only an unrecoverable listener error (EBADF, EINVAL) ends
//     the loop with its error: losing one connection attempt must never
//     cost the worker — and every session it holds — its life.
//   * The out-of-band command {"command": "shutdownWorker"} is handled by
//     the loop itself, not the SimServer: it acknowledges with
//     {"status": "ok"} and returns, giving removeWorker and CLI teardown
//     a graceful exit that still flushes the response.
//   * {"command": "hello"} is likewise answered by the loop with this
//     build's fingerprint (server/wire.h) — the connect-time handshake a
//     router uses to refuse version-skewed workers.
#pragma once

#include "common/socket.h"
#include "common/status.h"
#include "server/api.h"
#include "server/wire.h"

namespace rvss::server {

/// Serves `server` over `listener` until shutdownWorker arrives (returns
/// Ok) or the listener itself fails (returns the error).
Status ServeFrames(SimServer& server, net::Socket& listener,
                   const WireOptions& options = {});

}  // namespace rvss::server
