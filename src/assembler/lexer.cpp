#include "assembler/lexer.h"

#include <cctype>

#include "common/strings.h"

namespace rvss::assembler {
namespace {

bool IsSymbolChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '$';
}

/// Splits the operand field on top-level commas, respecting parentheses
/// and string literals.
Result<std::vector<std::string>> SplitOperands(std::string_view text,
                                               std::uint32_t lineNo) {
  std::vector<std::string> operands;
  std::string current;
  int parenDepth = 0;
  bool inString = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (inString) {
      current += c;
      if (c == '\\' && i + 1 < text.size()) {
        current += text[++i];
      } else if (c == '"') {
        inString = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        inString = true;
        current += c;
        break;
      case '(':
        ++parenDepth;
        current += c;
        break;
      case ')':
        --parenDepth;
        if (parenDepth < 0) {
          return Error{ErrorKind::kParse, "unbalanced ')'",
                       SourcePos{lineNo, static_cast<std::uint32_t>(i + 1)}};
        }
        current += c;
        break;
      case ',':
        if (parenDepth == 0) {
          operands.push_back(std::string(Trim(current)));
          current.clear();
        } else {
          current += c;
        }
        break;
      default:
        current += c;
    }
  }
  if (inString) {
    return Error{ErrorKind::kParse, "unterminated string literal",
                 SourcePos{lineNo, 0}};
  }
  if (parenDepth != 0) {
    return Error{ErrorKind::kParse, "unbalanced '('", SourcePos{lineNo, 0}};
  }
  std::string_view last = Trim(current);
  if (!last.empty()) operands.push_back(std::string(last));
  if (!operands.empty() && operands.back().empty()) {
    return Error{ErrorKind::kParse, "trailing comma in operand list",
                 SourcePos{lineNo, 0}};
  }
  for (const std::string& op : operands) {
    if (op.empty()) {
      return Error{ErrorKind::kParse, "empty operand", SourcePos{lineNo, 0}};
    }
  }
  return operands;
}

}  // namespace

Result<std::vector<Line>> LexSource(std::string_view source) {
  std::vector<Line> lines;
  std::uint32_t lineNo = 0;
  for (std::string_view raw : Split(source, '\n')) {
    ++lineNo;

    // Strip comments, but not inside string literals.
    std::string code;
    std::string comment;
    bool inString = false;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      char c = raw[i];
      if (inString) {
        code += c;
        if (c == '\\' && i + 1 < raw.size()) {
          code += raw[++i];
        } else if (c == '"') {
          inString = false;
        }
        continue;
      }
      if (c == '"') {
        inString = true;
        code += c;
        continue;
      }
      if (c == '#' ||
          (c == '/' && i + 1 < raw.size() && raw[i + 1] == '/')) {
        comment = std::string(Trim(raw.substr(i + (c == '#' ? 1 : 2))));
        break;
      }
      code += c;
    }

    Line line;
    line.number = lineNo;
    line.comment = std::move(comment);

    std::string_view rest = Trim(code);
    // Extract `label:` prefixes. A label is a symbol followed by ':'.
    while (!rest.empty()) {
      std::size_t len = 0;
      while (len < rest.size() && IsSymbolChar(rest[len])) ++len;
      if (len == 0 || len >= rest.size() || rest[len] != ':') break;
      line.labels.push_back(std::string(rest.substr(0, len)));
      rest = Trim(rest.substr(len + 1));
    }

    if (!rest.empty()) {
      std::size_t len = 0;
      while (len < rest.size() &&
             !std::isspace(static_cast<unsigned char>(rest[len]))) {
        ++len;
      }
      line.mnemonic = ToLower(rest.substr(0, len));
      std::string_view operandText = Trim(rest.substr(len));
      if (!operandText.empty()) {
        auto operands = SplitOperands(operandText, lineNo);
        if (!operands.ok()) return operands.error();
        line.operands = std::move(operands).value();
      }
    }

    if (!line.labels.empty() || !line.mnemonic.empty() ||
        !line.comment.empty()) {
      lines.push_back(std::move(line));
    }
  }
  return lines;
}

}  // namespace rvss::assembler
