#include "assembler/filter.h"

#include <cctype>
#include <map>
#include <set>
#include <unordered_set>

#include "assembler/lexer.h"
#include "common/strings.h"

namespace rvss::assembler {
namespace {

const std::unordered_set<std::string_view>& DroppedDirectives() {
  static const auto* kSet = new std::unordered_set<std::string_view>{
      ".file", ".ident", ".option", ".attribute", ".type", ".size",
      ".globl", ".global", ".local", ".weak",
      ".cfi_startproc", ".cfi_endproc", ".cfi_offset",
      ".cfi_def_cfa_offset", ".cfi_restore", ".cfi_def_cfa",
      ".addrsig", ".addrsig_sym",
  };
  return *kSet;
}

bool IsSymbolStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}
bool IsSymbolChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '$';
}

/// Collects every symbol-shaped token in an operand.
void CollectSymbols(std::string_view operand, std::set<std::string>& out) {
  std::size_t i = 0;
  while (i < operand.size()) {
    if (IsSymbolStart(operand[i])) {
      std::size_t start = i;
      while (i < operand.size() && IsSymbolChar(operand[i])) ++i;
      out.insert(std::string(operand.substr(start, i - start)));
    } else {
      ++i;
    }
  }
}

}  // namespace

std::string FilterAssembly(std::string_view source,
                           const FilterOptions& options) {
  auto lexed = LexSource(source);
  if (!lexed.ok()) return std::string(source);  // malformed: pass through
  const std::vector<Line>& lines = lexed.value();

  // First sweep: find every referenced symbol.
  std::set<std::string> referenced;
  for (const Line& line : lines) {
    if (line.mnemonic.empty() || line.mnemonic[0] == '.') {
      // .word label references keep the label alive.
      if (line.mnemonic == ".word") {
        for (const std::string& operand : line.operands) {
          CollectSymbols(operand, referenced);
        }
      }
      continue;
    }
    for (const std::string& operand : line.operands) {
      CollectSymbols(operand, referenced);
    }
  }

  // Second sweep: emit surviving lines.
  std::string out;
  bool lastBlank = true;
  for (const Line& line : lines) {
    std::string text;

    for (const std::string& label : line.labels) {
      // Data labels and referenced code labels survive; compiler-internal
      // unreferenced labels (.LC0 debris) are dropped.
      if (referenced.contains(label) || !StartsWith(label, ".L")) {
        text += label + ":\n";
      }
    }

    if (!line.mnemonic.empty() &&
        !DroppedDirectives().contains(line.mnemonic)) {
      text += "    " + line.mnemonic;
      for (std::size_t i = 0; i < line.operands.size(); ++i) {
        text += i == 0 ? " " : ", ";
        text += line.operands[i];
      }
      if (options.keepComments && !line.comment.empty()) {
        text += "  # " + line.comment;
      }
      text += '\n';
    }

    if (text.empty()) continue;
    lastBlank = false;
    out += text;
  }
  (void)lastBlank;
  return out;
}

}  // namespace rvss::assembler
