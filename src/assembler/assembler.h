// Two-pass RISC-V assembler (paper §III-C).
//
// Pass 1 processes instructions and memory directives: lines are lexed,
// pseudo-instructions expand, data directives assemble into a byte image,
// and labels bind to positions. Memory allocation happens *between* the
// passes (data labels need final addresses because instruction arguments
// may contain arithmetic expressions such as `lla x4, arr+64`). Pass 2
// evaluates every operand expression — including %hi()/%lo() relocation
// operators and label arithmetic — and converts branch/jump targets to
// PC-relative immediates.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "assembler/program.h"
#include "common/status.h"
#include "isa/instruction_set.h"

namespace rvss::assembler {

struct AssembleOptions {
  /// Memory address where the program's .data image is placed (above the
  /// call stack and user-defined arrays).
  std::uint32_t dataBase = 0;
  /// Pre-resolved symbols (the paper's Memory Settings arrays, referenced
  /// from C via `extern`). These shadow nothing: a duplicate label defined
  /// in the program is an error.
  std::map<std::string, std::uint32_t> externalSymbols;
  /// Entry label; empty selects the first instruction.
  std::string entryLabel;
};

class Assembler {
 public:
  explicit Assembler(const isa::InstructionSet& isa = isa::InstructionSet::Default())
      : isa_(isa) {}

  /// Assembles `source` into a Program.
  Result<Program> Assemble(std::string_view source,
                           const AssembleOptions& options = {}) const;

 private:
  const isa::InstructionSet& isa_;
};

/// Evaluates an assembler operand expression: integers in any base, label
/// names, `+ - *` arithmetic, parentheses, unary minus, and the `%hi()` /
/// `%lo()` relocation operators. Exposed for the compiler-output filter
/// and for tests.
Result<std::int64_t> EvaluateOperandExpression(
    std::string_view text, const std::map<std::string, std::uint32_t>& symbols,
    std::uint32_t lineNo);

}  // namespace rvss::assembler
