// Compiler-output filter (paper §III-C): "the assembler output may contain
// a large amount of information that is redundant for the simulator and
// also reduces the readability of the code. Therefore, the compiler output
// is passed through a filter that removes unnecessary directives, labels,
// and data."
#pragma once

#include <string>
#include <string_view>

namespace rvss::assembler {

struct FilterOptions {
  /// Keep comments (the C-line link tags survive filtering by default).
  bool keepComments = true;
};

/// Returns a cleaned copy of `source`: metadata directives (.file, .ident,
/// .cfi_*, .globl, ...) are dropped, labels that nothing references are
/// removed, and blank-line runs collapse. Instructions, referenced labels
/// and memory-definition directives always survive.
std::string FilterAssembly(std::string_view source,
                           const FilterOptions& options = {});

}  // namespace rvss::assembler
