// The assembled program: decoded instruction objects plus the data image.
//
// Like the paper's simulator, execution works on instruction *objects*
// produced by the assembler (linked to their behaviour description and
// resolved operands), not on encoded machine words. Code lives in its own
// segment addressed by PC (pc = 4 * instruction index); data directives
// assemble into a byte image that simulation startup copies into main
// memory at `dataBase`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/instruction_set.h"
#include "isa/register_file_info.h"

namespace rvss::assembler {

/// One resolved operand, parallel to the definition's argument list.
struct Operand {
  bool isRegister = false;
  isa::RegisterId reg;       ///< valid when isRegister
  std::int32_t imm = 0;      ///< valid when !isRegister
  std::string text;          ///< as written, for display ("arr+64")
};

/// One decoded instruction.
struct Instruction {
  const isa::InstructionDescription* def = nullptr;
  std::vector<Operand> operands;
  std::uint32_t pc = 0;
  std::uint32_t sourceLine = 0;  ///< 1-based line in the assembly text
  std::int32_t cLine = -1;       ///< linked C source line (compiler metadata)
  std::string text;              ///< canonical display text

  /// Value of the operand bound to argument `argIndex` when immediate.
  std::int32_t ImmOf(std::size_t argIndex) const {
    return operands[argIndex].imm;
  }
};

/// A fully assembled program.
struct Program {
  std::vector<Instruction> instructions;
  /// Every label with its resolved value (code labels: instruction
  /// addresses; data labels: memory addresses).
  std::map<std::string, std::uint32_t> labels;
  std::vector<std::uint8_t> dataImage;  ///< assembled .data/.bss payload
  std::uint32_t dataBase = 0;           ///< load address of dataImage
  std::uint32_t entryPc = 0;

  std::uint32_t CodeByteSize() const {
    return static_cast<std::uint32_t>(instructions.size()) * 4;
  }
};

}  // namespace rvss::assembler
