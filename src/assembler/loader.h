// Program loading: composes the memory map and assembles a program into it.
//
// Memory map (paper §III-C): the call stack sits at the beginning of
// memory with `sp` (x2) pointing at its top; user-defined arrays from the
// Memory Settings window come next; the program's own .data image follows,
// 16-byte aligned. `ra` (x1) is initialised with the exit sentinel so that
// returning from the entry routine ends the simulation.
#pragma once

#include <string_view>
#include <vector>

#include "assembler/assembler.h"
#include "assembler/program.h"
#include "common/status.h"
#include "config/cpu_config.h"
#include "memory/main_memory.h"
#include "memory/memory_initializer.h"

namespace rvss::assembler {

struct LoadedProgram {
  Program program;
  memory::MemoryLayout arrayLayout;  ///< user arrays (label -> address)
  std::uint32_t initialSp = 0;       ///< top of the call stack
  std::uint32_t initialRa = 0;       ///< exit sentinel
};

/// Assembles `source` against the memory map implied by `config` and
/// `arrays`, and writes arrays + the program's data image into `memory`.
/// `memory` must have been constructed with `config.memory.sizeBytes`.
Result<LoadedProgram> LoadProgram(
    std::string_view source, const std::vector<memory::ArrayDefinition>& arrays,
    const config::CpuConfig& config, memory::MainMemory& memory,
    std::string_view entryLabel = "",
    const isa::InstructionSet& isa = isa::InstructionSet::Default());

}  // namespace rvss::assembler
