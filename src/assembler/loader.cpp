#include "assembler/loader.h"

#include "common/bitops.h"
#include "isa/abi.h"

namespace rvss::assembler {

Result<LoadedProgram> LoadProgram(
    std::string_view source, const std::vector<memory::ArrayDefinition>& arrays,
    const config::CpuConfig& config, memory::MainMemory& memory,
    std::string_view entryLabel, const isa::InstructionSet& isa) {
  LoadedProgram loaded;

  // 1. Place user arrays right above the call stack.
  const std::uint32_t arraysBase = config.memory.callStackBytes;
  RVSS_ASSIGN_OR_RETURN(
      loaded.arrayLayout,
      memory::ComputeLayout(arrays, arraysBase, memory.size()));

  // 2. The program's own .data image follows, aligned.
  const std::uint32_t dataBase = static_cast<std::uint32_t>(
      AlignUp(loaded.arrayLayout.dataEnd, isa::kDataAlignment));

  // 3. Assemble with array labels visible as external symbols.
  AssembleOptions options;
  options.dataBase = dataBase;
  options.externalSymbols = loaded.arrayLayout.symbols;
  options.entryLabel = std::string(entryLabel);
  Assembler assembler(isa);
  RVSS_ASSIGN_OR_RETURN(loaded.program, assembler.Assemble(source, options));

  if (dataBase + loaded.program.dataImage.size() > memory.size()) {
    return Error{ErrorKind::kInvalidArgument,
                 "program data does not fit in memory"};
  }

  // 4. Populate memory: arrays, then the data image.
  RVSS_ASSIGN_OR_RETURN(loaded.arrayLayout,
                        memory::InitializeArrays(memory, arrays, arraysBase));
  for (std::size_t i = 0; i < loaded.program.dataImage.size(); ++i) {
    memory.Write8(dataBase + static_cast<std::uint32_t>(i),
                  loaded.program.dataImage[i]);
  }

  loaded.initialSp = config.memory.callStackBytes;
  loaded.initialRa = isa::kExitAddress;
  return loaded;
}

}  // namespace rvss::assembler
