#include "assembler/assembler.h"

#include <cctype>
#include <optional>
#include <unordered_set>

#include "assembler/lexer.h"
#include "common/bitops.h"
#include "common/strings.h"
#include "isa/pseudo.h"

namespace rvss::assembler {
namespace {

// ---------------------------------------------------------------------------
// Operand expression evaluation (pass 2 and .word relocations)
// ---------------------------------------------------------------------------

class ExprParser {
 public:
  ExprParser(std::string_view text,
             const std::map<std::string, std::uint32_t>& symbols,
             std::uint32_t lineNo)
      : text_(text), symbols_(symbols), lineNo_(lineNo) {}

  Result<std::int64_t> Parse() {
    RVSS_ASSIGN_OR_RETURN(std::int64_t value, ParseSum());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters in expression '" + std::string(text_) +
                  "'");
    }
    return value;
  }

 private:
  Error Fail(std::string message) const {
    return Error{ErrorKind::kParse, std::move(message), SourcePos{lineNo_, 0}};
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::int64_t> ParseSum() {
    RVSS_ASSIGN_OR_RETURN(std::int64_t value, ParseProduct());
    while (true) {
      if (Consume('+')) {
        RVSS_ASSIGN_OR_RETURN(std::int64_t rhs, ParseProduct());
        value += rhs;
      } else if (Consume('-')) {
        RVSS_ASSIGN_OR_RETURN(std::int64_t rhs, ParseProduct());
        value -= rhs;
      } else {
        return value;
      }
    }
  }

  Result<std::int64_t> ParseProduct() {
    RVSS_ASSIGN_OR_RETURN(std::int64_t value, ParsePrimary());
    while (Consume('*')) {
      RVSS_ASSIGN_OR_RETURN(std::int64_t rhs, ParsePrimary());
      value *= rhs;
    }
    return value;
  }

  Result<std::int64_t> ParsePrimary() {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("expected operand expression");
    char c = text_[pos_];
    if (c == '-') {
      ++pos_;
      RVSS_ASSIGN_OR_RETURN(std::int64_t value, ParsePrimary());
      return -value;
    }
    if (c == '(') {
      ++pos_;
      RVSS_ASSIGN_OR_RETURN(std::int64_t value, ParseSum());
      if (!Consume(')')) return Fail("expected ')'");
      return value;
    }
    if (c == '%') {
      // %hi(expr) / %lo(expr) relocation operators.
      ++pos_;
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      std::string_view op = text_.substr(start, pos_ - start);
      if (!Consume('(')) return Fail("expected '(' after %" + std::string(op));
      RVSS_ASSIGN_OR_RETURN(std::int64_t value, ParseSum());
      if (!Consume(')')) return Fail("expected ')'");
      const std::uint32_t address = static_cast<std::uint32_t>(value);
      if (op == "hi") {
        // Upper 20 bits with the +0x800 rounding that pairs with %lo.
        return static_cast<std::int64_t>(((address + 0x800u) >> 12) & 0xfffffu);
      }
      if (op == "lo") {
        // Sign-extended low 12 bits.
        return SignExtend(address & 0xfffu, 12);
      }
      return Fail("unknown relocation operator %" + std::string(op));
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])))) {
        ++pos_;
      }
      auto value = ParseInt(text_.substr(start, pos_ - start));
      if (!value) return Fail("malformed number in expression");
      return *value;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '.' || text_[pos_] == '$')) {
        ++pos_;
      }
      std::string symbol(text_.substr(start, pos_ - start));
      auto it = symbols_.find(symbol);
      if (it == symbols_.end()) {
        return Fail("undefined symbol '" + symbol + "'");
      }
      return static_cast<std::int64_t>(it->second);
    }
    return Fail(std::string("unexpected character '") + c + "' in expression");
  }

  std::string_view text_;
  const std::map<std::string, std::uint32_t>& symbols_;
  std::uint32_t lineNo_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Pass-1 state
// ---------------------------------------------------------------------------

/// An instruction captured in pass 1: mnemonic resolved to a definition,
/// operand texts kept for pass-2 evaluation.
struct PendingInstruction {
  const isa::InstructionDescription* def = nullptr;
  std::vector<std::string> operandTexts;
  std::uint32_t pc = 0;
  std::uint32_t sourceLine = 0;
  std::int32_t cLine = -1;
};

/// A `.word expr` whose value needs pass-2 symbol resolution.
struct DataRelocation {
  std::size_t imageOffset = 0;
  std::uint8_t size = 4;
  std::string expression;
  std::uint32_t sourceLine = 0;
};

const std::unordered_set<std::string_view>& IgnorableDirectives() {
  static const auto* kSet = new std::unordered_set<std::string_view>{
      ".globl", ".global", ".local",  ".type",   ".size",   ".file",
      ".ident", ".option", ".attribute", ".weak", ".section", ".sect",
      ".rodata", ".bss", ".cfi_startproc", ".cfi_endproc", ".cfi_offset",
      ".cfi_def_cfa_offset", ".cfi_restore", ".cfi_def_cfa",
  };
  return *kSet;
}

Result<std::string> DecodeStringLiteral(std::string_view text,
                                        std::uint32_t lineNo) {
  if (text.size() < 2 || text.front() != '"' || text.back() != '"') {
    return Error{ErrorKind::kParse, "expected string literal",
                 SourcePos{lineNo, 0}};
  }
  std::string out;
  for (std::size_t i = 1; i + 1 < text.size(); ++i) {
    char c = text[i];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (i + 2 >= text.size() + 1) {
      return Error{ErrorKind::kParse, "dangling escape in string",
                   SourcePos{lineNo, 0}};
    }
    char esc = text[++i];
    switch (esc) {
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case '0': out += '\0'; break;
      case '\\': out += '\\'; break;
      case '"': out += '"'; break;
      default:
        return Error{ErrorKind::kParse,
                     std::string("unknown escape '\\") + esc + "' in string",
                     SourcePos{lineNo, 0}};
    }
  }
  return out;
}

bool IsRoundingModeName(std::string_view text) {
  return text == "rne" || text == "rtz" || text == "rdn" || text == "rup" ||
         text == "rmm" || text == "dyn";
}

std::int32_t ParseCLineComment(std::string_view comment) {
  // The rvcc compiler links C and assembly lines by tagging emitted
  // instructions with "@c <line>" comments.
  comment = Trim(comment);
  if (!StartsWith(comment, "@c ")) return -1;
  auto value = ParseInt(Trim(comment.substr(3)));
  if (!value || *value < 0) return -1;
  return static_cast<std::int32_t>(*value);
}

}  // namespace

Result<std::int64_t> EvaluateOperandExpression(
    std::string_view text, const std::map<std::string, std::uint32_t>& symbols,
    std::uint32_t lineNo) {
  return ExprParser(text, symbols, lineNo).Parse();
}

Result<Program> Assembler::Assemble(std::string_view source,
                                    const AssembleOptions& options) const {
  RVSS_ASSIGN_OR_RETURN(std::vector<Line> lines, LexSource(source));

  // ---------------- Pass 1 ----------------
  enum class Section { kText, kData };
  Section section = Section::kText;

  std::vector<PendingInstruction> pending;
  std::vector<std::uint8_t> dataImage;
  std::vector<DataRelocation> relocations;
  // Label name -> (isCode, position): code positions are instruction
  // indices, data positions are offsets into dataImage.
  struct LabelPos {
    bool isCode = true;
    std::uint32_t position = 0;
    std::uint32_t line = 0;
  };
  std::map<std::string, LabelPos> labelPositions;

  auto defineLabels = [&](const Line& line) -> Status {
    for (const std::string& label : line.labels) {
      if (labelPositions.contains(label) ||
          options.externalSymbols.contains(label)) {
        return Status::Fail(ErrorKind::kSemantic,
                            "duplicate label '" + label + "'",
                            SourcePos{line.number, 0});
      }
      labelPositions.emplace(
          label,
          LabelPos{section == Section::kText,
                   section == Section::kText
                       ? static_cast<std::uint32_t>(pending.size())
                       : static_cast<std::uint32_t>(dataImage.size()),
                   line.number});
    }
    return Status::Ok();
  };

  auto appendData = [&](std::uint8_t size, std::uint64_t value) {
    for (std::uint8_t i = 0; i < size; ++i) {
      dataImage.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  };

  for (const Line& line : lines) {
    RVSS_RETURN_IF_ERROR(defineLabels(line));
    if (line.mnemonic.empty()) continue;
    const std::string& m = line.mnemonic;
    const SourcePos pos{line.number, 0};

    if (m[0] == '.') {
      // ------- directives -------
      if (m == ".text") {
        section = Section::kText;
      } else if (m == ".data") {
        section = Section::kData;
      } else if (m == ".section") {
        section = (!line.operands.empty() &&
                   (line.operands[0] == ".text"))
                      ? Section::kText
                      : Section::kData;
      } else if (m == ".byte" || m == ".hword" || m == ".half" ||
                 m == ".word") {
        if (section != Section::kData) {
          return Error{ErrorKind::kSemantic,
                       "data directive '" + m + "' outside .data section", pos};
        }
        const std::uint8_t size = m == ".byte" ? 1 : m == ".word" ? 4 : 2;
        for (const std::string& operand : line.operands) {
          if (auto value = ParseInt(operand); value.has_value()) {
            appendData(size, static_cast<std::uint64_t>(*value));
          } else {
            // Symbolic: resolve in pass 2 once addresses are known.
            relocations.push_back(DataRelocation{dataImage.size(), size,
                                                 operand, line.number});
            appendData(size, 0);
          }
        }
      } else if (m == ".float" || m == ".double") {
        if (section != Section::kData) {
          return Error{ErrorKind::kSemantic,
                       "data directive '" + m + "' outside .data section", pos};
        }
        for (const std::string& operand : line.operands) {
          auto value = ParseDouble(operand);
          if (!value) {
            return Error{ErrorKind::kParse,
                         "malformed floating-point literal '" + operand + "'",
                         pos};
          }
          if (m == ".float") {
            appendData(4, FloatToBits(static_cast<float>(*value)));
          } else {
            appendData(8, DoubleToBits(*value));
          }
        }
      } else if (m == ".align" || m == ".p2align") {
        // Power-of-two alignment (the paper's `.align 4` == 16 bytes).
        if (line.operands.size() != 1) {
          return Error{ErrorKind::kParse, m + " expects one operand", pos};
        }
        auto power = ParseInt(line.operands[0]);
        if (!power || *power < 0 || *power > 16) {
          return Error{ErrorKind::kParse, "invalid alignment", pos};
        }
        if (section == Section::kData) {
          const std::size_t alignment = std::size_t{1} << *power;
          while (dataImage.size() % alignment != 0) dataImage.push_back(0);
        }
      } else if (m == ".balign") {
        if (line.operands.size() != 1) {
          return Error{ErrorKind::kParse, ".balign expects one operand", pos};
        }
        auto bytes = ParseInt(line.operands[0]);
        if (!bytes || *bytes <= 0 || !IsPowerOfTwo(static_cast<std::uint64_t>(*bytes))) {
          return Error{ErrorKind::kParse, "invalid .balign operand", pos};
        }
        if (section == Section::kData) {
          while (dataImage.size() % static_cast<std::size_t>(*bytes) != 0) {
            dataImage.push_back(0);
          }
        }
      } else if (m == ".ascii" || m == ".asciiz" || m == ".string") {
        if (section != Section::kData) {
          return Error{ErrorKind::kSemantic,
                       "string directive outside .data section", pos};
        }
        if (line.operands.size() != 1) {
          return Error{ErrorKind::kParse, m + " expects one string operand",
                       pos};
        }
        RVSS_ASSIGN_OR_RETURN(std::string decoded,
                              DecodeStringLiteral(line.operands[0],
                                                  line.number));
        for (char c : decoded) dataImage.push_back(static_cast<std::uint8_t>(c));
        if (m != ".ascii") dataImage.push_back(0);  // NUL terminator
      } else if (m == ".skip" || m == ".zero") {
        if (section != Section::kData) {
          return Error{ErrorKind::kSemantic,
                       "'" + m + "' outside .data section", pos};
        }
        if (line.operands.size() != 1) {
          return Error{ErrorKind::kParse, m + " expects one operand", pos};
        }
        auto count = ParseInt(line.operands[0]);
        if (!count || *count < 0 || *count > (1 << 24)) {
          return Error{ErrorKind::kParse, "invalid size for " + m, pos};
        }
        dataImage.insert(dataImage.end(), static_cast<std::size_t>(*count), 0);
      } else if (IgnorableDirectives().contains(m)) {
        // Assembler metadata with no simulation meaning.
      } else {
        return Error{ErrorKind::kParse, "unknown directive '" + m + "'", pos};
      }
      continue;
    }

    // ------- instructions -------
    if (section != Section::kText) {
      return Error{ErrorKind::kSemantic,
                   "instruction '" + m + "' outside .text section", pos};
    }
    const std::int32_t cLine = ParseCLineComment(line.comment);

    // Single-operand jump conveniences resolve before pseudo expansion.
    std::string mnemonic = m;
    std::vector<std::string> operands = line.operands;
    if (mnemonic == "jal" && operands.size() == 1) {
      operands.insert(operands.begin(), "ra");
    } else if (mnemonic == "jalr" && operands.size() == 1) {
      operands = {"ra", operands[0], "0"};
    } else if (mnemonic == "jalr" && operands.size() == 2 &&
               operands[1].find('(') == std::string::npos) {
      operands.push_back("0");
    }

    std::vector<isa::ExpandedInstruction> expanded;
    // GNU bare-symbol memory forms:
    //   lw rd, sym        -> lui rd, %hi(sym);  lw rd, %lo(sym)(rd)
    //   flw fd, sym, rt   -> lui rt, %hi(sym);  flw fd, %lo(sym)(rt)
    //   sw rs, sym, rt    -> lui rt, %hi(sym);  sw rs, %lo(sym)(rt)
    const isa::InstructionDescription* directDef = isa_.Find(mnemonic);
    if (directDef != nullptr && directDef->IsMemory() && operands.size() >= 2 &&
        operands[1].find('(') == std::string::npos) {
      if (auto literal = ParseInt(operands[1]); literal.has_value()) {
        // Plain absolute offset: address it off x0.
        operands[1] += "(zero)";
        expanded = {isa::ExpandedInstruction{mnemonic, operands}};
      } else if (operands.size() == 3) {
        const std::string temp = operands[2];
        expanded = {
            isa::ExpandedInstruction{"lui", {temp, "%hi(" + operands[1] + ")"}},
            isa::ExpandedInstruction{
                mnemonic,
                {operands[0], "%lo(" + operands[1] + ")(" + temp + ")"}}};
      } else if (directDef->mem.isLoad && !directDef->mem.isFloat) {
        expanded = {
            isa::ExpandedInstruction{"lui",
                                     {operands[0], "%hi(" + operands[1] + ")"}},
            isa::ExpandedInstruction{
                mnemonic,
                {operands[0], "%lo(" + operands[1] + ")(" + operands[0] + ")"}}};
      } else {
        return Error{ErrorKind::kParse,
                     "store / FP load to a bare symbol needs a temp register "
                     "(e.g. `sw rs, sym, t0`)",
                     pos};
      }
    } else if (isa::IsPseudoInstruction(mnemonic) && isa_.Find(mnemonic) == nullptr) {
      auto expansion = isa::ExpandPseudoInstruction(mnemonic, operands);
      if (!expansion.ok()) {
        Error error = expansion.error();
        error.pos = pos;
        return error;
      }
      expanded = std::move(expansion).value();
    } else {
      expanded = {isa::ExpandedInstruction{mnemonic, operands}};
    }

    for (isa::ExpandedInstruction& unit : expanded) {
      const isa::InstructionDescription* def = isa_.Find(unit.mnemonic);
      if (def == nullptr) {
        return Error{ErrorKind::kParse,
                     "unknown instruction '" + unit.mnemonic + "'", pos};
      }
      PendingInstruction instr;
      instr.def = def;
      instr.operandTexts = std::move(unit.operands);
      instr.pc = static_cast<std::uint32_t>(pending.size()) * 4;
      instr.sourceLine = line.number;
      instr.cLine = cLine;
      pending.push_back(std::move(instr));
    }
  }

  // ---------------- Memory allocation between passes ----------------
  Program program;
  program.dataBase = options.dataBase;
  program.dataImage = std::move(dataImage);
  program.labels = options.externalSymbols;
  for (const auto& [name, position] : labelPositions) {
    program.labels[name] = position.isCode
                               ? position.position * 4
                               : options.dataBase + position.position;
  }

  // Resolve .word relocations now that every label has an address.
  for (const DataRelocation& reloc : relocations) {
    RVSS_ASSIGN_OR_RETURN(
        std::int64_t value,
        EvaluateOperandExpression(reloc.expression, program.labels,
                                  reloc.sourceLine));
    for (std::uint8_t i = 0; i < reloc.size; ++i) {
      program.dataImage[reloc.imageOffset + i] =
          static_cast<std::uint8_t>(static_cast<std::uint64_t>(value) >> (8 * i));
    }
  }

  // ---------------- Pass 2: operand resolution ----------------
  program.instructions.reserve(pending.size());
  for (PendingInstruction& instr : pending) {
    Instruction out;
    out.def = instr.def;
    out.pc = instr.pc;
    out.sourceLine = instr.sourceLine;
    out.cLine = instr.cLine;

    // Drop a trailing rounding-mode operand on FP instructions.
    std::vector<std::string>& texts = instr.operandTexts;
    if (instr.def->takesRoundingMode && !texts.empty() &&
        IsRoundingModeName(texts.back())) {
      texts.pop_back();
    }

    // Memory-style syntax: rewrite `imm(rs1)` into separate fields.
    const bool memForm = instr.def->IsMemory();
    std::vector<std::string> fields;
    if (memForm) {
      if (texts.size() != 2) {
        return Error{ErrorKind::kParse,
                     instr.def->name + " expects 2 operands",
                     SourcePos{instr.sourceLine, 0}};
      }
      std::string& mem = texts[1];
      std::size_t open = mem.rfind('(');
      if (open == std::string::npos || mem.back() != ')') {
        return Error{ErrorKind::kParse,
                     "expected 'offset(register)' operand in " +
                         instr.def->name,
                     SourcePos{instr.sourceLine, 0}};
      }
      std::string offset(Trim(std::string_view(mem).substr(0, open)));
      std::string base = mem.substr(open + 1, mem.size() - open - 2);
      if (offset.empty()) offset = "0";
      // Definition order is rd/rs2, rs1, imm.
      fields = {texts[0], std::string(Trim(base)), offset};
    } else if (instr.def->name == "jalr" && texts.size() == 2 &&
               texts[1].find('(') != std::string::npos) {
      std::string& mem = texts[1];
      std::size_t open = mem.rfind('(');
      if (mem.back() != ')') {
        return Error{ErrorKind::kParse, "malformed jalr operand",
                     SourcePos{instr.sourceLine, 0}};
      }
      std::string offset(Trim(std::string_view(mem).substr(0, open)));
      std::string base = mem.substr(open + 1, mem.size() - open - 2);
      if (offset.empty()) offset = "0";
      fields = {texts[0], std::string(Trim(base)), offset};
    } else {
      fields = texts;
    }

    if (fields.size() != instr.def->args.size()) {
      return Error{ErrorKind::kParse,
                   instr.def->name + " expects " +
                       std::to_string(instr.def->args.size()) +
                       " operand(s), got " + std::to_string(fields.size()),
                   SourcePos{instr.sourceLine, 0}};
    }

    for (std::size_t i = 0; i < fields.size(); ++i) {
      const isa::ArgumentDescription& arg = instr.def->args[i];
      Operand operand;
      operand.text = fields[i];
      if (!arg.isImmediate) {
        auto reg = isa::ParseRegisterName(fields[i]);
        if (!reg) {
          return Error{ErrorKind::kParse,
                       "expected register, got '" + fields[i] + "' in " +
                           instr.def->name,
                       SourcePos{instr.sourceLine, 0}};
        }
        const bool wantFp = arg.IsFpRegister();
        if (wantFp != (reg->kind == isa::RegisterKind::kFp)) {
          return Error{ErrorKind::kSemantic,
                       std::string("register '") + fields[i] + "' is the wrong "
                       "register file for " + instr.def->name,
                       SourcePos{instr.sourceLine, 0}};
        }
        operand.isRegister = true;
        operand.reg = *reg;
      } else {
        RVSS_ASSIGN_OR_RETURN(
            std::int64_t value,
            EvaluateOperandExpression(fields[i], program.labels,
                                      instr.sourceLine));
        // Branch and direct-jump targets become PC-relative immediates
        // (the paper: "it is sometimes necessary to subtract the
        // instruction's position from the absolute value of the label").
        if (instr.def->branch == isa::BranchKind::kConditional ||
            instr.def->branch == isa::BranchKind::kUnconditionalDirect) {
          value -= instr.pc;
        }
        // Range checks where the ISA defines an encoding limit.
        if (instr.def->name == "slli" || instr.def->name == "srli" ||
            instr.def->name == "srai") {
          if (value < 0 || value > 31) {
            return Error{ErrorKind::kSemantic,
                         "shift amount out of range [0, 31]",
                         SourcePos{instr.sourceLine, 0}};
          }
        } else if (instr.def->name == "lui" || instr.def->name == "auipc") {
          if (value < 0 || value > 0xfffff) {
            return Error{ErrorKind::kSemantic,
                         "20-bit immediate out of range",
                         SourcePos{instr.sourceLine, 0}};
          }
        } else if (instr.def->opClass == isa::OpClass::kIntAlu &&
                   instr.def->args.size() == 3 && arg.name == "imm") {
          if (value < -2048 || value > 2047) {
            return Error{ErrorKind::kSemantic,
                         "12-bit immediate out of range in " + instr.def->name,
                         SourcePos{instr.sourceLine, 0}};
          }
        } else if (instr.def->IsMemory() ||
                   instr.def->name == "jalr") {
          if (value < -2048 || value > 2047) {
            return Error{ErrorKind::kSemantic,
                         "12-bit offset out of range in " + instr.def->name,
                         SourcePos{instr.sourceLine, 0}};
          }
        }
        operand.isRegister = false;
        operand.imm = static_cast<std::int32_t>(value);
      }
      out.operands.push_back(std::move(operand));
    }

    // Canonical display text.
    out.text = instr.def->name;
    for (std::size_t i = 0; i < out.operands.size(); ++i) {
      out.text += i == 0 ? " " : ", ";
      out.text += out.operands[i].text;
    }

    program.instructions.push_back(std::move(out));
  }

  // ---------------- Entry point ----------------
  if (!options.entryLabel.empty()) {
    auto it = program.labels.find(options.entryLabel);
    if (it == program.labels.end()) {
      return Error{ErrorKind::kSemantic,
                   "entry label '" + options.entryLabel + "' is not defined"};
    }
    auto posIt = labelPositions.find(options.entryLabel);
    if (posIt == labelPositions.end() || !posIt->second.isCode) {
      return Error{ErrorKind::kSemantic,
                   "entry label '" + options.entryLabel +
                       "' does not name code"};
    }
    program.entryPc = it->second;
  } else {
    program.entryPc = 0;
  }

  if (program.instructions.empty()) {
    return Error{ErrorKind::kSemantic, "program contains no instructions"};
  }
  return program;
}

}  // namespace rvss::assembler
