// Assembly-line lexer: splits source into labeled statements.
//
// The paper's first pass "divides the program text into language units
// (tokens such as symbols, comments, or new lines)"; this lexer does that
// per line, handling comments (# and //), any number of `label:` prefixes,
// string literals with escapes, and comma-separated operands where an
// operand may itself contain parentheses (`8(sp)`, `%hi(arr+4)`).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace rvss::assembler {

/// One statement (at most one per line after label extraction).
struct Line {
  std::uint32_t number = 0;            ///< 1-based source line
  std::vector<std::string> labels;     ///< labels defined on this line
  std::string mnemonic;                ///< instruction or directive (".word");
                                       ///< empty for label-only lines
  std::vector<std::string> operands;   ///< raw operand texts, trimmed
  std::string comment;                 ///< comment text without the marker
};

/// Lexes a whole source file. Fails on unterminated strings and stray
/// characters; all other validation happens in the assembler passes.
Result<std::vector<Line>> LexSource(std::string_view source);

}  // namespace rvss::assembler
