#include "core/simulation.h"

#include <algorithm>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/strings.h"
#include "isa/abi.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "ref/interpreter.h"

namespace rvss::core {
namespace {

/// Deep-copies InFlight graphs with aliasing preserved: each distinct
/// source object is cloned exactly once, so containers that share an entry
/// (ROB + issue window + load buffer + functional unit) keep sharing the
/// clone, while the clones share nothing with the source.
class InFlightCloner {
 public:
  InFlightPtr operator()(const InFlightPtr& source) {
    if (source == nullptr) return nullptr;
    InFlightPtr& clone = clones_[source.get()];
    if (clone == nullptr) clone = std::make_shared<InFlight>(*source);
    return clone;
  }
  std::deque<InFlightPtr> operator()(const std::deque<InFlightPtr>& source) {
    std::deque<InFlightPtr> out;
    for (const InFlightPtr& inst : source) out.push_back((*this)(inst));
    return out;
  }
  std::vector<InFlightPtr> operator()(const std::vector<InFlightPtr>& source) {
    std::vector<InFlightPtr> out;
    out.reserve(source.size());
    for (const InFlightPtr& inst : source) out.push_back((*this)(inst));
    return out;
  }

 private:
  std::unordered_map<const InFlight*, InFlightPtr> clones_;
};

}  // namespace

const char* ToString(Phase phase) {
  switch (phase) {
    case Phase::kFetched: return "fetched";
    case Phase::kDecoded: return "decoded";
    case Phase::kExecuting: return "executing";
    case Phase::kDone: return "done";
    case Phase::kCommitted: return "committed";
    case Phase::kSquashed: return "squashed";
  }
  return "unknown";
}

const char* ToString(SimStatus status) {
  switch (status) {
    case SimStatus::kRunning: return "running";
    case SimStatus::kFinished: return "finished";
    case SimStatus::kFault: return "fault";
  }
  return "unknown";
}

const char* ToString(FinishReason reason) {
  switch (reason) {
    case FinishReason::kNone: return "none";
    case FinishReason::kMainReturned: return "main returned";
    case FinishReason::kHalted: return "halted";
    case FinishReason::kPipelineEmpty: return "pipeline empty";
    case FinishReason::kException: return "exception";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Simulation>> Simulation::Create(
    const config::CpuConfig& config, std::string_view source,
    const CreateOptions& options) {
  std::vector<Error> problems = config::Validate(config);
  if (!problems.empty()) {
    std::string message = "invalid configuration:";
    for (const Error& problem : problems) {
      message += "\n  - " + problem.message;
    }
    return Error{ErrorKind::kConfig, std::move(message)};
  }

  auto memorySystem = std::make_unique<memory::MemorySystem>(config);
  RVSS_ASSIGN_OR_RETURN(
      assembler::LoadedProgram loaded,
      assembler::LoadProgram(source, options.arrays, config,
                             memorySystem->memory(), options.entryLabel));

  std::unique_ptr<Simulation> sim(
      new Simulation(config, std::move(loaded)));
  sim->memory_ = std::move(memorySystem);
  sim->BuildPredecode();
  // Snapshot the loaded memory for the checkpoints-disabled ResetHard path.
  sim->initialMemoryImage_.assign(sim->memory_->memory().bytes().begin(),
                                  sim->memory_->memory().bytes().end());
  // Base-epoch id for delta session blobs: any process Creating the same
  // (config, program, arrays) reproduces this exact image, so the hash
  // alone proves base availability across the wire.
  {
    std::uint64_t hash = 14695981039346656037ull;
    for (std::uint8_t byte : sim->initialMemoryImage_) {
      hash = (hash ^ byte) * 1099511628211ull;
    }
    sim->memoryBaseEpoch_ = hash;
  }
  sim->ResetHard();
  if (sim->checkpoints_.enabled()) {
    // The cycle-0 base checkpoint: Reset()'s restore point. It is pinned
    // (never evicted), so it supersedes the raw memory image — keeping
    // both would double the fixed per-session footprint.
    sim->CaptureCheckpointNow();
    sim->initialMemoryImage_.clear();
    sim->initialMemoryImage_.shrink_to_fit();
  }
  // Memory provably equals the base image here; start delta tracking clean.
  sim->memory_->memory().RebaseDirtyTracking();
  return sim;
}

Simulation::Simulation(config::CpuConfig config, assembler::LoadedProgram loaded)
    : config_(std::move(config)),
      loaded_(std::move(loaded)),
      predictor_(config_.predictor),
      rename_(config_.memory.renameRegisterCount),
      checkpoints_(config_.checkpoint.intervalCycles,
                   config_.checkpoint.maxTotalBytes) {
  checkpoints_.SetAdaptive(config_.checkpoint.adaptiveInterval);
  // Instantiate functional units and their statistics slots.
  std::size_t statsIndex = 0;
  for (const config::FunctionalUnitConfig& fuConfig : config_.functionalUnits) {
    FunctionalUnit fu;
    fu.config = fuConfig;
    if (fu.config.name.empty()) {
      fu.config.name = std::string(config::ToString(fuConfig.kind)) +
                       std::to_string(statsIndex);
    }
    fu.statsIndex = statsIndex++;
    for (std::size_t c = 0; c < FunctionalUnit::kOpClassCount; ++c) {
      fu.latencyByClass[c] =
          fu.config.LatencyFor(static_cast<isa::OpClass>(c));
    }
    fus_.push_back(std::move(fu));
  }
  // Group unit indices by the window that feeds them, so issue scans only
  // the units a window can actually use.
  for (std::size_t w = 0; w < fusByWindow_.size(); ++w) {
    const auto kind = FuKindFor(static_cast<WindowKind>(w));
    for (std::size_t i = 0; i < fus_.size(); ++i) {
      if (fus_[i].config.kind == kind) {
        fusByWindow_[w].push_back(static_cast<std::uint32_t>(i));
      }
    }
  }
}

void Simulation::Reset() {
  lastSeekReplayedCycles_ = 0;
  if (earliestReachableCycle_ > 0) {
    // Imported fast-forwarded session: cycle 0 of this timeline cannot be
    // rebuilt here (the pre-import prefix lives in another process), so
    // "reset" means the oldest state we can reconstruct.
    (void)SeekTo(earliestReachableCycle_);
    return;
  }
  if (const CheckpointRing::Entry* base = checkpoints_.base()) {
    RestoreState(*checkpoints_.Materialize(*base));
    return;
  }
  ResetHard();
}

void Simulation::ResetHard() {
  forceFullCheckpoint_ = true;
  cycle_ = 0;
  nextSeq_ = 1;
  pc_ = loaded_.program.entryPc;
  fetchResumeCycle_ = 0;
  fetchStalledIndirect_ = false;
  status_ = SimStatus::kRunning;
  finishReason_ = FinishReason::kNone;
  fault_.reset();

  fetchQueue_.clear();
  rob_.clear();
  for (auto& window : windows_) window.clear();
  loadBuffer_.clear();
  storeBuffer_.clear();
  for (FunctionalUnit& fu : fus_) {
    fu.current.reset();
    fu.busyUntil = 0;
  }

  arch_.Reset();
  arch_.Write(isa::RegisterId{isa::RegisterKind::kInt, isa::kSpReg},
              loaded_.initialSp);
  arch_.Write(isa::RegisterId{isa::RegisterKind::kInt, isa::kRaReg},
              loaded_.initialRa);
  rename_.Reset();
  predictor_.Reset();
  log_.Clear();

  if (memory_) {
    memory_->Reset();
    std::copy(initialMemoryImage_.begin(), initialMemoryImage_.end(),
              memory_->memory().bytes().begin());
  }

  stats_ = stats::SimulationStatistics{};
  stats_.unitUsage.clear();
  for (const FunctionalUnit& fu : fus_) {
    stats_.unitUsage.push_back(stats::UnitUsage{fu.config.name, 0, 0});
  }
  for (const assembler::Instruction& inst : loaded_.program.instructions) {
    ++stats_.staticMix[static_cast<std::size_t>(inst.def->type)];
  }

  // A fast-forwarded timeline's cycle 0 is the post-skip state: the seed's
  // registers/PC on top of the (re-imaged) post-skip memory.
  if (ffSeed_.has_value()) ApplyFastForwardSeed(*ffSeed_);
}

void Simulation::ApplyFastForwardSeed(const FastForwardSeed& seed) {
  for (unsigned i = 0; i < 32; ++i) {
    arch_.Write(isa::RegisterId{isa::RegisterKind::kInt,
                                static_cast<std::uint8_t>(i)},
                seed.x[i]);
    arch_.Write(isa::RegisterId{isa::RegisterKind::kFp,
                                static_cast<std::uint8_t>(i)},
                seed.f[i]);
  }
  pc_ = seed.pc;
  stats_.fastForwardedInstructions = seed.instructions;
}

Status Simulation::FastForwardTo(std::uint64_t instructionCount) {
  if (cycle_ != 0 || status_ != SimStatus::kRunning) {
    return Status::Fail(ErrorKind::kInvalidArgument,
                        "fast-forward is only valid on a freshly created or "
                        "Reset simulation (cycle 0, running)");
  }
  if (ffSeed_.has_value()) {
    return Status::Fail(ErrorKind::kInvalidArgument,
                        "simulation was already fast-forwarded");
  }
  if (instructionCount == 0) return Status::Ok();

  obs::ScopedSpan span("sim", "fastForward");
  span.SetDetail(StrFormat(
      "requested=%llu", static_cast<unsigned long long>(instructionCount)));

  // The ISS executes directly on this simulation's memory (functional
  // stores land in place) and starts from the detailed model's reset
  // register state.
  ref::Interpreter iss(loaded_.program, memory_->memory(),
                       config_.trapOnDivZero);
  ref::Interpreter::ArchState start;
  for (unsigned i = 0; i < 32; ++i) {
    start.x[i] = ReadIntReg(i);
    start.f[i] = ReadFpReg(i);
  }
  start.pc = pc_;
  iss.RestoreArchState(start);

  const ref::ExitReason reason = iss.Run(instructionCount);

  // Hand the architectural state back to the detailed model.
  const ref::Interpreter::ArchState end = iss.SaveArchState();
  FastForwardSeed seed;
  seed.x = end.x;
  seed.f = end.f;
  seed.pc = end.pc;
  seed.instructions = iss.stats().executedInstructions;
  ffSeed_ = seed;
  ApplyFastForwardSeed(seed);
  span.SetDetail(StrFormat(
      "requested=%llu executed=%llu",
      static_cast<unsigned long long>(instructionCount),
      static_cast<unsigned long long>(seed.instructions)));

  log_.Add(cycle_, LogLevel::kInfo, "Sim",
           StrFormat("fast-forwarded %llu instructions on the ISS (%s)",
                     static_cast<unsigned long long>(seed.instructions),
                     ref::ToString(reason)));

  switch (reason) {
    case ref::ExitReason::kRunning:
      break;  // detailed execution resumes from here
    case ref::ExitReason::kMainReturned:
      Finish(FinishReason::kMainReturned);
      break;
    case ref::ExitReason::kHalted:
      Finish(FinishReason::kHalted);
      break;
    case ref::ExitReason::kRanOffCode:
      Finish(FinishReason::kPipelineEmpty);
      break;
    case ref::ExitReason::kFault:
      fault_ = iss.fault();
      Finish(FinishReason::kException);
      break;
  }

  // Rebase the cycle-0 restore points onto the post-fast-forward state:
  // the skipped prefix is not part of this timeline, so Reset/SeekTo must
  // never rebuild the pre-skip state.
  if (checkpoints_.enabled()) {
    checkpoints_.Clear();
    forceFullCheckpoint_ = true;
    CaptureCheckpointNow();
  } else {
    const std::span<const std::uint8_t> bytes =
        std::as_const(memory_->memory()).bytes();
    initialMemoryImage_.assign(bytes.begin(), bytes.end());
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Explicit state: snapshots and the checkpoint ring
// ---------------------------------------------------------------------------

std::size_t SimSnapshot::SizeBytes() const {
  std::size_t bytes = sizeof(SimSnapshot);
  bytes += memory.memory.bytes.capacity();
  if (memory.cache.has_value()) {
    bytes += memory.cache->lines.capacity() * sizeof(memory.cache->lines[0]);
  }
  bytes += rename.regs.capacity() * sizeof(SpecRegister);
  bytes += rename.freeList.capacity() * sizeof(int);
  bytes += predictor.pht.entries.capacity() *
           sizeof(predictor.pht.entries[0]);
  bytes += predictor.btb.entries.capacity() *
           sizeof(predictor.btb.entries[0]);
  bytes += predictor.localHistories.capacity() * sizeof(std::uint32_t);
  for (const stats::UnitUsage& usage : stats.unitUsage) {
    bytes += sizeof(usage) + usage.name.capacity();
  }
  for (const LogEntry& entry : log.entries) {
    bytes += sizeof(entry) + entry.block.capacity() + entry.text.capacity();
  }
  // Each distinct in-flight instruction counts once, however many
  // containers alias it; add the per-container pointer footprint too.
  std::unordered_set<const InFlight*> distinct;
  std::size_t references = 0;
  auto count = [&](const InFlightPtr& inst) {
    if (inst == nullptr) return;
    ++references;
    distinct.insert(inst.get());
  };
  for (const InFlightPtr& inst : fetchQueue) count(inst);
  for (const InFlightPtr& inst : rob) count(inst);
  for (const auto& window : windows) {
    for (const InFlightPtr& inst : window) count(inst);
  }
  for (const InFlightPtr& inst : loadBuffer) count(inst);
  for (const InFlightPtr& inst : storeBuffer) count(inst);
  for (const InFlightPtr& inst : fuCurrent) count(inst);
  bytes += distinct.size() * sizeof(InFlight);
  bytes += references * sizeof(InFlightPtr);
  bytes += fuBusyUntil.capacity() * sizeof(std::uint64_t);
  return bytes;
}

SimSnapshot Simulation::SaveStateImpl(bool includeMemoryImage) const {
  SimSnapshot snapshot;
  snapshot.cycle = cycle_;
  snapshot.nextSeq = nextSeq_;
  snapshot.pc = pc_;
  snapshot.fetchResumeCycle = fetchResumeCycle_;
  snapshot.fetchStalledIndirect = fetchStalledIndirect_;
  snapshot.status = status_;
  snapshot.finishReason = finishReason_;
  snapshot.fault = fault_;

  InFlightCloner clone;
  snapshot.fetchQueue = clone(fetchQueue_);
  snapshot.rob = clone(rob_);
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    snapshot.windows[i] = clone(windows_[i]);
  }
  snapshot.loadBuffer = clone(loadBuffer_);
  snapshot.storeBuffer = clone(storeBuffer_);
  snapshot.fuCurrent.reserve(fus_.size());
  snapshot.fuBusyUntil.reserve(fus_.size());
  for (const FunctionalUnit& fu : fus_) {
    snapshot.fuCurrent.push_back(clone(fu.current));
    snapshot.fuBusyUntil.push_back(fu.busyUntil);
  }

  snapshot.arch = arch_.SaveState();
  snapshot.rename = rename_.SaveState();
  snapshot.predictor = predictor_.SaveState();
  snapshot.memory = memory_->SaveState(includeMemoryImage);
  snapshot.stats = stats_.SaveState();
  snapshot.log = log_.SaveState();
  snapshot.ffSeed = ffSeed_;
  return snapshot;
}

void Simulation::RestoreState(const SimSnapshot& snapshot) {
  if (snapshot.ffSeed != ffSeed_) {
    // The snapshot belongs to a differently-seeded timeline (an imported
    // fast-forwarded session). Every restore point this process built so
    // far — the Create-time base checkpoint, the pre-import ring, the
    // initial memory image — describes the *pre*-fast-forward timeline and
    // must never be replayed from again; the snapshot itself becomes the
    // oldest reachable state.
    ffSeed_ = snapshot.ffSeed;
    checkpoints_.Clear();
    earliestReachableCycle_ = snapshot.ffSeed.has_value() ? snapshot.cycle : 0;
  }
  cycle_ = snapshot.cycle;
  nextSeq_ = snapshot.nextSeq;
  pc_ = snapshot.pc;
  fetchResumeCycle_ = snapshot.fetchResumeCycle;
  fetchStalledIndirect_ = snapshot.fetchStalledIndirect;
  status_ = snapshot.status;
  finishReason_ = snapshot.finishReason;
  fault_ = snapshot.fault;

  // Clone again on the way in, so the live run never aliases the snapshot
  // and one snapshot can seed any number of restores.
  InFlightCloner clone;
  fetchQueue_ = clone(snapshot.fetchQueue);
  rob_ = clone(snapshot.rob);
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    windows_[i] = clone(snapshot.windows[i]);
  }
  loadBuffer_ = clone(snapshot.loadBuffer);
  storeBuffer_ = clone(snapshot.storeBuffer);
  for (std::size_t i = 0; i < fus_.size(); ++i) {
    fus_[i].current = clone(snapshot.fuCurrent[i]);
    fus_[i].busyUntil = snapshot.fuBusyUntil[i];
  }

  arch_.RestoreState(snapshot.arch);
  rename_.RestoreState(snapshot.rename);
  predictor_.RestoreState(snapshot.predictor);
  memory_->RestoreState(snapshot.memory);
  stats_.RestoreState(snapshot.stats);
  log_.RestoreState(snapshot.log);

  // The dirty-page accounting no longer describes this timeline; the next
  // checkpoint must re-anchor with a full snapshot.
  forceFullCheckpoint_ = true;
}

void Simulation::CaptureCheckpointNow() {
  // Skip the deep copy when this cycle is already in the ring (Add would
  // discard the duplicate anyway).
  const CheckpointRing::Entry* existing = checkpoints_.FindAtOrBefore(cycle_);
  if (existing != nullptr && existing->cycle == cycle_) return;

  // Fold the pages written since the previous capture into the
  // dirty-since-last-full set, then decide full vs delta.
  memory::MainMemory& mem = memory_->memory();
  if (dirtySinceFull_.size() != mem.PageCount()) {
    dirtySinceFull_.assign(mem.PageCount(), 1);
  }
  mem.FoldDirtyInto(dirtySinceFull_);

  // A base evicted from the ring is no longer counted against the byte
  // budget; minting further deltas against it would keep its memory image
  // alive off the books.
  if (lastFullCheckpoint_ != nullptr &&
      !checkpoints_.ContainsFull(lastFullCheckpoint_.get())) {
    lastFullCheckpoint_.reset();
  }

  bool full = !config_.checkpoint.deltaPages || forceFullCheckpoint_ ||
              lastFullCheckpoint_ == nullptr ||
              deltasSinceFull_ + 1 >= config_.checkpoint.fullSnapshotEvery;
  std::size_t dirtyBytes = 0;
  if (!full) {
    for (std::uint32_t page = 0; page < mem.PageCount(); ++page) {
      if (dirtySinceFull_[page] != 0) {
        dirtyBytes += std::min<std::size_t>(memory::MainMemory::kPageSizeBytes,
                                            mem.size() - page * memory::MainMemory::kPageSizeBytes);
      }
    }
    // A delta patching most of memory is all cost and no savings.
    if (dirtyBytes * 2 >= mem.size()) full = true;
  }

  if (full) {
    auto snapshot = std::make_shared<const SimSnapshot>(SaveState());
    const std::size_t bytes = snapshot->SizeBytes();
    lastFullCheckpoint_ = snapshot;
    deltasSinceFull_ = 0;
    forceFullCheckpoint_ = false;
    std::fill(dirtySinceFull_.begin(), dirtySinceFull_.end(), 0);
    mem.ClearDirtyFlags();
    checkpoints_.Add(cycle_, bytes, std::move(snapshot));
    if (obs::Enabled()) {
      static obs::Counter& fulls =
          obs::Registry::Instance().GetCounter("sim.checkpointsFull");
      static obs::Gauge& ringBytes =
          obs::Registry::Instance().GetGauge("sim.checkpointRingBytes");
      fulls.Increment();
      ringBytes.Set(static_cast<double>(checkpoints_.totalBytes()));
    }
    return;
  }

  auto delta = std::make_shared<DeltaCheckpoint>();
  delta->base = lastFullCheckpoint_;
  SimSnapshot rest = SaveStateImpl(/*includeMemoryImage=*/false);
  std::size_t bytes = rest.SizeBytes();
  delta->rest = std::make_shared<const SimSnapshot>(std::move(rest));
  const std::span<const std::uint8_t> memBytes =
      std::as_const(mem).bytes();  // the mutable span marks all pages dirty
  for (std::uint32_t page = 0; page < mem.PageCount(); ++page) {
    if (dirtySinceFull_[page] == 0) continue;
    const std::uint32_t begin = page * memory::MainMemory::kPageSizeBytes;
    // 64-bit sum: begin + pageSize wraps uint32 when memory ends within a
    // page of 4 GiB.
    const std::uint32_t end = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(mem.size(),
                                std::uint64_t{begin} +
                                    memory::MainMemory::kPageSizeBytes));
    DeltaPage deltaPage;
    deltaPage.pageIndex = page;
    deltaPage.bytes.assign(memBytes.begin() + begin, memBytes.begin() + end);
    bytes += deltaPage.bytes.size() + sizeof(DeltaPage);
    delta->pages.push_back(std::move(deltaPage));
  }
  ++deltasSinceFull_;
  mem.ClearDirtyFlags();
  checkpoints_.AddDelta(cycle_, bytes, std::move(delta));
  if (obs::Enabled()) {
    static obs::Counter& deltas =
        obs::Registry::Instance().GetCounter("sim.checkpointsDelta");
    static obs::Gauge& ringBytes =
        obs::Registry::Instance().GetGauge("sim.checkpointRingBytes");
    deltas.Increment();
    ringBytes.Set(static_cast<double>(checkpoints_.totalBytes()));
  }
}

void Simulation::MaybeCheckpoint() {
  if (checkpoints_.WantsCheckpoint(cycle_)) CaptureCheckpointNow();
}

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

WindowKind Simulation::WindowFor(isa::OpClass opClass) const {
  switch (opClass) {
    case isa::OpClass::kIntAlu:
    case isa::OpClass::kIntMul:
    case isa::OpClass::kIntDiv:
      return WindowKind::kFx;
    case isa::OpClass::kFpAdd:
    case isa::OpClass::kFpMul:
    case isa::OpClass::kFpDiv:
    case isa::OpClass::kFpFma:
    case isa::OpClass::kFpOther:
      return WindowKind::kFp;
    case isa::OpClass::kMemAddr:
      return WindowKind::kLs;
    case isa::OpClass::kBranch:
      return WindowKind::kBranch;
  }
  return WindowKind::kFx;
}

config::FunctionalUnitConfig::Kind Simulation::FuKindFor(
    WindowKind kind) const {
  switch (kind) {
    case WindowKind::kFx: return config::FunctionalUnitConfig::Kind::kFx;
    case WindowKind::kFp: return config::FunctionalUnitConfig::Kind::kFp;
    case WindowKind::kLs: return config::FunctionalUnitConfig::Kind::kLs;
    case WindowKind::kBranch:
      return config::FunctionalUnitConfig::Kind::kBranch;
  }
  return config::FunctionalUnitConfig::Kind::kFx;
}

bool Simulation::StoreDataReady(const InFlight& inst) const {
  // Store definitions put the data register (rs2) first.
  return inst.operands[0].ready;
}

std::uint64_t Simulation::StoreRawData(const InFlight& inst) const {
  const isa::ArgumentDescription& arg = inst.inst->def->args[0];
  const std::uint64_t cell = expr::ValueToCell(inst.operands[0].value, arg.type);
  if (inst.inst->def->mem.isFloat && inst.inst->def->mem.sizeBytes == 4) {
    return UnboxFloat(cell);
  }
  return cell;
}

std::span<const expr::Value> Simulation::GatherArgs(
    const InFlight& inst, std::array<expr::Value, 4>& scratch) const {
  for (std::size_t i = 0; i < inst.operandCount; ++i) {
    scratch[i] = inst.operands[i].value;
  }
  return {scratch.data(), inst.operandCount};
}

namespace {

/// Resolves one FastForm leaf exactly as the stack machine would push it.
inline expr::Value FastOperand(const expr::Expression::FastForm::Operand& op,
                               const InFlight& inst) {
  switch (op.src) {
    case expr::Expression::FastForm::Operand::Src::kArg:
      return inst.operands[op.arg].value;
    case expr::Expression::FastForm::Operand::Src::kLiteral:
      return expr::Value::Int(op.literal);
    case expr::Expression::FastForm::Operand::Src::kPc:
      return expr::Value::Int(static_cast<std::int32_t>(inst.pc));
  }
  return expr::Value();
}

}  // namespace

void Simulation::BuildPredecode() {
  predecoded_.clear();
  predecoded_.reserve(loaded_.program.instructions.size());
  for (const assembler::Instruction& inst : loaded_.program.instructions) {
    const isa::InstructionDescription& def = *inst.def;
    PredecodedOp op;
    op.def = &def;
    auto compiled = expressions_.Get(def);
    if (compiled.ok()) {
      op.expr = compiled.value();
      op.fast = compiled.value()->fastForm();
    } else {
      op.exprError = compiled.error();
    }
    op.window = WindowFor(def.opClass);
    op.operandCount = static_cast<std::uint8_t>(def.args.size());
    op.isControl = def.IsControlFlow();
    if (def.branch == isa::BranchKind::kConditional ||
        def.branch == isa::BranchKind::kUnconditionalDirect) {
      const int immIndex = def.ArgIndex("imm");
      if (immIndex >= 0) {
        op.branchImm = inst.operands[static_cast<std::size_t>(immIndex)].imm;
      }
    }
    for (std::size_t i = 0; i < def.args.size() && i < op.operands.size();
         ++i) {
      const isa::ArgumentDescription& arg = def.args[i];
      const assembler::Operand& operand = inst.operands[i];
      PredecodedOperand& slot = op.operands[i];
      slot.type = arg.type;
      const bool isX0 = operand.isRegister &&
                        operand.reg.kind == isa::RegisterKind::kInt &&
                        operand.reg.index == 0;
      if (arg.writeBack) {
        if (operand.isRegister && !isX0) {
          slot.kind = PredecodedOperand::Kind::kDest;
          slot.reg = operand.reg;
          ++op.destsNeeded;
        } else {
          slot.kind = PredecodedOperand::Kind::kDestX0;
        }
      } else if (!operand.isRegister) {
        slot.kind = PredecodedOperand::Kind::kImmediate;
        slot.fixed = expr::ImmediateToValue(operand.imm, arg.type);
      } else if (isX0) {
        slot.kind = PredecodedOperand::Kind::kZeroSource;
        slot.fixed = expr::CellToValue(0, arg.type);
      } else {
        slot.kind = PredecodedOperand::Kind::kRegSource;
        slot.reg = operand.reg;
      }
    }
    predecoded_.push_back(std::move(op));
  }
}

void Simulation::Finish(FinishReason reason) {
  finishReason_ = reason;
  status_ = reason == FinishReason::kException ? SimStatus::kFault
                                               : SimStatus::kFinished;
  log_.Add(cycle_, LogLevel::kInfo, "Sim",
           std::string("simulation finished: ") + ToString(reason));
}

// ---------------------------------------------------------------------------
// Wakeup / write-back
// ---------------------------------------------------------------------------

void Simulation::WakeUp(int tag, std::uint64_t cell) {
  // The rename register counts its waiting consumers; most writes have
  // none, and the scan can stop as soon as the last waiter is satisfied.
  SpecRegister& reg = rename_.reg(tag);
  if (reg.references == 0) return;
  auto wake = [&](const InFlightPtr& inst) {
    for (std::size_t i = 0; i < inst->operandCount; ++i) {
      OperandRuntime& operand = inst->operands[i];
      if (operand.isSource && !operand.ready && operand.waitTag == tag) {
        operand.value =
            expr::CellToValue(cell, inst->inst->def->args[i].type);
        operand.ready = true;
        operand.waitTag = -1;
        if (reg.references > 0) --reg.references;
      }
    }
  };
  for (const auto& window : windows_) {
    for (const InFlightPtr& inst : window) {
      wake(inst);
      if (reg.references == 0) return;
    }
  }
  // Stores waiting for data have already left the LS window.
  for (const InFlightPtr& inst : storeBuffer_) {
    wake(inst);
    if (reg.references == 0) return;
  }
}

void Simulation::WriteDestinations(const InFlightPtr& inst,
                                   const expr::EvalResult& result) {
  for (const expr::WriteEffect& write : result.writes) {
    WriteDest(inst, write.argIndex, write.value);
  }
}

void Simulation::WriteDest(const InFlightPtr& inst, int argIndex,
                           const expr::Value& value) {
  OperandRuntime& operand = inst->operands[static_cast<std::size_t>(argIndex)];
  operand.value = value;
  if (operand.destTag < 0) return;  // x0: discard
  const isa::ArgumentDescription& arg =
      inst->inst->def->args[static_cast<std::size_t>(argIndex)];
  SpecRegister& reg = rename_.reg(operand.destTag);
  reg.cell = expr::ValueToCell(value, arg.type);
  reg.valid = true;
  WakeUp(operand.destTag, reg.cell);
}

// ---------------------------------------------------------------------------
// Execution finalizers (complete stage)
// ---------------------------------------------------------------------------

void Simulation::FinalizeAlu(const InFlightPtr& inst) {
  const PredecodedOp& pre = Predecoded(*inst);
  if (pre.expr == nullptr) {
    inst->exception = pre.exprError;
    inst->resultsReady = true;
    inst->phase = Phase::kDone;
    return;
  }
  using FastKind = expr::Expression::FastForm::Kind;
  if (pre.fast.kind == FastKind::kBinaryAssign) {
    // `a OP b -> rd` recognized at compile time: apply the operator and the
    // `=` conversion directly, skipping the stack machine.
    expr::EvalFlags flags;
    const expr::Value value =
        expr::Expression::ApplyBinary(pre.fast.op,
                                      FastOperand(pre.fast.a, *inst),
                                      FastOperand(pre.fast.b, *inst), flags)
            .ConvertTo(pre.fast.dstKind);
    if (config_.trapOnDivZero && flags.divByZero) {
      inst->exception = Error{
          ErrorKind::kRuntime,
          StrFormat("division by zero at pc 0x%08x", inst->pc)};
    }
    WriteDest(inst, pre.fast.dstArg, value);
  } else {
    std::array<expr::Value, 4> argScratch;
    pre.expr->EvaluateInto(GatherArgs(*inst, argScratch), inst->pc,
                           evalScratch_);
    const expr::EvalResult& result = evalScratch_;
    if (config_.trapOnDivZero && result.flags.divByZero) {
      inst->exception = Error{
          ErrorKind::kRuntime,
          StrFormat("division by zero at pc 0x%08x", inst->pc)};
    }
    WriteDestinations(inst, result);
  }
  inst->resultsReady = true;
  inst->executeDoneCycle = cycle_;
  inst->phase = Phase::kDone;
  ++stats_.executedInstructions;
}

void Simulation::FinalizeAddressGen(const InFlightPtr& inst) {
  const PredecodedOp& pre = Predecoded(*inst);
  if (pre.expr == nullptr) {
    inst->exception = pre.exprError;
    inst->resultsReady = true;
    inst->phase = Phase::kDone;
    return;
  }
  using FastKind = expr::Expression::FastForm::Kind;
  if (pre.fast.kind == FastKind::kBinaryValue) {
    // `\rs1 \imm +` — every RV32 load/store address: add directly.
    expr::EvalFlags flags;
    inst->effectiveAddress =
        expr::Expression::ApplyBinary(pre.fast.op,
                                      FastOperand(pre.fast.a, *inst),
                                      FastOperand(pre.fast.b, *inst), flags)
            .ConvertTo(expr::ValueKind::kUInt)
            .AsUInt32();
  } else {
    std::array<expr::Value, 4> argScratch;
    pre.expr->EvaluateInto(GatherArgs(*inst, argScratch), inst->pc,
                           evalScratch_);
    inst->effectiveAddress =
        evalScratch_.stackTop->ConvertTo(expr::ValueKind::kUInt).AsUInt32();
  }
  inst->addressReady = true;
  inst->executeDoneCycle = cycle_;
  ++stats_.executedInstructions;

  const std::uint32_t size = inst->inst->def->mem.sizeBytes;
  if (!memory_->memory().InBounds(inst->effectiveAddress, size)) {
    inst->exception = Error{
        ErrorKind::kRuntime,
        StrFormat("memory access out of bounds: 0x%08x (size %u) at pc 0x%08x",
                  inst->effectiveAddress, size, inst->pc)};
    inst->resultsReady = true;
    inst->memoryDone = true;
    inst->phase = Phase::kDone;
    // Unblock speculative consumers; the exception stops commit anyway.
    if (inst->IsLoad()) {
      for (std::size_t i = 0; i < inst->operandCount; ++i) {
        OperandRuntime& operand = inst->operands[i];
        if (operand.isDest && operand.destTag >= 0) {
          SpecRegister& reg = rename_.reg(operand.destTag);
          reg.cell = 0;
          reg.valid = true;
          WakeUp(operand.destTag, 0);
        }
      }
    }
    return;
  }

  if (inst->IsStore()) {
    // A store's "execution" is its address generation; data may still be
    // pending, which commit waits for.
    inst->resultsReady = true;
    inst->phase = Phase::kDone;
  }
}

void Simulation::ResolveBranch(const InFlightPtr& inst,
                               std::vector<InFlightPtr>& mispredicts) {
  const PredecodedOp& pre = Predecoded(*inst);
  if (pre.expr == nullptr) {
    inst->exception = pre.exprError;
    inst->resultsReady = true;
    inst->phase = Phase::kDone;
    return;
  }
  const isa::InstructionDescription& def = *pre.def;
  using FastKind = expr::Expression::FastForm::Kind;
  std::uint32_t actualNext = inst->pc + 4;
  if (def.branch == isa::BranchKind::kConditional &&
      pre.fast.kind == FastKind::kBinaryValue) {
    // `\rs1 \rs2 CMP` — every conditional branch: compare directly. The
    // 3-token form has no `=`, so there are no write effects to apply.
    expr::EvalFlags flags;
    inst->branchTaken =
        expr::Expression::ApplyBinary(pre.fast.op,
                                      FastOperand(pre.fast.a, *inst),
                                      FastOperand(pre.fast.b, *inst), flags)
            .AsBool();
    inst->branchTarget = inst->pc + static_cast<std::uint32_t>(pre.branchImm);
    if (inst->branchTaken) actualNext = inst->branchTarget;
    ++stats_.branchesResolved;
    if (inst->branchTaken) ++stats_.branchesTaken;
  } else {
    std::array<expr::Value, 4> argScratch;
    pre.expr->EvaluateInto(GatherArgs(*inst, argScratch), inst->pc,
                           evalScratch_);
    const expr::EvalResult& result = evalScratch_;
    if (def.branch == isa::BranchKind::kConditional) {
      inst->branchTaken = result.stackTop->AsBool();
      inst->branchTarget =
          inst->pc + static_cast<std::uint32_t>(pre.branchImm);
      if (inst->branchTaken) actualNext = inst->branchTarget;
      ++stats_.branchesResolved;
      if (inst->branchTaken) ++stats_.branchesTaken;
    } else {
      // jal / jalr: the expression leaves the absolute target on the stack
      // and link-register writes ride along as write effects.
      inst->branchTaken = true;
      inst->branchTarget =
          result.stackTop->ConvertTo(expr::ValueKind::kUInt).AsUInt32();
      actualNext = inst->branchTarget;
      if (inst->branchTarget == isa::kExitAddress) {
        inst->isExit = true;
      } else if (inst->branchTarget % 4 != 0 ||
                 inst->branchTarget / 4 >
                     loaded_.program.instructions.size()) {
        inst->exception =
            Error{ErrorKind::kRuntime,
                  StrFormat("jump to invalid address 0x%08x at pc 0x%08x",
                            inst->branchTarget, inst->pc)};
      }
    }
    WriteDestinations(inst, result);
  }
  inst->resultsReady = true;
  inst->executeDoneCycle = cycle_;
  inst->phase = Phase::kDone;
  ++stats_.executedInstructions;

  // Train the predictor.
  if (def.branch == isa::BranchKind::kConditional) {
    const bool mispredicted = inst->predictedNextPc != actualNext;
    inst->mispredicted = mispredicted;
    predictor_.Resolve(inst->pc, inst->branchTaken, inst->branchTarget,
                       mispredicted, inst->historyCheckpoint);
    if (mispredicted) {
      ++stats_.branchesMispredicted;
      mispredicts.push_back(inst);
    }
  } else {
    if (!inst->isExit && !inst->exception.has_value()) {
      predictor_.TrainIndirect(inst->pc, inst->branchTarget);
    }
    if (inst->stalledFetch) {
      // Fetch was parked on this BTB-missing jalr: redirect without a
      // flush (nothing younger was fetched).
      mispredicts.push_back(inst);
    } else if (inst->predictedNextPc != actualNext) {
      inst->mispredicted = true;
      ++stats_.branchesMispredicted;
      mispredicts.push_back(inst);
    }
    ++stats_.branchesResolved;
  }
}

void Simulation::CompleteLoad(const InFlightPtr& inst) {
  const isa::MemAccess& mem = inst->inst->def->mem;
  std::uint64_t raw;
  if (inst->forwarded) {
    // Forwarded store data is a full register cell; narrow it to the
    // access width exactly as the memory write would have.
    raw = inst->forwardedRaw;
    if (mem.sizeBytes < 8) {
      raw &= (std::uint64_t{1} << (8 * mem.sizeBytes)) - 1;
    }
  } else {
    raw = memory_->memory().ReadBytes(inst->effectiveAddress, mem.sizeBytes);
  }

  std::uint64_t cell;
  if (mem.isFloat) {
    cell = mem.sizeBytes == 4 ? NanBoxFloat(static_cast<std::uint32_t>(raw))
                              : raw;
  } else if (mem.isSigned) {
    cell = static_cast<std::uint64_t>(SignExtend(raw, mem.sizeBytes * 8));
  } else {
    cell = raw;
  }

  OperandRuntime& dest = inst->operands[0];
  if (dest.destTag >= 0) {
    SpecRegister& reg = rename_.reg(dest.destTag);
    reg.cell = cell;
    reg.valid = true;
    WakeUp(dest.destTag, cell);
  }
  inst->memoryDone = true;
  inst->resultsReady = true;
  inst->phase = Phase::kDone;
}

// ---------------------------------------------------------------------------
// Flush
// ---------------------------------------------------------------------------

void Simulation::FlushYoungerThan(std::uint64_t seq, std::uint32_t newPc) {
  ++stats_.robFlushes;

  // Fetch queue: everything younger goes.
  std::size_t squashedCount = 0;
  auto squashFromDeque = [&](std::deque<InFlightPtr>& queue) {
    for (auto it = queue.begin(); it != queue.end();) {
      if ((*it)->seq > seq) {
        (*it)->phase = Phase::kSquashed;
        ++squashedCount;
        it = queue.erase(it);
      } else {
        ++it;
      }
    }
  };
  squashFromDeque(fetchQueue_);
  squashFromDeque(loadBuffer_);
  squashFromDeque(storeBuffer_);

  // Issue windows. Waiting-consumer reference counts are NOT released
  // here: every window entry also sits in the ROB, and the youngest-first
  // ROB walk below is the single place that undoes them — decrementing in
  // both passes would strand a live waiter once WakeUp trusts the count.
  for (auto& window : windows_) {
    for (auto it = window.begin(); it != window.end();) {
      if ((*it)->seq > seq) {
        (*it)->phase = Phase::kSquashed;
        it = window.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Functional units: abort younger in-flight work.
  for (FunctionalUnit& fu : fus_) {
    if (fu.current && fu.current->seq > seq) {
      fu.current->phase = Phase::kSquashed;
      fu.current.reset();
      fu.busyUntil = 0;
    }
  }

  // ROB: walk youngest-first, undoing renames.
  while (!rob_.empty() && rob_.back()->seq > seq) {
    const InFlightPtr inst = rob_.back();
    rob_.pop_back();
    for (std::size_t i = inst->operandCount; i-- > 0;) {
      OperandRuntime& operand = inst->operands[i];
      if (operand.isDest && operand.destTag >= 0) {
        rename_.SquashAndFree(operand.destTag, operand.prevTag);
      }
      if (operand.isSource && !operand.ready && operand.waitTag >= 0) {
        // Source still waiting: the producer may itself be squashed; the
        // reference bookkeeping is cleared either way.
        SpecRegister& reg = rename_.reg(operand.waitTag);
        if (reg.references > 0) --reg.references;
      }
    }
    inst->phase = Phase::kSquashed;
    ++squashedCount;
  }

  stats_.squashedInstructions += squashedCount;
  pc_ = newPc;
  fetchResumeCycle_ = cycle_ + config_.buffers.flushPenalty;
  fetchStalledIndirect_ = false;
  log_.Add(cycle_, LogLevel::kDebug, "ROB",
           StrFormat("flush: %zu squashed, refetch from 0x%08x", squashedCount,
                     newPc));
}

// ---------------------------------------------------------------------------
// Stages
// ---------------------------------------------------------------------------

void Simulation::StageCommit() {
  for (std::uint32_t slot = 0; slot < config_.buffers.commitWidth; ++slot) {
    if (rob_.empty()) return;
    // Borrow the ROB head; it is only moved out once commit is certain
    // (every early return below must leave the ROB untouched).
    const InFlightPtr& inst = rob_.front();
    if (!inst->resultsReady) return;

    if (inst->exception.has_value()) {
      fault_ = inst->exception;
      log_.Add(cycle_, LogLevel::kError, "Commit",
               "exception: " + inst->exception->message);
      Finish(FinishReason::kException);
      return;
    }

    if (inst->IsStore()) {
      if (!StoreDataReady(*inst)) return;
      // Functional write happens at commit, in program order; the cache /
      // memory timing drains through the memory unit afterwards.
      memory_->memory().WriteBytes(inst->effectiveAddress,
                                   inst->inst->def->mem.sizeBytes,
                                   StoreRawData(*inst));
      inst->drainPending = true;
    }

    for (std::size_t i = 0; i < inst->operandCount; ++i) {
      OperandRuntime& operand = inst->operands[i];
      if (operand.isDest && operand.destTag >= 0) {
        const int tag = operand.destTag;
        rename_.CommitAndFree(tag, arch_);
        // The freed tag may be recycled immediately. Any younger in-flight
        // instruction whose rename-undo checkpoint (prevTag) references it
        // must now restore to "architectural" instead — the committed value
        // lives in the architectural file from this point on. At most one
        // such instruction exists (the tag mapped one architectural
        // register, and only that register's next writer recorded it), so
        // the scan stops at the first hit instead of walking the whole ROB.
        [&] {
          for (const InFlightPtr& younger : rob_) {
            for (std::size_t j = 0; j < younger->operandCount; ++j) {
              OperandRuntime& other = younger->operands[j];
              if (other.isDest && other.prevTag == tag) {
                other.prevTag = kPrevWasArchitectural;
                return;
              }
            }
          }
        }();
      }
    }

    inst->phase = Phase::kCommitted;
    inst->commitCycle = cycle_;
    if (commitTraceSink_ != nullptr) commitTraceSink_->push_back(inst->pc);
    ++stats_.committedInstructions;
    ++stats_.dynamicMix[static_cast<std::size_t>(inst->inst->def->type)];
    stats_.flops += inst->inst->def->flops;

    const InFlightPtr committed = std::move(rob_.front());
    rob_.pop_front();
    if (committed->IsLoad()) {
      // Loads leave their buffer at commit.
      auto it = std::find(loadBuffer_.begin(), loadBuffer_.end(), committed);
      if (it != loadBuffer_.end()) loadBuffer_.erase(it);
    }

    if (committed->isExit) {
      Finish(FinishReason::kMainReturned);
      return;
    }
    if (committed->inst->def->isHalt) {
      Finish(FinishReason::kHalted);
      return;
    }
  }
}

void Simulation::StageComplete() {
  // Sub-step 1 of the paper's functional-unit cycle: everything whose
  // latency elapsed publishes its result; the unit is free for re-issue
  // later this same cycle.
  std::vector<InFlightPtr> mispredicts;
  for (FunctionalUnit& fu : fus_) {
    if (!fu.current || cycle_ < fu.busyUntil) continue;
    const InFlightPtr inst = std::move(fu.current);
    fu.current.reset();

    switch (fu.config.kind) {
      case config::FunctionalUnitConfig::Kind::kFx:
      case config::FunctionalUnitConfig::Kind::kFp:
        FinalizeAlu(inst);
        break;
      case config::FunctionalUnitConfig::Kind::kLs:
        FinalizeAddressGen(inst);
        break;
      case config::FunctionalUnitConfig::Kind::kBranch:
        ResolveBranch(inst, mispredicts);
        break;
      case config::FunctionalUnitConfig::Kind::kMemory:
        if (inst->IsLoad()) {
          CompleteLoad(inst);
        } else {
          // Store drain finished: release the buffer slot.
          inst->memoryDone = true;
          auto it = std::find(storeBuffer_.begin(), storeBuffer_.end(), inst);
          if (it != storeBuffer_.end()) storeBuffer_.erase(it);
        }
        break;
    }
  }

  // Apply at most one redirect: the oldest one wins (it squashes the rest).
  if (!mispredicts.empty()) {
    const InFlightPtr oldest = *std::min_element(
        mispredicts.begin(), mispredicts.end(),
        [](const InFlightPtr& a, const InFlightPtr& b) { return a->seq < b->seq; });
    const std::uint32_t redirect =
        oldest->branchTaken ? oldest->branchTarget : oldest->pc + 4;
    if (oldest->stalledFetch && !oldest->mispredicted) {
      // BTB-miss jalr: fetch was parked, nothing to squash.
      pc_ = redirect;
      fetchStalledIndirect_ = false;
    } else {
      FlushYoungerThan(oldest->seq, redirect);
    }
  }
}

void Simulation::StageMemory() {
  for (FunctionalUnit& fu : fus_) {
    if (fu.config.kind != config::FunctionalUnitConfig::Kind::kMemory ||
        fu.current) {
      continue;
    }

    // Gather the oldest eligible job: a committed store waiting to drain
    // or a load whose dependences allow it to run.
    InFlightPtr job;

    for (const InFlightPtr& store : storeBuffer_) {
      if (store->drainPending && !store->drainStarted) {
        job = store;
        break;
      }
    }

    for (const InFlightPtr& load : loadBuffer_) {
      if (!load->addressReady || load->memoryStarted ||
          load->exception.has_value()) {
        continue;
      }
      // Dependence check against older, not-yet-committed stores.
      bool blocked = false;
      const InFlightPtr* forwardFrom = nullptr;
      for (const InFlightPtr& store : storeBuffer_) {
        if (store->seq > load->seq) break;
        if (store->phase == Phase::kCommitted) continue;  // memory is current
        if (!store->addressReady) {
          blocked = true;  // unknown address: conservative stall
          break;
        }
        const std::uint32_t loadSize = load->inst->def->mem.sizeBytes;
        const std::uint32_t storeSize = store->inst->def->mem.sizeBytes;
        const bool overlap =
            store->effectiveAddress < load->effectiveAddress + loadSize &&
            load->effectiveAddress < store->effectiveAddress + storeSize;
        if (!overlap) continue;
        if (store->effectiveAddress == load->effectiveAddress &&
            storeSize == loadSize && StoreDataReady(*store)) {
          forwardFrom = &store;  // youngest exact match wins (keep scanning)
        } else {
          blocked = true;
          break;
        }
      }
      if (blocked) continue;

      if (forwardFrom != nullptr) {
        load->forwarded = true;
        load->forwardedRaw = StoreRawData(**forwardFrom);
      }
      if (job == nullptr || load->seq < job->seq) job = load;
      break;  // loads scanned oldest-first; the first eligible is oldest
    }

    if (job == nullptr) return;

    if (job->IsLoad()) {
      job->memoryStarted = true;
      if (job->forwarded) {
        // Store-to-load forwarding bypasses the cache entirely.
        fu.busyUntil = cycle_ + fu.config.latency;
        job->cacheHit = true;
      } else {
        memory::MemoryTransaction txn = memory_->Register(
            job->effectiveAddress, job->inst->def->mem.sizeBytes,
            /*isStore=*/false, cycle_);
        job->cacheHit = txn.cacheHit;
        fu.busyUntil = std::max(txn.completesAtCycle,
                                cycle_ + static_cast<std::uint64_t>(
                                             fu.config.latency));
      }
    } else {
      job->drainStarted = true;
      memory::MemoryTransaction txn = memory_->Register(
          job->effectiveAddress, job->inst->def->mem.sizeBytes,
          /*isStore=*/true, cycle_);
      job->cacheHit = txn.cacheHit;
      fu.busyUntil = std::max(
          txn.completesAtCycle,
          cycle_ + static_cast<std::uint64_t>(fu.config.latency));
    }
    fu.current = job;
    ++stats_.unitUsage[fu.statsIndex].instructions;
  }
}

void Simulation::StageIssue() {
  for (std::size_t windowIndex = 0; windowIndex < windows_.size();
       ++windowIndex) {
    auto& window = windows_[windowIndex];
    if (window.empty()) continue;
    const auto fuKind = FuKindFor(static_cast<WindowKind>(windowIndex));
    const std::vector<std::uint32_t>& kindFus = fusByWindow_[windowIndex];

    // Count the free units of this kind up front: when they run out, no
    // further instruction in this window can issue this cycle, so the
    // readiness scan stops instead of walking every waiting entry.
    int freeUnits = 0;
    for (const std::uint32_t fuIndex : kindFus) {
      if (!fus_[fuIndex].current) ++freeUnits;
    }
    if (freeUnits == 0) continue;

    std::size_t issued = 0;
    for (const InFlightPtr& inst : window) {
      if (freeUnits == 0) break;
      // Readiness: all source operands captured. Stores only need their
      // address inputs here; the data operand (index 0) may arrive later.
      bool ready = true;
      const bool isStore = inst->IsStore();
      for (std::size_t i = 0; i < inst->operandCount; ++i) {
        if (isStore && i == 0) continue;
        if (inst->operands[i].isSource && !inst->operands[i].ready) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;

      // Find a free functional unit able to execute this op class.
      FunctionalUnit* chosen = nullptr;
      std::uint32_t latency = 0;
      for (const std::uint32_t fuIndex : kindFus) {
        FunctionalUnit& fu = fus_[fuIndex];
        if (fu.current) continue;
        if (fuKind == config::FunctionalUnitConfig::Kind::kFx ||
            fuKind == config::FunctionalUnitConfig::Kind::kFp) {
          const std::uint32_t opLatency =
              fu.latencyByClass[static_cast<std::size_t>(
                  inst->inst->def->opClass)];
          if (opLatency == 0) continue;  // unit does not support the op
          chosen = &fu;
          latency = opLatency;
        } else {
          chosen = &fu;
          latency = fu.config.latency;
        }
        break;
      }
      if (chosen == nullptr) continue;

      chosen->current = inst;
      chosen->busyUntil = cycle_ + latency;
      inst->phase = Phase::kExecuting;
      inst->issueCycle = cycle_;
      ++stats_.issuedInstructions;
      ++stats_.unitUsage[chosen->statsIndex].instructions;
      --freeUnits;
      ++issued;
    }
    if (issued > 0) {
      // One compaction pass instead of an O(n) vector erase per issue.
      window.erase(std::remove_if(window.begin(), window.end(),
                                  [](const InFlightPtr& inst) {
                                    return inst->phase == Phase::kExecuting;
                                  }),
                   window.end());
    }
  }
}

void Simulation::StageDecode() {
  for (std::uint32_t slot = 0; slot < config_.buffers.fetchWidth; ++slot) {
    if (fetchQueue_.empty()) return;
    // Borrow the queue head; it is moved into the ROB at dispatch (every
    // early return below must leave the queue untouched).
    const InFlightPtr& inst = fetchQueue_.front();
    const PredecodedOp& pre = Predecoded(*inst);
    const isa::InstructionDescription& def = *pre.def;

    // ---- resource checks (all-or-nothing, then mutate) ----
    if (rob_.size() >= config_.buffers.robSize) {
      ++stats_.stallCyclesRobFull;
      return;
    }
    auto& window = windows_[static_cast<std::size_t>(pre.window)];
    if (window.size() >= config_.buffers.issueWindowSize) {
      ++stats_.stallCyclesWindowFull;
      return;
    }
    if (def.mem.isLoad && loadBuffer_.size() >= config_.memory.loadBufferSize) {
      ++stats_.stallCyclesLsBufferFull;
      return;
    }
    if (def.mem.isStore &&
        storeBuffer_.size() >= config_.memory.storeBufferSize) {
      ++stats_.stallCyclesLsBufferFull;
      return;
    }
    if (rename_.FreeCount() < pre.destsNeeded) {
      ++stats_.stallCyclesRenameFull;
      return;
    }

    // ---- rename ----
    inst->operandCount = pre.operandCount;
    // Sources first: an instruction reading and writing the same register
    // must see the *previous* mapping for its source.
    for (std::size_t i = 0; i < pre.operandCount; ++i) {
      const PredecodedOperand& arg = pre.operands[i];
      OperandRuntime& runtime = inst->operands[i];
      runtime = OperandRuntime{};
      switch (arg.kind) {
        case PredecodedOperand::Kind::kDest:
        case PredecodedOperand::Kind::kDestX0:
          runtime.isDest = true;
          break;  // allocated below
        case PredecodedOperand::Kind::kImmediate:
          runtime.value = arg.fixed;
          break;
        case PredecodedOperand::Kind::kZeroSource:
          runtime.isSource = true;
          runtime.value = arg.fixed;
          break;
        case PredecodedOperand::Kind::kRegSource: {
          runtime.isSource = true;
          if (auto tag = rename_.Lookup(arg.reg); tag.has_value()) {
            SpecRegister& reg = rename_.reg(*tag);
            if (reg.valid) {
              runtime.value = expr::CellToValue(reg.cell, arg.type);
            } else {
              runtime.ready = false;
              runtime.waitTag = *tag;
              ++reg.references;
            }
          } else {
            runtime.value = expr::CellToValue(arch_.Read(arg.reg), arg.type);
          }
          break;
        }
      }
    }
    // Destinations. kDestX0 keeps the default destTag = -1 (discarded).
    for (std::size_t i = 0; i < pre.operandCount; ++i) {
      if (pre.operands[i].kind != PredecodedOperand::Kind::kDest) continue;
      auto allocation = rename_.AllocateAndMap(pre.operands[i].reg);
      // FreeCount was checked above; allocation cannot fail here.
      inst->operands[i].destTag = allocation->first;
      inst->operands[i].prevTag = allocation->second;
    }

    // ---- dispatch ----
    inst->phase = Phase::kDecoded;
    inst->decodeCycle = cycle_;
    window.push_back(inst);
    if (def.mem.isLoad) loadBuffer_.push_back(inst);
    if (def.mem.isStore) storeBuffer_.push_back(inst);
    ++stats_.decodedInstructions;
    // Last use of `inst` (it aliases the queue head): move it into the ROB.
    rob_.push_back(std::move(fetchQueue_.front()));
    fetchQueue_.pop_front();
  }
}

void Simulation::StageFetch() {
  if (fetchStalledIndirect_ || cycle_ < fetchResumeCycle_) return;
  // Keep the fetch queue bounded to one extra fetch group.
  if (fetchQueue_.size() >= config_.buffers.fetchWidth) return;

  std::uint32_t jumpsFollowed = 0;
  for (std::uint32_t slot = 0; slot < config_.buffers.fetchWidth; ++slot) {
    if (pc_ % 4 != 0) return;  // wild redirect target: fetch nothing
    const std::uint32_t index = pc_ / 4;
    if (index >= loaded_.program.instructions.size()) return;

    const assembler::Instruction& decoded = loaded_.program.instructions[index];
    const PredecodedOp& pre = predecoded_[index];
    auto inst = std::make_shared<InFlight>();
    inst->seq = nextSeq_++;
    inst->inst = &decoded;
    inst->pc = pc_;
    inst->phase = Phase::kFetched;
    inst->fetchCycle = cycle_;
    inst->isControl = pre.isControl;

    std::uint32_t nextPc = pc_ + 4;
    bool stopAfter = false;

    switch (pre.def->branch) {
      case isa::BranchKind::kNone:
        break;
      case isa::BranchKind::kConditional: {
        predictor::PredictorUnit::Prediction prediction =
            predictor_.Predict(pc_);
        ++stats_.btbLookups;
        if (prediction.target.has_value()) ++stats_.btbHits;
        inst->predictedTaken = prediction.predictTaken;
        inst->historyCheckpoint = prediction.historyCheckpoint;
        inst->btbHit = prediction.target.has_value();
        predictor_.SpeculateOutcome(pc_, prediction.predictTaken);
        if (prediction.predictTaken) {
          nextPc = pc_ + static_cast<std::uint32_t>(pre.branchImm);
          if (++jumpsFollowed >= config_.buffers.fetchBranchFollowLimit) {
            stopAfter = true;
          }
        }
        break;
      }
      case isa::BranchKind::kUnconditionalDirect: {
        // jal: the fetch unit decodes the target directly.
        inst->predictedTaken = true;
        nextPc = pc_ + static_cast<std::uint32_t>(pre.branchImm);
        if (++jumpsFollowed >= config_.buffers.fetchBranchFollowLimit) {
          stopAfter = true;
        }
        break;
      }
      case isa::BranchKind::kUnconditionalIndirect: {
        predictor::PredictorUnit::Prediction prediction =
            predictor_.Predict(pc_);
        ++stats_.btbLookups;
        if (prediction.target.has_value()) {
          ++stats_.btbHits;
          inst->predictedTaken = true;
          inst->btbHit = true;
          nextPc = *prediction.target;
          if (++jumpsFollowed >= config_.buffers.fetchBranchFollowLimit) {
            stopAfter = true;
          }
        } else {
          // Unknown target: park fetch until the jalr resolves.
          inst->stalledFetch = true;
          fetchStalledIndirect_ = true;
          stopAfter = true;
          nextPc = pc_;  // placeholder; resolution redirects
        }
        break;
      }
    }

    inst->predictedNextPc = nextPc;
    fetchQueue_.push_back(std::move(inst));
    ++stats_.fetchedInstructions;
    pc_ = nextPc;
    if (stopAfter) return;
  }
}

// ---------------------------------------------------------------------------
// Step / Run / StepBack
// ---------------------------------------------------------------------------

void Simulation::Step() {
  if (status_ != SimStatus::kRunning) return;
  ++cycle_;
  ++stats_.cycles;

  StageCommit();
  if (status_ != SimStatus::kRunning) {
    MaybeCheckpoint();
    return;
  }
  StageComplete();
  StageMemory();
  StageIssue();
  StageDecode();
  StageFetch();

  // Busy-cycle accounting: a unit occupied at end-of-cycle was busy.
  for (const FunctionalUnit& fu : fus_) {
    if (fu.current) ++stats_.unitUsage[fu.statsIndex].busyCycles;
  }

  // Termination: the pipeline drained with nothing left to fetch.
  if (rob_.empty() && fetchQueue_.empty() && !fetchStalledIndirect_ &&
      (pc_ % 4 != 0 || pc_ / 4 >= loaded_.program.instructions.size())) {
    Finish(FinishReason::kPipelineEmpty);
  }

  MaybeCheckpoint();
}

SimStatus Simulation::Run(std::uint64_t maxCycles) {
  // Metrics are batched at Run() granularity: one clock read and a couple
  // of relaxed adds per slice, never per Step() — the predecoded inner
  // loop stays untouched.
  const std::uint64_t startCycle = cycle_;
  const std::uint64_t startCommitted = statistics().committedInstructions;
  const std::uint64_t startNs = obs::MonotonicNowNs();
  for (std::uint64_t i = 0; i < maxCycles && status_ == SimStatus::kRunning;
       ++i) {
    Step();
  }
  if (obs::Enabled()) {
    static obs::Counter& cycles =
        obs::Registry::Instance().GetCounter("sim.cycles");
    static obs::Counter& committed =
        obs::Registry::Instance().GetCounter("sim.committedInstructions");
    cycles.Add(cycle_ - startCycle);
    committed.Add(statistics().committedInstructions - startCommitted);
    const std::uint64_t elapsedNs = obs::MonotonicNowNs() - startNs;
    // The throughput gauge only trusts slices long enough to average out
    // scheduler noise; short interactive slices would thrash it.
    if (elapsedNs >= 10'000'000 && cycle_ > startCycle) {
      static obs::Gauge& cyclesPerS =
          obs::Registry::Instance().GetGauge("sim.cyclesPerS");
      cyclesPerS.Set(static_cast<double>(cycle_ - startCycle) * 1e9 /
                     static_cast<double>(elapsedNs));
    }
  }
  return status_;
}

Status Simulation::StepBack(std::uint64_t maxReplayCycles) {
  if (cycle_ == 0) {
    return Status::Fail(ErrorKind::kInvalidArgument,
                        "already at cycle 0; cannot step back");
  }
  return SeekTo(cycle_ - 1, maxReplayCycles);
}

std::uint64_t Simulation::SeekReplayCost(std::uint64_t targetCycle) const {
  if (targetCycle == cycle_) return 0;
  // Mirror SeekTo's choice of replay start exactly — this function is
  // the planning half of the same decision.
  const CheckpointRing::Entry* from = checkpoints_.FindAtOrBefore(targetCycle);
  const bool restore =
      targetCycle < cycle_ || (from != nullptr && from->cycle > cycle_);
  const std::uint64_t replayFrom =
      restore ? (from != nullptr ? from->cycle : 0) : cycle_;
  return targetCycle - replayFrom;
}

Status Simulation::SeekTo(std::uint64_t targetCycle,
                          std::uint64_t maxReplayCycles) {
  if (targetCycle == cycle_) {
    lastSeekReplayedCycles_ = 0;
    return Status::Ok();
  }
  if (targetCycle < earliestReachableCycle_) {
    return Status::Fail(
        ErrorKind::kInvalidArgument,
        StrFormat("cycle %llu predates this session's detailed window "
                  "(earliest reachable cycle is %llu)",
                  static_cast<unsigned long long>(targetCycle),
                  static_cast<unsigned long long>(earliestReachableCycle_)));
  }

  // Pick the replay start: for backward seeks the best checkpoint at or
  // before the target (or a hard reset when checkpointing is disabled);
  // for forward seeks a checkpoint is only worth restoring when it skips
  // ahead of the current position — checkpoints from a previous forward
  // pass stay valid after seeking backward because the simulation is
  // deterministic.
  const CheckpointRing::Entry* from = checkpoints_.FindAtOrBefore(targetCycle);
  const bool restore =
      targetCycle < cycle_ || (from != nullptr && from->cycle > cycle_);
  const std::uint64_t replayFrom =
      restore ? (from != nullptr ? from->cycle : 0) : cycle_;
  if (targetCycle - replayFrom > maxReplayCycles) {
    return Status::Fail(
        ErrorKind::kInvalidArgument,
        StrFormat("seek to cycle %llu requires replaying %llu cycles "
                  "(limit %llu)",
                  static_cast<unsigned long long>(targetCycle),
                  static_cast<unsigned long long>(targetCycle - replayFrom),
                  static_cast<unsigned long long>(maxReplayCycles)));
  }

  if (restore) {
    if (from != nullptr) {
      RestoreState(*checkpoints_.Materialize(*from));
    } else if (earliestReachableCycle_ > 0) {
      // ResetHard would rebuild the pre-import timeline; without the
      // import anchor (evicted from the ring) the target is unreachable.
      return Status::Fail(
          ErrorKind::kInvalidArgument,
          "no checkpoint covers the target cycle and the session's origin "
          "predates this process (fast-forwarded import)");
    } else {
      ResetHard();
    }
  }
  std::uint64_t replayed = 0;
  while (cycle_ < targetCycle && status_ == SimStatus::kRunning) {
    Step();
    ++replayed;
  }
  lastSeekReplayedCycles_ = replayed;
  return Status::Ok();
}

}  // namespace rvss::core
