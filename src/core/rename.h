// Register renaming: architectural register file, speculative (rename)
// register file and the rename map.
//
// Paper §III-B: "registers maintain all necessary information for
// renaming. Each register tracks the number of references; architectural
// registers use a list of all renamed copies, while renamed (speculative)
// registers hold a pointer to the corresponding architectural register."
// We keep exactly that bookkeeping: speculative entries know their
// architectural target and count outstanding consumer references, and the
// map can enumerate every live rename of an architectural register.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "expr/reg_value.h"
#include "isa/register_file_info.h"

namespace rvss::core {

/// Architectural register state: 64-bit cells (paper §III-B), x0 pinned.
class ArchRegisterFile {
 public:
  std::uint64_t Read(isa::RegisterId reg) const {
    return reg.kind == isa::RegisterKind::kInt ? x_[reg.index] : f_[reg.index];
  }
  void Write(isa::RegisterId reg, std::uint64_t cell) {
    if (reg.kind == isa::RegisterKind::kInt) {
      if (reg.index != 0) x_[reg.index] = cell;
    } else {
      f_[reg.index] = cell;
    }
  }
  void Reset() {
    x_.fill(0);
    f_.fill(0);
  }

  /// Copyable snapshot of both register banks.
  struct State {
    std::array<std::uint64_t, 32> x{};
    std::array<std::uint64_t, 32> f{};
  };
  State SaveState() const { return State{x_, f_}; }
  void RestoreState(const State& state) {
    x_ = state.x;
    f_ = state.f;
  }

 private:
  std::array<std::uint64_t, 32> x_{};
  std::array<std::uint64_t, 32> f_{};
};

/// One speculative register.
struct SpecRegister {
  bool inUse = false;
  bool valid = false;          ///< value has been produced
  std::uint64_t cell = 0;
  isa::RegisterId arch;        ///< architectural target
  std::uint32_t references = 0;///< outstanding consumers waiting on this tag
};

/// Speculative register file + rename map.
class RenameState {
 public:
  explicit RenameState(std::uint32_t renameRegisterCount);

  /// Current mapping of an architectural register: a speculative tag, or
  /// nullopt when the architectural value is current. Inline: decode calls
  /// this for every register source operand.
  std::optional<int> Lookup(isa::RegisterId reg) const {
    const int tag = map_[static_cast<std::size_t>(MapIndex(reg))];
    if (tag < 0) return std::nullopt;
    return tag;
  }

  /// Allocates a speculative register for `arch` and points the map at it.
  /// Returns nullopt when the rename file is exhausted (decode stalls).
  /// The returned pair is (newTag, previousTag or kPrevWasArchitectural).
  std::optional<std::pair<int, int>> AllocateAndMap(isa::RegisterId arch);

  /// Commit: the speculative value becomes architectural. Clears the map
  /// entry when it still points at `tag`, and frees the register.
  void CommitAndFree(int tag, ArchRegisterFile& archFile);

  /// Squash: undo one rename (youngest-first walk), restoring `prevTag`.
  void SquashAndFree(int tag, int prevTag);

  SpecRegister& reg(int tag) { return regs_[static_cast<std::size_t>(tag)]; }
  const SpecRegister& reg(int tag) const {
    return regs_[static_cast<std::size_t>(tag)];
  }

  std::uint32_t FreeCount() const { return freeCount_; }
  std::uint32_t size() const { return static_cast<std::uint32_t>(regs_.size()); }

  /// All live renames of `arch`, oldest mapping last (paper: the list of
  /// renamed copies an architectural register keeps). For GUI display.
  std::vector<int> RenamesOf(isa::RegisterId arch) const;

  void Reset();

  /// Copyable snapshot of the speculative file, free list and rename map.
  struct State {
    std::vector<SpecRegister> regs;
    std::vector<int> freeList;
    std::uint32_t freeCount = 0;
    std::array<int, 64> map{};
  };
  State SaveState() const { return State{regs_, freeList_, freeCount_, map_}; }
  void RestoreState(const State& state) {
    regs_ = state.regs;
    freeList_ = state.freeList;
    freeCount_ = state.freeCount;
    map_ = state.map;
  }

 private:
  int MapIndex(isa::RegisterId reg) const {
    return (reg.kind == isa::RegisterKind::kFp ? 32 : 0) + reg.index;
  }

  std::vector<SpecRegister> regs_;
  std::vector<int> freeList_;
  std::uint32_t freeCount_ = 0;
  /// 64 entries (x0..x31, f0..f31): current tag or -1 (architectural).
  std::array<int, 64> map_;
};

}  // namespace rvss::core
