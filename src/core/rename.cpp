#include "core/rename.h"

#include "core/inflight.h"

namespace rvss::core {

RenameState::RenameState(std::uint32_t renameRegisterCount) {
  regs_.resize(renameRegisterCount);
  freeList_.reserve(renameRegisterCount);
  Reset();
}

void RenameState::Reset() {
  for (SpecRegister& reg : regs_) reg = SpecRegister{};
  freeList_.clear();
  // Allocate low tags first (pop from the back).
  for (int tag = static_cast<int>(regs_.size()) - 1; tag >= 0; --tag) {
    freeList_.push_back(tag);
  }
  freeCount_ = static_cast<std::uint32_t>(regs_.size());
  map_.fill(-1);
}

std::optional<std::pair<int, int>> RenameState::AllocateAndMap(
    isa::RegisterId arch) {
  if (freeList_.empty()) return std::nullopt;
  const int tag = freeList_.back();
  freeList_.pop_back();
  --freeCount_;

  SpecRegister& reg = regs_[static_cast<std::size_t>(tag)];
  reg.inUse = true;
  reg.valid = false;
  reg.cell = 0;
  reg.arch = arch;
  reg.references = 0;

  const std::size_t index = static_cast<std::size_t>(MapIndex(arch));
  const int prev = map_[index];
  map_[index] = tag;
  return std::make_pair(tag, prev < 0 ? kPrevWasArchitectural : prev);
}

void RenameState::CommitAndFree(int tag, ArchRegisterFile& archFile) {
  SpecRegister& reg = regs_[static_cast<std::size_t>(tag)];
  archFile.Write(reg.arch, reg.cell);
  const std::size_t index = static_cast<std::size_t>(MapIndex(reg.arch));
  if (map_[index] == tag) map_[index] = -1;
  reg.inUse = false;
  reg.valid = false;
  freeList_.push_back(tag);
  ++freeCount_;
}

void RenameState::SquashAndFree(int tag, int prevTag) {
  SpecRegister& reg = regs_[static_cast<std::size_t>(tag)];
  const std::size_t index = static_cast<std::size_t>(MapIndex(reg.arch));
  // Squashing youngest-first means the map must currently point here.
  if (map_[index] == tag) {
    map_[index] = prevTag == kPrevWasArchitectural ? -1 : prevTag;
  }
  reg.inUse = false;
  reg.valid = false;
  freeList_.push_back(tag);
  ++freeCount_;
}

std::vector<int> RenameState::RenamesOf(isa::RegisterId arch) const {
  std::vector<int> out;
  for (int tag = 0; tag < static_cast<int>(regs_.size()); ++tag) {
    const SpecRegister& reg = regs_[static_cast<std::size_t>(tag)];
    if (reg.inUse && reg.arch == arch) out.push_back(tag);
  }
  return out;
}

}  // namespace rvss::core
