// The out-of-order superscalar pipeline simulator — the paper's primary
// contribution.
//
// Pipeline structure (paper §II-A / §III-A): a fetch unit with branch
// prediction that can follow a configurable number of jumps per cycle, a
// decode/rename stage, per-class issue windows (FX, FP, LS-address,
// branch), configurable functional units without internal pipelining, load
// and store buffers with store-to-load forwarding, a memory-access unit in
// front of the L1 cache, and a reorder buffer committing in order with
// exception checks at commit.
//
// One clock cycle executes the blocks in reverse pipeline order
// (commit -> complete -> memory -> issue -> decode -> fetch); completing
// a functional unit early in the cycle and re-filling it later implements
// the paper's "two sub-steps ... to allow the completion of the current
// instruction and the loading of the next one within a single clock
// cycle".
//
// Backward simulation (paper §III-B) is forward re-execution: the whole
// simulation is deterministic for a fixed (program, config) pair, so
// stepping back to cycle t-1 resets and re-runs t-1 cycles.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "assembler/loader.h"
#include "common/log.h"
#include "common/status.h"
#include "config/cpu_config.h"
#include "core/inflight.h"
#include "core/rename.h"
#include "expr/expression_cache.h"
#include "memory/memory_system.h"
#include "predictor/predictors.h"
#include "stats/simulation_statistics.h"

namespace rvss::core {

enum class SimStatus : std::uint8_t { kRunning, kFinished, kFault };
enum class FinishReason : std::uint8_t {
  kNone,
  kMainReturned,   ///< jump to the exit sentinel committed
  kHalted,         ///< ecall / ebreak committed
  kPipelineEmpty,  ///< fetch ran past the program and the pipeline drained
  kException,      ///< runtime exception committed
};

const char* ToString(SimStatus status);
const char* ToString(FinishReason reason);

/// Issue-window identity (one per functional-unit class).
enum class WindowKind : std::uint8_t { kFx, kFp, kLs, kBranch };

/// Runtime state of one functional unit.
struct FunctionalUnit {
  config::FunctionalUnitConfig config;
  std::size_t statsIndex = 0;     ///< index into statistics().unitUsage
  InFlightPtr current;            ///< instruction in execution, if any
  std::uint64_t busyUntil = 0;    ///< cycle the current instruction finishes
};

class Simulation {
 public:
  struct CreateOptions {
    std::vector<memory::ArrayDefinition> arrays;
    std::string entryLabel;
  };

  /// Validates the configuration, assembles `source`, lays out memory and
  /// constructs a ready-to-step simulation.
  static Result<std::unique_ptr<Simulation>> Create(
      const config::CpuConfig& config, std::string_view source,
      const CreateOptions& options = {});

  /// Advances one clock cycle. No-op once finished.
  void Step();

  /// Runs until completion or `maxCycles` more cycles.
  SimStatus Run(std::uint64_t maxCycles = UINT64_MAX);

  /// Backward simulation: re-runs the first cycle()-1 cycles from reset
  /// (paper §III-B). Fails at cycle 0.
  Status StepBack();

  /// Resets to the initial state (cycle 0, memory re-imaged).
  void Reset();

  // --- state inspection ----------------------------------------------------
  std::uint64_t cycle() const { return cycle_; }
  SimStatus status() const { return status_; }
  FinishReason finishReason() const { return finishReason_; }
  const std::optional<Error>& fault() const { return fault_; }
  std::uint32_t fetchPc() const { return pc_; }

  const config::CpuConfig& config() const { return config_; }
  const assembler::Program& program() const { return loaded_.program; }
  const stats::SimulationStatistics& statistics() const { return stats_; }
  const memory::MemorySystem& memorySystem() const { return *memory_; }
  memory::MemorySystem& memorySystem() { return *memory_; }
  const ArchRegisterFile& archRegs() const { return arch_; }
  const RenameState& rename() const { return rename_; }
  const predictor::PredictorUnit& predictor() const { return predictor_; }
  SimLog& log() { return log_; }
  const SimLog& log() const { return log_; }

  const std::deque<InFlightPtr>& fetchQueue() const { return fetchQueue_; }
  const std::deque<InFlightPtr>& rob() const { return rob_; }
  const std::vector<InFlightPtr>& window(WindowKind kind) const {
    return windows_[static_cast<std::size_t>(kind)];
  }
  const std::deque<InFlightPtr>& loadBuffer() const { return loadBuffer_; }
  const std::deque<InFlightPtr>& storeBuffer() const { return storeBuffer_; }
  const std::vector<FunctionalUnit>& functionalUnits() const { return fus_; }

  /// Optional commit-order trace: every committed PC is appended to
  /// `sink` (tests and the backward-simulation determinism checks).
  void SetCommitTraceSink(std::vector<std::uint32_t>* sink) {
    commitTraceSink_ = sink;
  }

  /// Architectural value of an integer/FP register as seen at commit.
  std::uint64_t ReadIntReg(unsigned index) const {
    return arch_.Read(isa::RegisterId{isa::RegisterKind::kInt,
                                      static_cast<std::uint8_t>(index)});
  }
  std::uint64_t ReadFpReg(unsigned index) const {
    return arch_.Read(isa::RegisterId{isa::RegisterKind::kFp,
                                      static_cast<std::uint8_t>(index)});
  }

 private:
  Simulation(config::CpuConfig config, assembler::LoadedProgram loaded);

  // Pipeline stages, in the order Step() runs them.
  void StageCommit();
  void StageComplete();
  void StageMemory();
  void StageIssue();
  void StageDecode();
  void StageFetch();

  // Helpers.
  void FinalizeAlu(const InFlightPtr& inst);
  void FinalizeAddressGen(const InFlightPtr& inst);
  void ResolveBranch(const InFlightPtr& inst,
                     std::vector<InFlightPtr>& mispredicts);
  void CompleteLoad(const InFlightPtr& inst);
  void WriteDestinations(const InFlightPtr& inst,
                         const expr::EvalResult& result);
  void WakeUp(int tag, std::uint64_t cell);
  void FlushYoungerThan(std::uint64_t seq, std::uint32_t newPc);
  void Finish(FinishReason reason);
  bool StoreDataReady(const InFlight& inst) const;
  std::uint64_t StoreRawData(const InFlight& inst) const;
  std::vector<expr::Value> GatherArgs(const InFlight& inst) const;
  WindowKind WindowFor(isa::OpClass opClass) const;
  config::FunctionalUnitConfig::Kind FuKindFor(WindowKind kind) const;

  config::CpuConfig config_;
  assembler::LoadedProgram loaded_;
  std::vector<std::uint8_t> initialMemoryImage_;

  std::unique_ptr<memory::MemorySystem> memory_;
  predictor::PredictorUnit predictor_;
  ArchRegisterFile arch_;
  RenameState rename_;
  expr::ExpressionCache expressions_;
  stats::SimulationStatistics stats_;
  SimLog log_;

  std::uint64_t cycle_ = 0;
  std::uint64_t nextSeq_ = 1;
  std::uint32_t pc_ = 0;
  std::uint64_t fetchResumeCycle_ = 0;  ///< flush-penalty stall
  bool fetchStalledIndirect_ = false;   ///< waiting for a BTB-miss jalr
  SimStatus status_ = SimStatus::kRunning;
  FinishReason finishReason_ = FinishReason::kNone;
  std::optional<Error> fault_;

  std::deque<InFlightPtr> fetchQueue_;
  std::deque<InFlightPtr> rob_;
  std::array<std::vector<InFlightPtr>, 4> windows_;
  std::deque<InFlightPtr> loadBuffer_;
  std::deque<InFlightPtr> storeBuffer_;
  std::vector<FunctionalUnit> fus_;
  std::vector<std::uint32_t>* commitTraceSink_ = nullptr;
};

}  // namespace rvss::core
