// The out-of-order superscalar pipeline simulator — the paper's primary
// contribution.
//
// Pipeline structure (paper §II-A / §III-A): a fetch unit with branch
// prediction that can follow a configurable number of jumps per cycle, a
// decode/rename stage, per-class issue windows (FX, FP, LS-address,
// branch), configurable functional units without internal pipelining, load
// and store buffers with store-to-load forwarding, a memory-access unit in
// front of the L1 cache, and a reorder buffer committing in order with
// exception checks at commit.
//
// One clock cycle executes the blocks in reverse pipeline order
// (commit -> complete -> memory -> issue -> decode -> fetch); completing
// a functional unit early in the cycle and re-filling it later implements
// the paper's "two sub-steps ... to allow the completion of the current
// instruction and the loading of the next one within a single clock
// cycle".
//
// Backward simulation (paper §III-B) builds on determinism: the whole
// simulation is fully determined by the (program, config) pair, so any
// earlier cycle is reachable by replaying forward from a known state. The
// paper replays from reset (O(n) per backward step); this implementation
// snapshots the complete simulation state into a CheckpointRing every K
// cycles, so StepBack restores the nearest checkpoint at or before the
// target and replays at most K cycles — O(K) per backward step, with
// re-execution from reset kept only as the checkpoints-disabled fallback.
#pragma once

#include <array>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "assembler/loader.h"
#include "common/log.h"
#include "common/status.h"
#include "config/cpu_config.h"
#include "core/checkpoint_ring.h"
#include "core/inflight.h"
#include "core/rename.h"
#include "expr/expression_cache.h"
#include "memory/memory_system.h"
#include "predictor/predictors.h"
#include "stats/simulation_statistics.h"

namespace rvss::core {

enum class SimStatus : std::uint8_t { kRunning, kFinished, kFault };
enum class FinishReason : std::uint8_t {
  kNone,
  kMainReturned,   ///< jump to the exit sentinel committed
  kHalted,         ///< ecall / ebreak committed
  kPipelineEmpty,  ///< fetch ran past the program and the pipeline drained
  kException,      ///< runtime exception committed
};

const char* ToString(SimStatus status);
const char* ToString(FinishReason reason);

/// Issue-window identity (one per functional-unit class).
enum class WindowKind : std::uint8_t { kFx, kFp, kLs, kBranch };

/// Static routing of one operand slot, computed once at program load: the
/// slot's classification plus any value that does not depend on runtime
/// state (converted immediates, x0 reads).
struct PredecodedOperand {
  enum class Kind : std::uint8_t {
    kImmediate,   ///< non-register operand; `fixed` holds the converted value
    kZeroSource,  ///< x0 source; `fixed` holds the typed zero
    kRegSource,   ///< register source, renamed at decode
    kDestX0,      ///< write-back to x0 (or malformed dest): discarded
    kDest,        ///< write-back register, allocated at decode
  };
  Kind kind = Kind::kImmediate;
  isa::RegisterId reg;   ///< for kRegSource / kDest
  isa::ArgType type{};   ///< declared argument type
  expr::Value fixed;     ///< for kImmediate / kZeroSource
};

/// One fully predecoded static instruction — everything the per-cycle
/// stages would otherwise recompute for every dynamic instance: the
/// resolved definition, the compiled semantics expression, operand routing,
/// and the pc-relative branch offset (kills the ArgIndex("imm") string
/// lookups in fetch and branch resolution).
///
/// Derived entirely from the immutable (program, ISA) pair, so the table is
/// built once in Create and never snapshotted: checkpoint/session restores
/// rebuild nothing, and ring/snapshot byte accounting counts it as zero.
struct PredecodedOp {
  const isa::InstructionDescription* def = nullptr;
  const expr::Expression* expr = nullptr;  ///< null when compilation failed
  std::optional<Error> exprError;          ///< surfaced at execute time
  WindowKind window = WindowKind::kFx;
  std::uint8_t operandCount = 0;
  std::uint8_t destsNeeded = 0;  ///< rename registers required at decode
  bool isControl = false;
  std::int32_t branchImm = 0;  ///< pc-relative offset (conditional / jal)
  /// Compile-time shape of the semantics expression; when recognized the
  /// finalizers apply the operator directly instead of running the stack
  /// machine (copied from expr so the hot path has one indirection fewer).
  expr::Expression::FastForm fast;
  std::array<PredecodedOperand, 4> operands{};
};

/// Runtime state of one functional unit.
struct FunctionalUnit {
  /// Dense cache of config.LatencyFor over every isa::OpClass value, so
  /// the issue stage's unit scan is an array read, not a list search.
  static constexpr std::size_t kOpClassCount =
      static_cast<std::size_t>(isa::OpClass::kMemAddr) + 1;

  config::FunctionalUnitConfig config;
  std::array<std::uint32_t, kOpClassCount> latencyByClass{};
  std::size_t statsIndex = 0;     ///< index into statistics().unitUsage
  InFlightPtr current;            ///< instruction in execution, if any
  std::uint64_t busyUntil = 0;    ///< cycle the current instruction finishes
};

/// Architectural state a fast-forward deposited at the start of the
/// detailed window: the ISS-computed registers and PC the detailed model
/// was (re-)seeded with, plus the number of instructions skipped. Carried
/// by snapshots so an exported fast-forwarded session stays coherent when
/// imported into a fresh process (whose cycle-0 state is pre-fast-forward).
struct FastForwardSeed {
  std::array<std::uint64_t, 32> x{};
  std::array<std::uint64_t, 32> f{};
  std::uint32_t pc = 0;
  std::uint64_t instructions = 0;  ///< instructions executed on the ISS

  friend bool operator==(const FastForwardSeed&,
                         const FastForwardSeed&) = default;
};

/// Complete copyable snapshot of a Simulation's mutable state.
///
/// Every pipeline container holds deep copies of its InFlight entries —
/// cloned with aliasing preserved, so an instruction sitting in both the
/// ROB and a load buffer is one shared object inside the snapshot, but the
/// snapshot shares nothing with the live run. Restoring clones again, so
/// one snapshot can seed many restores (checkpoint ring, session forks).
struct SimSnapshot {
  std::uint64_t cycle = 0;
  std::uint64_t nextSeq = 1;
  std::uint32_t pc = 0;
  std::uint64_t fetchResumeCycle = 0;
  bool fetchStalledIndirect = false;
  SimStatus status = SimStatus::kRunning;
  FinishReason finishReason = FinishReason::kNone;
  std::optional<Error> fault;

  std::deque<InFlightPtr> fetchQueue;
  std::deque<InFlightPtr> rob;
  std::array<std::vector<InFlightPtr>, 4> windows;
  std::deque<InFlightPtr> loadBuffer;
  std::deque<InFlightPtr> storeBuffer;
  std::vector<InFlightPtr> fuCurrent;      ///< per functional unit
  std::vector<std::uint64_t> fuBusyUntil;  ///< per functional unit

  ArchRegisterFile::State arch;
  RenameState::State rename;
  predictor::PredictorUnit::State predictor;
  memory::MemorySystem::State memory;
  stats::SimulationStatistics::State stats;
  SimLog::State log;

  /// Set when the timeline this snapshot belongs to began with a
  /// fast-forward (see Simulation::FastForwardTo).
  std::optional<FastForwardSeed> ffSeed;

  /// Approximate heap footprint (checkpoint-ring memory accounting).
  std::size_t SizeBytes() const;
};

class Simulation {
 public:
  struct CreateOptions {
    std::vector<memory::ArrayDefinition> arrays;
    std::string entryLabel;
  };

  /// Validates the configuration, assembles `source`, lays out memory and
  /// constructs a ready-to-step simulation.
  static Result<std::unique_ptr<Simulation>> Create(
      const config::CpuConfig& config, std::string_view source,
      const CreateOptions& options = {});

  /// Advances one clock cycle. No-op once finished.
  void Step();

  /// Runs until completion or `maxCycles` more cycles.
  SimStatus Run(std::uint64_t maxCycles = UINT64_MAX);

  /// Backward simulation (paper §III-B): equivalent to SeekTo(cycle()-1).
  /// With checkpointing enabled this restores the nearest checkpoint and
  /// replays at most one interval. Fails at cycle 0, or when the replay
  /// would exceed `maxReplayCycles` (checkpoints disabled or evicted;
  /// servers pass their per-request bound).
  Status StepBack(std::uint64_t maxReplayCycles = UINT64_MAX);

  /// Seeks to an arbitrary cycle, backward or forward. Restores the best
  /// checkpoint at or before `targetCycle` (or hard-resets when none
  /// exists) and replays the remainder; replay stops early if the program
  /// finishes. `maxReplayCycles` bounds the replay distance: a seek that
  /// would need more returns an error without touching the state (servers
  /// use this to keep requests bounded).
  Status SeekTo(std::uint64_t targetCycle,
                std::uint64_t maxReplayCycles = UINT64_MAX);

  /// How many cycles SeekTo(targetCycle) would replay right now, from
  /// the same start SeekTo would pick (best checkpoint at or before the
  /// target, or the current position for a plain forward seek). Lets a
  /// server split one deep seek into several bounded SeekTo hops instead
  /// of rejecting it: seek to an intermediate cycle, let the checkpoint
  /// ring capture along the way, re-ask, repeat. Pure query — no state
  /// is touched, and a target SeekTo would reject (below the reachable
  /// window) still reports its nominal distance.
  std::uint64_t SeekReplayCost(std::uint64_t targetCycle) const;

  /// Resets to the initial state (cycle 0): restores the base checkpoint,
  /// or rebuilds from the initial memory image when checkpointing is off.
  /// The checkpoint ring itself survives — determinism keeps it valid.
  /// In an imported fast-forwarded session whose pre-import cycles are
  /// unreachable, this seeks to the earliest reachable cycle instead.
  void Reset();

  /// Skips the program's warm-up phase on the reference ISS: executes up
  /// to `instructionCount` instructions one at a time on the golden model
  /// (sharing this simulation's memory), then re-seeds the detailed model
  /// from the resulting architectural state. Cycle stays 0 — the detailed
  /// window starts *after* the skipped prefix, and all backward/forward
  /// seeking operates within it. Valid only on a freshly created or Reset
  /// simulation (cycle 0, running, not already fast-forwarded).
  ///
  /// If the program completes on the ISS (exit / halt / run-off / fault),
  /// the simulation finishes with the matching reason instead of resuming.
  /// Statistics record the skipped instructions separately
  /// (fastForwardedInstructions); they do not count as fetched/committed.
  Status FastForwardTo(std::uint64_t instructionCount);

  /// The fast-forward seed this timeline began with, if any.
  const std::optional<FastForwardSeed>& fastForwardSeed() const {
    return ffSeed_;
  }

  /// Cycles below this are not reachable by SeekTo/StepBack: non-zero only
  /// in sessions imported from a fast-forwarded export, where the blob's
  /// snapshot is the oldest state this process can reconstruct.
  std::uint64_t earliestReachableCycle() const {
    return earliestReachableCycle_;
  }

  // --- explicit state -------------------------------------------------------

  /// Captures the complete mutable state. The snapshot shares nothing with
  /// the live run (InFlight entries are deep-copied, aliasing preserved).
  SimSnapshot SaveState() const { return SaveStateImpl(true); }

  /// Restores a snapshot previously captured from an identical
  /// (program, config) pair. The snapshot itself is not consumed.
  void RestoreState(const SimSnapshot& snapshot);

  /// Deposits a checkpoint of the current state into the ring (the server's
  /// `saveCheckpoint` command); automatic checkpoints are taken by Step()
  /// every config().checkpoint.intervalCycles cycles. With
  /// config().checkpoint.deltaPages, checkpoints between full snapshots
  /// store only the memory pages dirtied since the last full one.
  void CaptureCheckpointNow();

  const CheckpointRing& checkpoints() const { return checkpoints_; }

  /// Cycles replayed by the most recent SeekTo/StepBack/Reset — the
  /// O(interval) claim, observable (tests and the stepback bench).
  std::uint64_t lastSeekReplayedCycles() const {
    return lastSeekReplayedCycles_;
  }

  // --- state inspection ----------------------------------------------------
  std::uint64_t cycle() const { return cycle_; }
  SimStatus status() const { return status_; }
  FinishReason finishReason() const { return finishReason_; }
  const std::optional<Error>& fault() const { return fault_; }
  std::uint32_t fetchPc() const { return pc_; }

  const config::CpuConfig& config() const { return config_; }
  const assembler::Program& program() const { return loaded_.program; }
  const stats::SimulationStatistics& statistics() const { return stats_; }
  const memory::MemorySystem& memorySystem() const { return *memory_; }
  memory::MemorySystem& memorySystem() { return *memory_; }

  /// FNV-1a hash of the memory image a fresh Create of this (config,
  /// program) pair produces. Together with the config and program hashes
  /// it identifies the base that delta session blobs are encoded against.
  std::uint64_t memoryBaseEpoch() const { return memoryBaseEpoch_; }

  const ArchRegisterFile& archRegs() const { return arch_; }
  const RenameState& rename() const { return rename_; }
  const predictor::PredictorUnit& predictor() const { return predictor_; }
  SimLog& log() { return log_; }
  const SimLog& log() const { return log_; }

  const std::deque<InFlightPtr>& fetchQueue() const { return fetchQueue_; }
  const std::deque<InFlightPtr>& rob() const { return rob_; }
  const std::vector<InFlightPtr>& window(WindowKind kind) const {
    return windows_[static_cast<std::size_t>(kind)];
  }
  const std::deque<InFlightPtr>& loadBuffer() const { return loadBuffer_; }
  const std::deque<InFlightPtr>& storeBuffer() const { return storeBuffer_; }
  const std::vector<FunctionalUnit>& functionalUnits() const { return fus_; }

  /// Optional commit-order trace: every committed PC is appended to
  /// `sink` (tests and the backward-simulation determinism checks).
  void SetCommitTraceSink(std::vector<std::uint32_t>* sink) {
    commitTraceSink_ = sink;
  }

  /// Architectural value of an integer/FP register as seen at commit.
  std::uint64_t ReadIntReg(unsigned index) const {
    return arch_.Read(isa::RegisterId{isa::RegisterKind::kInt,
                                      static_cast<std::uint8_t>(index)});
  }
  std::uint64_t ReadFpReg(unsigned index) const {
    return arch_.Read(isa::RegisterId{isa::RegisterKind::kFp,
                                      static_cast<std::uint8_t>(index)});
  }

 private:
  Simulation(config::CpuConfig config, assembler::LoadedProgram loaded);

  /// Rebuilds the cycle-0 state from scratch (memory re-imaged). The
  /// checkpoints-disabled Reset path and the Create-time initializer.
  void ResetHard();

  /// SaveState body; `includeMemoryImage = false` leaves the memory byte
  /// image empty (delta checkpoints carry dirty pages instead — copying a
  /// multi-MiB image just to discard it would defeat their cost model).
  SimSnapshot SaveStateImpl(bool includeMemoryImage) const;

  /// Deposits an automatic checkpoint when the ring wants one.
  void MaybeCheckpoint();

  // Pipeline stages, in the order Step() runs them.
  void StageCommit();
  void StageComplete();
  void StageMemory();
  void StageIssue();
  void StageDecode();
  void StageFetch();

  // Helpers.
  void FinalizeAlu(const InFlightPtr& inst);
  void FinalizeAddressGen(const InFlightPtr& inst);
  void ResolveBranch(const InFlightPtr& inst,
                     std::vector<InFlightPtr>& mispredicts);
  void CompleteLoad(const InFlightPtr& inst);
  void WriteDestinations(const InFlightPtr& inst,
                         const expr::EvalResult& result);
  /// Single-destination write-back used by the FastForm ALU path.
  void WriteDest(const InFlightPtr& inst, int argIndex,
                 const expr::Value& value);
  void WakeUp(int tag, std::uint64_t cell);
  void FlushYoungerThan(std::uint64_t seq, std::uint32_t newPc);
  void Finish(FinishReason reason);
  bool StoreDataReady(const InFlight& inst) const;
  std::uint64_t StoreRawData(const InFlight& inst) const;
  /// Copies the captured operand values into `scratch` and returns the
  /// populated prefix — the hot-path replacement for the old
  /// vector-returning GatherArgs (no allocation).
  std::span<const expr::Value> GatherArgs(
      const InFlight& inst, std::array<expr::Value, 4>& scratch) const;
  WindowKind WindowFor(isa::OpClass opClass) const;
  config::FunctionalUnitConfig::Kind FuKindFor(WindowKind kind) const;

  /// Installs a fast-forward seed's registers, PC and stats annotation
  /// into the current (freshly reset) state.
  void ApplyFastForwardSeed(const FastForwardSeed& seed);

  /// Builds predecoded_ from the loaded program (Create-time only).
  void BuildPredecode();
  const PredecodedOp& Predecoded(const InFlight& inst) const {
    return predecoded_[static_cast<std::size_t>(
        inst.inst - loaded_.program.instructions.data())];
  }

  config::CpuConfig config_;                       // snapshot: derived
  assembler::LoadedProgram loaded_;                // snapshot: derived
  std::vector<std::uint8_t> initialMemoryImage_;   // snapshot: derived
  std::uint64_t memoryBaseEpoch_ = 0;              // snapshot: derived
  /// Predecode cache, parallel to loaded_.program.instructions (pc = 4*i).
  /// Derived state: never snapshotted, never invalidated (program is
  /// immutable for the simulation's lifetime).
  std::vector<PredecodedOp> predecoded_;  // snapshot: derived
  /// Reusable evaluation scratch for the execution finalizers; its writes
  /// vector keeps its capacity across cycles (see expr::EvaluateInto).
  expr::EvalResult evalScratch_;  // snapshot: derived

  std::unique_ptr<memory::MemorySystem> memory_;
  predictor::PredictorUnit predictor_;
  ArchRegisterFile arch_;
  RenameState rename_;
  expr::ExpressionCache expressions_;  // snapshot: derived
  stats::SimulationStatistics stats_;
  SimLog log_;

  std::uint64_t cycle_ = 0;
  std::uint64_t nextSeq_ = 1;
  std::uint32_t pc_ = 0;
  std::uint64_t fetchResumeCycle_ = 0;  ///< flush-penalty stall
  bool fetchStalledIndirect_ = false;   ///< waiting for a BTB-miss jalr
  SimStatus status_ = SimStatus::kRunning;
  FinishReason finishReason_ = FinishReason::kNone;
  std::optional<Error> fault_;

  std::deque<InFlightPtr> fetchQueue_;
  std::deque<InFlightPtr> rob_;
  std::array<std::vector<InFlightPtr>, 4> windows_;
  std::deque<InFlightPtr> loadBuffer_;
  std::deque<InFlightPtr> storeBuffer_;
  std::vector<FunctionalUnit> fus_;
  /// Indices into fus_ of the units each issue window can dispatch to,
  /// grouped once at construction (issue never scans foreign-kind units).
  std::array<std::vector<std::uint32_t>, 4> fusByWindow_;  // snapshot: derived
  std::vector<std::uint32_t>* commitTraceSink_ = nullptr;  // snapshot: derived

  CheckpointRing checkpoints_;                 // snapshot: derived
  std::uint64_t lastSeekReplayedCycles_ = 0;   // snapshot: derived

  // --- fast-forward bookkeeping --------------------------------------------
  /// Seed the detailed window started from (see FastForwardTo); applied by
  /// ResetHard so cycle 0 rebuilds the post-fast-forward state.
  std::optional<FastForwardSeed> ffSeed_;
  /// See earliestReachableCycle().
  std::uint64_t earliestReachableCycle_ = 0;  // snapshot: derived

  // --- delta-checkpoint bookkeeping ----------------------------------------
  /// The full snapshot deltas patch against.
  std::shared_ptr<const SimSnapshot> lastFullCheckpoint_;  // snapshot: derived
  /// Pages dirtied since lastFullCheckpoint_ (per-interval dirt folded in
  /// at each capture).
  std::vector<std::uint8_t> dirtySinceFull_;  // snapshot: derived
  std::uint64_t deltasSinceFull_ = 0;         // snapshot: derived
  /// Restores invalidate the dirty accounting, so the next capture must be
  /// a full snapshot.
  bool forceFullCheckpoint_ = true;  // snapshot: derived
};

}  // namespace rvss::core
