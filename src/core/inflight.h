// In-flight instruction state — everything the GUI's instruction pop-up
// shows (paper Fig. 3): parameter values and validity, renaming details,
// flags, and the timestamps of each completed pipeline phase.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "assembler/program.h"
#include "common/status.h"
#include "expr/value.h"

namespace rvss::core {

enum class Phase : std::uint8_t {
  kFetched,    ///< sitting in the fetch queue
  kDecoded,    ///< renamed, waiting in an issue window / LS buffer
  kExecuting,  ///< occupying a functional unit
  kDone,       ///< results ready, waiting for in-order commit
  kCommitted,
  kSquashed,   ///< killed by a pipeline flush
};

const char* ToString(Phase phase);

/// Runtime state of one operand slot (parallel to the definition's args).
struct OperandRuntime {
  bool isSource = false;   ///< source register operand
  bool isDest = false;     ///< write-back register operand
  bool ready = true;       ///< source value captured (immediates start ready)
  expr::Value value;       ///< captured source value / computed result
  int waitTag = -1;        ///< speculative register this source waits on
  int destTag = -1;        ///< allocated speculative register (-1: discard x0)
  int prevTag = -1;        ///< previous mapping of the dest architectural
                           ///< register (-2 = was architectural)
};

/// Sentinel for OperandRuntime::prevTag: the architectural register was not
/// renamed before this instruction.
inline constexpr int kPrevWasArchitectural = -2;

/// One dynamic instruction flowing through the pipeline.
struct InFlight {
  std::uint64_t seq = 0;  ///< program-order sequence number
  const assembler::Instruction* inst = nullptr;
  std::uint32_t pc = 0;
  Phase phase = Phase::kFetched;

  std::array<OperandRuntime, 4> operands{};
  std::uint8_t operandCount = 0;

  // --- speculation state ---------------------------------------------------
  bool isControl = false;
  bool predictedTaken = false;
  std::uint32_t predictedNextPc = 0;  ///< PC fetch continued from
  std::uint32_t historyCheckpoint = 0;
  bool btbHit = false;

  // --- resolution ------------------------------------------------------------
  bool branchTaken = false;
  std::uint32_t branchTarget = 0;
  bool mispredicted = false;
  bool isExit = false;  ///< jump landed on the exit sentinel

  // --- memory ---------------------------------------------------------------
  bool addressReady = false;
  std::uint32_t effectiveAddress = 0;
  bool memoryStarted = false;   ///< access handed to a memory unit
  bool memoryDone = false;      ///< load data fetched / store drained
  bool cacheHit = false;
  bool forwarded = false;       ///< load satisfied by store-to-load forwarding
  std::uint64_t forwardedRaw = 0;
  bool drainPending = false;    ///< store committed, awaiting its write timing
  bool drainStarted = false;
  bool stalledFetch = false;    ///< jalr that stopped fetch on a BTB miss

  // --- completion -------------------------------------------------------------
  bool resultsReady = false;
  std::optional<Error> exception;

  // --- timestamps (cycle numbers; 0 = not reached) ---------------------------
  std::uint64_t fetchCycle = 0;
  std::uint64_t decodeCycle = 0;
  std::uint64_t issueCycle = 0;
  std::uint64_t executeDoneCycle = 0;
  std::uint64_t commitCycle = 0;

  bool IsLoad() const { return inst->def->mem.isLoad; }
  bool IsStore() const { return inst->def->mem.isStore; }
};

using InFlightPtr = std::shared_ptr<InFlight>;

}  // namespace rvss::core
