// Checkpoint ring: bounded store of full and page-delta simulation
// snapshots.
//
// The paper implements backward simulation (§III-B) as deterministic
// re-execution from reset — O(n) per backward step. The ring turns that
// into O(interval): the simulation deposits a snapshot every
// `intervalCycles` cycles (plus any manually requested ones), and StepBack
// restores the nearest snapshot at or before the target cycle and replays
// the remainder. Because the simulation is fully deterministic for a fixed
// (program, config, seed) triple, snapshots taken on a previous pass stay
// valid after seeking backward, so forward scrubbing can reuse them too.
//
// Entries come in two flavours. *Full* entries own a complete SimSnapshot.
// *Delta* entries store everything except the memory image plus only the
// 4 KiB pages dirtied since the most recent full snapshot (which they
// patch on materialization). Memory images dominate snapshot size, so
// deltas shrink ring bytes by roughly the clean-page fraction — 5-100x on
// typical workloads. Deltas patch the full base directly (no chaining), so
// any delta can be evicted independently.
//
// Memory is bounded: entries carry their approximate byte size and the
// oldest entries are evicted once `maxTotalBytes` is exceeded. Pinned and
// never evicted: the cycle-0 base snapshot (Reset's restore point), the
// newest entry, and any full snapshot still patched by a live delta entry.
// With adaptive mode on, evictions double the effective interval (up to
// 1024x the configured one) so a too-small budget stretches checkpoint
// spacing instead of thrashing.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace rvss::core {

struct SimSnapshot;  // core/simulation.h

/// One dirtied page captured by a delta checkpoint.
struct DeltaPage {
  std::uint32_t pageIndex = 0;
  std::vector<std::uint8_t> bytes;  ///< page contents (last page may be short)
};

/// A checkpoint stored as a patch against a full snapshot: the complete
/// non-memory state plus the memory pages that differ from `base`.
struct DeltaCheckpoint {
  /// The full snapshot whose memory image this delta patches. The
  /// shared_ptr keeps the base alive even if its own ring entry is gone.
  std::shared_ptr<const SimSnapshot> base;
  /// Complete snapshot with the memory byte image emptied out.
  std::shared_ptr<const SimSnapshot> rest;
  std::vector<DeltaPage> pages;
};

class CheckpointRing {
 public:
  struct Entry {
    std::uint64_t cycle = 0;
    std::size_t bytes = 0;
    std::shared_ptr<const SimSnapshot> snapshot;   ///< set for full entries
    std::shared_ptr<const DeltaCheckpoint> delta;  ///< set for delta entries

    bool IsFull() const { return snapshot != nullptr; }
  };

  /// `intervalCycles == 0` disables automatic checkpointing (the simulator
  /// falls back to the paper's re-execution-from-reset path).
  CheckpointRing(std::uint64_t intervalCycles, std::size_t maxTotalBytes)
      : intervalCycles_(intervalCycles),
        effectiveIntervalCycles_(intervalCycles),
        maxTotalBytes_(maxTotalBytes) {}

  bool enabled() const { return intervalCycles_ > 0; }
  std::uint64_t intervalCycles() const { return intervalCycles_; }

  /// Grow the interval on budget pressure instead of churning evictions.
  void SetAdaptive(bool adaptive) { adaptive_ = adaptive; }
  bool adaptive() const { return adaptive_; }

  /// The interval automatic checkpoints currently use: the configured one,
  /// possibly grown by adaptive sizing.
  std::uint64_t effectiveIntervalCycles() const {
    return effectiveIntervalCycles_;
  }

  /// True when the simulation should deposit a snapshot at `cycle`: the
  /// ring is enabled, `cycle` lies on the (effective) interval grid and no
  /// entry for it exists yet (replayed cycles do not re-snapshot).
  bool WantsCheckpoint(std::uint64_t cycle) const;

  /// Inserts a full snapshot, keeping entries sorted by cycle; a duplicate
  /// cycle is a no-op. Evicts oldest evictable entries beyond the budget.
  void Add(std::uint64_t cycle, std::size_t bytes,
           std::shared_ptr<const SimSnapshot> snapshot);

  /// Inserts a delta checkpoint; same ordering/eviction rules as Add.
  void AddDelta(std::uint64_t cycle, std::size_t bytes,
                std::shared_ptr<const DeltaCheckpoint> delta);

  /// Newest entry with entry.cycle <= cycle, or nullptr when none exists.
  const Entry* FindAtOrBefore(std::uint64_t cycle) const;

  /// The cycle-0 base entry, or nullptr before the first Add.
  const Entry* base() const;

  /// True while a full entry for `snapshot` is still stored. The
  /// simulation stops minting deltas against an evicted base — otherwise
  /// the base's memory image would stay alive (via the deltas' shared_ptr)
  /// without being counted against the byte budget.
  bool ContainsFull(const SimSnapshot* snapshot) const;

  /// A restorable snapshot for `entry`: full entries return their snapshot
  /// directly; delta entries copy the base memory image and apply the
  /// dirty pages.
  std::shared_ptr<const SimSnapshot> Materialize(const Entry& entry) const;

  std::size_t checkpointCount() const { return entries_.size(); }
  std::size_t fullCheckpointCount() const;
  std::size_t deltaCheckpointCount() const;
  std::size_t totalBytes() const { return totalBytes_; }
  std::size_t maxTotalBytes() const { return maxTotalBytes_; }

  void Clear();

 private:
  void Insert(Entry entry);
  void EvictOverBudget();
  bool HasDependentDelta(const SimSnapshot* base) const;

  std::uint64_t intervalCycles_;
  std::uint64_t effectiveIntervalCycles_;
  std::size_t maxTotalBytes_;
  bool adaptive_ = false;
  std::vector<Entry> entries_;  ///< sorted by cycle, ascending
  std::size_t totalBytes_ = 0;
};

}  // namespace rvss::core
