// Checkpoint ring: bounded store of full-simulation snapshots.
//
// The paper implements backward simulation (§III-B) as deterministic
// re-execution from reset — O(n) per backward step. The ring turns that
// into O(interval): the simulation deposits a snapshot every
// `intervalCycles` cycles (plus any manually requested ones), and StepBack
// restores the nearest snapshot at or before the target cycle and replays
// the remainder. Because the simulation is fully deterministic for a fixed
// (program, config, seed) triple, snapshots taken on a previous pass stay
// valid after seeking backward, so forward scrubbing can reuse them too.
//
// Memory is bounded: entries carry their approximate byte size and the
// oldest non-base entries are evicted once `maxTotalBytes` is exceeded.
// The cycle-0 base snapshot (Reset's restore point) and the newest entry
// are never evicted.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace rvss::core {

struct SimSnapshot;  // core/simulation.h

class CheckpointRing {
 public:
  struct Entry {
    std::uint64_t cycle = 0;
    std::size_t bytes = 0;
    std::shared_ptr<const SimSnapshot> snapshot;
  };

  /// `intervalCycles == 0` disables automatic checkpointing (the simulator
  /// falls back to the paper's re-execution-from-reset path).
  CheckpointRing(std::uint64_t intervalCycles, std::size_t maxTotalBytes)
      : intervalCycles_(intervalCycles), maxTotalBytes_(maxTotalBytes) {}

  bool enabled() const { return intervalCycles_ > 0; }
  std::uint64_t intervalCycles() const { return intervalCycles_; }

  /// True when the simulation should deposit a snapshot at `cycle`: the
  /// ring is enabled, `cycle` lies on the interval grid and no entry for it
  /// exists yet (replayed cycles do not re-snapshot).
  bool WantsCheckpoint(std::uint64_t cycle) const;

  /// Inserts a snapshot, keeping entries sorted by cycle; a duplicate cycle
  /// is a no-op. Evicts oldest non-base entries beyond the byte budget.
  void Add(std::uint64_t cycle, std::size_t bytes,
           std::shared_ptr<const SimSnapshot> snapshot);

  /// Newest entry with entry.cycle <= cycle, or nullptr when none exists.
  const Entry* FindAtOrBefore(std::uint64_t cycle) const;

  /// The cycle-0 base entry, or nullptr before the first Add.
  const Entry* base() const;

  std::size_t checkpointCount() const { return entries_.size(); }
  std::size_t totalBytes() const { return totalBytes_; }
  std::size_t maxTotalBytes() const { return maxTotalBytes_; }

  void Clear();

 private:
  std::uint64_t intervalCycles_;
  std::size_t maxTotalBytes_;
  std::vector<Entry> entries_;  ///< sorted by cycle, ascending
  std::size_t totalBytes_ = 0;
};

}  // namespace rvss::core
