#include "core/checkpoint_ring.h"

#include <algorithm>

#include "core/simulation.h"
#include "memory/main_memory.h"

namespace rvss::core {

bool CheckpointRing::WantsCheckpoint(std::uint64_t cycle) const {
  if (!enabled() || cycle % effectiveIntervalCycles_ != 0) return false;
  const Entry* existing = FindAtOrBefore(cycle);
  return existing == nullptr || existing->cycle != cycle;
}

void CheckpointRing::Add(std::uint64_t cycle, std::size_t bytes,
                         std::shared_ptr<const SimSnapshot> snapshot) {
  Entry entry;
  entry.cycle = cycle;
  entry.bytes = bytes;
  entry.snapshot = std::move(snapshot);
  Insert(std::move(entry));
}

void CheckpointRing::AddDelta(std::uint64_t cycle, std::size_t bytes,
                              std::shared_ptr<const DeltaCheckpoint> delta) {
  Entry entry;
  entry.cycle = cycle;
  entry.bytes = bytes;
  entry.delta = std::move(delta);
  Insert(std::move(entry));
}

void CheckpointRing::Insert(Entry entry) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), entry.cycle,
      [](const Entry& e, std::uint64_t c) { return e.cycle < c; });
  if (it != entries_.end() && it->cycle == entry.cycle) return;
  totalBytes_ += entry.bytes;
  entries_.insert(it, std::move(entry));
  EvictOverBudget();
}

bool CheckpointRing::HasDependentDelta(const SimSnapshot* base) const {
  for (const Entry& entry : entries_) {
    if (entry.delta != nullptr && entry.delta->base.get() == base) return true;
  }
  return false;
}

void CheckpointRing::EvictOverBudget() {
  // Evict oldest first, but pin the cycle-0 base (Reset's restore point),
  // the newest entry, and full snapshots still patched by a live delta, so
  // a too-small budget degrades to longer replays rather than losing the
  // ability to seek (or dangling a delta's base).
  bool evicted = false;
  while (totalBytes_ > maxTotalBytes_) {
    std::size_t victim = entries_.front().cycle == 0 ? 1 : 0;
    while (victim + 1 < entries_.size() && entries_[victim].IsFull() &&
           HasDependentDelta(entries_[victim].snapshot.get())) {
      ++victim;
    }
    if (victim + 1 >= entries_.size()) break;
    totalBytes_ -= entries_[victim].bytes;
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
    evicted = true;
  }
  // Budget pressure observed: stretch the automatic interval instead of
  // churning through evictions on every deposit.
  if (evicted && adaptive_ &&
      effectiveIntervalCycles_ < intervalCycles_ * 1024) {
    effectiveIntervalCycles_ *= 2;
  }
}

const CheckpointRing::Entry* CheckpointRing::FindAtOrBefore(
    std::uint64_t cycle) const {
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), cycle,
      [](std::uint64_t c, const Entry& entry) { return c < entry.cycle; });
  if (it == entries_.begin()) return nullptr;
  return &*(it - 1);
}

bool CheckpointRing::ContainsFull(const SimSnapshot* snapshot) const {
  for (const Entry& entry : entries_) {
    if (entry.snapshot.get() == snapshot) return true;
  }
  return false;
}

const CheckpointRing::Entry* CheckpointRing::base() const {
  if (entries_.empty() || entries_.front().cycle != 0) return nullptr;
  return &entries_.front();
}

std::shared_ptr<const SimSnapshot> CheckpointRing::Materialize(
    const Entry& entry) const {
  if (entry.snapshot != nullptr) return entry.snapshot;
  const DeltaCheckpoint& delta = *entry.delta;
  // Copying the rest-snapshot shares its InFlight objects; that is safe
  // because Simulation::RestoreState clones them again on the way in.
  auto out = std::make_shared<SimSnapshot>(*delta.rest);
  out->memory.memory.bytes = delta.base->memory.memory.bytes;
  std::vector<std::uint8_t>& bytes = out->memory.memory.bytes;
  for (const DeltaPage& page : delta.pages) {
    const std::size_t offset =
        static_cast<std::size_t>(page.pageIndex) *
        memory::MainMemory::kPageSizeBytes;
    std::copy(page.bytes.begin(), page.bytes.end(), bytes.begin() + static_cast<std::ptrdiff_t>(offset));
  }
  return out;
}

std::size_t CheckpointRing::fullCheckpointCount() const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [](const Entry& e) { return e.IsFull(); }));
}

std::size_t CheckpointRing::deltaCheckpointCount() const {
  return entries_.size() - fullCheckpointCount();
}

void CheckpointRing::Clear() {
  entries_.clear();
  totalBytes_ = 0;
  effectiveIntervalCycles_ = intervalCycles_;
}

}  // namespace rvss::core
