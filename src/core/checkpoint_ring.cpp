#include "core/checkpoint_ring.h"

#include <algorithm>

namespace rvss::core {

bool CheckpointRing::WantsCheckpoint(std::uint64_t cycle) const {
  if (!enabled() || cycle % intervalCycles_ != 0) return false;
  const Entry* existing = FindAtOrBefore(cycle);
  return existing == nullptr || existing->cycle != cycle;
}

void CheckpointRing::Add(std::uint64_t cycle, std::size_t bytes,
                         std::shared_ptr<const SimSnapshot> snapshot) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), cycle,
      [](const Entry& entry, std::uint64_t c) { return entry.cycle < c; });
  if (it != entries_.end() && it->cycle == cycle) return;
  totalBytes_ += bytes;
  entries_.insert(it, Entry{cycle, bytes, std::move(snapshot)});

  // Evict oldest first, but pin the cycle-0 base (Reset's restore point)
  // and the newest entry, so a too-small budget degrades to longer replays
  // rather than losing the ability to seek at all.
  std::size_t victim = entries_.front().cycle == 0 ? 1 : 0;
  while (totalBytes_ > maxTotalBytes_ && victim + 1 < entries_.size()) {
    totalBytes_ -= entries_[victim].bytes;
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
  }
}

const CheckpointRing::Entry* CheckpointRing::FindAtOrBefore(
    std::uint64_t cycle) const {
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), cycle,
      [](std::uint64_t c, const Entry& entry) { return c < entry.cycle; });
  if (it == entries_.begin()) return nullptr;
  return &*(it - 1);
}

const CheckpointRing::Entry* CheckpointRing::base() const {
  if (entries_.empty() || entries_.front().cycle != 0) return nullptr;
  return &entries_.front();
}

void CheckpointRing::Clear() {
  entries_.clear();
  totalBytes_ = 0;
}

}  // namespace rvss::core
