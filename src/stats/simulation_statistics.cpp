#include "stats/simulation_statistics.h"

#include "common/strings.h"
#include "isa/instruction_set_json.h"

namespace rvss::stats {
namespace {

json::Json MixToJson(const std::array<std::uint64_t, 7>& mix) {
  json::Json node = json::Json::MakeObject();
  for (std::size_t i = 0; i < mix.size(); ++i) {
    node.Set(isa::ToString(static_cast<isa::InstructionType>(i)),
             static_cast<std::int64_t>(mix[i]));
  }
  return node;
}

}  // namespace

json::Json SimulationStatistics::ToJson(const memory::MemoryStats& memoryStats,
                                        std::uint64_t coreClockHz) const {
  json::Json root = json::Json::MakeObject();
  root.Set("cycles", static_cast<std::int64_t>(cycles));
  root.Set("fetchedInstructions", static_cast<std::int64_t>(fetchedInstructions));
  root.Set("decodedInstructions", static_cast<std::int64_t>(decodedInstructions));
  root.Set("issuedInstructions", static_cast<std::int64_t>(issuedInstructions));
  root.Set("executedInstructions",
           static_cast<std::int64_t>(executedInstructions));
  root.Set("committedInstructions",
           static_cast<std::int64_t>(committedInstructions));
  root.Set("squashedInstructions",
           static_cast<std::int64_t>(squashedInstructions));
  root.Set("fastForwardedInstructions",
           static_cast<std::int64_t>(fastForwardedInstructions));
  root.Set("robFlushes", static_cast<std::int64_t>(robFlushes));
  root.Set("ipc", Ipc());
  root.Set("wallTimeSeconds", WallTimeSeconds(coreClockHz));
  root.Set("flops", static_cast<std::int64_t>(flops));
  root.Set("flopsPerSecond", FlopsPerSecond(coreClockHz));

  json::Json branches = json::Json::MakeObject();
  branches.Set("resolved", static_cast<std::int64_t>(branchesResolved));
  branches.Set("mispredicted", static_cast<std::int64_t>(branchesMispredicted));
  branches.Set("taken", static_cast<std::int64_t>(branchesTaken));
  branches.Set("accuracy", BranchAccuracy());
  branches.Set("btbHits", static_cast<std::int64_t>(btbHits));
  branches.Set("btbLookups", static_cast<std::int64_t>(btbLookups));
  root.Set("branchPrediction", std::move(branches));

  root.Set("staticMix", MixToJson(staticMix));
  root.Set("dynamicMix", MixToJson(dynamicMix));

  json::Json units = json::Json::MakeArray();
  for (const UnitUsage& usage : unitUsage) {
    json::Json unit = json::Json::MakeObject();
    unit.Set("name", usage.name);
    unit.Set("busyCycles", static_cast<std::int64_t>(usage.busyCycles));
    unit.Set("instructions", static_cast<std::int64_t>(usage.instructions));
    unit.Set("utilization",
             cycles == 0 ? 0.0
                         : static_cast<double>(usage.busyCycles) /
                               static_cast<double>(cycles));
    units.Append(std::move(unit));
  }
  root.Set("functionalUnits", std::move(units));

  json::Json cache = json::Json::MakeObject();
  cache.Set("accesses", static_cast<std::int64_t>(memoryStats.accesses));
  cache.Set("loads", static_cast<std::int64_t>(memoryStats.loads));
  cache.Set("stores", static_cast<std::int64_t>(memoryStats.stores));
  cache.Set("hits", static_cast<std::int64_t>(memoryStats.cacheHits));
  cache.Set("misses", static_cast<std::int64_t>(memoryStats.cacheMisses));
  cache.Set("hitRate", memoryStats.HitRate());
  cache.Set("evictions", static_cast<std::int64_t>(memoryStats.evictions));
  cache.Set("dirtyEvictions",
            static_cast<std::int64_t>(memoryStats.dirtyEvictions));
  cache.Set("bytesReadFromMemory",
            static_cast<std::int64_t>(memoryStats.bytesReadFromMemory));
  cache.Set("bytesWrittenToMemory",
            static_cast<std::int64_t>(memoryStats.bytesWrittenToMemory));
  root.Set("cache", std::move(cache));

  json::Json stalls = json::Json::MakeObject();
  stalls.Set("robFull", static_cast<std::int64_t>(stallCyclesRobFull));
  stalls.Set("renameFull", static_cast<std::int64_t>(stallCyclesRenameFull));
  stalls.Set("windowFull", static_cast<std::int64_t>(stallCyclesWindowFull));
  stalls.Set("lsBufferFull",
             static_cast<std::int64_t>(stallCyclesLsBufferFull));
  root.Set("decodeStalls", std::move(stalls));
  return root;
}

std::string SimulationStatistics::ToText(const memory::MemoryStats& memoryStats,
                                         std::uint64_t coreClockHz) const {
  std::string out;
  out += "=== Runtime statistics ===\n";
  out += StrFormat("cycles:                 %llu\n",
                   static_cast<unsigned long long>(cycles));
  out += StrFormat("committed instructions: %llu\n",
                   static_cast<unsigned long long>(committedInstructions));
  out += StrFormat("IPC:                    %.3f\n", Ipc());
  out += StrFormat("wall time:              %.6f s\n",
                   WallTimeSeconds(coreClockHz));
  out += StrFormat("FLOPs:                  %llu (%.3g FLOP/s)\n",
                   static_cast<unsigned long long>(flops),
                   FlopsPerSecond(coreClockHz));
  out += StrFormat("ROB flushes:            %llu\n",
                   static_cast<unsigned long long>(robFlushes));
  out += StrFormat("branch accuracy:        %.2f%% (%llu/%llu mispredicted)\n",
                   100.0 * BranchAccuracy(),
                   static_cast<unsigned long long>(branchesMispredicted),
                   static_cast<unsigned long long>(branchesResolved));
  out += StrFormat("fetched/decoded/issued: %llu / %llu / %llu\n",
                   static_cast<unsigned long long>(fetchedInstructions),
                   static_cast<unsigned long long>(decodedInstructions),
                   static_cast<unsigned long long>(issuedInstructions));
  out += StrFormat("squashed:               %llu\n",
                   static_cast<unsigned long long>(squashedInstructions));
  if (fastForwardedInstructions > 0) {
    out += StrFormat("fast-forwarded:         %llu instructions (ISS)\n",
                     static_cast<unsigned long long>(fastForwardedInstructions));
  }

  out += "--- dynamic instruction mix ---\n";
  std::uint64_t total = 0;
  for (std::uint64_t n : dynamicMix) total += n;
  for (std::size_t i = 0; i < dynamicMix.size(); ++i) {
    if (dynamicMix[i] == 0) continue;
    out += StrFormat("  %-12s %10llu  (%5.1f%%)\n",
                     isa::ToString(static_cast<isa::InstructionType>(i)),
                     static_cast<unsigned long long>(dynamicMix[i]),
                     total == 0 ? 0.0 : 100.0 * dynamicMix[i] / total);
  }

  out += "--- functional units ---\n";
  for (const UnitUsage& usage : unitUsage) {
    out += StrFormat("  %-8s busy %10llu cycles (%5.1f%%), %llu instructions\n",
                     usage.name.c_str(),
                     static_cast<unsigned long long>(usage.busyCycles),
                     cycles == 0 ? 0.0 : 100.0 * usage.busyCycles / cycles,
                     static_cast<unsigned long long>(usage.instructions));
  }

  out += "--- cache ---\n";
  out += StrFormat("  accesses: %llu (%llu loads, %llu stores)\n",
                   static_cast<unsigned long long>(memoryStats.accesses),
                   static_cast<unsigned long long>(memoryStats.loads),
                   static_cast<unsigned long long>(memoryStats.stores));
  out += StrFormat("  hit rate: %.2f%% (%llu hits, %llu misses)\n",
                   100.0 * memoryStats.HitRate(),
                   static_cast<unsigned long long>(memoryStats.cacheHits),
                   static_cast<unsigned long long>(memoryStats.cacheMisses));
  out += StrFormat("  memory traffic: %s read, %s written\n",
                   FormatBytes(memoryStats.bytesReadFromMemory).c_str(),
                   FormatBytes(memoryStats.bytesWrittenToMemory).c_str());
  return out;
}

}  // namespace rvss::stats
