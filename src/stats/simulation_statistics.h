// Runtime statistics (paper §II-D): static and dynamic instruction mix,
// busy cycles per functional unit, cache statistics, predictor accuracy,
// cycles, committed instructions, ROB flushes, FLOPs, IPC and wall time.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa_types.h"
#include "json/json.h"
#include "memory/memory_system.h"

namespace rvss::stats {

/// Per-functional-unit usage.
struct UnitUsage {
  std::string name;
  std::uint64_t busyCycles = 0;
  std::uint64_t instructions = 0;
};

struct SimulationStatistics {
  // --- pipeline throughput ------------------------------------------------
  std::uint64_t cycles = 0;
  std::uint64_t fetchedInstructions = 0;
  std::uint64_t decodedInstructions = 0;
  std::uint64_t issuedInstructions = 0;
  std::uint64_t executedInstructions = 0;
  std::uint64_t committedInstructions = 0;
  std::uint64_t squashedInstructions = 0;

  // --- speculation ---------------------------------------------------------
  std::uint64_t robFlushes = 0;
  std::uint64_t branchesResolved = 0;
  std::uint64_t branchesMispredicted = 0;
  std::uint64_t branchesTaken = 0;
  std::uint64_t btbHits = 0;
  std::uint64_t btbLookups = 0;

  // --- work ----------------------------------------------------------------
  std::uint64_t flops = 0;

  /// Instructions skipped on the reference ISS before the detailed window
  /// began (Simulation::FastForwardTo). Not included in the pipeline
  /// counters above — those describe detailed execution only.
  std::uint64_t fastForwardedInstructions = 0;

  /// Instruction mixes indexed by isa::InstructionType.
  std::array<std::uint64_t, 7> staticMix{};
  std::array<std::uint64_t, 7> dynamicMix{};

  /// One entry per configured functional unit, in configuration order.
  std::vector<UnitUsage> unitUsage;

  /// Stall accounting (who blocked decode this cycle).
  std::uint64_t stallCyclesRobFull = 0;
  std::uint64_t stallCyclesRenameFull = 0;
  std::uint64_t stallCyclesWindowFull = 0;
  std::uint64_t stallCyclesLsBufferFull = 0;

  // --- derived -------------------------------------------------------------
  double Ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(committedInstructions) / cycles;
  }
  double BranchAccuracy() const {
    return branchesResolved == 0
               ? 1.0
               : 1.0 - static_cast<double>(branchesMispredicted) /
                           static_cast<double>(branchesResolved);
  }
  /// Simulated wall time in seconds at the configured core clock.
  double WallTimeSeconds(std::uint64_t coreClockHz) const {
    return coreClockHz == 0
               ? 0.0
               : static_cast<double>(cycles) / static_cast<double>(coreClockHz);
  }
  /// Simulated floating-point throughput in FLOP/s.
  double FlopsPerSecond(std::uint64_t coreClockHz) const {
    const double seconds = WallTimeSeconds(coreClockHz);
    return seconds == 0.0 ? 0.0 : static_cast<double>(flops) / seconds;
  }

  /// Serializes everything (plus the memory-system counters) to the JSON
  /// shape the CLI and the API expose.
  json::Json ToJson(const memory::MemoryStats& memoryStats,
                    std::uint64_t coreClockHz) const;

  /// Human-readable statistics report (the CLI's text output mode).
  std::string ToText(const memory::MemoryStats& memoryStats,
                     std::uint64_t coreClockHz) const;

  /// The statistics struct is already a plain value; the State alias gives
  /// it the same SaveState/RestoreState surface as every other stateful
  /// subsystem (core/simulation.h snapshots).
  using State = SimulationStatistics;
  State SaveState() const { return *this; }
  void RestoreState(const State& state) { *this = state; }
};

}  // namespace rvss::stats
