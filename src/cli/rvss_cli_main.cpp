#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  return rvss::cli::RunCli(args, std::cout, std::cerr);
}
