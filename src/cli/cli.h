// Command-line interface (paper §II-E): batch execution of large programs
// with runtime-statistics collection.
//
// The paper's CLI ships the program to a simulation server over HTTP; ours
// hosts the same SimServer in-process (DESIGN.md substitution), so the
// mandatory arguments match: an assembly (or C) source file and an
// architecture description in JSON. Optional parameters select the entry
// point, memory configuration, output format and verbosity.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rvss::cli {

/// Runs the CLI. `argv[0]` is the program name. Returns the process exit
/// code (0 success, 1 usage error, 2 simulation error).
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

/// Usage text.
std::string UsageText();

}  // namespace rvss::cli
