#include "cli/cli.h"

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <thread>

#include "cc/compiler.h"
#include "common/strings.h"
#include "config/cpu_config.h"
#include "core/simulation.h"
#include "gateway/gateway.h"
#include "memory/dump.h"
#include "memory/memory_initializer.h"
#include "obs/registry.h"
#include "server/state_renderer.h"
#include "shard/router.h"
#include "shard/transport.h"
#include "shard/worker.h"
#include "snapshot/session.h"

namespace rvss::cli {
namespace {

std::string UsageTextInternal() {
  return R"(rvss-cli — batch superscalar RISC-V simulation

Usage: rvss-cli --asm FILE | --c FILE [options]

Inputs:
  --asm FILE          RISC-V assembly source (RV32IMFD subset)
  --c FILE            C source, compiled with the built-in rvcc compiler
  --opt N             rvcc optimization level 0..3 (default 0)
  --config FILE       architecture description JSON (default: built-in)
  --memory FILE       memory settings JSON (array definitions)
  --entry LABEL       entry point label (default: first instruction, or
                      'main' for C inputs)

Execution:
  --max-cycles N      cycle budget (default 100000000)
  --fast-forward-to N execute the first N instructions on the reference
                      ISS (no pipeline modelling), then hand the
                      architectural state to the detailed model; the
                      detailed window starts at cycle 0. Incompatible
                      with --workers/--load-snapshot.
  --workers N         route the run through an in-process shard router of
                      N SimServer workers; with N > 1 the session is
                      live-migrated to another worker mid-run (the
                      statistics are identical either way — migration is
                      invisible). Incompatible with --trace/--verbose/
                      --dump/--dump-csv/--load-snapshot.
  --spawn-workers N   like --workers, but each worker is a real forked
                      process reached over a unix-domain socket
                      (length-prefixed JSON+blob frames); with N > 1 the
                      run additionally survives an addWorker/removeWorker
                      cycle mid-run (a new process joins the fleet, the
                      session's original worker is drained and removed).
  --sessions M        with --workers/--spawn-workers: run M identical
                      copies of the program as M sessions, driven in
                      parallel from M client threads — sessions on
                      different workers simulate concurrently. Every
                      session must produce byte-identical statistics
                      (determinism + concurrent dispatch must be
                      invisible); the run fails loudly if they diverge.

Worker mode:
  --worker ADDR       run as a fleet worker: serve the JSON command API
                      as frames on ADDR (unix:/path or tcp:HOST:PORT)
                      until a shutdownWorker command arrives. Used by
                      orchestrators; --spawn-workers forks these
                      automatically.

Gateway mode:
  --gateway ADDR      serve the fleet to many concurrent clients: listen
                      on ADDR (unix:/path or tcp:HOST:PORT; tcp port 0
                      picks a free port, printed on stdout) with an
                      epoll front door multiplexing every connection
                      onto the shard router. Requires --workers N or
                      --spawn-workers N for the fleet behind it; takes
                      no program flags. Serves until a shutdownGateway
                      command arrives.

Snapshots:
  --save-snapshot F   after the run, write a portable session snapshot
                      (config + program + complete state) to F
  --load-snapshot F   resume a saved session instead of --asm/--c; the
                      snapshot embeds config/memory/entry, so those flags
                      are rejected alongside it

Output:
  --format text|json  statistics format (default text)
  --dump FILE         write a binary memory dump after the run
  --dump-csv FILE     write a CSV memory dump after the run
  --verbose           also print the final pipeline state
  --trace             print the pipeline state every cycle (small runs)
  --metrics-dump      after the run, write the process metrics registry
                      (Prometheus-style text) to stderr; with --workers/
                      --spawn-workers, the router's aggregated fleet view
                      (JSON, with per-worker breakdown) instead
)";
}

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct Options {
  std::string asmPath;
  std::string cPath;
  int optLevel = 0;
  std::string configPath;
  std::string memoryPath;
  std::string entry;
  std::uint64_t maxCycles = 100'000'000;
  std::uint64_t fastForwardTo = 0;  ///< ISS-executed prefix, 0 = none
  std::int64_t workers = 0;  ///< 0 = run in-process without a router
  std::int64_t sessions = 1; ///< parallel copies of the batch run
  bool spawnWorkers = false; ///< workers are forked socket processes
  std::string workerListen;  ///< non-empty: run as a worker process
  std::string gatewayListen; ///< non-empty: serve the fleet via a gateway
  std::string format = "text";
  std::string dumpPath;
  std::string dumpCsvPath;
  std::string saveSnapshotPath;
  std::string loadSnapshotPath;
  bool verbose = false;
  bool trace = false;
  bool metricsDump = false;
};

int RunSimulation(const Options& options,
                  std::unique_ptr<core::Simulation> owned,
                  const snapshot::SessionIdentity& identity,
                  std::ostream& out, std::ostream& err);

int RunSharded(const Options& options, const std::string& source,
               const config::CpuConfig& config,
               const std::vector<memory::ArrayDefinition>& arrays,
               std::ostream& out, std::ostream& err);

int RunGateway(const Options& options, std::ostream& out, std::ostream& err);

}  // namespace

std::string UsageText() { return UsageTextInternal(); }

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  Options options;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= args.size()) return std::nullopt;
      return args[++i];
    };
    if (arg == "--help" || arg == "-h") {
      out << UsageTextInternal();
      return 0;
    } else if (arg == "--asm") {
      auto v = value();
      if (!v) { err << "--asm needs a file\n"; return 1; }
      options.asmPath = *v;
    } else if (arg == "--c") {
      auto v = value();
      if (!v) { err << "--c needs a file\n"; return 1; }
      options.cPath = *v;
    } else if (arg == "--opt") {
      auto v = value();
      if (!v) { err << "--opt needs a level\n"; return 1; }
      options.optLevel = static_cast<int>(ParseInt(*v).value_or(0));
    } else if (arg == "--config") {
      auto v = value();
      if (!v) { err << "--config needs a file\n"; return 1; }
      options.configPath = *v;
    } else if (arg == "--memory") {
      auto v = value();
      if (!v) { err << "--memory needs a file\n"; return 1; }
      options.memoryPath = *v;
    } else if (arg == "--entry") {
      auto v = value();
      if (!v) { err << "--entry needs a label\n"; return 1; }
      options.entry = *v;
    } else if (arg == "--max-cycles") {
      auto v = value();
      if (!v) { err << "--max-cycles needs a number\n"; return 1; }
      options.maxCycles = static_cast<std::uint64_t>(ParseInt(*v).value_or(0));
    } else if (arg == "--fast-forward-to") {
      auto v = value();
      const std::int64_t count = v ? ParseInt(*v).value_or(-1) : -1;
      if (count < 0) {
        err << "--fast-forward-to needs a non-negative instruction count\n";
        return 1;
      }
      options.fastForwardTo = static_cast<std::uint64_t>(count);
    } else if (arg == "--workers" || arg == "--spawn-workers") {
      auto v = value();
      const std::int64_t workers = v ? ParseInt(*v).value_or(0) : 0;
      // Workers are eagerly constructed; an absurd count would exhaust
      // memory (or fork-bomb the host) before the first session exists.
      if (workers <= 0 || workers > 256) {
        err << arg << " needs a count between 1 and 256\n";
        return 1;
      }
      options.workers = workers;
      options.spawnWorkers = arg == "--spawn-workers";
    } else if (arg == "--sessions") {
      auto v = value();
      const std::int64_t sessions = v ? ParseInt(*v).value_or(0) : 0;
      // One client thread per session; bounded like the worker count.
      if (sessions <= 0 || sessions > 256) {
        err << "--sessions needs a count between 1 and 256\n";
        return 1;
      }
      options.sessions = sessions;
    } else if (arg == "--worker") {
      auto v = value();
      if (!v) { err << "--worker needs an address (unix:... or tcp:...)\n"; return 1; }
      options.workerListen = *v;
    } else if (arg == "--gateway") {
      auto v = value();
      if (!v) { err << "--gateway needs an address (unix:... or tcp:...)\n"; return 1; }
      options.gatewayListen = *v;
    } else if (arg == "--format") {
      auto v = value();
      if (!v || (*v != "text" && *v != "json")) {
        err << "--format must be text or json\n";
        return 1;
      }
      options.format = *v;
    } else if (arg == "--save-snapshot") {
      auto v = value();
      if (!v) { err << "--save-snapshot needs a file\n"; return 1; }
      options.saveSnapshotPath = *v;
    } else if (arg == "--load-snapshot") {
      auto v = value();
      if (!v) { err << "--load-snapshot needs a file\n"; return 1; }
      options.loadSnapshotPath = *v;
    } else if (arg == "--dump") {
      auto v = value();
      if (!v) { err << "--dump needs a file\n"; return 1; }
      options.dumpPath = *v;
    } else if (arg == "--dump-csv") {
      auto v = value();
      if (!v) { err << "--dump-csv needs a file\n"; return 1; }
      options.dumpCsvPath = *v;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--trace") {
      options.trace = true;
    } else if (arg == "--metrics-dump") {
      options.metricsDump = true;
    } else {
      err << "unknown argument '" << arg << "'\n" << UsageTextInternal();
      return 1;
    }
  }

  if (!options.workerListen.empty()) {
    if (!options.asmPath.empty() || !options.cPath.empty() ||
        options.workers > 0 || !options.gatewayListen.empty() ||
        !options.loadSnapshotPath.empty()) {
      err << "--worker serves a fleet router; it takes no program or "
             "router flags\n";
      return 1;
    }
    server::SimServer::Limits limits;
    Status served = shard::RunWorkerLoop(options.workerListen, limits);
    if (!served.ok()) {
      err << "worker error: " << served.error().ToText() << "\n";
      return 2;
    }
    return 0;
  }

  if (!options.gatewayListen.empty()) {
    if (options.workers <= 0) {
      err << "--gateway fronts a shard fleet; it needs --workers N or "
             "--spawn-workers N\n";
      return 1;
    }
    if (!options.asmPath.empty() || !options.cPath.empty() ||
        !options.loadSnapshotPath.empty() || options.sessions > 1 ||
        options.trace || options.verbose || !options.dumpPath.empty() ||
        !options.dumpCsvPath.empty() || !options.saveSnapshotPath.empty() ||
        options.fastForwardTo > 0) {
      err << "--gateway serves clients over sockets; it takes no program, "
             "session or output flags\n";
      return 1;
    }
    return RunGateway(options, out, err);
  }

  if (!options.loadSnapshotPath.empty()) {
    if (options.workers > 0) {
      err << "--load-snapshot resumes a single in-process simulation; it "
             "cannot be combined with --workers\n";
      return 1;
    }
    if (options.fastForwardTo > 0) {
      err << "--fast-forward-to seeds a fresh simulation; it cannot be "
             "combined with --load-snapshot\n";
      return 1;
    }
    if (!options.asmPath.empty() || !options.cPath.empty() ||
        !options.configPath.empty() || !options.memoryPath.empty() ||
        !options.entry.empty()) {
      err << "--load-snapshot embeds program, config and memory settings; "
             "it cannot be combined with --asm/--c/--config/--memory/"
             "--entry\n";
      return 1;
    }
    auto blob = ReadFile(options.loadSnapshotPath);
    if (!blob) {
      err << "cannot read '" << options.loadSnapshotPath << "'\n";
      return 1;
    }
    auto imported = snapshot::ImportSessionBlob(*blob);
    if (!imported.ok()) {
      err << "error: " << imported.error().ToText() << "\n";
      return 2;
    }
    return RunSimulation(options, std::move(imported.value().sim),
                         imported.value().identity, out, err);
  }

  if (options.asmPath.empty() == options.cPath.empty()) {
    err << "exactly one of --asm or --c is required\n";
    return 1;
  }

  // Load the program source.
  std::string source;
  if (!options.cPath.empty()) {
    auto text = ReadFile(options.cPath);
    if (!text) {
      err << "cannot read '" << options.cPath << "'\n";
      return 1;
    }
    auto compiled = cc::Compile(*text, cc::CompileOptions{options.optLevel});
    if (!compiled.ok()) {
      err << "compile error: " << compiled.error().ToText() << "\n";
      return 2;
    }
    source = compiled.value().assembly;
    if (options.entry.empty()) options.entry = "main";
  } else {
    auto text = ReadFile(options.asmPath);
    if (!text) {
      err << "cannot read '" << options.asmPath << "'\n";
      return 1;
    }
    source = *text;
  }

  // Architecture configuration.
  config::CpuConfig config = config::DefaultConfig();
  if (!options.configPath.empty()) {
    auto text = ReadFile(options.configPath);
    if (!text) {
      err << "cannot read '" << options.configPath << "'\n";
      return 1;
    }
    auto parsed = json::Parse(*text);
    if (!parsed.ok()) {
      err << "config JSON error: " << parsed.error().ToText() << "\n";
      return 2;
    }
    auto parsedConfig = config::CpuConfigFromJson(parsed.value());
    if (!parsedConfig.ok()) {
      err << "config error: " << parsedConfig.error().ToText() << "\n";
      return 2;
    }
    config = std::move(parsedConfig).value();
  }

  // Memory settings.
  core::Simulation::CreateOptions createOptions;
  createOptions.entryLabel = options.entry;
  if (!options.memoryPath.empty()) {
    auto text = ReadFile(options.memoryPath);
    if (!text) {
      err << "cannot read '" << options.memoryPath << "'\n";
      return 1;
    }
    auto parsed = json::Parse(*text);
    if (!parsed.ok() || !parsed.value().IsArray()) {
      err << "memory settings must be a JSON array\n";
      return 2;
    }
    for (const json::Json& node : parsed.value().AsArray()) {
      auto def = memory::ArrayDefinitionFromJson(node);
      if (!def.ok()) {
        err << "memory settings error: " << def.error().ToText() << "\n";
        return 2;
      }
      createOptions.arrays.push_back(std::move(def).value());
    }
  }

  if (options.sessions > 1 && options.workers == 0) {
    err << "--sessions drives parallel copies through a shard router; it "
           "needs --workers or --spawn-workers\n";
    return 1;
  }
  if (options.workers > 0) {
    if (options.trace || options.verbose || !options.dumpPath.empty() ||
        !options.dumpCsvPath.empty()) {
      err << "--workers runs through the shard router's JSON API; it cannot "
             "be combined with --trace/--verbose/--dump/--dump-csv\n";
      return 1;
    }
    if (options.fastForwardTo > 0) {
      err << "--fast-forward-to runs a single in-process simulation; it "
             "cannot be combined with --workers\n";
      return 1;
    }
    return RunSharded(options, source, config, createOptions.arrays, out,
                      err);
  }

  auto sim = core::Simulation::Create(config, source, createOptions);
  if (!sim.ok()) {
    err << "error: " << sim.error().ToText() << "\n";
    return 2;
  }

  std::string arraysJson;
  if (!createOptions.arrays.empty()) {
    json::Json arraysNode = json::Json::MakeArray();
    for (const memory::ArrayDefinition& def : createOptions.arrays) {
      arraysNode.Append(memory::ToJson(def));
    }
    arraysJson = arraysNode.Dump();
  }
  snapshot::SessionIdentity identity = snapshot::MakeIdentity(
      *sim.value(), std::move(source), createOptions.entryLabel,
      std::move(arraysJson));
  return RunSimulation(options, std::move(sim).value(), identity, out, err);
}

namespace {

/// Shared back half of the CLI: runs the (fresh or resumed) simulation,
/// prints the requested reports, writes dumps and the optional snapshot.
int RunSimulation(const Options& options,
                  std::unique_ptr<core::Simulation> owned,
                  const snapshot::SessionIdentity& identity,
                  std::ostream& out, std::ostream& err) {
  core::Simulation& simulation = *owned;

  if (options.fastForwardTo > 0) {
    Status ff = simulation.FastForwardTo(options.fastForwardTo);
    if (!ff.ok()) {
      err << "fast-forward error: " << ff.error().ToText() << "\n";
      return 2;
    }
  }

  if (options.trace) {
    while (simulation.status() == core::SimStatus::kRunning &&
           simulation.cycle() < options.maxCycles) {
      simulation.Step();
      out << server::RenderText(simulation);
    }
  } else {
    simulation.Run(options.maxCycles);
  }

  if (options.verbose) {
    out << server::RenderText(simulation);
  }

  if (options.format == "json") {
    json::Json report = json::Json::MakeObject();
    report.Set("finishReason", core::ToString(simulation.finishReason()));
    if (simulation.fault().has_value()) {
      report.Set("fault", simulation.fault()->ToText());
    }
    report.Set("statistics",
               simulation.statistics().ToJson(
                   simulation.memorySystem().stats(),
                   simulation.config().coreClockHz));
    out << report.DumpPretty() << "\n";
  } else {
    out << "finish reason: " << core::ToString(simulation.finishReason())
        << "\n";
    if (simulation.fault().has_value()) {
      out << "fault: " << simulation.fault()->ToText() << "\n";
    }
    out << simulation.statistics().ToText(simulation.memorySystem().stats(),
                                          simulation.config().coreClockHz);
  }

  if (!options.dumpPath.empty()) {
    std::ofstream dump(options.dumpPath, std::ios::binary);
    const std::string bytes =
        memory::ExportBinary(simulation.memorySystem().memory());
    dump.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  if (!options.dumpCsvPath.empty()) {
    std::ofstream dump(options.dumpCsvPath);
    dump << memory::ExportCsv(simulation.memorySystem().memory());
  }

  if (!options.saveSnapshotPath.empty()) {
    const std::string blob = snapshot::EncodeSessionBlob(simulation, identity);
    std::ofstream file(options.saveSnapshotPath, std::ios::binary);
    if (!file) {
      err << "cannot write '" << options.saveSnapshotPath << "'\n";
      return 1;
    }
    file.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }

  if (options.metricsDump) {
    // Stderr keeps `--format json` stdout parseable by pipelines.
    err << obs::MetricsToPrometheusText(obs::MetricsToJson());
  }

  return simulation.status() == core::SimStatus::kFault ? 2 : 0;
}

/// The --gateway path: stand up the fleet and serve it to many concurrent
/// socket clients through the epoll front door until a shutdownGateway
/// command (or a fatal listener error) stops it. The bound address is
/// printed first — with tcp port 0 that line is how callers learn the
/// real port.
int RunGateway(const Options& options, std::ostream& out, std::ostream& err) {
  shard::SpawnedFleet fleet;
  shard::ShardRouter::Options routerOptions;
  routerOptions.workerCount = static_cast<std::size_t>(options.workers);
  // A multi-client front door needs backpressure behind it too: bound
  // every worker lane so a stalled worker sheds (retryable kUnavailable)
  // instead of queueing without limit.
  routerOptions.maxLaneQueueDepth = 128;
  if (options.spawnWorkers) {
    routerOptions.transportFactory =
        shard::MakeSpawningTransportFactory(&fleet, "gw");
    routerOptions.onWorkerShutdown = shard::MakeFleetReaper(&fleet);
  }
  shard::ShardRouter router(routerOptions);

  gateway::GatewayOptions gatewayOptions;
  gatewayOptions.address = options.gatewayListen;
  auto gateway = gateway::Gateway::Start(
      [&router](const json::Json& request) { return router.Handle(request); },
      gatewayOptions);
  if (!gateway.ok()) {
    err << "gateway error: " << gateway.error().ToText() << "\n";
    return 2;
  }
  out << "gateway listening on " << gateway.value()->address() << "\n";
  out.flush();
  Status served = gateway.value()->Wait();
  if (!served.ok()) {
    err << "gateway error: " << served.error().ToText() << "\n";
    return 2;
  }
  if (options.metricsDump) {
    json::Json metricsRequest = json::Json::MakeObject();
    metricsRequest.Set("command", "metrics");
    err << router.Handle(metricsRequest).DumpPretty() << "\n";
  }
  return 0;
}

/// The --workers path: the same batch run, but served by a shard router —
/// and, with more than one worker, deliberately live-migrated mid-run. The
/// statistics must be identical to the single-process run (determinism +
/// byte-identical migration), so this doubles as an end-to-end smoke test
/// of the drain loop from the command line.
///
/// With --sessions M > 1 the program runs as M identical sessions driven
/// by M client threads in parallel: sessions placed on different workers
/// simulate concurrently through the router's dispatch lanes, and every
/// session must still finish with byte-identical statistics — the
/// command-line proof that concurrent dispatch (and the mid-run
/// migration happening under it) is invisible to results.
int RunSharded(const Options& options, const std::string& source,
               const config::CpuConfig& config,
               const std::vector<memory::ArrayDefinition>& arrays,
               std::ostream& out, std::ostream& err) {
  // Spawned worker processes outlive the router object (it only holds
  // connections); the fleet kills and reaps them on every exit path.
  // Workers the router removes mid-run are reaped promptly through the
  // shutdown hook — an elastic cycle must not leave zombies behind.
  shard::SpawnedFleet fleet;
  shard::ShardRouter::Options routerOptions;
  routerOptions.workerCount = static_cast<std::size_t>(options.workers);
  if (options.spawnWorkers) {
    routerOptions.transportFactory =
        shard::MakeSpawningTransportFactory(&fleet, "cli");
    routerOptions.onWorkerShutdown = shard::MakeFleetReaper(&fleet);
  }
  shard::ShardRouter router(routerOptions);

  json::Json create = json::Json::MakeObject();
  create.Set("command", "createSession");
  create.Set("code", source);
  create.Set("entry", options.entry);
  create.Set("config", config::ToJson(config));
  if (!arrays.empty()) {
    json::Json arraysNode = json::Json::MakeArray();
    for (const memory::ArrayDefinition& def : arrays) {
      arraysNode.Append(memory::ToJson(def));
    }
    create.Set("arrays", std::move(arraysNode));
  }

  const std::size_t sessionCount =
      static_cast<std::size_t>(options.sessions);
  std::vector<std::int64_t> sessionIds;
  sessionIds.reserve(sessionCount);
  std::int64_t firstWorker = -1;  // session 0 anchors the mid-run migration
  for (std::size_t i = 0; i < sessionCount; ++i) {
    json::Json created = router.Handle(create);
    if (created.GetString("status", "") != "ok") {
      err << "error: " << created.GetString("message", "createSession failed")
          << "\n";
      return 2;
    }
    sessionIds.push_back(created.GetInt("sessionId", -1));
    if (i == 0) firstWorker = created.GetInt("worker", -1);
  }

  // Per-session run state, written only by that session's driver thread.
  struct SessionRun {
    std::uint64_t ranCycles = 0;
    json::Json report;
    std::string error;
  };
  std::vector<SessionRun> runs(sessionCount);

  auto runSlice = [&](std::size_t session, std::uint64_t maxCycles) {
    json::Json run = json::Json::MakeObject();
    run.Set("command", "run");
    run.Set("sessionId", sessionIds[session]);
    run.Set("maxCycles", static_cast<std::int64_t>(maxCycles));
    return router.Handle(run);
  };

  // One logical run phase may need several `run` requests: the server
  // clamps each request to Limits::maxRunCyclesPerRequest, while the
  // single-process path has no per-request bound — loop until the phase
  // budget is consumed so both paths cover the same cycles.
  auto runUntil = [&](std::size_t session, std::uint64_t targetTotal) {
    SessionRun& state = runs[session];
    while (true) {
      json::Json report = runSlice(session, targetTotal - state.ranCycles);
      if (report.GetString("status", "") != "ok") {
        state.error = report.GetString("message", "run failed");
        state.report = std::move(report);
        return;
      }
      const std::uint64_t sliceCycles =
          static_cast<std::uint64_t>(report.GetInt("ranCycles", 0));
      state.ranCycles += sliceCycles;
      const bool done = report.GetString("finishReason", "") != "none" ||
                        state.ranCycles >= targetTotal || sliceCycles == 0;
      state.report = std::move(report);
      if (done) return;
    }
  };

  // One phase across every session. M == 1 stays on the calling thread;
  // otherwise one driver thread per session issues its run requests
  // concurrently — the router's Handle is thread-safe and sessions on
  // different workers execute in parallel.
  auto runPhase = [&](std::uint64_t targetTotal) -> bool {
    if (sessionCount == 1) {
      runUntil(0, targetTotal);
    } else {
      std::vector<std::thread> drivers;
      drivers.reserve(sessionCount);
      for (std::size_t i = 0; i < sessionCount; ++i) {
        drivers.emplace_back([&runUntil, i, targetTotal] {
          runUntil(i, targetTotal);
        });
      }
      for (std::thread& driver : drivers) driver.join();
    }
    for (const SessionRun& state : runs) {
      if (!state.error.empty()) {
        err << "error: " << state.error << "\n";
        return false;
      }
    }
    return true;
  };

  // First phase: half the budget, then migrate, then the remainder.
  std::int64_t migratedTo = -1;
  if (!runPhase(options.workers > 1 ? options.maxCycles / 2
                                    : options.maxCycles)) {
    return 2;
  }
  json::Json report = runs[0].report;
  if (options.workers > 1 &&
      report.GetString("finishReason", "") == "none") {
    if (options.spawnWorkers) {
      // Elastic cycle: grow the fleet by one fresh process, then shrink
      // it by removing (drain + ring removal + process shutdown) the
      // worker that held the session — the scale-out/scale-in round trip
      // a deploy performs, exercised mid-run.
      json::Json grown = router.Handle(
          [] {
            json::Json request = json::Json::MakeObject();
            request.Set("command", "addWorker");
            return request;
          }());
      if (grown.GetString("status", "") != "ok") {
        err << "error: mid-run addWorker failed: "
            << grown.GetString("message", "") << "\n";
        return 2;
      }
    }
    json::Json drain = json::Json::MakeObject();
    drain.Set("command", options.spawnWorkers ? "removeWorker"
                                              : "drainWorker");
    drain.Set("worker", firstWorker);
    json::Json drained = router.Handle(drain);
    if (drained.GetString("status", "") != "ok") {
      err << "error: mid-run migration failed: "
          << drained.GetString("message", "") << "\n";
      return 2;
    }
    json::Json sessions = json::Json::MakeObject();
    sessions.Set("command", "listSessions");
    json::Json listed = router.Handle(sessions);
    for (const json::Json& session : listed.Find("sessions")->AsArray()) {
      if (session.GetInt("sessionId", -1) == sessionIds[0]) {
        migratedTo = session.GetInt("worker", -1);
      }
    }
    if (!runPhase(options.maxCycles)) return 2;
    report = runs[0].report;
  }

  // Parallel sessions ran the same program under the same budget from
  // concurrent threads; determinism demands byte-identical results. A
  // divergence would mean concurrent dispatch leaked into simulation
  // state — fail loudly, never average it away.
  for (std::size_t i = 1; i < sessionCount; ++i) {
    const json::Json* reference = report.Find("statistics");
    const json::Json* other = runs[i].report.Find("statistics");
    const bool statsMatch =
        reference != nullptr && other != nullptr &&
        reference->Dump() == other->Dump();
    if (!statsMatch ||
        runs[i].report.GetString("finishReason", "") !=
            report.GetString("finishReason", "")) {
      err << "error: parallel session " << i
          << " diverged from session 0 — concurrent dispatch must be "
             "invisible\n";
      return 2;
    }
  }

  const std::string finishReason = report.GetString("finishReason", "");
  const json::Json* statistics = report.Find("statistics");
  if (options.format == "json") {
    json::Json output = json::Json::MakeObject();
    output.Set("finishReason", finishReason);
    if (const json::Json* fault = report.Find("fault"); fault != nullptr) {
      output.Set("fault", *fault);
    }
    if (statistics != nullptr) output.Set("statistics", *statistics);
    json::Json shardInfo = json::Json::MakeObject();
    shardInfo.Set("workers", options.workers);
    shardInfo.Set("sessions", options.sessions);
    shardInfo.Set("firstWorker", firstWorker);
    shardInfo.Set("migratedTo", migratedTo);
    output.Set("shard", std::move(shardInfo));
    out << output.DumpPretty() << "\n";
  } else {
    out << "workers: " << options.workers << "\n";
    if (options.sessions > 1) {
      out << "sessions: " << options.sessions
          << " (parallel, statistics verified identical)\n";
    }
    if (migratedTo >= 0) {
      out << "migrated: worker " << firstWorker << " -> worker "
          << migratedTo << " mid-run\n";
    }
    out << "finish reason: " << finishReason << "\n";
    if (const json::Json* fault = report.Find("fault"); fault != nullptr) {
      out << "fault: " << (fault->IsString() ? fault->AsString() : fault->Dump())
          << "\n";
    }
    if (statistics != nullptr) out << statistics->DumpPretty() << "\n";
  }

  if (!options.saveSnapshotPath.empty()) {
    json::Json exportRequest = json::Json::MakeObject();
    exportRequest.Set("command", "exportSession");
    exportRequest.Set("sessionId", sessionIds[0]);
    json::Json exported = router.Handle(exportRequest);
    auto blob = Base64Decode(exported.GetString("blob", ""));
    if (exported.GetString("status", "") != "ok" || !blob.has_value()) {
      err << "error: exportSession failed\n";
      return 2;
    }
    std::ofstream file(options.saveSnapshotPath, std::ios::binary);
    if (!file) {
      err << "cannot write '" << options.saveSnapshotPath << "'\n";
      return 1;
    }
    file.write(blob->data(), static_cast<std::streamsize>(blob->size()));
  }

  if (options.metricsDump) {
    json::Json metricsRequest = json::Json::MakeObject();
    metricsRequest.Set("command", "metrics");
    json::Json metrics = router.Handle(metricsRequest);
    // Stderr keeps `--format json` stdout parseable by pipelines.
    err << metrics.DumpPretty() << "\n";
  }

  return finishReason == "exception" ? 2 : 0;
}

}  // namespace

}  // namespace rvss::cli
