// rvcc optimizations.
//
// The paper offers four GCC optimization levels; rvcc mirrors the
// interface with four honest-but-modest levels of its own:
//   O0  straight accumulator code,
//   O1  AST constant folding and algebraic simplification,
//   O2  O1 + peephole on the emitted assembly (push/pop pairs to moves,
//       redundant move elimination),
//   O3  O2 + basic-block redundant load elimination.
// The differences are observable in the simulator's instruction counts,
// which is exactly what the paper's students are meant to study.
#pragma once

#include <string>

#include "cc/ast.h"

namespace rvss::cc {

/// Folds constant subexpressions in place (O1+).
void FoldConstants(TranslationUnit& unit);

/// Assembly-level peephole (O2+): push/pop pairs, mv x,x removal.
std::string Peephole(const std::string& assembly);

/// Basic-block redundant load elimination (O3): a `lw` from a frame slot
/// written earlier in the same block with no intervening side effects
/// becomes a register move.
std::string EliminateRedundantLoads(const std::string& assembly);

}  // namespace rvss::cc
