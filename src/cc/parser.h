// rvcc parser: recursive descent with integrated type checking.
//
// Grammar subset: global variables (with initializers or `extern`), struct
// declarations, function definitions, the full C statement repertoire
// (if/else, while, do-while, for, break/continue/return, compound), and
// expressions with standard precedence including assignment operators,
// ternary, short-circuit logic, pointer arithmetic, array indexing,
// member access (./->), function pointers and casts.
#pragma once

#include "cc/ast.h"
#include "cc/lexer.h"
#include "common/status.h"

namespace rvss::cc {

/// Parses a translation unit. Types are checked and annotated during
/// parsing; the returned AST is ready for codegen.
Result<TranslationUnit> ParseTranslationUnit(std::string_view source);

}  // namespace rvss::cc
