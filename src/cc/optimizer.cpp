#include "cc/optimizer.h"

#include <optional>
#include <vector>

#include "common/strings.h"

namespace rvss::cc {
namespace {

bool IsIntLiteral(const Node& node) { return node.kind == NodeKind::kIntLiteral; }

/// Folds one binary node when both children are integer literals.
void FoldNode(NodePtr& node) {
  if (node == nullptr) return;
  FoldNode(node->lhs);
  FoldNode(node->rhs);
  FoldNode(node->cond);
  FoldNode(node->thenBranch);
  FoldNode(node->elseBranch);
  FoldNode(node->init);
  FoldNode(node->step);
  for (NodePtr& child : node->body) FoldNode(child);

  if (node->kind == NodeKind::kUnary && node->op == "-" &&
      node->lhs != nullptr && IsIntLiteral(*node->lhs)) {
    node->intValue = -node->lhs->intValue;
    node->kind = NodeKind::kIntLiteral;
    node->lhs.reset();
    return;
  }

  if (node->kind != NodeKind::kBinary || node->lhs == nullptr ||
      node->rhs == nullptr) {
    return;
  }
  if (!IsIntLiteral(*node->lhs) || !IsIntLiteral(*node->rhs)) {
    // Algebraic identities with one literal side.
    if (IsIntLiteral(*node->rhs)) {
      const std::int64_t r = node->rhs->intValue;
      if ((node->op == "+" || node->op == "-" || node->op == "<<" ||
           node->op == ">>" || node->op == "|" || node->op == "^") &&
          r == 0 && !node->lhs->type->IsPointerLike() &&
          !node->type->IsPointerLike()) {
        NodePtr keep = std::move(node->lhs);
        node = std::move(keep);
        return;
      }
      if (node->op == "*" && r == 1) {
        NodePtr keep = std::move(node->lhs);
        node = std::move(keep);
        return;
      }
    }
    return;
  }
  if (!node->lhs->type->IsInteger() || !node->rhs->type->IsInteger()) return;

  const std::int64_t a = node->lhs->intValue;
  const std::int64_t b = node->rhs->intValue;
  const bool isUnsigned = node->type != nullptr &&
                          node->type->kind == TypeKind::kUInt;
  const auto ua = static_cast<std::uint32_t>(a);
  const auto ub = static_cast<std::uint32_t>(b);
  std::optional<std::int64_t> value;
  if (node->op == "+") value = static_cast<std::int32_t>(ua + ub);
  else if (node->op == "-") value = static_cast<std::int32_t>(ua - ub);
  else if (node->op == "*") value = static_cast<std::int32_t>(ua * ub);
  else if (node->op == "/" && b != 0) {
    value = isUnsigned ? static_cast<std::int64_t>(ua / ub)
                       : static_cast<std::int64_t>(
                             static_cast<std::int32_t>(a) /
                             static_cast<std::int32_t>(b));
  } else if (node->op == "%" && b != 0) {
    value = isUnsigned ? static_cast<std::int64_t>(ua % ub)
                       : static_cast<std::int64_t>(
                             static_cast<std::int32_t>(a) %
                             static_cast<std::int32_t>(b));
  } else if (node->op == "&") value = a & b;
  else if (node->op == "|") value = a | b;
  else if (node->op == "^") value = a ^ b;
  else if (node->op == "<<") value = static_cast<std::int32_t>(ua << (ub & 31));
  else if (node->op == ">>") {
    value = isUnsigned
                ? static_cast<std::int64_t>(ua >> (ub & 31))
                : static_cast<std::int64_t>(static_cast<std::int32_t>(a) >>
                                            (ub & 31));
  } else if (node->op == "==") value = a == b;
  else if (node->op == "!=") value = a != b;
  else if (node->op == "<") {
    value = isUnsigned ? (ua < ub) : (a < b);
  } else if (node->op == "<=") {
    value = isUnsigned ? (ua <= ub) : (a <= b);
  } else if (node->op == ">") {
    value = isUnsigned ? (ua > ub) : (a > b);
  } else if (node->op == ">=") {
    value = isUnsigned ? (ua >= ub) : (a >= b);
  }
  if (!value.has_value()) return;
  node->kind = NodeKind::kIntLiteral;
  node->intValue = *value;
  node->lhs.reset();
  node->rhs.reset();
}

/// Splits an assembly listing into (instruction, comment) lines, keeping
/// labels and directives as opaque lines.
struct AsmLine {
  std::string text;      ///< trimmed instruction text (no comment)
  std::string comment;   ///< trailing comment, with '#'
  bool isInstruction = false;
  bool isLabelOrDirective = false;
};

std::vector<AsmLine> SplitAsm(const std::string& assembly) {
  std::vector<AsmLine> lines;
  for (std::string_view raw : Split(assembly, '\n')) {
    AsmLine line;
    std::string_view code = raw;
    std::size_t hash = raw.find('#');
    if (hash != std::string_view::npos) {
      line.comment = std::string(raw.substr(hash));
      code = raw.substr(0, hash);
    }
    std::string_view trimmed = Trim(code);
    line.text = std::string(trimmed);
    if (trimmed.empty()) {
      // keep blank/comment-only lines verbatim
    } else if (trimmed.back() == ':' || trimmed.front() == '.') {
      line.isLabelOrDirective = true;
    } else {
      line.isInstruction = true;
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

std::string JoinAsm(const std::vector<AsmLine>& lines) {
  std::string out;
  for (const AsmLine& line : lines) {
    if (line.text.empty() && line.comment.empty()) continue;
    if (line.isInstruction) out += "    ";
    out += line.text;
    if (!line.comment.empty()) {
      if (!line.text.empty()) out += "  ";
      out += line.comment;
    }
    out += '\n';
  }
  return out;
}

}  // namespace

void FoldConstants(TranslationUnit& unit) {
  for (auto& function : unit.functions) {
    FoldNode(function->body);
  }
}

std::string Peephole(const std::string& assembly) {
  std::vector<AsmLine> lines = SplitAsm(assembly);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i + 3 < lines.size(); ++i) {
      // Pattern: addi sp,sp,-4 / sw X,0(sp) / lw Y,0(sp) / addi sp,sp,4
      //       -> mv Y, X
      if (lines[i].text == "addi sp, sp, -4" &&
          StartsWith(lines[i + 1].text, "sw ") &&
          EndsWith(lines[i + 1].text, ", 0(sp)") &&
          StartsWith(lines[i + 2].text, "lw ") &&
          EndsWith(lines[i + 2].text, ", 0(sp)") &&
          lines[i + 3].text == "addi sp, sp, 4") {
        auto regOf = [](const std::string& text) {
          auto fields = SplitWhitespace(text);
          std::string reg(fields[1]);
          if (!reg.empty() && reg.back() == ',') reg.pop_back();
          return reg;
        };
        const std::string src = regOf(lines[i + 1].text);
        const std::string dst = regOf(lines[i + 2].text);
        lines[i].text = dst == src ? "" : "mv " + dst + ", " + src;
        lines[i].isInstruction = !lines[i].text.empty();
        lines[i + 1].text.clear();
        lines[i + 1].isInstruction = false;
        lines[i + 2].text.clear();
        lines[i + 2].isInstruction = false;
        lines[i + 3].text.clear();
        lines[i + 3].isInstruction = false;
        changed = true;
      }
    }
    // Drop mv x, x.
    for (AsmLine& line : lines) {
      if (!line.isInstruction) continue;
      auto fields = SplitWhitespace(line.text);
      if (fields.size() == 3 && fields[0] == "mv") {
        std::string a(fields[1]);
        if (!a.empty() && a.back() == ',') a.pop_back();
        if (a == fields[2]) {
          line.text.clear();
          line.isInstruction = false;
          changed = true;
        }
      }
    }
  }
  return JoinAsm(lines);
}

std::string EliminateRedundantLoads(const std::string& assembly) {
  std::vector<AsmLine> lines = SplitAsm(assembly);
  // Track the register most recently stored to each s0 frame slot within a
  // basic block; a subsequent load from the same slot becomes a move.
  struct SlotValue {
    std::string offset;
    std::string reg;
  };
  std::vector<SlotValue> known;
  auto invalidate = [&]() { known.clear(); };
  auto invalidateReg = [&](std::string_view reg) {
    for (auto it = known.begin(); it != known.end();) {
      if (it->reg == reg) {
        it = known.erase(it);
      } else {
        ++it;
      }
    }
  };

  for (AsmLine& line : lines) {
    if (line.isLabelOrDirective) {
      invalidate();
      continue;
    }
    if (!line.isInstruction) continue;
    auto fields = SplitWhitespace(line.text);
    if (fields.empty()) continue;
    std::string op(fields[0]);

    // Control flow, calls and sp adjustment end the tracked region.
    if (op[0] == 'b' || op[0] == 'j' || op == "call" || op == "ret" ||
        op == "jalr" || line.text.find("sp") != std::string::npos) {
      invalidate();
      continue;
    }

    if (op == "sw" && fields.size() == 3 && EndsWith(fields[2], "(s0)")) {
      std::string reg(fields[1]);
      if (!reg.empty() && reg.back() == ',') reg.pop_back();
      std::string offset(fields[2]);
      invalidateReg(reg);  // old aliases of this register die... (it keeps value)
      // Replace any existing knowledge of this slot.
      for (auto it = known.begin(); it != known.end();) {
        if (it->offset == offset) {
          it = known.erase(it);
        } else {
          ++it;
        }
      }
      known.push_back(SlotValue{offset, reg});
      continue;
    }
    if (op == "lw" && fields.size() == 3 && EndsWith(fields[2], "(s0)")) {
      std::string reg(fields[1]);
      if (!reg.empty() && reg.back() == ',') reg.pop_back();
      std::string offset(fields[2]);
      for (const SlotValue& slot : known) {
        if (slot.offset == offset && slot.reg != reg) {
          line.text = "mv " + reg + ", " + slot.reg;
          break;
        } else if (slot.offset == offset && slot.reg == reg) {
          line.text.clear();
          line.isInstruction = false;
          break;
        }
      }
      if (line.isInstruction) {
        // This lw defines `reg`; any slot currently held in reg is stale.
        invalidateReg(reg);
      }
      continue;
    }

    // Generic instruction: the destination register (first operand) is
    // clobbered.
    if (fields.size() >= 2) {
      std::string dst(fields[1]);
      if (!dst.empty() && dst.back() == ',') dst.pop_back();
      invalidateReg(dst);
    }
  }
  return JoinAsm(lines);
}

}  // namespace rvss::cc
