#include "cc/parser.h"

#include <map>
#include <optional>

namespace rvss::cc {
namespace {

NodePtr MakeNode(NodeKind kind, SourcePos pos) {
  auto node = std::make_unique<Node>(kind);
  node->pos = pos;
  return node;
}

/// Usual arithmetic conversions.
TypePtr CommonArithmeticType(const TypePtr& a, const TypePtr& b) {
  if (a->kind == TypeKind::kDouble || b->kind == TypeKind::kDouble) {
    return DoubleType();
  }
  if (a->kind == TypeKind::kFloat || b->kind == TypeKind::kFloat) {
    return FloatType();
  }
  if (a->kind == TypeKind::kUInt || b->kind == TypeKind::kUInt) {
    return UIntType();
  }
  return IntType();
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<TranslationUnit> Run() {
    EnterScope();
    while (!At(TokenKind::kEof)) {
      RVSS_RETURN_IF_ERROR(TopLevel());
    }
    LeaveScope();
    return std::move(unit_);
  }

 private:
  // ---- token helpers ------------------------------------------------------
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(std::size_t ahead = 1) const {
    return tokens_[std::min(pos_ + ahead, tokens_.size() - 1)];
  }
  bool At(TokenKind kind) const { return Cur().kind == kind; }
  bool AtPunct(std::string_view text) const {
    return Cur().kind == TokenKind::kPunct && Cur().text == text;
  }
  bool AtKeyword(std::string_view text) const {
    return Cur().kind == TokenKind::kKeyword && Cur().text == text;
  }
  Token Take() { return tokens_[pos_++]; }
  bool ConsumePunct(std::string_view text) {
    if (AtPunct(text)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeKeyword(std::string_view text) {
    if (AtKeyword(text)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Error Fail(std::string message) const {
    return Error{ErrorKind::kParse, std::move(message), Cur().pos};
  }
  Error FailSem(std::string message, SourcePos pos) const {
    return Error{ErrorKind::kSemantic, std::move(message), pos};
  }
  Status ExpectPunct(std::string_view text) {
    if (!ConsumePunct(text)) {
      return Fail("expected '" + std::string(text) + "', got '" + Cur().text +
                  "'");
    }
    return Status::Ok();
  }

  // ---- scopes -------------------------------------------------------------
  void EnterScope() { scopes_.emplace_back(); }
  void LeaveScope() { scopes_.pop_back(); }

  Variable* LookupVar(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    return nullptr;
  }

  Variable* DeclareLocal(std::string name, TypePtr type) {
    auto var = std::make_unique<Variable>();
    var->name = std::move(name);
    var->type = std::move(type);
    Variable* raw = var.get();
    currentFunction_->locals.push_back(std::move(var));
    scopes_.back()[raw->name] = raw;
    return raw;
  }

  Variable* DeclareGlobal(std::string name, TypePtr type, bool isExtern) {
    auto var = std::make_unique<Variable>();
    var->name = std::move(name);
    var->type = std::move(type);
    var->isGlobal = true;
    var->isExtern = isExtern;
    Variable* raw = var.get();
    unit_.globals.push_back(std::move(var));
    scopes_.front()[raw->name] = raw;
    return raw;
  }

  // ---- types --------------------------------------------------------------

  // Arena-bound shadows of the ast.h composite-type builders: every type
  // built while parsing is owned by the unit's arena, so the (cyclic) type
  // graph cannot leak.
  TypePtr PointerTo(TypePtr base) {
    return cc::PointerTo(unit_.types, base);
  }
  TypePtr ArrayOf(TypePtr element, std::uint32_t length) {
    return cc::ArrayOf(unit_.types, element, length);
  }
  TypePtr FunctionType(TypePtr returnType, std::vector<TypePtr> params) {
    return cc::FunctionType(unit_.types, returnType, std::move(params));
  }

  // ---- declarations -------------------------------------------------------

  bool AtTypeStart() const {
    return AtKeyword("void") || AtKeyword("char") || AtKeyword("int") ||
           AtKeyword("unsigned") || AtKeyword("float") || AtKeyword("double") ||
           AtKeyword("struct") || AtKeyword("const") || AtKeyword("extern") ||
           AtKeyword("static");
  }

  Result<TypePtr> DeclSpec(bool* isExtern) {
    while (ConsumeKeyword("const") || ConsumeKeyword("static")) {
    }
    if (ConsumeKeyword("extern")) {
      if (isExtern != nullptr) *isExtern = true;
      while (ConsumeKeyword("const")) {
      }
    }
    if (ConsumeKeyword("void")) return VoidType();
    if (ConsumeKeyword("char")) return CharType();
    if (ConsumeKeyword("int")) return IntType();
    if (ConsumeKeyword("unsigned")) {
      ConsumeKeyword("int");
      return UIntType();
    }
    if (ConsumeKeyword("float")) return FloatType();
    if (ConsumeKeyword("double")) return DoubleType();
    if (ConsumeKeyword("struct")) return StructRef();
    return Fail("expected a type, got '" + Cur().text + "'");
  }

  Result<TypePtr> StructRef() {
    if (!At(TokenKind::kIdentifier)) return Fail("expected struct tag");
    std::string tag = Take().text;
    if (AtPunct("{")) {
      // Definition.
      ++pos_;
      TypePtr type = unit_.types.New();
      type->kind = TypeKind::kStruct;
      type->structName = tag;
      structTags_[tag] = type;  // visible inside (self-referential pointers)
      std::uint32_t offset = 0;
      std::uint32_t maxAlign = 1;
      while (!ConsumePunct("}")) {
        bool isExtern = false;
        RVSS_ASSIGN_OR_RETURN(TypePtr base, DeclSpec(&isExtern));
        while (true) {
          RVSS_ASSIGN_OR_RETURN(auto decl, Declarator(base));
          auto [memberType, memberName] = decl;
          if (memberType->kind == TypeKind::kVoid) {
            return FailSem("struct member cannot be void", Cur().pos);
          }
          offset = (offset + memberType->align - 1) &
                   ~(memberType->align - 1);
          type->members.push_back(StructMember{memberName, memberType, offset});
          offset += memberType->size;
          maxAlign = std::max(maxAlign, memberType->align);
          if (!ConsumePunct(",")) break;
        }
        RVSS_RETURN_IF_ERROR(ExpectPunct(";"));
      }
      type->align = maxAlign;
      type->size = (offset + maxAlign - 1) & ~(maxAlign - 1);
      if (type->size == 0) type->size = maxAlign;
      return type;
    }
    auto it = structTags_.find(tag);
    if (it == structTags_.end()) {
      return FailSem("unknown struct '" + tag + "'", Cur().pos);
    }
    return it->second;
  }

  /// Parses a declarator over `base`: pointers, a (possibly parenthesized)
  /// name, and array/function suffixes. Returns (type, name).
  Result<std::pair<TypePtr, std::string>> Declarator(TypePtr base) {
    while (ConsumePunct("*")) base = PointerTo(base);

    if (ConsumePunct("(")) {
      // Parenthesized inner declarator (function pointers). Parse the
      // inner part against a placeholder, then substitute.
      std::size_t inner = pos_;
      int depth = 1;
      while (depth > 0) {
        if (At(TokenKind::kEof)) return Fail("unbalanced declarator");
        if (AtPunct("(")) ++depth;
        if (AtPunct(")")) --depth;
        ++pos_;
      }
      RVSS_ASSIGN_OR_RETURN(TypePtr outer, TypeSuffix(base));
      std::size_t after = pos_;
      pos_ = inner;
      RVSS_ASSIGN_OR_RETURN(auto result, Declarator(outer));
      // pos_ now sits at the ')' matching the '('; skip to the suffix end.
      pos_ = after;
      return result;
    }

    std::string name;
    if (At(TokenKind::kIdentifier)) name = Take().text;
    RVSS_ASSIGN_OR_RETURN(TypePtr type, TypeSuffix(base));
    return std::make_pair(type, name);
  }

  Result<TypePtr> TypeSuffix(TypePtr base) {
    if (ConsumePunct("[")) {
      if (!At(TokenKind::kIntLiteral)) return Fail("expected array length");
      const std::int64_t length = Take().intValue;
      if (length <= 0 || length > (1 << 24)) return Fail("bad array length");
      RVSS_RETURN_IF_ERROR(ExpectPunct("]"));
      RVSS_ASSIGN_OR_RETURN(TypePtr element, TypeSuffix(base));
      return ArrayOf(element, static_cast<std::uint32_t>(length));
    }
    if (ConsumePunct("(")) {
      std::vector<TypePtr> params;
      std::vector<std::string> paramNames;
      if (!ConsumePunct(")")) {
        while (true) {
          if (ConsumeKeyword("void") && AtPunct(")")) break;
          bool isExtern = false;
          RVSS_ASSIGN_OR_RETURN(TypePtr paramBase, DeclSpec(&isExtern));
          RVSS_ASSIGN_OR_RETURN(auto decl, Declarator(paramBase));
          TypePtr paramType = decl.first;
          if (paramType->kind == TypeKind::kArray) {
            paramType = PointerTo(paramType->base);  // decay
          }
          params.push_back(paramType);
          paramNames.push_back(decl.second);
          if (!ConsumePunct(",")) break;
        }
        RVSS_RETURN_IF_ERROR(ExpectPunct(")"));
      }
      TypePtr fn = FunctionType(base, std::move(params));
      fn->paramNames = std::move(paramNames);
      return fn;
    }
    return base;
  }

  Status TopLevel() {
    // Bare struct declaration: struct Tag { ... };
    if (AtKeyword("struct") && Peek().kind == TokenKind::kIdentifier &&
        Peek(2).kind == TokenKind::kPunct && Peek(2).text == "{") {
      ++pos_;
      RVSS_ASSIGN_OR_RETURN(TypePtr unused, StructRef());
      (void)unused;
      return ExpectPunct(";");
    }

    bool isExtern = false;
    RVSS_ASSIGN_OR_RETURN(TypePtr base, DeclSpec(&isExtern));
    RVSS_ASSIGN_OR_RETURN(auto decl, Declarator(base));
    auto [type, name] = decl;
    if (name.empty()) return Fail("expected a name in declaration");

    if (type->kind == TypeKind::kFunction) {
      if (ConsumePunct(";")) {
        // Prototype.
        functionTypes_[name] = type;
        return Status::Ok();
      }
      return FunctionDefinition(std::move(name), std::move(type));
    }

    // Global variable(s).
    while (true) {
      Variable* var = DeclareGlobal(name, type, isExtern);
      if (ConsumePunct("=")) {
        RVSS_RETURN_IF_ERROR(GlobalInitializer(var));
      }
      if (!ConsumePunct(",")) break;
      RVSS_ASSIGN_OR_RETURN(auto next, Declarator(base));
      type = next.first;
      name = next.second;
      if (name.empty()) return Fail("expected a name in declaration");
    }
    return ExpectPunct(";");
  }

  Status GlobalInitializer(Variable* var) {
    var->hasInit = true;
    if (At(TokenKind::kStringLiteral)) {
      if (var->type->kind != TypeKind::kArray ||
          var->type->base->kind != TypeKind::kChar) {
        return FailSem("string initializer requires char array", Cur().pos);
      }
      var->stringInit = Take().text;
      return Status::Ok();
    }
    if (ConsumePunct("{")) {
      while (!ConsumePunct("}")) {
        RVSS_ASSIGN_OR_RETURN(double value, ConstantExpression());
        var->init.push_back(value);
        if (!ConsumePunct(",")) {
          RVSS_RETURN_IF_ERROR(ExpectPunct("}"));
          break;
        }
      }
      return Status::Ok();
    }
    RVSS_ASSIGN_OR_RETURN(double value, ConstantExpression());
    var->init.push_back(value);
    return Status::Ok();
  }

  Result<double> ConstantExpression() {
    // Minimal constant evaluation: literals with optional unary minus.
    bool negative = ConsumePunct("-");
    if (At(TokenKind::kIntLiteral) || At(TokenKind::kCharLiteral)) {
      double value = static_cast<double>(Take().intValue);
      return negative ? -value : value;
    }
    if (At(TokenKind::kFloatLiteral)) {
      double value = Take().floatValue;
      return negative ? -value : value;
    }
    return Fail("expected a constant initializer");
  }

  Status FunctionDefinition(std::string name, TypePtr type) {
    auto function = std::make_unique<Function>();
    function->name = std::move(name);
    function->type = type;
    function->pos = Cur().pos;
    functionTypes_[function->name] = type;
    currentFunction_ = function.get();
    currentReturnType_ = type->base;

    EnterScope();
    // Bind parameters (names live in the function type).
    for (std::size_t i = 0; i < type->params.size(); ++i) {
      if (i >= type->paramNames.size() || type->paramNames[i].empty()) {
        return FailSem("parameter " + std::to_string(i + 1) + " of '" +
                           function->name + "' needs a name",
                       function->pos);
      }
      Variable* param = DeclareLocal(type->paramNames[i], type->params[i]);
      function->params.push_back(param);
    }

    RVSS_RETURN_IF_ERROR(ExpectPunct("{"));
    RVSS_ASSIGN_OR_RETURN(NodePtr body, CompoundStatement());
    function->body = std::move(body);
    LeaveScope();

    unit_.functions.push_back(std::move(function));
    currentFunction_ = nullptr;
    return Status::Ok();
  }

  // ---- statements ----------------------------------------------------------

  Result<NodePtr> Statement() {
    const SourcePos pos = Cur().pos;
    if (AtPunct("{")) {
      ++pos_;
      EnterScope();
      auto result = CompoundStatement();
      LeaveScope();
      return result;
    }
    if (ConsumeKeyword("if")) {
      RVSS_RETURN_IF_ERROR(ExpectPunct("("));
      NodePtr node = MakeNode(NodeKind::kIf, pos);
      RVSS_ASSIGN_OR_RETURN(node->cond, Expression());
      RVSS_RETURN_IF_ERROR(ExpectPunct(")"));
      RVSS_ASSIGN_OR_RETURN(node->thenBranch, Statement());
      if (ConsumeKeyword("else")) {
        RVSS_ASSIGN_OR_RETURN(node->elseBranch, Statement());
      }
      return node;
    }
    if (ConsumeKeyword("while")) {
      RVSS_RETURN_IF_ERROR(ExpectPunct("("));
      NodePtr node = MakeNode(NodeKind::kWhile, pos);
      RVSS_ASSIGN_OR_RETURN(node->cond, Expression());
      RVSS_RETURN_IF_ERROR(ExpectPunct(")"));
      RVSS_ASSIGN_OR_RETURN(node->thenBranch, Statement());
      return node;
    }
    if (ConsumeKeyword("do")) {
      NodePtr node = MakeNode(NodeKind::kDoWhile, pos);
      RVSS_ASSIGN_OR_RETURN(node->thenBranch, Statement());
      if (!ConsumeKeyword("while")) return Fail("expected 'while' after do");
      RVSS_RETURN_IF_ERROR(ExpectPunct("("));
      RVSS_ASSIGN_OR_RETURN(node->cond, Expression());
      RVSS_RETURN_IF_ERROR(ExpectPunct(")"));
      RVSS_RETURN_IF_ERROR(ExpectPunct(";"));
      return node;
    }
    if (ConsumeKeyword("for")) {
      RVSS_RETURN_IF_ERROR(ExpectPunct("("));
      NodePtr node = MakeNode(NodeKind::kFor, pos);
      EnterScope();
      if (!ConsumePunct(";")) {
        if (AtTypeStart()) {
          RVSS_ASSIGN_OR_RETURN(node->init, Declaration());
        } else {
          RVSS_ASSIGN_OR_RETURN(NodePtr init, Expression());
          NodePtr stmt = MakeNode(NodeKind::kExprStmt, pos);
          stmt->lhs = std::move(init);
          node->init = std::move(stmt);
          RVSS_RETURN_IF_ERROR(ExpectPunct(";"));
        }
      }
      if (!AtPunct(";")) {
        RVSS_ASSIGN_OR_RETURN(node->cond, Expression());
      }
      RVSS_RETURN_IF_ERROR(ExpectPunct(";"));
      if (!AtPunct(")")) {
        RVSS_ASSIGN_OR_RETURN(node->step, Expression());
      }
      RVSS_RETURN_IF_ERROR(ExpectPunct(")"));
      RVSS_ASSIGN_OR_RETURN(node->thenBranch, Statement());
      LeaveScope();
      return node;
    }
    if (ConsumeKeyword("break")) {
      RVSS_RETURN_IF_ERROR(ExpectPunct(";"));
      return MakeNode(NodeKind::kBreak, pos);
    }
    if (ConsumeKeyword("continue")) {
      RVSS_RETURN_IF_ERROR(ExpectPunct(";"));
      return MakeNode(NodeKind::kContinue, pos);
    }
    if (ConsumeKeyword("return")) {
      NodePtr node = MakeNode(NodeKind::kReturn, pos);
      if (!AtPunct(";")) {
        RVSS_ASSIGN_OR_RETURN(node->lhs, Expression());
        if (currentReturnType_->kind == TypeKind::kVoid) {
          return FailSem("returning a value from a void function", pos);
        }
      }
      RVSS_RETURN_IF_ERROR(ExpectPunct(";"));
      return node;
    }
    if (ConsumePunct(";")) {
      return MakeNode(NodeKind::kEmpty, pos);
    }
    if (AtTypeStart()) {
      return Declaration();
    }
    NodePtr node = MakeNode(NodeKind::kExprStmt, pos);
    RVSS_ASSIGN_OR_RETURN(node->lhs, Expression());
    RVSS_RETURN_IF_ERROR(ExpectPunct(";"));
    return node;
  }

  /// Local declaration statement; initializers become assignments.
  Result<NodePtr> Declaration() {
    const SourcePos pos = Cur().pos;
    bool isExtern = false;
    RVSS_ASSIGN_OR_RETURN(TypePtr base, DeclSpec(&isExtern));
    NodePtr node = MakeNode(NodeKind::kDeclStmt, pos);
    while (true) {
      RVSS_ASSIGN_OR_RETURN(auto decl, Declarator(base));
      auto [type, name] = decl;
      if (name.empty()) return Fail("expected a variable name");
      if (type->kind == TypeKind::kVoid) {
        return FailSem("variable cannot be void", pos);
      }
      Variable* var = DeclareLocal(name, type);
      if (ConsumePunct("=")) {
        NodePtr ref = MakeNode(NodeKind::kVarRef, pos);
        ref->var = var;
        ref->type = type;
        RVSS_ASSIGN_OR_RETURN(NodePtr value, Assignment());
        NodePtr assign = MakeNode(NodeKind::kAssign, pos);
        RVSS_ASSIGN_OR_RETURN(assign->rhs,
                              CoerceTo(std::move(value), type, pos));
        assign->lhs = std::move(ref);
        assign->type = type;
        assign->op = "=";
        node->body.push_back(std::move(assign));
      }
      if (!ConsumePunct(",")) break;
    }
    RVSS_RETURN_IF_ERROR(ExpectPunct(";"));
    return node;
  }

  Result<NodePtr> CompoundStatement() {
    NodePtr node = MakeNode(NodeKind::kCompound, Cur().pos);
    while (!ConsumePunct("}")) {
      if (At(TokenKind::kEof)) return Fail("unterminated block");
      RVSS_ASSIGN_OR_RETURN(NodePtr stmt, Statement());
      node->body.push_back(std::move(stmt));
    }
    return node;
  }

  // ---- expressions ---------------------------------------------------------

  /// Inserts an implicit conversion node when types differ.
  Result<NodePtr> CoerceTo(NodePtr node, const TypePtr& target,
                           SourcePos pos) {
    TypePtr from = node->type;
    if (from == nullptr) return FailSem("untyped expression", pos);
    if (SameType(*from, *target)) return node;
    // Array-to-pointer decay.
    if (from->kind == TypeKind::kArray &&
        target->kind == TypeKind::kPointer &&
        SameType(*from->base, *target->base)) {
      return node;  // codegen treats array values as addresses
    }
    // Function to function-pointer decay.
    if (from->kind == TypeKind::kFunction &&
        target->kind == TypeKind::kPointer &&
        SameType(*from, *target->base)) {
      return node;
    }
    if ((from->IsArithmetic() && target->IsArithmetic())) {
      NodePtr cast = MakeNode(NodeKind::kCast, pos);
      cast->lhs = std::move(node);
      cast->type = target;
      return cast;
    }
    // Pointer conversions: allow between pointers and int (explicitly via
    // cast nodes elsewhere); implicit pointer-pointer of same base handled
    // by SameType. Permit void* style interop loosely.
    if (from->IsPointerLike() && target->kind == TypeKind::kPointer) {
      return node;
    }
    if (from->IsInteger() && target->kind == TypeKind::kPointer) {
      return node;  // e.g. p = 0
    }
    return FailSem("cannot convert '" + from->ToText() + "' to '" +
                       target->ToText() + "'",
                   pos);
  }

  Result<NodePtr> Expression() {
    RVSS_ASSIGN_OR_RETURN(NodePtr node, Assignment());
    while (AtPunct(",")) {
      SourcePos pos = Take().pos;
      NodePtr comma = MakeNode(NodeKind::kComma, pos);
      comma->lhs = std::move(node);
      RVSS_ASSIGN_OR_RETURN(comma->rhs, Assignment());
      comma->type = comma->rhs->type;
      node = std::move(comma);
    }
    return node;
  }

  Result<NodePtr> Assignment() {
    RVSS_ASSIGN_OR_RETURN(NodePtr lhs, Conditional());
    static constexpr std::string_view kAssignOps[] = {
        "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
    for (std::string_view op : kAssignOps) {
      if (AtPunct(op)) {
        SourcePos pos = Take().pos;
        RVSS_ASSIGN_OR_RETURN(NodePtr rhs, Assignment());
        NodePtr node = MakeNode(NodeKind::kAssign, pos);
        node->op = std::string(op);
        node->type = lhs->type;
        if (op != "=") {
          // a op= b  keeps the raw rhs; codegen reloads a.
          RVSS_ASSIGN_OR_RETURN(
              rhs, CoerceTo(std::move(rhs),
                            lhs->type->IsFloating() ? lhs->type : lhs->type,
                            pos));
        } else {
          RVSS_ASSIGN_OR_RETURN(rhs, CoerceTo(std::move(rhs), lhs->type, pos));
        }
        node->lhs = std::move(lhs);
        node->rhs = std::move(rhs);
        return node;
      }
    }
    return lhs;
  }

  Result<NodePtr> Conditional() {
    RVSS_ASSIGN_OR_RETURN(NodePtr cond, LogicalOr());
    if (!ConsumePunct("?")) return cond;
    SourcePos pos = Cur().pos;
    NodePtr node = MakeNode(NodeKind::kCond, pos);
    node->cond = std::move(cond);
    RVSS_ASSIGN_OR_RETURN(node->thenBranch, Expression());
    RVSS_RETURN_IF_ERROR(ExpectPunct(":"));
    RVSS_ASSIGN_OR_RETURN(node->elseBranch, Conditional());
    if (node->thenBranch->type->IsArithmetic() &&
        node->elseBranch->type->IsArithmetic()) {
      node->type = CommonArithmeticType(node->thenBranch->type,
                                        node->elseBranch->type);
      RVSS_ASSIGN_OR_RETURN(
          node->thenBranch,
          CoerceTo(std::move(node->thenBranch), node->type, pos));
      RVSS_ASSIGN_OR_RETURN(
          node->elseBranch,
          CoerceTo(std::move(node->elseBranch), node->type, pos));
    } else {
      node->type = node->thenBranch->type;
    }
    return node;
  }

  template <typename NextFn>
  Result<NodePtr> BinaryChain(NextFn next,
                              std::initializer_list<std::string_view> ops) {
    RVSS_ASSIGN_OR_RETURN(NodePtr node, (this->*next)());
    while (true) {
      bool matched = false;
      for (std::string_view op : ops) {
        if (AtPunct(op)) {
          SourcePos pos = Take().pos;
          RVSS_ASSIGN_OR_RETURN(NodePtr rhs, (this->*next)());
          RVSS_ASSIGN_OR_RETURN(
              node, MakeBinary(std::string(op), std::move(node),
                               std::move(rhs), pos));
          matched = true;
          break;
        }
      }
      if (!matched) return node;
    }
  }

  Result<NodePtr> MakeBinary(std::string op, NodePtr lhs, NodePtr rhs,
                             SourcePos pos) {
    NodePtr node = MakeNode(NodeKind::kBinary, pos);
    node->op = op;

    const bool comparison = op == "==" || op == "!=" || op == "<" ||
                            op == "<=" || op == ">" || op == ">=";
    const bool logical = op == "&&" || op == "||";
    TypePtr lt = lhs->type;
    TypePtr rt = rhs->type;

    if (logical) {
      node->type = IntType();
    } else if (lt->IsPointerLike() || rt->IsPointerLike()) {
      if (comparison) {
        node->type = IntType();
      } else if (op == "+" || op == "-") {
        if (lt->IsPointerLike() && rt->IsInteger()) {
          node->type = lt->kind == TypeKind::kArray ? PointerTo(lt->base) : lt;
        } else if (rt->IsPointerLike() && lt->IsInteger() && op == "+") {
          node->type = rt->kind == TypeKind::kArray ? PointerTo(rt->base) : rt;
        } else if (lt->IsPointerLike() && rt->IsPointerLike() && op == "-") {
          node->type = IntType();  // element difference
        } else {
          return FailSem("invalid pointer arithmetic", pos);
        }
      } else {
        return FailSem("operator '" + op + "' not valid on pointers", pos);
      }
    } else if (lt->IsArithmetic() && rt->IsArithmetic()) {
      if (op == "%" || op == "&" || op == "|" || op == "^" || op == "<<" ||
          op == ">>") {
        if (!lt->IsInteger() || !rt->IsInteger()) {
          return FailSem("operator '" + op + "' needs integer operands", pos);
        }
      }
      TypePtr common = CommonArithmeticType(lt, rt);
      if (op == "<<" || op == ">>") {
        common = lt->kind == TypeKind::kUInt ? UIntType() : IntType();
      }
      RVSS_ASSIGN_OR_RETURN(lhs, CoerceTo(std::move(lhs), common, pos));
      RVSS_ASSIGN_OR_RETURN(rhs, CoerceTo(std::move(rhs), common, pos));
      node->type = comparison ? IntType() : common;
    } else {
      return FailSem("invalid operands to '" + op + "'", pos);
    }

    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
  }

  Result<NodePtr> LogicalOr() {
    return BinaryChain(&Parser::LogicalAnd, {"||"});
  }
  Result<NodePtr> LogicalAnd() {
    return BinaryChain(&Parser::BitOr, {"&&"});
  }
  Result<NodePtr> BitOr() { return BinaryChain(&Parser::BitXor, {"|"}); }
  Result<NodePtr> BitXor() { return BinaryChain(&Parser::BitAnd, {"^"}); }
  Result<NodePtr> BitAnd() { return BinaryChain(&Parser::Equality, {"&"}); }
  Result<NodePtr> Equality() {
    return BinaryChain(&Parser::Relational, {"==", "!="});
  }
  Result<NodePtr> Relational() {
    return BinaryChain(&Parser::Shift, {"<=", ">=", "<", ">"});
  }
  Result<NodePtr> Shift() { return BinaryChain(&Parser::Additive, {"<<", ">>"}); }
  Result<NodePtr> Additive() {
    return BinaryChain(&Parser::Multiplicative, {"+", "-"});
  }
  Result<NodePtr> Multiplicative() {
    return BinaryChain(&Parser::Unary, {"*", "/", "%"});
  }

  bool AtCastStart() const {
    if (!AtPunct("(")) return false;
    const Token& next = Peek();
    return next.kind == TokenKind::kKeyword &&
           (next.text == "void" || next.text == "char" || next.text == "int" ||
            next.text == "unsigned" || next.text == "float" ||
            next.text == "double" || next.text == "struct" ||
            next.text == "const");
  }

  Result<NodePtr> Unary() {
    const SourcePos pos = Cur().pos;
    if (AtCastStart()) {
      ++pos_;  // '('
      bool isExtern = false;
      RVSS_ASSIGN_OR_RETURN(TypePtr base, DeclSpec(&isExtern));
      // Abstract declarator: pointers only (cast to array is not a thing).
      while (ConsumePunct("*")) base = PointerTo(base);
      RVSS_RETURN_IF_ERROR(ExpectPunct(")"));
      RVSS_ASSIGN_OR_RETURN(NodePtr operand, Unary());
      NodePtr node = MakeNode(NodeKind::kCast, pos);
      node->lhs = std::move(operand);
      node->type = base;
      return node;
    }
    if (ConsumePunct("-") || (AtPunct("+") && (static_cast<void>(++pos_), true))) {
      // unary minus handled; unary plus is a no-op (fall through for '+')
      if (tokens_[pos_ - 1].text == "+") return Unary();
      RVSS_ASSIGN_OR_RETURN(NodePtr operand, Unary());
      NodePtr node = MakeNode(NodeKind::kUnary, pos);
      node->op = "-";
      if (!operand->type->IsArithmetic()) {
        return FailSem("unary '-' needs an arithmetic operand", pos);
      }
      node->type = operand->type->kind == TypeKind::kChar ? IntType()
                                                          : operand->type;
      node->lhs = std::move(operand);
      return node;
    }
    if (ConsumePunct("!")) {
      RVSS_ASSIGN_OR_RETURN(NodePtr operand, Unary());
      NodePtr node = MakeNode(NodeKind::kUnary, pos);
      node->op = "!";
      node->type = IntType();
      node->lhs = std::move(operand);
      return node;
    }
    if (ConsumePunct("~")) {
      RVSS_ASSIGN_OR_RETURN(NodePtr operand, Unary());
      if (!operand->type->IsInteger()) {
        return FailSem("'~' needs an integer operand", pos);
      }
      NodePtr node = MakeNode(NodeKind::kUnary, pos);
      node->op = "~";
      node->type = operand->type;
      node->lhs = std::move(operand);
      return node;
    }
    if (ConsumePunct("*")) {
      RVSS_ASSIGN_OR_RETURN(NodePtr operand, Unary());
      if (!operand->type->IsPointerLike()) {
        return FailSem("dereferencing a non-pointer", pos);
      }
      NodePtr node = MakeNode(NodeKind::kDeref, pos);
      node->type = operand->type->base;
      node->lhs = std::move(operand);
      return node;
    }
    if (ConsumePunct("&")) {
      RVSS_ASSIGN_OR_RETURN(NodePtr operand, Unary());
      NodePtr node = MakeNode(NodeKind::kAddr, pos);
      node->type = PointerTo(operand->type);
      node->lhs = std::move(operand);
      return node;
    }
    if (ConsumePunct("++") || ConsumePunct("--")) {
      const std::string op = tokens_[pos_ - 1].text;
      RVSS_ASSIGN_OR_RETURN(NodePtr operand, Unary());
      // ++x  ->  x += 1
      NodePtr node = MakeNode(NodeKind::kAssign, pos);
      node->op = op == "++" ? "+=" : "-=";
      node->type = operand->type;
      NodePtr one = MakeNode(NodeKind::kIntLiteral, pos);
      one->intValue = 1;
      one->type = IntType();
      node->lhs = std::move(operand);
      node->rhs = std::move(one);
      return node;
    }
    if (ConsumeKeyword("sizeof")) {
      NodePtr node = MakeNode(NodeKind::kIntLiteral, pos);
      node->type = UIntType();
      if (AtCastStart()) {
        ++pos_;
        bool isExtern = false;
        RVSS_ASSIGN_OR_RETURN(TypePtr base, DeclSpec(&isExtern));
        while (ConsumePunct("*")) base = PointerTo(base);
        RVSS_RETURN_IF_ERROR(ExpectPunct(")"));
        node->intValue = base->size;
      } else {
        RVSS_ASSIGN_OR_RETURN(NodePtr operand, Unary());
        node->intValue = operand->type->size;
      }
      return node;
    }
    return Postfix();
  }

  Result<NodePtr> Postfix() {
    RVSS_ASSIGN_OR_RETURN(NodePtr node, Primary());
    while (true) {
      const SourcePos pos = Cur().pos;
      if (ConsumePunct("[")) {
        RVSS_ASSIGN_OR_RETURN(NodePtr index, Expression());
        RVSS_RETURN_IF_ERROR(ExpectPunct("]"));
        if (!node->type->IsPointerLike()) {
          return FailSem("indexing a non-array", pos);
        }
        RVSS_ASSIGN_OR_RETURN(
            NodePtr sum,
            MakeBinary("+", std::move(node), std::move(index), pos));
        NodePtr deref = MakeNode(NodeKind::kDeref, pos);
        deref->type = sum->type->base;
        deref->lhs = std::move(sum);
        node = std::move(deref);
        continue;
      }
      if (ConsumePunct("(")) {
        // Function call: direct (identifier naming a function) or through
        // a function pointer value.
        NodePtr call;
        if (node->kind == NodeKind::kVarRef && node->var == nullptr) {
          call = MakeNode(NodeKind::kCall, pos);
          call->callee = node->memberName;  // stashed function name
          auto typeIt = functionTypes_.find(call->callee);
          if (typeIt == functionTypes_.end()) {
            return FailSem("call to unknown function '" + call->callee + "'",
                           pos);
          }
          call->type = typeIt->second->base;
          call->var = nullptr;
          node->type = typeIt->second;
          RVSS_RETURN_IF_ERROR(
              CallArguments(call.get(), *typeIt->second));
        } else {
          TypePtr fnType = node->type;
          if (fnType->kind == TypeKind::kPointer) fnType = fnType->base;
          if (fnType->kind != TypeKind::kFunction) {
            return FailSem("calling a non-function value", pos);
          }
          call = MakeNode(NodeKind::kIndirectCall, pos);
          call->type = fnType->base;
          RVSS_RETURN_IF_ERROR(CallArguments(call.get(), *fnType));
          call->lhs = std::move(node);
        }
        node = std::move(call);
        continue;
      }
      if (ConsumePunct(".")) {
        RVSS_ASSIGN_OR_RETURN(node, MemberAccess(std::move(node), false, pos));
        continue;
      }
      if (ConsumePunct("->")) {
        RVSS_ASSIGN_OR_RETURN(node, MemberAccess(std::move(node), true, pos));
        continue;
      }
      if (AtPunct("++") || AtPunct("--")) {
        const std::string op = Take().text;
        NodePtr post = MakeNode(NodeKind::kPostIncDec, pos);
        post->op = op;
        post->type = node->type;
        post->lhs = std::move(node);
        node = std::move(post);
        continue;
      }
      return node;
    }
  }

  Status CallArguments(Node* call, const Type& fnType) {
    if (!ConsumePunct(")")) {
      while (true) {
        RVSS_ASSIGN_OR_RETURN(NodePtr arg, Assignment());
        const std::size_t index = call->body.size();
        if (index < fnType.params.size()) {
          RVSS_ASSIGN_OR_RETURN(
              arg, CoerceTo(std::move(arg), fnType.params[index], call->pos));
        }
        call->body.push_back(std::move(arg));
        if (!ConsumePunct(",")) break;
      }
      RVSS_RETURN_IF_ERROR(ExpectPunct(")"));
    }
    if (call->body.size() != fnType.params.size()) {
      return FailSem("wrong number of arguments", call->pos);
    }
    if (call->body.size() > 8) {
      return FailSem("rvcc supports at most 8 arguments", call->pos);
    }
    return Status::Ok();
  }

  Result<NodePtr> MemberAccess(NodePtr base, bool arrow, SourcePos pos) {
    TypePtr structType = base->type;
    if (arrow) {
      if (!structType->IsPointerLike()) {
        return FailSem("'->' on a non-pointer", pos);
      }
      structType = structType->base;
    }
    if (structType->kind != TypeKind::kStruct) {
      return FailSem("member access on non-struct '" + structType->ToText() +
                         "'",
                     pos);
    }
    if (!At(TokenKind::kIdentifier)) return Fail("expected member name");
    const std::string memberName = Take().text;
    const StructMember* member = nullptr;
    for (const StructMember& candidate : structType->members) {
      if (candidate.name == memberName) {
        member = &candidate;
        break;
      }
    }
    if (member == nullptr) {
      return FailSem("no member '" + memberName + "' in " +
                         structType->ToText(),
                     pos);
    }
    NodePtr node = MakeNode(NodeKind::kMember, pos);
    node->memberName = memberName;
    node->memberOffset = member->offset;
    node->type = member->type;
    node->postfix = arrow;
    node->lhs = std::move(base);
    return node;
  }

  Result<NodePtr> Primary() {
    const SourcePos pos = Cur().pos;
    if (ConsumePunct("(")) {
      RVSS_ASSIGN_OR_RETURN(NodePtr node, Expression());
      RVSS_RETURN_IF_ERROR(ExpectPunct(")"));
      return node;
    }
    if (At(TokenKind::kIntLiteral) || At(TokenKind::kCharLiteral)) {
      Token token = Take();
      NodePtr node = MakeNode(NodeKind::kIntLiteral, pos);
      node->intValue = token.intValue;
      node->type = token.isUnsignedLiteral ? UIntType() : IntType();
      return node;
    }
    if (At(TokenKind::kFloatLiteral)) {
      Token token = Take();
      NodePtr node = MakeNode(NodeKind::kFloatLiteral, pos);
      node->floatValue = token.floatValue;
      node->type = token.isFloatLiteral32 ? FloatType() : DoubleType();
      return node;
    }
    if (At(TokenKind::kStringLiteral)) {
      Token token = Take();
      NodePtr node = MakeNode(NodeKind::kStringLiteral, pos);
      node->memberName = token.text;  // payload
      node->type = PointerTo(CharType());
      return node;
    }
    if (At(TokenKind::kIdentifier)) {
      std::string name = Take().text;
      Variable* var = LookupVar(name);
      NodePtr node = MakeNode(NodeKind::kVarRef, pos);
      if (var != nullptr) {
        node->var = var;
        node->type = var->type;
        return node;
      }
      // Not a variable: a function name (direct call or function pointer).
      auto fnIt = functionTypes_.find(name);
      if (fnIt != functionTypes_.end()) {
        node->var = nullptr;
        node->memberName = name;  // stash
        node->type = fnIt->second;
        return node;
      }
      if (AtPunct("(")) {
        // Implicitly-declared function: assume int(...) with the argument
        // count discovered at the call site — rejected for safety.
        return FailSem("call to undeclared function '" + name + "'", pos);
      }
      return FailSem("undeclared identifier '" + name + "'", pos);
    }
    return Fail("unexpected token '" + Cur().text + "'");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  TranslationUnit unit_;
  std::vector<std::map<std::string, Variable*>> scopes_;
  std::map<std::string, TypePtr> structTags_;
  std::map<std::string, TypePtr> functionTypes_;
  Function* currentFunction_ = nullptr;
  TypePtr currentReturnType_;
};

}  // namespace

Result<TranslationUnit> ParseTranslationUnit(std::string_view source) {
  RVSS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).Run();
}

}  // namespace rvss::cc
