// rvcc lexer: C subset tokenizer.
//
// rvcc is the repository's stand-in for the paper's GCC cross-compilation
// path (DESIGN.md substitution table): C text in, RV32IMFD assembly out,
// with per-line links between the two (the paper's highlighted C<->asm
// mapping). The lexer produces a flat token vector with line/column
// positions that survive into codegen as `#@c` line tags.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace rvss::cc {

enum class TokenKind : std::uint8_t {
  kEof,
  kIdentifier,
  kKeyword,
  kIntLiteral,
  kFloatLiteral,   ///< has a '.' or exponent; value in floatValue
  kCharLiteral,
  kStringLiteral,  ///< value in text (decoded)
  kPunct,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;          ///< identifier / punct / keyword spelling
  std::int64_t intValue = 0;
  double floatValue = 0.0;
  bool isUnsignedLiteral = false;  ///< 123u
  bool isFloatLiteral32 = false;   ///< 1.5f
  SourcePos pos;
};

/// Tokenizes C source. Handles // and /* */ comments, decimal/hex/octal
/// integer literals with u/U suffix, float literals with f/F suffix, char
/// literals with escapes, and string literals.
Result<std::vector<Token>> Tokenize(std::string_view source);

/// True if `text` is a C keyword rvcc understands.
bool IsKeyword(std::string_view text);

}  // namespace rvss::cc
