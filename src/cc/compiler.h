// rvcc driver: C source -> RV32IMFD assembly at a chosen optimization
// level. This is the repository's analogue of the paper's server-side GCC
// invocation (§III-C): the web client posts C code, the server compiles it
// and returns assembly plus diagnostics.
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"

namespace rvss::cc {

struct CompileOptions {
  int optLevel = 0;  ///< 0..3, mirroring -O0 .. -O3
};

struct CompileOutput {
  std::string assembly;
};

/// Compiles a C translation unit. Errors carry source positions for the
/// editor's error highlighting (paper Fig. 6).
Result<CompileOutput> Compile(std::string_view source,
                              const CompileOptions& options = {});

}  // namespace rvss::cc
