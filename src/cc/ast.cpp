#include "cc/ast.h"

namespace rvss::cc {
namespace {

Type MakeScalar(TypeKind kind, std::uint32_t size, std::uint32_t align) {
  Type type;
  type.kind = kind;
  type.size = size;
  type.align = align;
  return type;
}

}  // namespace

TypePtr VoidType() {
  static Type kType = MakeScalar(TypeKind::kVoid, 0, 1);
  return &kType;
}
TypePtr CharType() {
  static Type kType = MakeScalar(TypeKind::kChar, 1, 1);
  return &kType;
}
TypePtr IntType() {
  static Type kType = MakeScalar(TypeKind::kInt, 4, 4);
  return &kType;
}
TypePtr UIntType() {
  static Type kType = MakeScalar(TypeKind::kUInt, 4, 4);
  return &kType;
}
TypePtr FloatType() {
  static Type kType = MakeScalar(TypeKind::kFloat, 4, 4);
  return &kType;
}
TypePtr DoubleType() {
  static Type kType = MakeScalar(TypeKind::kDouble, 8, 8);
  return &kType;
}

TypePtr PointerTo(TypeArena& arena, TypePtr base) {
  Type* type = arena.New();
  type->kind = TypeKind::kPointer;
  type->base = base;
  type->size = 4;
  type->align = 4;
  return type;
}

TypePtr ArrayOf(TypeArena& arena, TypePtr element, std::uint32_t length) {
  Type* type = arena.New();
  type->kind = TypeKind::kArray;
  type->size = element->size * length;
  type->align = element->align;
  type->base = element;
  type->arrayLength = length;
  return type;
}

TypePtr FunctionType(TypeArena& arena, TypePtr returnType,
                     std::vector<TypePtr> params) {
  Type* type = arena.New();
  type->kind = TypeKind::kFunction;
  type->base = returnType;
  type->params = std::move(params);
  type->size = 4;  // as a value: a code address
  type->align = 4;
  return type;
}

bool SameType(const Type& a, const Type& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case TypeKind::kPointer:
      return SameType(*a.base, *b.base);
    case TypeKind::kArray:
      return a.arrayLength == b.arrayLength && SameType(*a.base, *b.base);
    case TypeKind::kStruct:
      return a.structName == b.structName && a.size == b.size;
    case TypeKind::kFunction: {
      if (!SameType(*a.base, *b.base) || a.params.size() != b.params.size()) {
        return false;
      }
      for (std::size_t i = 0; i < a.params.size(); ++i) {
        if (!SameType(*a.params[i], *b.params[i])) return false;
      }
      return true;
    }
    default:
      return true;
  }
}

std::string Type::ToText() const {
  switch (kind) {
    case TypeKind::kVoid: return "void";
    case TypeKind::kChar: return "char";
    case TypeKind::kInt: return "int";
    case TypeKind::kUInt: return "unsigned";
    case TypeKind::kFloat: return "float";
    case TypeKind::kDouble: return "double";
    case TypeKind::kPointer: return base->ToText() + "*";
    case TypeKind::kArray:
      return base->ToText() + "[" + std::to_string(arrayLength) + "]";
    case TypeKind::kStruct:
      return "struct " + (structName.empty() ? "<anon>" : structName);
    case TypeKind::kFunction: {
      std::string out = base->ToText() + "(";
      for (std::size_t i = 0; i < params.size(); ++i) {
        if (i != 0) out += ", ";
        out += params[i]->ToText();
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace rvss::cc
